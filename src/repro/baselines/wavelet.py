"""Wavelet-based histograms [Matias, Vitter & Wang, SIGMOD 1998].

The paper's related-work discussion (Section 1.2) contrasts its
hierarchical histograms with Haar-wavelet synopses: the error tree of a
Haar decomposition is exactly a fixed binary hierarchy over the value
vector, and a synopsis keeps the ``b`` largest (L2-normalized)
coefficients.  This module implements that classic baseline so the
comparison can be made empirically:

* Haar decomposition of the group-count vector (in identifier order,
  zero-padded to a power of two);
* conventional L2 thresholding — optimal for RMS error [17];
* reconstruction to per-group estimates, evaluable under any metric.

Like V-Optimal, the construction targets RMS regardless of the
evaluation metric; the paper's point is precisely that its histograms
optimize arbitrary distributive metrics directly where wavelet
synopses (classically) cannot.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from ..core.errors import DistributiveErrorMetric
from ..core.groups import GroupTable

__all__ = ["WaveletHistogram", "build_wavelet"]


def haar_decompose(values: np.ndarray) -> np.ndarray:
    """Unnormalized Haar decomposition of a power-of-two-length vector.

    Returns the coefficient vector ``[overall average, details...]`` in
    the standard layout (coefficient ``i`` has resolution level
    ``floor(log2 i)``).
    """
    n = len(values)
    if n & (n - 1):
        raise ValueError(f"length {n} is not a power of two")
    coeffs = np.empty(n, dtype=np.float64)
    current = values.astype(np.float64)
    while len(current) > 1:
        half = len(current) // 2
        pairs = current.reshape(half, 2)
        averages = pairs.mean(axis=1)
        details = (pairs[:, 0] - pairs[:, 1]) / 2.0
        coeffs[half : 2 * half] = details
        current = averages
    coeffs[0] = current[0]
    return coeffs


def haar_reconstruct(coeffs: np.ndarray) -> np.ndarray:
    """Inverse of :func:`haar_decompose`."""
    n = len(coeffs)
    current = np.asarray([coeffs[0]], dtype=np.float64)
    half = 1
    while half < n:
        details = coeffs[half : 2 * half]
        expanded = np.empty(2 * half, dtype=np.float64)
        expanded[0::2] = current + details
        expanded[1::2] = current - details
        current = expanded
        half *= 2
    return current


class WaveletHistogram:
    """A Haar-wavelet synopsis over a group-count vector."""

    def __init__(self, table: GroupTable, counts: Sequence[float], budget: int):
        if budget < 1:
            raise ValueError(f"budget must be at least 1, got {budget}")
        self.table = table
        self.counts = np.asarray(counts, dtype=np.float64)
        if self.counts.shape != (len(table),):
            raise ValueError(
                f"expected {len(table)} group counts, got {self.counts.shape}"
            )
        self.budget = budget
        n = 1 << max(0, (len(table) - 1).bit_length())
        padded = np.zeros(n, dtype=np.float64)
        padded[: len(table)] = self.counts
        self._n = n
        self._coeffs = haar_decompose(padded)
        # L2-normalized magnitudes: coefficient i at level l contributes
        # |c| * sqrt(n / 2^l) to the L2 norm; keeping the largest
        # normalized coefficients minimizes RMS reconstruction error.
        levels = np.floor(np.log2(np.maximum(1, np.arange(n)))).astype(int)
        levels[0] = 0
        support = n / (2.0 ** levels)
        self._importance = np.abs(self._coeffs) * np.sqrt(support)
        self._order = np.argsort(-self._importance, kind="stable")

    def kept_coefficients(self, b: int) -> List[Tuple[int, float]]:
        """The ``b`` retained (index, value) pairs."""
        b = max(1, min(b, self.budget, self._n))
        kept = self._order[:b]
        return [(int(i), float(self._coeffs[i])) for i in kept]

    def estimates(self, b: int) -> np.ndarray:
        """Per-group estimates from the ``b``-coefficient synopsis."""
        b = max(1, min(b, self.budget, self._n))
        sparse = np.zeros(self._n, dtype=np.float64)
        kept = self._order[:b]
        sparse[kept] = self._coeffs[kept]
        return haar_reconstruct(sparse)[: len(self.table)]

    def error(self, metric: DistributiveErrorMetric, b: int) -> float:
        return metric.evaluate(self.counts, self.estimates(b))

    def error_curve(self, metric: DistributiveErrorMetric) -> np.ndarray:
        curve = np.full(self.budget + 1, np.inf)
        for b in range(1, self.budget + 1):
            curve[b] = self.error(metric, b)
        return curve

    def size_bits(self, b: int, value_bits: int = 32) -> int:
        """One (coefficient index, value) pair per kept coefficient."""
        b = max(1, min(b, self.budget, self._n))
        idx_bits = max(1, math.ceil(math.log2(self._n)))
        return b * (idx_bits + value_bits)


def build_wavelet(
    table: GroupTable, counts: Sequence[float], budget: int
) -> WaveletHistogram:
    """Construct a Haar-wavelet synopsis (all budgets up to ``budget``
    from one decomposition)."""
    return WaveletHistogram(table, counts, budget)
