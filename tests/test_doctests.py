"""Runs the doctests embedded in the public API docstrings."""

import doctest

import pytest

import repro
import repro.core.domain
import repro.core.errors


@pytest.mark.parametrize("module", [
    repro,
    repro.core.domain,
    repro.core.errors,
])
def test_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "no doctests collected"
