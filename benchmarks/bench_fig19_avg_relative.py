"""Figure 19: average relative error vs. number of buckets.

Paper claim (Section 5.1.3): relative error emphasizes low-count
groups; the quantized heuristic's logarithmic counters track them best,
V-Optimal is strong at small budgets but falls behind as buckets grow,
and longest-prefix-match histograms clearly beat the others.
"""

from repro.algorithms import build_lpm_quantized

from figlib import figure_series, report_figure
from workloads import (QUANTIZED_BEAM, QUANTIZED_BUDGETS,
                       QUANTIZED_THETA, figure_workload, metric_for)

METRIC = "avg_relative"


def test_fig19_series(benchmark):
    wl = figure_workload()
    metric = metric_for(METRIC, wl)

    def construct():
        return build_lpm_quantized(
            wl.hierarchy, metric, max(QUANTIZED_BUDGETS),
            theta=QUANTIZED_THETA, beam=QUANTIZED_BEAM,
            curve_budgets=QUANTIZED_BUDGETS,
        )

    benchmark.pedantic(construct, rounds=1, iterations=1)
    report_figure("fig19", METRIC)
    series = figure_series(METRIC)
    for s, curve in series.items():
        assert curve[max(curve)] <= curve[min(curve)] + 1e-9, s
    mid = 50
    # longest-prefix-match beats the flat baselines on relative error
    assert series["greedy"][mid] <= series["end_biased"][mid]
    assert series["quantized"][mid] <= series["end_biased"][mid]


if __name__ == "__main__":
    report_figure("fig19", METRIC)
