"""End-biased histograms [Ioannidis & Poosala, SIGMOD 1995].

An end-biased histogram with budget ``b`` keeps the exact counts of the
``b - 1`` groups with the highest counts in singleton buckets, and
lumps every remaining group into a single multi-group bucket whose
count is spread uniformly (Section 5 of the paper).  They are the
deployed state of practice for skewed distributions, construction is
trivial even for millions of groups, and the paper uses them as its
primary practical baseline.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..core.errors import DistributiveErrorMetric, PenaltyMetric
from ..core.groups import GroupTable

__all__ = ["EndBiasedHistogram", "build_end_biased"]


class EndBiasedHistogram:
    """An end-biased histogram over a group-count vector.

    Construction sorts groups by count once; any budget up to the
    requested maximum can then be materialized instantly, so one object
    serves a whole budget sweep.
    """

    def __init__(self, table: GroupTable, counts: Sequence[float], budget: int):
        if budget < 1:
            raise ValueError(f"budget must be at least 1, got {budget}")
        self.table = table
        self.counts = np.asarray(counts, dtype=np.float64)
        if self.counts.shape != (len(table),):
            raise ValueError(
                f"expected {len(table)} group counts, got {self.counts.shape}"
            )
        self.budget = budget
        # Descending by count; ties broken by group index for determinism.
        self.order = np.lexsort((np.arange(len(table)), -self.counts))
        self.sorted_counts = self.counts[self.order]
        self.suffix_sums = np.concatenate(
            [np.cumsum(self.sorted_counts[::-1])[::-1], [0.0]]
        )

    def estimates(self, b: int) -> np.ndarray:
        """Per-group estimates with budget ``b``: top ``b - 1`` exact,
        remainder uniform."""
        b = max(1, min(b, self.budget))
        singles = min(b - 1, len(self.table))
        est = np.empty(len(self.table), dtype=np.float64)
        rest = len(self.table) - singles
        rest_avg = self.suffix_sums[singles] / rest if rest > 0 else 0.0
        est[self.order[singles:]] = rest_avg
        est[self.order[:singles]] = self.sorted_counts[:singles]
        return est

    def error(self, metric: DistributiveErrorMetric, b: int) -> float:
        return metric.evaluate(self.counts, self.estimates(b))

    def error_curve(self, metric: PenaltyMetric) -> np.ndarray:
        """Error for every budget ``1..budget`` (index 0 unused)."""
        curve = np.full(self.budget + 1, np.inf)
        for b in range(1, self.budget + 1):
            curve[b] = self.error(metric, b)
        return curve

    def size_bits(self, b: int, counter_bits: int = 32) -> int:
        """One (group id, count) pair per singleton plus the remainder
        counter."""
        b = max(1, min(b, self.budget))
        id_bits = max(1, math.ceil(math.log2(max(2, len(self.table)))))
        return (b - 1) * (id_bits + counter_bits) + counter_bits


def build_end_biased(
    table: GroupTable, counts: Sequence[float], budget: int
) -> EndBiasedHistogram:
    """Construct an end-biased histogram (one object covers all budgets
    up to ``budget``)."""
    return EndBiasedHistogram(table, counts, budget)
