"""Prefix tables and longest-prefix-match tries.

A :class:`PrefixTable` is a set of identifier prefixes (hierarchy
nodes) with payloads — the shape of a router's forwarding table, of the
WHOIS-derived subnet table in the paper's evaluation, and of the bucket
sets of the partitioning functions themselves.  :class:`PrefixTrie`
supports the two lookups the system needs:

* ``longest_match`` — the deepest stored prefix covering an identifier
  (how longest-prefix-match partitioning functions route identifiers to
  buckets, Section 2.1.3);
* ``all_matches`` — every stored prefix covering an identifier (the
  overlapping semantics).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..core.domain import UIDDomain

__all__ = ["PrefixTable", "PrefixTrie"]


class PrefixTrie:
    """A binary trie over hierarchy nodes.

    Stored entries are node ids; the trie structure follows the node's
    bit path from the root.  All operations are O(height).
    """

    __slots__ = ("domain", "_payloads")

    def __init__(self, domain: UIDDomain) -> None:
        self.domain = domain
        self._payloads: Dict[int, object] = {}

    def __len__(self) -> int:
        return len(self._payloads)

    def __contains__(self, node: int) -> bool:
        return node in self._payloads

    def insert(self, node: int, payload: object = None) -> None:
        if not self.domain.contains_node(node):
            raise ValueError(f"invalid node {node} for {self.domain}")
        self._payloads[node] = payload

    def remove(self, node: int) -> None:
        del self._payloads[node]

    def get(self, node: int) -> object:
        return self._payloads[node]

    def nodes(self) -> Iterator[int]:
        return iter(self._payloads)

    # -- lookups ---------------------------------------------------------
    def longest_match(self, uid: int) -> Optional[int]:
        """The deepest stored node whose subtree contains ``uid``."""
        node = self.domain.leaf(uid)
        while node >= 1:
            if node in self._payloads:
                return node
            node >>= 1
        return None

    def all_matches(self, uid: int) -> List[int]:
        """Every stored node covering ``uid``, shallowest first."""
        out: List[int] = []
        node = self.domain.leaf(uid)
        while node >= 1:
            if node in self._payloads:
                out.append(node)
            node >>= 1
        out.reverse()
        return out

    def lookup(self, uid: int) -> object:
        """Payload of the longest match (``KeyError`` if none)."""
        node = self.longest_match(uid)
        if node is None:
            raise KeyError(f"no prefix covers uid {uid}")
        return self._payloads[node]


class PrefixTable:
    """An ordered table of (prefix node, payload) rows.

    Provides coverage/overlap checks and conversion to the trie and to
    :class:`~repro.core.groups.GroupTable` inputs.
    """

    def __init__(self, domain: UIDDomain) -> None:
        self.domain = domain
        self.rows: List[Tuple[int, object]] = []

    def __len__(self) -> int:
        return len(self.rows)

    def add(self, node: int, payload: object = None) -> None:
        if not self.domain.contains_node(node):
            raise ValueError(f"invalid node {node} for {self.domain}")
        self.rows.append((node, payload))

    def extend(self, nodes: Iterable[int]) -> None:
        for node in nodes:
            self.add(node)

    def nodes(self) -> List[int]:
        return [node for node, _ in self.rows]

    def sorted_by_range(self) -> List[Tuple[int, object]]:
        return sorted(self.rows, key=lambda row: self.domain.uid_range(row[0]))

    def is_nonoverlapping(self) -> bool:
        ranges = sorted(self.domain.uid_range(n) for n, _ in self.rows)
        return all(a[1] <= b[0] for a, b in zip(ranges, ranges[1:]))

    def covers_domain(self) -> bool:
        if not self.rows:
            return False
        ranges = sorted(self.domain.uid_range(n) for n, _ in self.rows)
        if ranges[0][0] != 0 or ranges[-1][1] != self.domain.num_uids:
            return False
        return all(a[1] >= b[0] for a, b in zip(ranges, ranges[1:]))

    def to_trie(self) -> PrefixTrie:
        trie = PrefixTrie(self.domain)
        for node, payload in self.rows:
            trie.insert(node, payload)
        return trie

    def prefix_length_distribution(self) -> Dict[int, int]:
        """Count of prefixes per length — the Figure 15 series."""
        out: Dict[int, int] = {}
        for node, _ in self.rows:
            d = UIDDomain.depth(node)
            out[d] = out.get(d, 0) + 1
        return out
