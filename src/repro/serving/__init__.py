"""Multi-shard, multi-tenant serving layer (ROADMAP item 1).

Promotes the single-process :class:`~repro.streams.MonitoringSystem`
loop into a serving engine:

* :class:`ShardedMonitoringSystem` — hash-shards UIDs across
  ``shards=K`` worker processes (shared-memory window buffers, fault
  decisions pre-drawn so sharded runs are report-identical to serial)
  and fans the per-shard v2 wire payloads into one decode per window at
  the tenant boundary.
* :class:`SharedServingCache` — cross-tenant reuse of DP rebuilds,
  incremental-curve memos and compiled tables, keyed by BLAKE2b
  fingerprints of the group table and rebuild inputs.
* :class:`ServingEngine` — admission-controlled multi-tenant runs with
  per-tenant byte budgets and ``tenant=``/``shard=`` labelled metrics
  and journal events.

See ``docs/serving.md`` for the shard model, tenant spec format and
cache-sharing guarantees.
"""

from .cache import SharedServingCache
from .engine import ServingEngine, TenantReport, TenantSpec
from .sharded import FanInControlCenter, ShardedMonitoringSystem

__all__ = [
    "FanInControlCenter",
    "ServingEngine",
    "SharedServingCache",
    "ShardedMonitoringSystem",
    "TenantReport",
    "TenantSpec",
]
