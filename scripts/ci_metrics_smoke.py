#!/usr/bin/env python
"""CI smoke for the live observability plane.

Launches ``repro simulate`` as a subprocess with the metrics endpoint,
the event journal and the periodic metrics writer all enabled, then:

1. polls ``/metrics`` **while the run executes** until the per-window
   quality gauges appear, and validates the scrape as Prometheus
   exposition text (every line parses; ``# TYPE``/``# HELP`` exactly
   once per family, before its first sample);
2. fetches ``/series.json`` and checks the per-window records, and
   ``/alerts.json`` for the live SLO rule state;
3. waits for the run to finish and replays the journal with
   ``repro replay``, requiring the replayed summary to match the live
   run's summary byte for byte;
4. exports the journal with ``repro trace`` and validates the Chrome
   Trace Event document (JSON parses, every delivery flow is paired).

A second leg reruns the pipeline with ``--shards 2`` to smoke the
cross-process telemetry fan-in: it polls ``/metrics`` until
``shard=``-labelled families appear (worker registries merged back
into the parent), requires ``/shards.json`` to parse with per-shard
rollups for both workers and the parent, replays the journal for
byte-identity, and validates that the Chrome trace grew ``shard-N``
worker tracks with duration-sized prefetch slices.

Exits nonzero (with a diagnostic) on any failure; CI uploads the
journals and traces as artifacts in that case.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

PORT = 9105
URL = f"http://127.0.0.1:{PORT}"
JOURNAL = "ci_smoke.journal"
METRICS = "ci_smoke.jsonl"
TRACE = "ci_smoke.trace.json"
SLO = "coverage>=0.5,delivery_p99_windows<=4,drift_score<=2"

SHARD_PORT = 9106
SHARD_URL = f"http://127.0.0.1:{SHARD_PORT}"
SHARD_JOURNAL = "ci_smoke_shards.journal"
SHARD_TRACE = "ci_smoke_shards.trace.json"

SIMULATE_SHARDED = [
    sys.executable, "-m", "repro", "simulate",
    "--height", "10", "--packets", "120000", "--windows", "6",
    "--monitors", "4", "--budget", "60",
    "--shards", "2",
    "--journal", SHARD_JOURNAL,
    "--serve-metrics", f"127.0.0.1:{SHARD_PORT}",
    "--serve-linger", "10",
]

#: Families the sharded leg must see carrying a ``shard=`` label —
#: per-monitor build accounting merged back from the workers plus the
#: worker resource profile.
SHARD_FAMILIES = ("monitor_windows", "monitor_tuples", "proc_cpu_user_seconds")

SIMULATE = [
    sys.executable, "-m", "repro", "simulate",
    "--height", "12", "--packets", "400000", "--windows", "8",
    "--monitors", "4", "--budget", "60",
    "--faults", "drop=0.1,dup=0.05,delay=0.1,crash=0.02,seed=7",
    "--stale-policy", "rescale",
    "--journal", JOURNAL,
    "--metrics", METRICS, "--metrics-interval", "0.2",
    "--serve-metrics", f"127.0.0.1:{PORT}",
    "--serve-linger", "10",
    "--trace", "--slo", SLO,
]

QUALITY_GAUGES = (
    "quality_coverage",
    "quality_spill_fraction",
    "quality_drift_score",
    "quality_occupancy_entropy",
)

SAMPLE_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*(\{[a-zA-Z0-9_]+="(?:\\.|[^"\\])*"'
    r'(,[a-zA-Z0-9_]+="(?:\\.|[^"\\])*")*\})? -?\S+$'
)


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_exposition(text: str) -> None:
    """Every line must be a comment or a well-formed sample; headers
    exactly once per family, before the family's samples."""
    typed = {}
    sampled = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            fail(f"metrics line {lineno}: empty line in exposition")
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            name, kind = parts[2], parts[3]
            if name in typed:
                fail(f"metrics line {lineno}: duplicate # TYPE {name}")
            if name in sampled:
                fail(f"metrics line {lineno}: # TYPE {name} after samples")
            if kind not in ("counter", "gauge", "histogram"):
                fail(f"metrics line {lineno}: bad TYPE kind {kind!r}")
            typed[name] = kind
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("#"):
            fail(f"metrics line {lineno}: unknown comment {line!r}")
            continue
        if not SAMPLE_RE.match(line):
            fail(f"metrics line {lineno}: unparseable sample {line!r}")
        sampled.add(line.split("{", 1)[0].split(" ", 1)[0])
    for name in QUALITY_GAUGES:
        if typed.get(name) != "gauge":
            fail(f"quality gauge {name} missing or not a gauge")


def get(path: str, timeout: float = 2.0, base: str = URL) -> str:
    with urllib.request.urlopen(f"{base}{path}", timeout=timeout) as resp:
        return resp.read().decode("utf-8")


def main() -> int:
    proc = subprocess.Popen(
        SIMULATE, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
    )
    scraped = None
    series_len = 0
    try:
        deadline = time.time() + 120
        while time.time() < deadline:
            if proc.poll() is not None:
                early_out, early_err = proc.communicate()
                print(
                    "FAIL: simulate exited before /metrics showed "
                    f"quality gauges (rc={proc.returncode})\n"
                    f"--- stdout\n{early_out}\n--- stderr\n{early_err}",
                    file=sys.stderr,
                )
                return 1
            try:
                text = get("/metrics")
            except (urllib.error.URLError, OSError):
                time.sleep(0.05)
                continue
            if all(f"# TYPE {g} gauge" in text for g in QUALITY_GAUGES):
                scraped = text
                break
            time.sleep(0.05)
        if scraped is None:
            fail("timed out waiting for quality gauges on /metrics")
        validate_exposition(scraped)
        print(
            f"scraped /metrics mid-run: {len(scraped.splitlines())} lines, "
            "exposition valid, quality gauges present"
        )
        series = json.loads(get("/series.json"))
        series_len = len(series)
        if not series:
            fail("/series.json empty while windows were decoding")
        rec = series[-1]
        for key in ("window", "ts", "counters", "gauges"):
            if key not in rec:
                fail(f"series record missing {key!r}: {rec}")
        print(f"/series.json: {series_len} per-window records")
        alerts = json.loads(get("/alerts.json"))
        for key in ("rules", "active", "alerts", "windows_evaluated"):
            if key not in alerts:
                fail(f"/alerts.json missing {key!r}: {alerts}")
        if alerts["rules"] != SLO.split(","):
            fail(f"/alerts.json rules do not match --slo: {alerts['rules']}")
        print(
            f"/alerts.json: {len(alerts['rules'])} rules, "
            f"{len(alerts['active'])} firing mid-run"
        )
        out, err = proc.communicate(timeout=180)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()
        fail("simulate did not exit in time")
    except BaseException:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
        raise
    if proc.returncode != 0:
        fail(f"simulate failed (rc={proc.returncode})\n{err}")
    live_summary = out

    replay = subprocess.run(
        [sys.executable, "-m", "repro", "replay", JOURNAL],
        capture_output=True, text=True,
    )
    if replay.returncode != 0:
        fail(f"replay failed (rc={replay.returncode})\n{replay.stderr}")
    if replay.stdout != live_summary:
        fail(
            "replayed summary differs from the live run\n"
            f"--- live\n{live_summary}\n--- replayed\n{replay.stdout}"
        )
    print("replay reproduced the live run summary byte-for-byte")

    trace = subprocess.run(
        [sys.executable, "-m", "repro", "trace", JOURNAL, "-o", TRACE],
        capture_output=True, text=True,
    )
    if trace.returncode != 0:
        fail(f"trace export failed (rc={trace.returncode})\n{trace.stderr}")
    if trace.stderr:
        fail(f"trace export warned:\n{trace.stderr}")
    with open(TRACE) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace document has no traceEvents")
    tails = [e["id"] for e in events if e.get("ph") == "s"]
    heads = [e["id"] for e in events if e.get("ph") == "f"]
    if not tails:
        fail("trace document has no delivery flows despite --trace")
    if sorted(tails) != sorted(heads):
        fail(
            f"unpaired delivery flows: {len(tails)} starts vs "
            f"{len(heads)} finishes"
        )
    print(
        f"trace export valid: {len(events)} events, "
        f"{len(tails)} delivery flows all paired"
    )
    rc = sharded_leg()
    if rc != 0:
        return rc
    print("metrics smoke OK")
    return 0


def sharded_leg() -> int:
    """Smoke the cross-process telemetry fan-in with ``--shards 2``."""
    proc = subprocess.Popen(
        SIMULATE_SHARDED,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    scraped = None
    try:
        deadline = time.time() + 120
        while time.time() < deadline:
            if proc.poll() is not None:
                early_out, early_err = proc.communicate()
                print(
                    "FAIL: sharded simulate exited before /metrics showed "
                    f"shard-labelled families (rc={proc.returncode})\n"
                    f"--- stdout\n{early_out}\n--- stderr\n{early_err}",
                    file=sys.stderr,
                )
                return 1
            try:
                text = get("/metrics", base=SHARD_URL)
            except (urllib.error.URLError, OSError):
                time.sleep(0.05)
                continue
            if all(
                f'{family}{{' in text and 'shard="' in text
                for family in SHARD_FAMILIES
            ) and all(
                'shard="' in line
                for line in text.splitlines()
                if line.startswith(SHARD_FAMILIES[0] + "{")
            ) and all(
                f"# TYPE {g} gauge" in text for g in QUALITY_GAUGES
            ):
                scraped = text
                break
            time.sleep(0.05)
        if scraped is None:
            fail("timed out waiting for shard-labelled families on /metrics")
        validate_exposition(scraped)
        shard_lines = [ln for ln in scraped.splitlines() if 'shard="' in ln]
        print(
            f"sharded /metrics mid-run: {len(shard_lines)} shard-labelled "
            "samples, exposition valid"
        )
        shards_doc = json.loads(get("/shards.json", base=SHARD_URL))
        for key in ("shards", "tenants"):
            if key not in shards_doc:
                fail(f"/shards.json missing {key!r}: {shards_doc}")
        shard_ids = set(shards_doc["shards"])
        for wanted in ("0", "1"):
            if wanted not in shard_ids:
                fail(
                    f"/shards.json missing worker shard {wanted!r}: "
                    f"{sorted(shard_ids)}"
                )
        for shard, rollup in shards_doc["shards"].items():
            if not isinstance(rollup, dict) or not rollup:
                fail(f"/shards.json shard {shard!r} rollup empty: {rollup}")
        print(f"/shards.json: per-shard rollups for {sorted(shard_ids)}")
        out, err = proc.communicate(timeout=180)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()
        fail("sharded simulate did not exit in time")
    except BaseException:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
        raise
    if proc.returncode != 0:
        fail(f"sharded simulate failed (rc={proc.returncode})\n{err}")

    replay = subprocess.run(
        [sys.executable, "-m", "repro", "replay", SHARD_JOURNAL],
        capture_output=True, text=True,
    )
    if replay.returncode != 0:
        fail(
            f"sharded replay failed (rc={replay.returncode})\n"
            f"{replay.stderr}"
        )
    if replay.stdout != out:
        fail(
            "sharded replay differs from the live run\n"
            f"--- live\n{out}\n--- replayed\n{replay.stdout}"
        )
    print("sharded replay reproduced the live run summary byte-for-byte")

    trace = subprocess.run(
        [sys.executable, "-m", "repro", "trace", SHARD_JOURNAL,
         "-o", SHARD_TRACE],
        capture_output=True, text=True,
    )
    if trace.returncode != 0:
        fail(f"sharded trace export failed (rc={trace.returncode})\n"
             f"{trace.stderr}")
    if trace.stderr:
        fail(f"sharded trace export warned:\n{trace.stderr}")
    with open(SHARD_TRACE) as f:
        doc = json.load(f)
    if doc.get("otherData", {}).get("shards") != [0, 1]:
        fail(f"trace otherData.shards != [0, 1]: {doc.get('otherData')}")
    thread_names = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    for wanted in ("shard-0", "shard-1"):
        if wanted not in thread_names:
            fail(f"trace missing worker track {wanted!r}: {thread_names}")
    prefetch = [
        e for e in doc["traceEvents"]
        if e.get("ph") == "X"
        and str(e.get("name", "")).startswith("prefetch ")
    ]
    if not prefetch:
        fail("trace has no worker prefetch slices on the shard tracks")
    if any(e.get("dur", 0) <= 0 for e in prefetch):
        fail("worker prefetch slice with non-positive duration")
    tails = [e["id"] for e in doc["traceEvents"] if e.get("ph") == "s"]
    heads = [e["id"] for e in doc["traceEvents"] if e.get("ph") == "f"]
    if sorted(tails) != sorted(heads):
        fail(
            f"sharded trace unpaired delivery flows: {len(tails)} starts "
            f"vs {len(heads)} finishes"
        )
    print(
        f"sharded trace valid: tracks for shards 0/1, "
        f"{len(prefetch)} prefetch slices with measured durations"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
