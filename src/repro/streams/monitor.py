"""The remote Monitor (paper Figure 1, left).

A Monitor holds the current partitioning function pushed to it by the
Control Center, partitions each window of identifiers it observes into
per-bucket aggregates, and emits the resulting histogram.  Its
resources are assumed limited: partitioning one identifier is a single
O(height) prefix lookup and the state kept per window is one counter
per (nonzero) bucket.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..core.partition import Histogram, PartitioningFunction
from ..obs import get_registry

__all__ = ["HistogramMessage", "Monitor"]


@dataclass(frozen=True)
class HistogramMessage:
    """One Monitor-to-Control-Center message: a window's histogram."""

    monitor: str
    window_index: int
    histogram: Histogram
    function_version: int

    def size_bytes(self, domain, counter_bits: int = 32) -> int:
        # window index + version header, then the histogram payload.
        return 8 + self.histogram.size_bytes(domain, counter_bits)


class Monitor:
    """A remote observation point partitioning its identifier stream."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.function: Optional[PartitioningFunction] = None
        self.function_version = -1
        self.windows_processed = 0
        self.tuples_processed = 0
        self.crashes = 0

    def install_function(
        self, function: PartitioningFunction, version: int
    ) -> None:
        """Accept a (new) partitioning function from the Control
        Center."""
        self.function = function
        self.function_version = version

    def crash(self) -> None:
        """Crash-and-restart: volatile state (the installed function)
        is lost; the lifetime statistics survive (they model persistent
        logs).  The Monitor cannot report again until the Control
        Center's install scheduler gets a function back onto it."""
        self.function = None
        self.function_version = -1
        self.crashes += 1

    def process_window(
        self,
        window_index: int,
        uids: Sequence[int],
        values: Optional[Sequence[float]] = None,
    ) -> HistogramMessage:
        """Partition one window of identifiers into a histogram.

        Pass a per-tuple ``values`` vector to aggregate sum(value)
        instead of count(*) — e.g. bytes per packet.
        """
        if self.function is None:
            raise RuntimeError(
                f"monitor {self.name!r} has no partitioning function installed"
            )
        uids = np.asarray(uids, dtype=np.int64)
        registry = get_registry()
        with registry.timer(
            "monitor.partition.duration", monitor=self.name
        ).time():
            histogram = self.function.build_histogram(uids, values=values)
        self.windows_processed += 1
        self.tuples_processed += int(uids.size)
        if registry.enabled:
            registry.counter("monitor.windows", monitor=self.name).inc()
            registry.counter("monitor.tuples", monitor=self.name).inc(
                int(uids.size)
            )
            registry.histogram("monitor.window.nonzero_buckets").observe(
                len(histogram)
            )
        return HistogramMessage(
            monitor=self.name,
            window_index=window_index,
            histogram=histogram,
            function_version=self.function_version,
        )
