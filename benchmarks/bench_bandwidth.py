"""Ablation A5: end-to-end bandwidth vs. accuracy, v1 vs v2 wire.

Runs the full monitoring pipeline — train a partitioning function on
history, stream live windows through Monitors, reconstruct at the
Control Center — once per wire format on identical traffic, and
records accuracy against bytes shipped, compared with shipping raw
identifiers.  Two claims are checked at every grid point, not just
reported:

* the estimates are **bit-identical** across wire formats (the format
  changes the bytes on the link, never the answer);
* the v2 payloads (delta-encoded node ids, self-describing narrow
  counters) are never larger than v1's modelled fixed-width pairs.

Results land in ``BENCH_bandwidth.json`` at the repo root so wire PRs
have a recorded size trajectory.

Usage::

    python benchmarks/bench_bandwidth.py               # full grid
    python benchmarks/bench_bandwidth.py --grid tiny   # CI smoke grid
    python benchmarks/bench_bandwidth.py --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, List, Optional

from repro import UIDDomain, get_metric
from repro.data import TrafficModel, generate_subnet_table
from repro.data.traffic import generate_timestamped_trace
from repro.streams import MonitoringSystem, Trace

SCHEMA = "repro.bench_bandwidth.v2"

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir,
    "BENCH_bandwidth.json",
)

#: (height, packets, duration_s, window_width_s, budgets) grid rows.
FULL_SIZES = [
    (12, 200_000, 40.0, 5.0, [10, 50, 200]),
    (16, 600_000, 60.0, 10.0, [10, 50, 200]),
]
TINY_SIZES = [(10, 40_000, 20.0, 5.0, [10, 40])]

WIRE_FORMATS = ("v1", "v2")


def _traces(height: int, packets: int, duration: float):
    dom = UIDDomain(height)
    table = generate_subnet_table(dom, seed=61)
    ts, uids = generate_timestamped_trace(
        table, packets, duration=duration, seed=62, model=TrafficModel()
    )
    trace = Trace(ts, uids)
    half = duration / 2
    return table, trace.slice_time(0, half), trace.slice_time(half, duration)


def _run(table, history, live, budget: int, width: float, wire: str):
    system = MonitoringSystem(
        table, get_metric("rms"), num_monitors=4,
        algorithm="lpm_greedy", budget=budget, wire_format=wire,
    )
    system.train(history)
    t0 = time.perf_counter()
    report = system.run(live, window_width=width)
    return report, time.perf_counter() - t0


def run_grid(grid: str) -> Dict[str, object]:
    sizes = TINY_SIZES if grid == "tiny" else FULL_SIZES
    points: List[Dict[str, object]] = []
    for height, packets, duration, width, budgets in sizes:
        table, history, live = _traces(height, packets, duration)
        for budget in budgets:
            reports = {}
            seconds = {}
            for wire in WIRE_FORMATS:
                reports[wire], seconds[wire] = _run(
                    table, history, live, budget, width, wire
                )
            v1, v2 = reports["v1"], reports["v2"]
            errors_v1 = [w.error for w in v1.windows]
            errors_v2 = [w.error for w in v2.windows]
            # Hard checks, not just recorded numbers: identical answers,
            # never-larger payloads.
            assert errors_v1 == errors_v2, (
                f"wire format changed the estimates at h={height} "
                f"budget={budget}"
            )
            assert v2.upstream_bytes <= v1.upstream_bytes, (
                f"v2 payloads larger than v1 at h={height} "
                f"budget={budget}: {v2.upstream_bytes} > "
                f"{v1.upstream_bytes}"
            )
            assert v1.compression_ratio > 1.0
            saving = (
                v2.upstream_bytes / v1.upstream_bytes
                if v1.upstream_bytes
                else 1.0
            )
            point = {
                "workload": {
                    "height": height,
                    "packets": packets,
                    "duration_s": duration,
                    "window_width_s": width,
                    "monitors": 4,
                    "algorithm": "lpm_greedy",
                },
                "budget": budget,
                "windows": len(v1.windows),
                "mean_error": v1.mean_error,
                "errors_bit_identical": errors_v1 == errors_v2,
                "raw_bytes": v1.raw_bytes,
                "function_bytes": v1.function_bytes,
                "upstream_bytes": {
                    "v1": v1.upstream_bytes,
                    "v2": v2.upstream_bytes,
                },
                "v2_over_v1_bytes": round(saving, 4),
                "compression_ratio": {
                    "v1": round(v1.compression_ratio, 2),
                    "v2": round(v2.compression_ratio, 2),
                },
                "seconds": {
                    k: round(v, 6) for k, v in seconds.items()
                },
            }
            points.append(point)
            print(
                f"h={height} budget={budget}: error={v1.mean_error:.4f} "
                f"v1={v1.upstream_bytes}B v2={v2.upstream_bytes}B "
                f"({(1 - saving) * 100:.1f}% smaller, "
                f"compression {point['compression_ratio']['v1']}x -> "
                f"{point['compression_ratio']['v2']}x)"
            )
    ratios = [p["v2_over_v1_bytes"] for p in points]
    return {
        "schema": SCHEMA,
        "generated_by": "benchmarks/bench_bandwidth.py",
        "grid": grid,
        "wire_formats": list(WIRE_FORMATS),
        "points": points,
        "summary": {
            "grid_points": len(points),
            "all_errors_bit_identical": all(
                p["errors_bit_identical"] for p in points
            ),
            "v2_never_larger": all(r <= 1.0 for r in ratios),
            "best_v2_over_v1_bytes": min(ratios),
            "worst_v2_over_v1_bytes": max(ratios),
        },
    }


def write_report(doc: Dict[str, object], out: str) -> str:
    with open(out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--grid", choices=("tiny", "full"), default="full",
        help="workload grid: 'tiny' is the CI smoke grid",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help="output JSON path (default: repo-root BENCH_bandwidth.json)",
    )
    args = parser.parse_args(argv)
    doc = run_grid(args.grid)
    path = write_report(doc, args.out)
    print(f"wrote {os.path.abspath(path)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
