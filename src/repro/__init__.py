"""repro — Compact Histograms for Hierarchical Identifiers.

A full reproduction of Reiss, Garofalakis & Hellerstein, *Compact
Histograms for Hierarchical Identifiers*, VLDB 2006: histogram
partitioning functions over hierarchies of unique identifiers
(nonoverlapping, overlapping and longest-prefix-match), optimized for
any distributive error metric, together with the distributed stream
monitoring substrate they were designed for.

Quickstart
----------
>>> import numpy as np
>>> from repro import (UIDDomain, GroupTable, PrunedHierarchy,
...                    get_metric, build_overlapping, evaluate_function)
>>> dom = UIDDomain(8)                       # 256 identifiers
>>> groups = [dom.node(4, p) for p in range(16)]   # 16 /4 "subnets"
>>> table = GroupTable(dom, groups)
>>> counts = np.zeros(16); counts[3] = 100.0; counts[10] = 5.0
>>> hierarchy = PrunedHierarchy(table, counts)
>>> result = build_overlapping(hierarchy, get_metric("rms"), budget=4)
>>> fn = result.function_at(4)
>>> evaluate_function(table, counts, fn, get_metric("rms")) == result.error_at(4)
True
"""

from .core import (
    ROOT,
    AverageError,
    AverageRelativeError,
    Bucket,
    CompiledEstimator,
    CompiledPartitioner,
    DistributiveErrorMetric,
    GroupTable,
    Histogram,
    LongestPrefixMatchPartitioning,
    MaximumRelativeError,
    NonoverlappingPartitioning,
    OverlappingPartitioning,
    PartitioningFunction,
    PenaltyMetric,
    PNode,
    PrunedHierarchy,
    RMSError,
    UIDDomain,
    assign_groups_to_buckets,
    available_metrics,
    evaluate_function,
    get_metric,
    histogram_from_group_counts,
    net_group_populations,
    reconstruct_estimates,
    register_metric,
)
from .algorithms import (
    ConstructionResult,
    OverlappingDP,
    build_lpm_greedy,
    build_nonoverlapping,
    build_overlapping,
)
from .obs import (
    MetricsRegistry,
    get_registry,
    set_registry,
    span,
    use_registry,
    write_metrics,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # domain & tables
    "ROOT",
    "UIDDomain",
    "GroupTable",
    "PNode",
    "PrunedHierarchy",
    # metrics
    "DistributiveErrorMetric",
    "PenaltyMetric",
    "RMSError",
    "AverageError",
    "AverageRelativeError",
    "MaximumRelativeError",
    "get_metric",
    "register_metric",
    "available_metrics",
    # partitioning functions
    "Bucket",
    "Histogram",
    "PartitioningFunction",
    "NonoverlappingPartitioning",
    "OverlappingPartitioning",
    "LongestPrefixMatchPartitioning",
    # estimation
    "CompiledPartitioner",
    "CompiledEstimator",
    "assign_groups_to_buckets",
    "histogram_from_group_counts",
    "reconstruct_estimates",
    "evaluate_function",
    "net_group_populations",
    # construction
    "ConstructionResult",
    "build_nonoverlapping",
    "build_overlapping",
    "OverlappingDP",
    "build_lpm_greedy",
    # observability
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "span",
    "write_metrics",
]
