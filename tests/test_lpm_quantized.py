"""Tests for the quantized LPM heuristic (Section 3.2.7)."""

import numpy as np
import pytest

from repro import (
    LongestPrefixMatchPartitioning,
    PrunedHierarchy,
    evaluate_function,
    get_metric,
)
from repro.algorithms import build_lpm_quantized, exhaustive_lpm
from repro.algorithms.lpm_quantized import Quantizer

from helpers import random_instance


class TestQuantizer:
    def test_zero_cell(self):
        q = Quantizer(0.5)
        assert q.cell(0.0) == Quantizer.ZERO_CELL
        assert q.rep(Quantizer.ZERO_CELL) == 0.0
        assert q.quantize(0.0) == 0.0
        # sub-unit values get their own (negative-exponent) cells
        assert q.cell(0.3) != Quantizer.ZERO_CELL

    def test_representative_within_factor(self):
        q = Quantizer(0.5)
        for x in [0.3, 1.0, 7.0, 123.4, 9999.0]:
            assert q.quantize(x) == pytest.approx(x, rel=0.3)

    def test_finer_theta_is_closer(self):
        coarse, fine = Quantizer(1.0), Quantizer(0.01)
        x = 37.5
        assert abs(fine.quantize(x) - x) <= abs(coarse.quantize(x) - x)

    def test_bad_theta_rejected(self):
        with pytest.raises(ValueError):
            Quantizer(0.0)

    def test_density_cells_cover_range(self):
        q = Quantizer(0.5)
        cells = q.density_cells(0.1, 100.0)
        assert cells[0] == Quantizer.ZERO_CELL
        reps = [q.rep(c) for c in cells[1:]]
        assert min(reps) <= 0.11 and max(reps) >= 99.0 / 1.5


@pytest.mark.parametrize("seed", range(6))
@pytest.mark.parametrize("mname", ["rms", "average", "avg_relative"])
def test_produces_valid_lpm_function(seed, mname):
    _dom, table, counts = random_instance(seed)
    metric = get_metric(mname)
    h = PrunedHierarchy(table, counts)
    res = build_lpm_quantized(h, metric, 4, theta=0.5, beam=8)
    fn = res.function_at(4)
    assert isinstance(fn, LongestPrefixMatchPartitioning)
    assert fn.num_buckets <= 4


@pytest.mark.parametrize("seed", range(6))
def test_curve_is_measured_error(seed):
    _dom, table, counts = random_instance(seed + 20)
    metric = get_metric("average")
    h = PrunedHierarchy(table, counts)
    res = build_lpm_quantized(h, metric, 4, theta=0.5, beam=8)
    fn = res.function_at(4)
    measured = evaluate_function(table, counts, fn, metric)
    assert measured == pytest.approx(res.error_at(4), abs=1e-9)


@pytest.mark.parametrize("seed", range(6))
def test_never_beats_optimum(seed):
    _dom, table, counts = random_instance(seed + 80)
    metric = get_metric("average")
    h = PrunedHierarchy(table, counts)
    budget = 3
    res = build_lpm_quantized(h, metric, budget, theta=0.3, beam=12)
    optimum, _ = exhaustive_lpm(table, counts, metric, budget, sparse=True)
    assert res.error_at(budget) >= optimum - 1e-9


@pytest.mark.parametrize("seed", range(5))
def test_fine_grid_near_optimal(seed):
    """With a fine grid and wide beam on tiny instances, quantization
    loss should (almost always) vanish."""
    _dom, table, counts = random_instance(
        seed, height_range=(3, 4), max_count=16
    )
    metric = get_metric("average")
    h = PrunedHierarchy(table, counts)
    budget = 3
    res = build_lpm_quantized(h, metric, budget, theta=0.05, beam=24)
    optimum, _ = exhaustive_lpm(table, counts, metric, budget, sparse=True)
    if optimum == 0:
        assert res.error_at(budget) <= 1e-9
    else:
        assert res.error_at(budget) <= optimum * 1.5 + 1e-9


def test_coarser_theta_trades_accuracy(small_hierarchy):
    """Both granularities must be valid; the finer one can't be worse
    on this deterministic instance (both evaluated honestly)."""
    metric = get_metric("average")
    fine = build_lpm_quantized(small_hierarchy, metric, 4, theta=0.1, beam=16)
    coarse = build_lpm_quantized(small_hierarchy, metric, 4, theta=2.0, beam=4)
    assert np.isfinite(fine.error_at(4))
    assert np.isfinite(coarse.error_at(4))


def test_bad_budget_rejected(small_hierarchy):
    with pytest.raises(ValueError):
        build_lpm_quantized(small_hierarchy, get_metric("rms"), 0)


def test_all_zero_window(small_instance):
    _dom, table, _counts = small_instance
    h = PrunedHierarchy(table, np.zeros(len(table)))
    res = build_lpm_quantized(h, get_metric("rms"), 2)
    assert res.error_at(2) == pytest.approx(0.0)
