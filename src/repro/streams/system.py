"""End-to-end monitoring system simulation (paper Figure 1).

Wires together the full pipeline on a single machine:

1. the Control Center builds a partitioning function from the history
   portion of a trace and installs it on every Monitor (downstream
   bytes are accounted);
2. the trace's remainder is split across the Monitors; for each
   tumbling window every Monitor ships its histogram (upstream bytes);
3. the Control Center merges, decodes and scores each window against
   the exact grouped aggregation.

The link between the two sides is not assumed perfect.  Passing a
:class:`~.faults.FaultModel` makes the channel drop, duplicate, delay
and reorder histograms, lose function installs, and crash Monitors;
the pipeline then runs its recovery story — install retries with
capped exponential backoff, decode-side deduplication, stale-version
quarantine/rescale — and every :class:`WindowReport` carries the
degradation accounting (``monitors_reporting``, ``duplicates_dropped``,
``stale_messages``, ``late_messages``).

Delivery semantics are explicit rather than implicitly exactly-once:

* upstream histograms are at-least-zero-times (drop) and
  at-least-once under duplication — the Control Center dedups by
  ``(monitor, window_index, function_version)``;
* the decode watermark is one window: window ``w`` is decoded at tick
  ``w`` from the copies that arrived by then; late copies are counted
  (``late_messages``) and discarded;
* a window whose histograms were *all* lost is still **reported** — as
  a fully degraded window with ``monitors_reporting == 0`` and
  all-zero estimates — never silently skipped.  The only skipped tick
  is one where no Monitor even had a window slot, which cannot happen
  with tumbling windows over the longest share (the guard is explicit
  anyway);
* downstream installs are at-least-once: version-stamped, idempotent,
  retried by the :class:`~.faults.InstallScheduler` until acked.

The output is a list of per-window reports plus channel totals — the
accuracy-per-bit story of the paper, measured rather than asserted.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import PenaltyMetric
from ..core.groups import GroupTable
from ..core.wire import WIRE_FORMATS
from ..obs import (
    Alert,
    emit_window_record,
    get_journal,
    get_registry,
    get_slo_engine,
    get_tracer,
    span,
)
from ..obs.slo import quantile
from .channel import Channel
from .control_center import ControlCenter, DecodedWindow
from .faults import Delivery, FaultModel, InstallScheduler
from .monitor import Monitor
from .query import exact_group_counts
from .tuples import Trace
from .windows import TumblingWindows

__all__ = ["WindowReport", "SystemReport", "MonitoringSystem"]

#: Sentinel distinguishing "no faults passed to run()" from an explicit
#: ``faults=None`` override of the system-level default.
_UNSET = object()


@dataclass(frozen=True)
class WindowReport:
    """Accuracy, cost and degradation accounting for one decoded
    window."""

    window_index: int
    tuples: int
    error: float
    histogram_bytes: int
    raw_bytes: int
    nonzero_buckets: int
    #: Distinct monitors whose histograms reached this window's decode.
    monitors_reporting: int = 0
    #: Redundant deliveries discarded by decode-side deduplication.
    duplicates_dropped: int = 0
    #: Deliveries quarantined for carrying a stale function version.
    stale_messages: int = 0
    #: Deliveries that arrived after their window's decode watermark.
    late_messages: int = 0
    #: Online quality signals (see :mod:`repro.obs.quality`), filled
    #: when metrics or the event journal were live during the run;
    #: ``0.0`` otherwise.
    coverage: float = 0.0
    spill_fraction: float = 0.0
    occupancy_entropy: float = 0.0
    occupancy_skew: float = 0.0
    drift_score: float = 0.0


@dataclass
class SystemReport:
    """Aggregate outcome of a monitoring run."""

    windows: List[WindowReport] = field(default_factory=list)
    function_bytes: int = 0
    upstream_bytes: int = 0
    raw_bytes: int = 0
    #: Monitor crash-and-restart events during the run.
    monitor_crashes: int = 0
    #: Deliveries still in flight when the run ended (delayed past the
    #: last window; never decoded).
    expired_messages: int = 0
    #: SLO alert history (empty unless an
    #: :class:`~repro.obs.slo.SLOEngine` was scoped during the run;
    #: rebuilt bit-identically from the journal by ``repro replay``).
    alerts: List[Alert] = field(default_factory=list)

    @property
    def mean_error(self) -> float:
        if not self.windows:
            return 0.0
        return float(np.mean([w.error for w in self.windows]))

    @property
    def compression_ratio(self) -> float:
        """Raw-stream bytes over histogram bytes (higher is better).

        ``0.0`` when nothing was sent — an idle system compressed
        nothing, and ``0.0`` keeps downstream arithmetic finite."""
        sent = self.upstream_bytes + self.function_bytes
        return self.raw_bytes / sent if sent else 0.0


class MonitoringSystem:
    """A Control Center plus a fleet of Monitors over one channel."""

    #: Control-center implementation to instantiate — subclasses swap
    #: in specialized decoders (the serving layer's fan-in center).
    control_center_class = ControlCenter

    def __init__(
        self,
        table: GroupTable,
        metric: PenaltyMetric,
        num_monitors: int = 4,
        algorithm: str = "lpm_greedy",
        budget: int = 100,
        cache_size: int = 8,
        stale_policy: str = "strict",
        incremental: bool = False,
        faults: Optional[FaultModel] = None,
        max_install_attempts: int = 64,
        parallel: int = 1,
        wire_format: str = "v2",
        shared_cache=None,
        **builder_options,
    ) -> None:
        if num_monitors < 1:
            raise ValueError(f"need at least one monitor, got {num_monitors}")
        if wire_format not in WIRE_FORMATS:
            raise ValueError(
                f"wire_format must be one of {WIRE_FORMATS}, "
                f"got {wire_format!r}"
            )
        if max_install_attempts < 1:
            raise ValueError(
                f"max_install_attempts must be >= 1, got "
                f"{max_install_attempts}"
            )
        if parallel < 1:
            raise ValueError(f"parallel must be >= 1, got {parallel}")
        self.table = table
        self.metric = metric
        self.control_center = self.control_center_class(
            table, metric, algorithm=algorithm, budget=budget,
            cache_size=cache_size, stale_policy=stale_policy,
            incremental=incremental, shared_cache=shared_cache,
            **builder_options,
        )
        #: Histogram wire format Monitors speak (``"v2"``, the default,
        #: ships the queryable self-describing encoding from
        #: :mod:`repro.core.wire`; ``"v1"`` keeps the modelled
        #: (node, fixed-width counter) accounting of the seed era).
        self.wire_format = wire_format
        self.monitors = [
            Monitor(f"monitor-{i}", wire_format=wire_format)
            for i in range(num_monitors)
        ]
        self.faults = faults
        self.channel = Channel(table.domain, faults=faults)
        self.max_install_attempts = max_install_attempts
        #: Worker threads partitioning monitor windows concurrently
        #: (1 = the serial loop).  Results are identical either way:
        #: partitioning is pure per-monitor work, and the fault RNG
        #: draws stay in the serial per-monitor order (decisions are
        #: drawn before the pool runs; see ``FaultModel.plan_decisions``).
        self.parallel = parallel

    def train(self, history: Trace) -> None:
        """Build the partitioning function from past traffic and push it
        to every Monitor.

        Installs go over the (possibly faulty) channel; training blocks
        until every Monitor holds the function, retrying lost installs
        up to ``max_install_attempts`` times per Monitor — every
        attempt is a charged wire transmission.
        """
        counts = exact_group_counts(
            self.table, history.uids, values=history.values
        )
        function = self.control_center.rebuild_function(counts)
        version = self.control_center.function_version
        journal = get_journal()
        for monitor in self.monitors:
            for attempt in range(1, self.max_install_attempts + 1):
                acked = self.channel.send_function(function, version=version)
                if journal.enabled:
                    # window -1 marks the training phase (before any
                    # live window existed).
                    journal.emit(
                        "install",
                        window=-1,
                        monitor=monitor.name,
                        version=version,
                        attempt=attempt,
                        retry=attempt > 1,
                        acked=acked,
                    )
                if acked:
                    monitor.install_function(function, version)
                    break
            else:
                raise RuntimeError(
                    f"could not install function on {monitor.name!r} in "
                    f"{self.max_install_attempts} attempts"
                )

    # -- the windowed pipeline ---------------------------------------------
    def _partition_jobs(self, pool, jobs):
        """Phase 2 of the window loop: turn the planned ``(monitor,
        window, fault-plan)`` jobs into outgoing histogram messages.

        Pure per-monitor work — no RNG draws, no channel writes — so
        subclasses may fan it out however they like (the thread pool
        here; shard worker processes in
        :class:`repro.serving.ShardedMonitoringSystem`) as long as the
        returned messages are bit-identical to the serial loop's.
        """
        if pool is not None and len(jobs) > 1:
            built = list(
                pool.map(
                    lambda job: job[0]._build(
                        np.asarray(job[1].uids, dtype=np.int64),
                        job[1].values,
                    ),
                    jobs,
                )
            )
            messages = []
            for (monitor, window, _), hist in zip(jobs, built):
                monitor._account(1, int(window.uids.size), (hist,))
                messages.append(monitor._message(window.index, hist))
            return messages
        return [
            monitor.process_window(
                window.index, window.uids, values=window.values
            )
            for monitor, window, _ in jobs
        ]

    def _segment_shares(
        self, live: Trace, window_width: float, split_seed: int
    ) -> List[list]:
        """Split the live trace across Monitors and segment each share
        into tumbling windows.  Deterministic (the split is seeded), so
        subclasses that already derived the same decomposition (the
        serving layer's prefetch pass) may return it instead."""
        shares = live.split(len(self.monitors), seed=split_seed)
        windows = TumblingWindows(window_width)
        return [list(windows.segment(share)) for share in shares]

    def _ground_truth(
        self, window: int, uids: np.ndarray, values: Optional[np.ndarray]
    ) -> np.ndarray:
        """Exact per-group aggregates for one window's full traffic.

        Subclass extension point: the serving layer precomputes the
        whole run's ground truth in one batched pass
        (:func:`~.query.exact_group_counts_batched`) and answers from
        the matrix — bit-identical to this per-window join."""
        return exact_group_counts(self.table, uids, values=values)

    def _after_window(
        self,
        window: int,
        decoded: DecodedWindow,
        actual: np.ndarray,
        report: SystemReport,
    ) -> None:
        """Hook run after each decoded window (subclass extension
        point: drift detection, recalibration, ...)."""

    def _window_signals(self, window: int) -> Dict[str, float]:
        """Extra named signals merged into the SLO engine's per-window
        observation (subclass extension point: the sharded serving
        layer contributes ``prefetch_miss_rate`` and
        ``shard_imbalance``).  Keys here shadow same-named
        :class:`WindowReport` fields, so pick fresh names."""
        return {}

    def _run_windows(
        self,
        live: Trace,
        window_width: float,
        split_seed: int,
        faults: Optional[FaultModel],
        report: SystemReport,
    ) -> SystemReport:
        if self.control_center.function is None:
            raise RuntimeError("call train() before run()")
        cc = self.control_center
        registry = get_registry()
        journal = get_journal()
        tracer = get_tracer()
        slo = get_slo_engine()
        if faults is not None:
            faults.reset()
        previous_faults = self.channel.faults
        self.channel.faults = faults
        installer = InstallScheduler()
        #: arrival tick -> deliveries landing there (delayed copies).
        in_flight: Dict[int, List[Delivery]] = {}
        # The pool is scoped to this run: created fresh, torn down in
        # the ``finally`` below with ``cancel_futures=True`` so a
        # mid-run exception (a poisoned window, a KeyboardInterrupt)
        # never leaks worker threads into the next ``run()`` call.
        pool = (
            ThreadPoolExecutor(
                max_workers=self.parallel,
                thread_name_prefix="repro-partition",
            )
            if self.parallel > 1
            else None
        )
        try:
            segmented = self._segment_shares(live, window_width, split_seed)
            n_windows = max((len(s) for s in segmented), default=0)
            if journal.enabled:
                faults_spec = (
                    {
                        name: getattr(faults, name)
                        for name in (
                            "drop", "duplicate", "reorder", "delay",
                            "max_delay_windows", "crash", "install_drop",
                            "seed",
                        )
                    }
                    if faults is not None
                    else None
                )
                journal.emit(
                    "run_start",
                    wall_start=journal.wall_start,
                    windows=n_windows,
                    monitors=len(self.monitors),
                    algorithm=cc.algorithm,
                    budget=cc.budget,
                    metric=getattr(self.metric, "name", "") or repr(self.metric),
                    stale_policy=cc.stale_policy,
                    parallel=self.parallel,
                    window_width=float(window_width),
                    split_seed=int(split_seed),
                    faults=faults_spec,
                )
            with span(
                "system.run", windows=n_windows, monitors=len(self.monitors),
            ):
                for w in range(n_windows):
                    # Control plane first: lagging Monitors (crashed, or
                    # missed an install) get a retry when their backoff
                    # expires.
                    installer.tick(w, cc, self.monitors, self.channel)
                    upstream_before = self.channel.upstream_bytes
                    arrivals: List[Delivery] = list(in_flight.pop(w, []))
                    window_uids = []
                    window_values = []
                    expected = 0
                    # Phase 1 (sequential): ground truth, crash checks
                    # and fault-plan draws, in monitor order — the RNG
                    # consumes decisions exactly as the serial loop did.
                    jobs: List[Tuple[Monitor, object, object]] = []
                    for monitor, segs in zip(self.monitors, segmented):
                        if w >= len(segs):
                            continue
                        window = segs[w]
                        # Ground truth covers the traffic that existed,
                        # whether or not its Monitor managed to report
                        # it — that is what degradation is measured
                        # against.
                        window_uids.append(window.uids)
                        if window.values is not None:
                            window_values.append(window.values)
                        expected += 1
                        if faults is not None and faults.crashes(
                            monitor.name, w
                        ):
                            monitor.crash()
                            report.monitor_crashes += 1
                            if registry.enabled:
                                registry.counter(
                                    "system.monitor.crashes"
                                ).inc()
                            if journal.enabled:
                                journal.emit(
                                    "fault.crash",
                                    window=w,
                                    monitor=monitor.name,
                                )
                            continue
                        if monitor.function is None:
                            # Down since a crash; rejoins once the
                            # install scheduler reaches it.
                            continue
                        plan = (
                            faults.plan_decisions()
                            if faults is not None
                            else None
                        )
                        jobs.append((monitor, window, plan))
                    # Phase 2: partition every reporting Monitor's
                    # window — pure per-monitor work, fanned out across
                    # the pool when one is configured.
                    messages = self._partition_jobs(pool, jobs)
                    # Phase 3 (sequential): sends in monitor order,
                    # applying the pre-drawn fault plans.
                    for (monitor, window, plan), msg in zip(jobs, messages):
                        for delivery in self.channel.send_histogram(
                            msg, plan=plan
                        ):
                            if delivery.delay == 0:
                                arrivals.append(delivery)
                            else:
                                in_flight.setdefault(
                                    w + delivery.delay, []
                                ).append(delivery)
                    if faults is not None:
                        faults.apply_reorder(arrivals)
                    hist_bytes = (
                        self.channel.upstream_bytes - upstream_before
                    )
                    on_time = [
                        d.message
                        for d in arrivals
                        if d.message.window_index == w
                    ]
                    late = len(arrivals) - len(on_time)
                    if late and registry.enabled:
                        registry.counter("system.messages.late").inc(late)
                    if tracer.enabled:
                        # Every copy arriving this tick is delivered;
                        # copies past their window's watermark close
                        # immediately as late (decode never sees them).
                        for d in arrivals:
                            m = d.message
                            tracer.delivered(
                                m.monitor, m.window_index,
                                m.function_version, d.copy, at_window=w,
                            )
                            if m.window_index != w:
                                tracer.close(
                                    m.monitor, m.window_index,
                                    m.function_version, "late",
                                    at_window=w, copy=d.copy,
                                )
                    if not window_uids:
                        # No Monitor had a window slot this tick; there
                        # is nothing to ground-truth against, so skip.
                        continue
                    uids = np.concatenate(window_uids)
                    vals = (
                        np.concatenate(window_values)
                        if len(window_values) == len(window_uids)
                        else None
                    )
                    actual = self._ground_truth(w, uids, vals)
                    decoded = cc.decode_window(
                        on_time, expected_monitors=expected
                    )
                    error = float(cc.error(decoded.estimates, actual))
                    raw = self.channel.raw_stream_bytes(int(uids.size))
                    quality = decoded.quality
                    window_report = WindowReport(
                        window_index=w,
                        tuples=int(uids.size),
                        error=error,
                        histogram_bytes=hist_bytes,
                        raw_bytes=raw,
                        nonzero_buckets=decoded.nonzero_buckets,
                        monitors_reporting=decoded.monitors_reporting,
                        duplicates_dropped=decoded.duplicates_dropped,
                        stale_messages=decoded.stale_messages,
                        late_messages=late,
                        coverage=decoded.coverage,
                        spill_fraction=(
                            quality.spill_fraction if quality else 0.0
                        ),
                        occupancy_entropy=(
                            quality.occupancy_entropy if quality else 0.0
                        ),
                        occupancy_skew=(
                            quality.occupancy_skew if quality else 0.0
                        ),
                        drift_score=(
                            quality.drift_score if quality else 0.0
                        ),
                    )
                    report.windows.append(window_report)
                    report.raw_bytes += raw
                    if journal.enabled:
                        # The decode event carries the full WindowReport
                        # so replay can rebuild it field-for-field.
                        journal.emit("decode", **asdict(window_report))
                    if registry.enabled:
                        registry.counter("system.windows").inc()
                        registry.counter("system.tuples").inc(int(uids.size))
                        registry.counter("system.raw.bytes").inc(raw)
                        registry.histogram("system.window.error").observe(
                            error
                        )
                        registry.histogram("system.window.bytes").observe(
                            hist_bytes
                        )
                        registry.histogram(
                            "system.window.nonzero_buckets"
                        ).observe(decoded.nonzero_buckets)
                        registry.histogram(
                            "system.window.monitors_reporting"
                        ).observe(decoded.monitors_reporting)
                    self._after_window(w, decoded, actual, report)
                    # One time-series point per decoded window:
                    # counters as deltas, gauges as levels, timers as
                    # per-window quantiles (no-op when disabled).
                    emit_window_record(registry, w)
                    # Delivered-close ages are per-window: drain them
                    # even without an SLO engine so a late-attached one
                    # never sees stale history.
                    ages = (
                        tracer.drain_window_ages()
                        if tracer.enabled
                        else []
                    )
                    if slo.enabled:
                        signals = {
                            name: float(value)
                            for name, value in asdict(
                                window_report
                            ).items()
                            if isinstance(value, (int, float))
                        }
                        if tracer.enabled:
                            signals["delivery_p50_windows"] = quantile(
                                ages, 0.50
                            )
                            signals["delivery_p90_windows"] = quantile(
                                ages, 0.90
                            )
                            signals["delivery_p99_windows"] = quantile(
                                ages, 0.99
                            )
                        signals.update(self._window_signals(w))
                        slo.observe(w, signals)
            report.expired_messages = sum(
                len(v) for v in in_flight.values()
            )
            if tracer.enabled:
                # Copies still in flight past the last window can never
                # decode — close their traces as expired.
                tracer.expire_open(n_windows)
            if report.expired_messages and registry.enabled:
                registry.counter("system.messages.expired").inc(
                    report.expired_messages
                )
        finally:
            self.channel.faults = previous_faults
            if pool is not None:
                pool.shutdown(wait=True, cancel_futures=True)
        report.upstream_bytes = self.channel.upstream_bytes
        report.function_bytes = self.channel.downstream_bytes
        if slo.enabled:
            report.alerts = slo.finish()
        if journal.enabled:
            journal.emit(
                "run_end",
                windows=len(report.windows),
                upstream_bytes=report.upstream_bytes,
                function_bytes=report.function_bytes,
                raw_bytes=report.raw_bytes,
                monitor_crashes=report.monitor_crashes,
                expired_messages=report.expired_messages,
            )
        if registry.enabled:
            registry.gauge("system.mean_error").set(report.mean_error)
            registry.gauge("system.compression_ratio").set(
                report.compression_ratio
            )
        return report

    def run(
        self,
        live: Trace,
        window_width: float,
        split_seed: int = 0,
        faults: object = _UNSET,
    ) -> SystemReport:
        """Stream the live trace through the system window by window.

        ``faults`` overrides the system-level fault model for this run
        (``None`` forces a clean link); by default the model given at
        construction applies.
        """
        active = self.faults if faults is _UNSET else faults
        return self._run_windows(
            live, window_width, split_seed, active, SystemReport()
        )
