"""Cross-process telemetry: codec round trips, merge laws, shard views.

The contract under test (see :mod:`repro.obs.crossproc`): a worker
snapshot survives the wire exactly; merging obeys the algebra the
parent relies on (counters commute and associate, gauges are
last-write-by-seq, pooled distribution buckets equal the buckets of
the pooled observations — so ``bucket_quantile`` over a merged timer
is exactly the pooled-observation quantile); re-sequenced worker
events keep ``repro replay`` byte-identical; and the derived serving
surfaces (``/shards.json``, ``repro top`` panes, Chrome trace shard
tracks) render the merged registry/journal faithfully.
"""

import io
import json
import urllib.request

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import UIDDomain, get_metric
from repro.data import TrafficModel, generate_subnet_table
from repro.data.traffic import generate_timestamped_trace
from repro.obs import (
    BufferJournal,
    EventJournal,
    MetricsRegistry,
    MetricsServer,
    NullRegistry,
    bucket_quantile,
    capture_worker_snapshot,
    chrome_trace,
    load_state,
    merge_snapshot,
    merge_worker_snapshots,
    parse_instrument_key,
    render_top,
    replay_worker_events,
    sample_resources,
    resource_delta,
    shard_tenant_summary,
    snapshot_from_wire,
    snapshot_to_wire,
    take_snapshot,
    unpaired_flows,
    use_journal,
    use_registry,
    worker_resource_events,
)
from repro.obs.snapshots import instrument_key
from repro.obs.top import state_from_journal
from repro.serving import ShardedMonitoringSystem
from repro.streams import MonitoringSystem, Trace
from repro.streams.replay import replay_system_report


@pytest.fixture(scope="module")
def workload():
    table = generate_subnet_table(UIDDomain(10), seed=2)
    ts, uids = generate_timestamped_trace(
        table, 6000, duration=40.0, seed=4,
        model=TrafficModel(active_fraction=0.15, zipf_exponent=1.2),
    )
    trace = Trace(ts, uids)
    return table, trace.slice_time(0, 20), trace.slice_time(20, 40)


def _sample_registry():
    reg = MetricsRegistry()
    reg.counter("monitor.tuples", monitor="m-0").inc(42)
    reg.counter("monitor.windows").inc(3)
    reg.gauge("quality.coverage", monitor="m-0").set(0.75)
    reg.timer("monitor.partition.duration", monitor="m-0").observe(0.004)
    reg.histogram("monitor.window.nonzero_buckets").observe(17)
    return reg


# -- series-key and snapshot codec ---------------------------------------


class TestCodec:
    def test_parse_inverts_instrument_key(self):
        labels = (("monitor", "m-1"), ("shard", "2"))
        key = instrument_key("monitor.tuples", labels)
        name, parsed = parse_instrument_key(key)
        assert name == "monitor.tuples"
        assert tuple(sorted(parsed.items())) == labels

    def test_parse_plain_name(self):
        assert parse_instrument_key("system.tuples") == (
            "system.tuples", {}
        )

    @pytest.mark.parametrize(
        "bad", ["name{unterminated", "name{noequals}", "name{=v}"]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_instrument_key(bad)

    def test_snapshot_round_trip(self):
        snap = take_snapshot(_sample_registry())
        wire = snapshot_to_wire(snap)
        # Strictly JSON-safe: survives dumps/loads unchanged.
        decoded = snapshot_from_wire(json.loads(json.dumps(wire)))
        assert decoded.counters == snap.counters
        assert decoded.gauges == snap.gauges
        assert decoded.timer_keys == snap.timer_keys
        assert decoded.histograms == snap.histograms

    def test_empty_distribution_extrema_survive(self):
        reg = MetricsRegistry()
        reg.histogram("empty")  # registered, never observed
        snap = take_snapshot(reg)
        wire = snapshot_to_wire(snap)
        assert wire["histograms"]["empty"]["min"] is None
        decoded = snapshot_from_wire(wire)
        state = decoded.histograms["empty"]
        assert state.min == float("inf")
        assert state.max == float("-inf")

    def test_malformed_wire_rejected(self):
        with pytest.raises(ValueError):
            snapshot_from_wire({"counters": {}})
        with pytest.raises(ValueError):
            merge_worker_snapshots(
                MetricsRegistry(), BufferJournal(), [{"v": 99}]
            )

    def test_capture_is_json_safe(self):
        reg = _sample_registry()
        buf = BufferJournal()
        buf.emit("batch", monitor="m-0", windows=4)
        doc = capture_worker_snapshot(reg, buf, shard=1, seq=7)
        assert doc == json.loads(json.dumps(doc))
        assert doc["v"] == 1 and doc["shard"] == 1 and doc["seq"] == 7
        assert len(doc["events"]) == 1


# -- merge algebra --------------------------------------------------------

_counter_maps = st.dictionaries(
    st.sampled_from(
        ["a", "a{monitor=m-0}", "a{monitor=m-1}", "b", "b{tenant=t}"]
    ),
    st.integers(min_value=0, max_value=10**6).map(float),
    max_size=5,
)


def _merge_counters(maps, labels=None):
    reg = MetricsRegistry()
    for counters in maps:
        merge_snapshot(
            reg,
            snapshot_from_wire({
                "ts": 0.0, "counters": counters, "gauges": {},
                "histograms": {}, "timers": [],
            }),
            extra_labels=labels,
        )
    return {
        instrument_key(inst.name, inst.labels): inst.value
        for kind, inst in reg.instruments()
        if kind == "counter"
    }


class TestMergeAlgebra:
    @settings(max_examples=60, deadline=None)
    @given(_counter_maps, _counter_maps)
    def test_counter_merge_commutative(self, m1, m2):
        assert _merge_counters([m1, m2]) == _merge_counters([m2, m1])

    @settings(max_examples=60, deadline=None)
    @given(_counter_maps, _counter_maps, _counter_maps)
    def test_counter_merge_associative(self, m1, m2, m3):
        one_by_one = _merge_counters([m1, m2, m3])
        pre = _merge_counters([m1, m2])
        combined = _merge_counters([pre, m3])
        assert combined == one_by_one

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # shard
                st.floats(
                    min_value=-1e6, max_value=1e6,
                    allow_nan=False, allow_infinity=False,
                ),
            ),
            min_size=1,
            max_size=8,
        )
    )
    def test_gauge_merge_last_write_by_seq(self, writes):
        reg = MetricsRegistry()
        docs = [
            {
                "v": 1, "shard": shard, "seq": seq,
                "snapshot": {
                    "ts": 0.0, "counters": {}, "gauges": {"g": value},
                    "histograms": {}, "timers": [],
                },
                "events": [],
            }
            for seq, (shard, value) in enumerate(writes)
        ]
        # Shuffle-resistant: merge sorts by (shard, seq), so per shard
        # the highest-seq write must win regardless of input order.
        merge_worker_snapshots(reg, BufferJournal(), reversed(docs))
        last = {}
        for seq, (shard, value) in enumerate(writes):
            last[shard] = value
        for shard, value in last.items():
            child = reg.get("gauge", "g", shard=str(shard))
            assert child is not None and child.value == value

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.floats(
                    min_value=0.0, max_value=50.0,
                    allow_nan=False, allow_infinity=False,
                ),
                max_size=20,
            ),
            min_size=1,
            max_size=4,
        ),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_merged_timer_quantiles_equal_pooled(self, worker_obs, q):
        """bucket_quantile over the merged instrument must be *exactly*
        the quantile over one instrument fed every observation."""
        parent = MetricsRegistry()
        pooled = MetricsRegistry()
        pooled_timer = pooled.timer("t")
        for observations in worker_obs:
            worker = MetricsRegistry()
            timer = worker.timer("t")
            for value in observations:
                timer.observe(value)
                pooled_timer.observe(value)
            merge_snapshot(parent, take_snapshot(worker))
        merged = parent.get("timer", "t")
        assert merged is not None
        assert tuple(merged.bucket_counts) == tuple(
            pooled_timer.bucket_counts
        )
        assert merged.count == pooled_timer.count
        assert merged.sum == pytest.approx(pooled_timer.sum)
        assert merged.min == pooled_timer.min
        assert merged.max == pooled_timer.max
        assert bucket_quantile(
            tuple(merged.bounds), tuple(merged.bucket_counts), q
        ) == bucket_quantile(
            tuple(pooled_timer.bounds),
            tuple(pooled_timer.bucket_counts),
            q,
        )

    def test_bounds_mismatch_raises(self):
        # Every registry child uses DEFAULT_BUCKETS, so a mismatch can
        # only arrive over the wire (e.g. from a different build);
        # pooling incomparable buckets must refuse, not guess.
        parent = MetricsRegistry()
        parent.histogram("h").observe(1.5)
        foreign = snapshot_from_wire({
            "ts": 0.0, "counters": {}, "gauges": {},
            "histograms": {
                "h": {
                    "count": 1, "sum": 3.0, "bounds": [1.0, 2.0],
                    "buckets": [0, 0, 1], "min": 3.0, "max": 3.0,
                },
            },
            "timers": [],
        })
        with pytest.raises(ValueError, match="bucket bounds differ"):
            merge_snapshot(parent, foreign)

    def test_disabled_registry_is_noop(self):
        null = NullRegistry()
        merge_snapshot(null, take_snapshot(_sample_registry()))
        assert list(null.instruments()) == []

    def test_shard_label_added(self):
        parent = MetricsRegistry()
        merge_snapshot(
            parent,
            take_snapshot(_sample_registry()),
            extra_labels={"shard": "3"},
        )
        child = parent.get(
            "counter", "monitor.tuples", monitor="m-0", shard="3"
        )
        assert child is not None and child.value == 42


# -- event re-sequencing --------------------------------------------------


class TestEventResequencing:
    def test_buffer_journal_contract(self):
        buf = BufferJournal()
        assert buf.enabled and buf.path is None
        s0 = buf.emit("batch", monitor="m-0")
        s1 = buf.emit("resources", cpu_user_s=0.1)
        assert (s0, s1) == (0, 1)
        assert buf.events_written == 2
        assert [e["seq"] for e in buf.events] == [0, 1]
        assert buf.events[1]["ts"] >= buf.events[0]["ts"]

    def test_replay_worker_events_namespaced_and_gapless(self):
        sink = io.StringIO()
        journal = EventJournal(sink)
        journal.emit("run_start", monitors=[])
        docs = []
        for shard in (1, 0):
            buf = BufferJournal()
            buf.emit("batch", monitor=f"m-{shard}", windows=2)
            buf.emit("resources", cpu_user_s=0.5)
            docs.append(
                capture_worker_snapshot(
                    NullRegistry(), buf, shard=shard, seq=1
                )
            )
        merge_worker_snapshots(NullRegistry(), journal, docs)
        journal.close()
        events = [
            json.loads(line) for line in sink.getvalue().splitlines()
        ]
        assert [e["seq"] for e in events] == list(range(len(events)))
        worker = [
            e for e in events if e["event"].startswith("shard.worker.")
        ]
        # Deterministic (shard, seq) order: shard 0 before shard 1.
        assert [e["shard"] for e in worker] == [0, 0, 1, 1]
        assert worker[0]["event"] == "shard.worker.batch"
        assert worker[0]["worker_seq"] == 0
        assert "worker_ts" in worker[0]

    def test_worker_resource_events_filter(self):
        buf = BufferJournal()
        buf.emit("batch", monitor="m-0")
        buf.emit("resources", cpu_user_s=0.25, max_rss_kb=1000.0)
        doc = capture_worker_snapshot(NullRegistry(), buf, 0, 1)
        records = worker_resource_events(doc)
        assert len(records) == 1
        assert records[0]["cpu_user_s"] == 0.25

    def test_disabled_journal_is_noop(self):
        buf = BufferJournal()
        buf.emit("batch", monitor="m-0")
        doc = capture_worker_snapshot(NullRegistry(), buf, 0, 1)
        from repro.obs import NULL_JOURNAL

        replay_worker_events(NULL_JOURNAL, doc)  # must not raise


# -- resource profiler ----------------------------------------------------


class TestResources:
    def test_sample_and_delta_sane(self):
        before = sample_resources()
        sum(i * i for i in range(200_000))  # burn some CPU
        after = sample_resources()
        delta = resource_delta(after, before)
        assert delta.cpu_user_s >= 0.0
        assert delta.cpu_system_s >= 0.0
        assert delta.max_rss_kb == after.max_rss_kb > 0
        assert delta.gc_collections >= 0
        assert delta.pid == before.pid

    def test_as_fields_json_safe(self):
        fields = sample_resources().as_fields()
        assert json.loads(json.dumps(fields)) == fields

    def test_export_resources_gauges(self):
        from repro.obs import PROC_GAUGES, export_resources

        reg = MetricsRegistry()
        export_resources(reg, sample_resources(), shard="parent")
        for name in PROC_GAUGES:
            assert reg.get("gauge", name, shard="parent") is not None


# -- end-to-end sharded telemetry ----------------------------------------


def _run_with_obs(system, live):
    reg = MetricsRegistry()
    sink = io.StringIO()
    journal = EventJournal(sink)
    with use_registry(reg), use_journal(journal):
        report = system.run(live, window_width=4.0)
        if hasattr(system, "close"):
            system.close()
    journal.close()
    return report, reg, sink.getvalue()


def _counter_totals(reg, prefix, ignore=("shard",)):
    totals = {}
    for kind, inst in reg.instruments():
        if kind != "counter" or not inst.name.startswith(prefix):
            continue
        labels = tuple(
            sorted((k, v) for k, v in inst.labels if k not in ignore)
        )
        key = (inst.name, labels)
        totals[key] = totals.get(key, 0.0) + inst.value
    return totals


class TestShardedTelemetry:
    @pytest.mark.parametrize("shards", [2, 3])
    def test_merged_counters_equal_serial_exactly(self, workload, shards):
        """The acceptance invariant: at any shards=K the parent's
        merged monitor.* counter totals (ignoring shard labels) equal
        the serial run's exactly, and the report stays identical."""
        table, history, live = workload
        serial = MonitoringSystem(
            table, get_metric("rms"), num_monitors=3, budget=40
        )
        serial.train(history)
        expected_report, serial_reg, _ = _run_with_obs(serial, live)

        sharded = ShardedMonitoringSystem(
            table, get_metric("rms"), num_monitors=3, shards=shards,
            budget=40,
        )
        sharded.train(history)
        report, reg, journal_text = _run_with_obs(sharded, live)

        assert report == expected_report
        assert sharded.prefetch_misses == 0
        assert _counter_totals(reg, "monitor.") == _counter_totals(
            serial_reg, "monitor."
        )
        # Worker metrics actually landed under shard labels.
        shard_labels = {
            dict(inst.labels).get("shard")
            for kind, inst in reg.instruments()
            if inst.name.startswith("monitor.")
            and any(k == "shard" for k, _v in inst.labels)
        }
        assert shard_labels  # at least one shard-labeled series
        # proc.* series exist for workers and the parent.
        proc_shards = {
            dict(inst.labels).get("shard")
            for kind, inst in reg.instruments()
            if inst.name.startswith("proc.")
        }
        assert "parent" in proc_shards
        assert proc_shards - {"parent"}

        # Replay of the merged journal reconstructs the same report —
        # shard.worker.* / shard.* events are replay-transparent.
        events = [
            json.loads(line)
            for line in journal_text.splitlines()
            if line
        ]
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert replay_system_report(events) == report

    def test_telemetry_off_is_byte_identical(self, workload):
        """Without obs sinks the worker runs fully nulled: the journal
        (none) and report match a worker_telemetry=False run exactly."""
        table, history, live = workload

        def run(**kwargs):
            system = ShardedMonitoringSystem(
                table, get_metric("rms"), num_monitors=3, shards=2,
                budget=40, **kwargs,
            )
            system.train(history)
            with system:
                return system.run(live, window_width=4.0)

        assert run() == run(worker_telemetry=False)

    def test_worker_telemetry_flag_off_with_obs(self, workload):
        table, history, live = workload
        system = ShardedMonitoringSystem(
            table, get_metric("rms"), num_monitors=3, shards=2,
            budget=40, worker_telemetry=False,
        )
        system.train(history)
        report, reg, journal_text = _run_with_obs(system, live)
        # No worker-side series, no shard.worker.* events — but the
        # parent-side serving.shard.* accounting still works.
        assert not any(
            inst.name.startswith("monitor.")
            and any(k == "shard" for k, _v in inst.labels)
            for _kind, inst in reg.instruments()
        )
        assert "shard.worker." not in journal_text
        assert "shard.prefetch" in journal_text

    def test_shard_summary_and_signals(self, workload):
        table, history, live = workload
        system = ShardedMonitoringSystem(
            table, get_metric("rms"), num_monitors=3, shards=2,
            budget=40,
        )
        system.train(history)
        report, reg, journal_text = _run_with_obs(system, live)
        assert "shard.summary" in journal_text
        for shard in ("0", "1"):
            assert (
                reg.get("gauge", "serving.shard.cpu_seconds", shard=shard)
                is not None
            )
        # Hit-only run: miss rate gauge pinned at 0, imbalance >= 1.
        assert reg.get("gauge", "serving.prefetch.miss_rate").value == 0.0
        hits = reg.get("counter", "serving.prefetch.hits")
        assert hits is not None and hits.value == len(report.windows) * 3
        assert reg.get("counter", "serving.prefetch.misses") is None
        imbalance = reg.get("gauge", "serving.shard.imbalance")
        assert imbalance is not None and imbalance.value >= 1.0

    def test_shards_json_and_top_panes(self, workload):
        table, history, live = workload
        system = ShardedMonitoringSystem(
            table, get_metric("rms"), num_monitors=3, shards=2,
            budget=40,
        )
        system.train(history)
        report, reg, journal_text = _run_with_obs(system, live)

        summary = shard_tenant_summary(reg)
        assert {"0", "1", "parent"} <= set(summary["shards"])
        assert summary["shards"]["0"]["serving.shard.windows"] > 0
        assert summary["shards"]["parent"]["proc.cpu.user_seconds"] >= 0

        with MetricsServer(reg, port=0) as server:
            with urllib.request.urlopen(
                f"{server.url}/shards.json", timeout=5
            ) as resp:
                doc = json.loads(resp.read().decode("utf-8"))
            assert doc == json.loads(
                json.dumps(summary, sort_keys=True)
            )
            state = load_state(server.url)
            assert {"0", "1", "parent"} <= set(state.shards)
            assert state.shards["0"]["windows"] > 0
            assert state.shards["parent"]["cpu_s"] >= 0

        events = [
            json.loads(line)
            for line in journal_text.splitlines()
            if line
        ]
        journal_state = state_from_journal(events, "test")
        assert set(journal_state.shards) == {"0", "1"}
        assert journal_state.shards["0"]["cpu_s"] >= 0.0
        rendered = render_top(journal_state)
        assert "shards:" in rendered

    def test_chrome_trace_shard_tracks(self, workload):
        table, history, live = workload
        system = ShardedMonitoringSystem(
            table, get_metric("rms"), num_monitors=3, shards=2,
            budget=40,
        )
        system.train(history)
        report, _reg, journal_text = _run_with_obs(system, live)
        events = [
            json.loads(line)
            for line in journal_text.splitlines()
            if line
        ]
        doc = chrome_trace(events)
        assert unpaired_flows(doc) == []
        assert doc["otherData"]["shards"] == [0, 1]
        names = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev.get("ph") == "M" and ev.get("name") == "thread_name"
        }
        assert {"shard-0", "shard-1"} <= names
        prefetch = [
            ev for ev in doc["traceEvents"]
            if ev.get("cat") == "serving"
            and str(ev.get("name", "")).startswith("prefetch ")
        ]
        assert prefetch and all(
            ev["ph"] == "X" and ev["dur"] > 0 and ev["ts"] >= 0
            for ev in prefetch
        )
        fanin = [
            ev for ev in doc["traceEvents"]
            if str(ev.get("name", "")).startswith("fan-in w")
        ]
        assert fanin and all(ev["tid"] == 0 for ev in fanin)

    def test_multi_process_stress_totals(self, workload):
        """N-process stress: a second run on the same (reused) pool
        still merges to exact serial totals — per-batch worker deltas
        never leak across runs."""
        table, history, live = workload
        serial = MonitoringSystem(
            table, get_metric("rms"), num_monitors=4, budget=40
        )
        serial.train(history)
        _, serial_reg, _ = _run_with_obs(serial, live)
        serial_totals = _counter_totals(serial_reg, "monitor.")

        system = ShardedMonitoringSystem(
            table, get_metric("rms"), num_monitors=4, shards=3,
            budget=40,
        )
        system.train(history)
        with system:
            for _ in range(2):
                reg = MetricsRegistry()
                sink = io.StringIO()
                journal = EventJournal(sink)
                with use_registry(reg), use_journal(journal):
                    system.run(live, window_width=4.0)
                journal.close()
                assert system.prefetch_misses == 0
                assert (
                    _counter_totals(reg, "monitor.") == serial_totals
                )
