"""Timestamped identifier streams.

A :class:`Trace` is the column-wise representation of the paper's
``UIDStream``: parallel arrays of timestamps and unique identifiers,
plus an optional per-tuple value column for weighted (``sum(value)``)
aggregation — e.g. bytes per packet.  Traces are what Monitors observe
and what the windowing operators segment.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["Trace"]


class Trace:
    """A time-ordered stream of (timestamp, uid[, value]) observations."""

    def __init__(
        self,
        timestamps: Sequence[float],
        uids: Sequence[int],
        values: Optional[Sequence[float]] = None,
    ):
        self.timestamps = np.asarray(timestamps, dtype=np.float64)
        self.uids = np.asarray(uids, dtype=np.int64)
        if self.timestamps.shape != self.uids.shape:
            raise ValueError(
                f"timestamps {self.timestamps.shape} and uids "
                f"{self.uids.shape} must be parallel"
            )
        self.values: Optional[np.ndarray]
        if values is None:
            self.values = None
        else:
            self.values = np.asarray(values, dtype=np.float64)
            if self.values.shape != self.uids.shape:
                raise ValueError(
                    f"values {self.values.shape} and uids "
                    f"{self.uids.shape} must be parallel"
                )
        if self.timestamps.size and np.any(np.diff(self.timestamps) < 0):
            order = np.argsort(self.timestamps, kind="stable")
            self.timestamps = self.timestamps[order]
            self.uids = self.uids[order]
            if self.values is not None:
                self.values = self.values[order]

    @classmethod
    def untimed(
        cls,
        uids: Sequence[int],
        rate: float = 1.0,
        values: Optional[Sequence[float]] = None,
    ) -> "Trace":
        """A trace with synthetic evenly-spaced timestamps."""
        uids = np.asarray(uids, dtype=np.int64)
        return cls(
            np.arange(uids.size, dtype=np.float64) / rate, uids, values
        )

    def __len__(self) -> int:
        return int(self.uids.size)

    @property
    def duration(self) -> float:
        if not len(self):
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    def slice_time(self, start: float, end: float) -> "Trace":
        """Observations with timestamps in ``[start, end)``."""
        lo = int(np.searchsorted(self.timestamps, start, side="left"))
        hi = int(np.searchsorted(self.timestamps, end, side="left"))
        return Trace(
            self.timestamps[lo:hi],
            self.uids[lo:hi],
            None if self.values is None else self.values[lo:hi],
        )

    def split(self, shares: int, seed: int = 0) -> Tuple["Trace", ...]:
        """Randomly partition the trace across ``shares`` observers —
        how traffic spreads over multiple Monitors."""
        if shares < 1:
            raise ValueError(f"shares must be at least 1, got {shares}")
        rng = np.random.default_rng(seed)
        owner = rng.integers(0, shares, size=len(self))
        return tuple(
            Trace(
                self.timestamps[owner == s],
                self.uids[owner == s],
                None if self.values is None else self.values[owner == s],
            )
            for s in range(shares)
        )

    def __iter__(self) -> Iterator[Tuple[float, int]]:
        return zip(self.timestamps.tolist(), self.uids.tolist())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Trace({len(self)} tuples over {self.duration:g}s)"
