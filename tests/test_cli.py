"""Tests for the command-line interface."""

import os

import numpy as np
import pytest

from repro.cli import main
from repro.core import decode_function, function_from_json


@pytest.fixture
def workload(tmp_path):
    path = str(tmp_path / "w.npz")
    assert main(["generate", "--height", "10", "--packets", "20000",
                 "--seed", "3", "-o", path]) == 0
    return path


class TestGenerate:
    def test_creates_file(self, workload):
        assert os.path.exists(workload)
        data = np.load(workload)
        assert int(data["height"][0]) == 10
        assert data["counts"].sum() == 20000

    def test_deterministic(self, tmp_path):
        a, b = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        main(["generate", "--height", "8", "--packets", "1000",
              "--seed", "5", "-o", a])
        main(["generate", "--height", "8", "--packets", "1000",
              "--seed", "5", "-o", b])
        da, db = np.load(a), np.load(b)
        assert np.array_equal(da["counts"], db["counts"])


class TestBuild:
    @pytest.mark.parametrize("algorithm", ["nonoverlapping", "overlapping",
                                           "lpm_greedy"])
    def test_build_binary(self, workload, tmp_path, algorithm):
        out = str(tmp_path / "fn.bin")
        assert main(["build", workload, "--algorithm", algorithm,
                     "--budget", "12", "-o", out]) == 0
        with open(out, "rb") as f:
            fn = decode_function(f.read())
        assert fn.num_buckets <= 12

    def test_build_json(self, workload, tmp_path):
        out = str(tmp_path / "fn.json")
        main(["build", workload, "--budget", "8", "-o", out])
        with open(out) as f:
            fn = function_from_json(f.read())
        assert fn.num_buckets <= 8

    def test_metric_choices_enforced(self, workload, tmp_path):
        with pytest.raises(SystemExit):
            main(["build", workload, "--metric", "nope",
                  "-o", str(tmp_path / "x.bin")])


class TestEvaluateInspect:
    def test_evaluate_prints_all_metrics(self, workload, tmp_path, capsys):
        out = str(tmp_path / "fn.bin")
        main(["build", workload, "--budget", "10", "-o", out])
        assert main(["evaluate", workload, out]) == 0
        text = capsys.readouterr().out
        for name in ("rms", "average", "avg_relative", "max_relative"):
            assert name in text

    def test_inspect_lists_buckets(self, workload, tmp_path, capsys):
        out = str(tmp_path / "fn.json")
        main(["build", workload, "--budget", "6", "-o", out])
        assert main(["inspect", out]) == 0
        text = capsys.readouterr().out
        assert "buckets" in text
        assert "*" in text


class TestSimulate:
    def test_simulate_reports(self, capsys):
        assert main(["simulate", "--height", "10", "--packets", "20000",
                     "--budget", "20", "--monitors", "2"]) == 0
        text = capsys.readouterr().out
        assert "compression ratio" in text
        assert "mean rms error" in text
        # No fault model -> no degradation section.
        assert "monitors reporting" not in text

    def test_simulate_with_faults_prints_degradation(self, capsys):
        assert main(["simulate", "--height", "10", "--packets", "20000",
                     "--budget", "20", "--monitors", "4",
                     "--faults", "drop=0.2,dup=0.1,seed=42",
                     "--stale-policy", "rescale"]) == 0
        text = capsys.readouterr().out
        assert "monitors reporting" in text
        assert "duplicates dropped" in text
        assert "stale messages" in text

    def test_simulate_bad_fault_spec_rejected(self, capsys):
        assert main(["simulate", "--height", "10", "--packets", "5000",
                     "--faults", "dorp=0.2"]) == 2
        assert "unknown fault spec key" in capsys.readouterr().err


def test_version(capsys):
    with pytest.raises(SystemExit) as e:
        main(["--version"])
    assert e.value.code == 0


def test_missing_command():
    with pytest.raises(SystemExit):
        main([])
