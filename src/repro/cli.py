"""Command-line interface.

Everything needed to drive the system from a shell, working on small
portable artifact files:

* a *workload* file (``.npz``) holding a subnet table and a window of
  per-group counts;
* a *function* file (``.bin``) holding a partitioning function in its
  compact wire format (``.json`` also accepted).

Subcommands::

    python -m repro generate  --height 16 --packets 500000 -o work.npz
    python -m repro build     work.npz --algorithm lpm_greedy \\
                              --metric rms --budget 100 -o fn.bin
    python -m repro evaluate  work.npz fn.bin
    python -m repro inspect   fn.bin
    python -m repro simulate  --height 14 --algorithm overlapping \\
                              --budget 60 --monitors 4 \\
                              --faults drop=0.1,dup=0.05,seed=7
    python -m repro stats     run.jsonl

Every subcommand accepts ``--metrics PATH`` (and ``--metrics-format
{json,csv,prom}``) to capture construction/pipeline instrumentation to
a file; ``repro stats`` pretty-prints a captured JSON-lines file.

Run ``python -m repro <subcommand> --help`` for the full flag set.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from . import __version__
from .algorithms.construct import available_algorithms, build
from .core import (
    GroupTable,
    PrunedHierarchy,
    UIDDomain,
    available_metrics,
    decode_function,
    encode_function,
    evaluate_function,
    function_from_json,
    function_to_json,
    get_metric,
    histogram_from_group_counts,
)
from .data import TrafficModel, generate_subnet_table, generate_trace
from .data.traffic import generate_timestamped_trace
from .obs import (
    EXPORT_FORMATS,
    MetricsRegistry,
    load_jsonl,
    render_summary,
    use_registry,
    write_metrics,
)
from .streams import (
    STALE_POLICIES,
    STREAM_KERNEL_MODES,
    FaultModel,
    MonitoringSystem,
    Trace,
    use_stream_kernel_mode,
)

__all__ = ["main"]


def _save_workload(path: str, table: GroupTable, counts: np.ndarray) -> None:
    np.savez_compressed(
        path,
        height=np.asarray([table.domain.height]),
        nodes=table.nodes,
        group_ids=np.asarray([str(g) for g in table.group_ids]),
        counts=counts,
    )


def _load_workload(path: str):
    data = np.load(path, allow_pickle=False)
    domain = UIDDomain(int(data["height"][0]))
    table = GroupTable(
        domain, data["nodes"].tolist(), [str(g) for g in data["group_ids"]]
    )
    return table, data["counts"].astype(np.float64)


def _load_function(path: str):
    if path.endswith(".json"):
        with open(path) as f:
            return function_from_json(f.read())
    with open(path, "rb") as f:
        return decode_function(f.read())


def _cmd_generate(args: argparse.Namespace) -> int:
    domain = UIDDomain(args.height)
    table = generate_subnet_table(domain, seed=args.seed)
    uids = generate_trace(
        table, args.packets, seed=args.seed + 1, model=TrafficModel()
    )
    counts = table.counts_from_uids(uids)
    _save_workload(args.output, table, counts)
    print(
        f"wrote {args.output}: {len(table)} groups over 2^{args.height} "
        f"identifiers, {args.packets} packets, "
        f"{int((counts > 0).sum())} active groups"
    )
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    table, counts = _load_workload(args.workload)
    hierarchy = PrunedHierarchy(table, counts)
    metric = get_metric(args.metric)
    result = build(args.algorithm, hierarchy, metric, args.budget)
    fn = result.function_at(args.budget)
    if args.output.endswith(".json"):
        with open(args.output, "w") as f:
            f.write(function_to_json(fn))
    else:
        with open(args.output, "wb") as f:
            f.write(encode_function(fn))
    print(
        f"wrote {args.output}: {fn.semantics} function, "
        f"{fn.num_buckets} buckets, {fn.size_bits()} bits; "
        f"{args.metric} error {result.error_at(args.budget):.4g}"
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    table, counts = _load_workload(args.workload)
    fn = _load_function(args.function)
    hist = histogram_from_group_counts(table, counts, fn)
    print(f"function : {fn.semantics}, {fn.num_buckets} buckets, "
          f"{fn.size_bits()} bits")
    print(f"histogram: {len(hist)} nonzero buckets, "
          f"{hist.size_bytes(table.domain)} bytes/window")
    for name in sorted(available_metrics()):
        metric = get_metric(name)
        err = evaluate_function(table, counts, fn, metric, histogram=hist)
        print(f"{name:>16}: {err:.6g}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    fn = _load_function(args.function)
    domain = fn.domain
    print(f"{fn.semantics} partitioning function over 2^{domain.height} "
          f"identifiers; {fn.num_buckets} buckets, {fn.size_bits()} bits")
    for b in fn.buckets:
        line = f"  {domain.node_prefix_str(b.node)}"
        if b.is_sparse:
            line += (
                "  [sparse; group at "
                f"{domain.node_prefix_str(b.sparse_group_node)}]"
            )
        print(line)
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    domain = UIDDomain(args.height)
    table = generate_subnet_table(domain, seed=args.seed)
    ts, uids = generate_timestamped_trace(
        table, args.packets, duration=args.duration,
        seed=args.seed + 1, model=TrafficModel(),
    )
    trace = Trace(ts, uids)
    half = args.duration / 2
    faults = None
    if args.faults:
        try:
            faults = FaultModel.parse(args.faults)
        except ValueError as exc:
            print(f"error: --faults: {exc}", file=sys.stderr)
            return 2
    system = MonitoringSystem(
        table, get_metric(args.metric), num_monitors=args.monitors,
        algorithm=args.algorithm, budget=args.budget,
        stale_policy=args.stale_policy, faults=faults,
        parallel=args.parallel,
    )
    with use_stream_kernel_mode(args.stream_kernels):
        system.train(trace.slice_time(0, half))
        report = system.run(
            trace.slice_time(half, args.duration),
            window_width=half / max(1, args.windows),
        )
    print(f"windows decoded   : {len(report.windows)}")
    print(f"mean {args.metric} error: {report.mean_error:.4g}")
    print(f"histogram bytes   : {report.upstream_bytes}")
    print(f"function bytes    : {report.function_bytes}")
    print(f"raw-stream bytes  : {report.raw_bytes}")
    print(f"compression ratio : {report.compression_ratio:.1f}x")
    if faults is not None:
        reporting = [w.monitors_reporting for w in report.windows]
        print(f"monitors reporting: min {min(reporting, default=0)} / "
              f"mean {float(np.mean(reporting)) if reporting else 0.0:.2f} "
              f"of {args.monitors}")
        print("duplicates dropped: "
              f"{sum(w.duplicates_dropped for w in report.windows)}")
        print("stale messages    : "
              f"{sum(w.stale_messages for w in report.windows)}")
        print("late messages     : "
              f"{sum(w.late_messages for w in report.windows)}")
        print(f"monitor crashes   : {report.monitor_crashes}")
        print(f"expired in flight : {report.expired_messages}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    try:
        records = load_jsonl(args.metrics_file)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    sys.stdout.write(render_summary(records))
    return 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compact histograms for hierarchical identifiers "
        "(Reiss, Garofalakis & Hellerstein, VLDB 2006).",
    )
    parser.add_argument("--version", action="version", version=__version__)
    # Observability flags, shared by every subcommand.
    metrics = argparse.ArgumentParser(add_help=False)
    metrics.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="capture instrumentation (timings, counters, spans) to PATH",
    )
    metrics.add_argument(
        "--metrics-format", choices=EXPORT_FORMATS, default="json",
        help="metrics file format (default json = JSON-lines, readable "
        "by 'repro stats')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a synthetic workload",
                       parents=[metrics])
    g.add_argument("--height", type=int, default=16,
                   help="identifier domain height (default 16)")
    g.add_argument("--packets", type=int, default=500_000)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("-o", "--output", required=True, help="output .npz path")
    g.set_defaults(func=_cmd_generate)

    b = sub.add_parser("build", help="construct a partitioning function",
                       parents=[metrics])
    b.add_argument("workload", help="workload .npz from 'generate'")
    b.add_argument("--algorithm", default="lpm_greedy",
                   choices=sorted(available_algorithms()))
    b.add_argument("--metric", default="rms",
                   choices=sorted(available_metrics()))
    b.add_argument("--budget", type=int, default=100)
    b.add_argument("-o", "--output", required=True,
                   help="output .bin (wire format) or .json path")
    b.set_defaults(func=_cmd_build)

    e = sub.add_parser("evaluate",
                       help="score a function against a workload",
                       parents=[metrics])
    e.add_argument("workload")
    e.add_argument("function")
    e.set_defaults(func=_cmd_evaluate)

    i = sub.add_parser("inspect", help="print a function's buckets",
                       parents=[metrics])
    i.add_argument("function")
    i.set_defaults(func=_cmd_inspect)

    s = sub.add_parser("simulate",
                       help="run the end-to-end monitoring pipeline",
                       parents=[metrics])
    s.add_argument("--height", type=int, default=14)
    s.add_argument("--packets", type=int, default=200_000)
    s.add_argument("--duration", type=float, default=60.0)
    s.add_argument("--windows", type=int, default=4,
                   help="live windows to decode (default 4)")
    s.add_argument("--monitors", type=int, default=4)
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--algorithm", default="lpm_greedy",
                   choices=sorted(available_algorithms()))
    s.add_argument("--metric", default="rms",
                   choices=sorted(available_metrics()))
    s.add_argument("--budget", type=int, default=80)
    s.add_argument("--faults", metavar="SPEC", default=None,
                   help="inject channel faults, e.g. "
                   "'drop=0.1,dup=0.05,delay=0.1,crash=0.01,seed=7' "
                   "(keys: drop, dup, reorder, delay, max_delay, crash, "
                   "install_drop, seed)")
    s.add_argument("--stale-policy", choices=STALE_POLICIES,
                   default="strict",
                   help="how decode treats stale-version histograms "
                   "(default strict)")
    s.add_argument("--stream-kernels", choices=STREAM_KERNEL_MODES,
                   default="fast",
                   help="serving-path kernels: compiled 'fast' (default) "
                   "or the 'naive' reference loops; results are "
                   "bit-identical (also REPRO_STREAM_KERNELS)")
    s.add_argument("--parallel", type=int, default=1, metavar="N",
                   help="partitioning worker threads across monitors "
                   "(default 1 = serial; results are identical)")
    s.set_defaults(func=_cmd_simulate)

    st = sub.add_parser("stats",
                        help="pretty-print a captured metrics file")
    st.add_argument("metrics_file",
                    help="JSON-lines file written by --metrics")
    st.set_defaults(func=_cmd_stats)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    metrics_path = getattr(args, "metrics", None)
    if not metrics_path:
        return args.func(args)
    registry = MetricsRegistry()
    with use_registry(registry):
        rc = args.func(args)
    write_metrics(registry, metrics_path, args.metrics_format)
    return rc


if __name__ == "__main__":
    sys.exit(main())
