"""Command-line interface.

Everything needed to drive the system from a shell, working on small
portable artifact files:

* a *workload* file (``.npz``) holding a subnet table and a window of
  per-group counts;
* a *function* file (``.bin``) holding a partitioning function in its
  compact wire format (``.json`` also accepted).

Subcommands::

    python -m repro generate  --height 16 --packets 500000 -o work.npz
    python -m repro build     work.npz --algorithm lpm_greedy \\
                              --metric rms --budget 100 -o fn.bin
    python -m repro evaluate  work.npz fn.bin
    python -m repro inspect   fn.bin
    python -m repro simulate  --height 14 --algorithm overlapping \\
                              --budget 60 --monitors 4 \\
                              --faults drop=0.1,dup=0.05,seed=7 \\
                              --journal run.journal \\
                              --serve-metrics :9100
    python -m repro stats     run.jsonl [--watch]
    python -m repro replay    run.journal
    python -m repro trace     run.journal -o run.trace.json
    python -m repro top       run.journal | http://127.0.0.1:9100

Every subcommand accepts ``--metrics PATH`` (and ``--metrics-format
{json,csv,prom}``) to capture construction/pipeline instrumentation to
a file; ``repro stats`` pretty-prints a captured JSON-lines file
(``--watch`` re-renders as the file grows).  ``simulate`` additionally
exposes the live surfaces: ``--journal`` records every pipeline event
(replayable with ``repro replay``), ``--trace`` follows every
histogram copy's lifecycle end to end (``repro trace`` exports the
result as a Perfetto-loadable Chrome trace), ``--slo`` /
``--slo-file`` fire per-window alerts (served at ``/alerts.json``),
``--serve-metrics`` serves Prometheus text at ``/metrics`` mid-run,
``--metrics-interval`` re-writes the metrics file periodically, and
``repro top`` renders an in-terminal dashboard over either surface.

Run ``python -m repro <subcommand> --help`` for the full flag set.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from contextlib import ExitStack
from typing import List, Optional

import numpy as np

from . import __version__
from .algorithms.construct import available_algorithms, build
from .core import (
    GroupTable,
    PrunedHierarchy,
    UIDDomain,
    WIRE_FORMATS,
    available_metrics,
    decode_function,
    encode_function,
    evaluate_function,
    function_from_json,
    function_to_json,
    get_metric,
    histogram_from_group_counts,
)
from .data import TrafficModel, generate_subnet_table, generate_trace
from .data.traffic import generate_timestamped_trace
from .obs import (
    EXPORT_FORMATS,
    EventJournal,
    LifecycleTracer,
    MetricsRegistry,
    MetricsServer,
    PeriodicMetricsWriter,
    SLOEngine,
    TopSource,
    chrome_trace,
    get_registry,
    load_jsonl,
    load_slo_file,
    parse_serve_spec,
    parse_slo_spec,
    read_journal,
    render_summary,
    render_top,
    unpaired_flows,
    use_journal,
    use_registry,
    use_slo_engine,
    use_tracer,
    write_metrics,
)
from .serving import ServingEngine, ShardedMonitoringSystem, TenantSpec
from .streams import (
    STALE_POLICIES,
    STREAM_KERNEL_MODES,
    FaultModel,
    MonitoringSystem,
    Trace,
    replay_system_report,
    use_stream_kernel_mode,
)

__all__ = ["main"]


def _save_workload(path: str, table: GroupTable, counts: np.ndarray) -> None:
    np.savez_compressed(
        path,
        height=np.asarray([table.domain.height]),
        nodes=table.nodes,
        group_ids=np.asarray([str(g) for g in table.group_ids]),
        counts=counts,
    )


def _load_workload(path: str):
    data = np.load(path, allow_pickle=False)
    domain = UIDDomain(int(data["height"][0]))
    table = GroupTable(
        domain, data["nodes"].tolist(), [str(g) for g in data["group_ids"]]
    )
    return table, data["counts"].astype(np.float64)


def _load_function(path: str):
    if path.endswith(".json"):
        with open(path) as f:
            return function_from_json(f.read())
    with open(path, "rb") as f:
        return decode_function(f.read())


def _cmd_generate(args: argparse.Namespace) -> int:
    domain = UIDDomain(args.height)
    table = generate_subnet_table(domain, seed=args.seed)
    uids = generate_trace(
        table, args.packets, seed=args.seed + 1, model=TrafficModel()
    )
    counts = table.counts_from_uids(uids)
    _save_workload(args.output, table, counts)
    print(
        f"wrote {args.output}: {len(table)} groups over 2^{args.height} "
        f"identifiers, {args.packets} packets, "
        f"{int((counts > 0).sum())} active groups"
    )
    return 0


def _cmd_build(args: argparse.Namespace) -> int:
    table, counts = _load_workload(args.workload)
    hierarchy = PrunedHierarchy(table, counts)
    metric = get_metric(args.metric)
    result = build(args.algorithm, hierarchy, metric, args.budget)
    fn = result.function_at(args.budget)
    if args.output.endswith(".json"):
        with open(args.output, "w") as f:
            f.write(function_to_json(fn))
    else:
        with open(args.output, "wb") as f:
            f.write(encode_function(fn))
    print(
        f"wrote {args.output}: {fn.semantics} function, "
        f"{fn.num_buckets} buckets, {fn.size_bits()} bits; "
        f"{args.metric} error {result.error_at(args.budget):.4g}"
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    table, counts = _load_workload(args.workload)
    fn = _load_function(args.function)
    hist = histogram_from_group_counts(table, counts, fn)
    print(f"function : {fn.semantics}, {fn.num_buckets} buckets, "
          f"{fn.size_bits()} bits")
    print(f"histogram: {len(hist)} nonzero buckets, "
          f"{hist.size_bytes(table.domain)} bytes/window")
    for name in sorted(available_metrics()):
        metric = get_metric(name)
        err = evaluate_function(table, counts, fn, metric, histogram=hist)
        print(f"{name:>16}: {err:.6g}")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    fn = _load_function(args.function)
    domain = fn.domain
    print(f"{fn.semantics} partitioning function over 2^{domain.height} "
          f"identifiers; {fn.num_buckets} buckets, {fn.size_bits()} bits")
    for b in fn.buckets:
        line = f"  {domain.node_prefix_str(b.node)}"
        if b.is_sparse:
            line += (
                "  [sparse; group at "
                f"{domain.node_prefix_str(b.sparse_group_node)}]"
            )
        print(line)
    return 0


def _print_report(
    report,
    metric_name: str,
    monitors: Optional[int],
    degraded: bool,
) -> None:
    """The run summary, shared by ``simulate`` and ``replay``."""
    print(f"windows decoded   : {len(report.windows)}")
    print(f"mean {metric_name} error: {report.mean_error:.4g}")
    print(f"histogram bytes   : {report.upstream_bytes}")
    print(f"function bytes    : {report.function_bytes}")
    print(f"raw-stream bytes  : {report.raw_bytes}")
    print(f"compression ratio : {report.compression_ratio:.1f}x")
    if degraded:
        reporting = [w.monitors_reporting for w in report.windows]
        of = monitors if monitors is not None else "?"
        print(f"monitors reporting: min {min(reporting, default=0)} / "
              f"mean {float(np.mean(reporting)) if reporting else 0.0:.2f} "
              f"of {of}")
        print("duplicates dropped: "
              f"{sum(w.duplicates_dropped for w in report.windows)}")
        print("stale messages    : "
              f"{sum(w.stale_messages for w in report.windows)}")
        print("late messages     : "
              f"{sum(w.late_messages for w in report.windows)}")
        print(f"monitor crashes   : {report.monitor_crashes}")
        print(f"expired in flight : {report.expired_messages}")
    alerts = getattr(report, "alerts", [])
    if alerts:
        firing = [a for a in alerts if a.resolved_window is None]
        print(f"slo alerts        : {len(alerts)} fired, "
              f"{len(firing)} still firing")
        for a in alerts:
            status = (
                "firing"
                if a.resolved_window is None
                else f"resolved w{a.resolved_window}"
            )
            print(f"  {a.rule}: fired w{a.fired_window} "
                  f"value {a.value:.6g} [{status}]")


def _print_tenant_reports(
    results, metric_name: str, cache_stats=None
) -> None:
    """Per-tenant summaries for ``simulate --tenants`` runs."""
    admitted = [r for r in results.values() if r.admitted]
    rejected = [r for r in results.values() if not r.admitted]
    print(f"tenants admitted  : {len(admitted)} of {len(results)}")
    if cache_stats:
        s = cache_stats
        print(
            "shared cache      : "
            f"tables {s['table_hits']}/{s['table_hits'] + s['table_misses']} hit, "
            f"functions {s['function_hits']}/"
            f"{s['function_hits'] + s['function_misses']} hit, "
            f"memos {s['memo_hits']}/{s['memo_hits'] + s['memo_misses']} hit"
        )
    for tr in results.values():
        if not tr.admitted:
            continue
        report = tr.report
        budget = (
            f"{tr.bytes_used} of {tr.spec.byte_budget} budgeted"
            if tr.spec.byte_budget is not None
            else f"{tr.bytes_used}"
        )
        flag = "  [OVER BUDGET]" if tr.over_budget else ""
        print(
            f"tenant {tr.spec.name}: {len(report.windows)} windows, "
            f"mean {metric_name} error {report.mean_error:.4g}, "
            f"bytes {budget}{flag}"
        )
    for tr in rejected:
        print(f"tenant {tr.spec.name}: rejected ({tr.reason})")


def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.metrics_interval is not None and not args.metrics:
        print(
            "error: --metrics-interval needs --metrics PATH to write to",
            file=sys.stderr,
        )
        return 2
    serve_addr = None
    if args.serve_metrics:
        try:
            serve_addr = parse_serve_spec(args.serve_metrics)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.shards > 1 and args.wire_format != "v2":
        print(
            "error: --shards > 1 fans shard histograms in at the wire "
            "level and needs --wire-format v2",
            file=sys.stderr,
        )
        return 2
    if args.capacity_bytes is not None and args.tenants is None:
        print("error: --capacity-bytes needs --tenants", file=sys.stderr)
        return 2
    tenants: Optional[List[TenantSpec]] = None
    if args.tenants is not None:
        try:
            tenants = TenantSpec.parse_many(args.tenants)
        except ValueError as exc:
            print(f"error: --tenants: {exc}", file=sys.stderr)
            return 2
    domain = UIDDomain(args.height)
    table = generate_subnet_table(domain, seed=args.seed)
    ts, uids = generate_timestamped_trace(
        table, args.packets, duration=args.duration,
        seed=args.seed + 1, model=TrafficModel(),
    )
    trace = Trace(ts, uids)
    half = args.duration / 2
    faults = None
    if args.faults:
        try:
            faults = FaultModel.parse(args.faults)
        except ValueError as exc:
            print(f"error: --faults: {exc}", file=sys.stderr)
            return 2
    slo_rules = []
    if args.slo:
        try:
            slo_rules.extend(parse_slo_spec(args.slo))
        except ValueError as exc:
            print(f"error: --slo: {exc}", file=sys.stderr)
            return 2
    if args.slo_file:
        try:
            slo_rules.extend(load_slo_file(args.slo_file))
        except (OSError, ValueError) as exc:
            print(f"error: --slo-file: {exc}", file=sys.stderr)
            return 2
    metric = get_metric(args.metric)
    system_options = dict(
        num_monitors=args.monitors,
        stale_policy=args.stale_policy,
        incremental=args.incremental_rebuilds,
        faults=faults,
        parallel=args.parallel,
        wire_format=args.wire_format,
    )
    with ExitStack() as stack:
        if args.journal:
            stack.enter_context(use_journal(EventJournal(args.journal)))
        tracer = None
        if args.trace:
            tracer = stack.enter_context(use_tracer(LifecycleTracer()))
        engine = None
        if slo_rules:
            engine = stack.enter_context(
                use_slo_engine(SLOEngine(slo_rules))
            )
        if serve_addr is not None:
            server = stack.enter_context(
                MetricsServer(get_registry(), *serve_addr, slo=engine)
            )
            print(
                f"serving metrics at {server.url}/metrics",
                file=sys.stderr,
            )
        if args.metrics_interval is not None:
            stack.enter_context(
                PeriodicMetricsWriter(
                    get_registry(), args.metrics,
                    fmt=args.metrics_format,
                    interval=args.metrics_interval,
                )
            )
        with use_stream_kernel_mode(args.stream_kernels):
            if tenants is not None:
                # Multi-tenant serving: admission + per-tenant runs over
                # one shared cache (tenant specs carry their own
                # algorithm/budget; --algorithm/--budget are ignored).
                serving = stack.enter_context(
                    ServingEngine(
                        table, metric, tenants,
                        shards=args.shards,
                        capacity_bytes=args.capacity_bytes,
                        **system_options,
                    )
                )
                results = serving.run(
                    trace.slice_time(0, half),
                    trace.slice_time(half, args.duration),
                    window_width=half / max(1, args.windows),
                )
                _print_tenant_reports(
                    results, args.metric, serving.cache.stats()
                )
            else:
                if args.shards > 1:
                    system = stack.enter_context(
                        ShardedMonitoringSystem(
                            table, metric, shards=args.shards,
                            algorithm=args.algorithm,
                            budget=args.budget, **system_options,
                        )
                    )
                else:
                    system = MonitoringSystem(
                        table, metric, algorithm=args.algorithm,
                        budget=args.budget, **system_options,
                    )
                system.train(trace.slice_time(0, half))
                report = system.run(
                    trace.slice_time(half, args.duration),
                    window_width=half / max(1, args.windows),
                )
                _print_report(
                    report, args.metric, args.monitors, faults is not None
                )
        if tracer is not None:
            # Diagnostics go to stderr: replay reconstructs stdout from
            # the journal alone, and the journal does not carry these
            # aggregate tracer totals.
            c = tracer.conservation()
            verdict = "ok" if tracer.conservation_ok() else "VIOLATED"
            print(
                f"lifecycle conservation {verdict}: "
                f"sent={c['sent']} delivered={c['delivered']} "
                f"dropped={c['dropped']} expired={c['expired']}",
                file=sys.stderr,
            )
        if serve_addr is not None and args.serve_linger > 0:
            # Keep /metrics scrapeable after the run (CI smoke, manual
            # inspection of a short run).
            sys.stdout.flush()
            time.sleep(args.serve_linger)
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    try:
        events = read_journal(args.journal)
        report = replay_system_report(events)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    run_start = next(
        (e for e in events if e.get("event") == "run_start"), None
    )
    metric_name = (run_start or {}).get("metric") or "?"
    monitors = (run_start or {}).get("monitors")
    degraded = bool((run_start or {}).get("faults"))
    _print_report(report, metric_name, monitors, degraded)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    try:
        events = read_journal(args.journal)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    doc = chrome_trace(events)
    text = json.dumps(doc, sort_keys=True) + "\n"
    out = args.output or args.journal + ".trace.json"
    if out == "-":
        sys.stdout.write(text)
    else:
        with open(out, "w") as f:
            f.write(text)
        flows = sum(
            1 for e in doc["traceEvents"] if e.get("ph") == "s"
        )
        print(
            f"wrote {out}: {len(doc['traceEvents'])} trace events, "
            f"{flows} delivery flows, from {len(events)} journal events "
            f"(load it at https://ui.perfetto.dev)"
        )
    bad = unpaired_flows(doc)
    if bad:
        shown = ", ".join(bad[:5]) + ("..." if len(bad) > 5 else "")
        print(
            f"warning: {len(bad)} unpaired delivery flow(s): {shown} "
            f"(journal from a run without --trace, or truncated?)",
            file=sys.stderr,
        )
    return 0


_CLEAR_SCREEN = "\x1b[2J\x1b[H"


def _cmd_top(args: argparse.Namespace) -> int:
    refreshes = 0
    source = TopSource(args.source)
    try:
        while True:
            try:
                state = source.poll()
            except (OSError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            if refreshes and sys.stdout.isatty():
                sys.stdout.write(_CLEAR_SCREEN)
            sys.stdout.write(render_top(state, max_rows=args.rows))
            sys.stdout.flush()
            refreshes += 1
            if args.once or state.finished:
                return 0
            if args.max_refreshes and refreshes >= args.max_refreshes:
                return 0
            time.sleep(args.refresh)
    except KeyboardInterrupt:
        return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if not args.watch:
        try:
            records = load_jsonl(args.metrics_file)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        sys.stdout.write(render_summary(records))
        return 0
    renders = 0
    last_size = -1
    try:
        while True:
            try:
                size = os.path.getsize(args.metrics_file)
            except OSError:
                size = -1  # not written yet; keep waiting
            if size >= 0 and size != last_size:
                try:
                    records = load_jsonl(args.metrics_file)
                except (OSError, ValueError):
                    records = None  # mid-write; retry next tick
                if records is not None:
                    last_size = size
                    if renders and sys.stdout.isatty():
                        sys.stdout.write(_CLEAR_SCREEN)
                    sys.stdout.write(render_summary(records))
                    sys.stdout.flush()
                    renders += 1
            if args.watch_max and renders >= args.watch_max:
                return 0
            time.sleep(args.watch_interval)
    except KeyboardInterrupt:
        return 0


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Compact histograms for hierarchical identifiers "
        "(Reiss, Garofalakis & Hellerstein, VLDB 2006).",
    )
    parser.add_argument("--version", action="version", version=__version__)
    # Observability flags, shared by every subcommand.
    metrics = argparse.ArgumentParser(add_help=False)
    metrics.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="capture instrumentation (timings, counters, spans) to PATH",
    )
    metrics.add_argument(
        "--metrics-format", choices=EXPORT_FORMATS, default="json",
        help="metrics file format (default json = JSON-lines, readable "
        "by 'repro stats')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a synthetic workload",
                       parents=[metrics])
    g.add_argument("--height", type=int, default=16,
                   help="identifier domain height (default 16)")
    g.add_argument("--packets", type=int, default=500_000)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("-o", "--output", required=True, help="output .npz path")
    g.set_defaults(func=_cmd_generate)

    b = sub.add_parser("build", help="construct a partitioning function",
                       parents=[metrics])
    b.add_argument("workload", help="workload .npz from 'generate'")
    b.add_argument("--algorithm", default="lpm_greedy",
                   choices=sorted(available_algorithms()))
    b.add_argument("--metric", default="rms",
                   choices=sorted(available_metrics()))
    b.add_argument("--budget", type=int, default=100)
    b.add_argument("-o", "--output", required=True,
                   help="output .bin (wire format) or .json path")
    b.set_defaults(func=_cmd_build)

    e = sub.add_parser("evaluate",
                       help="score a function against a workload",
                       parents=[metrics])
    e.add_argument("workload")
    e.add_argument("function")
    e.set_defaults(func=_cmd_evaluate)

    i = sub.add_parser("inspect", help="print a function's buckets",
                       parents=[metrics])
    i.add_argument("function")
    i.set_defaults(func=_cmd_inspect)

    s = sub.add_parser("simulate",
                       help="run the end-to-end monitoring pipeline",
                       parents=[metrics])
    s.add_argument("--height", type=int, default=14)
    s.add_argument("--packets", type=int, default=200_000)
    s.add_argument("--duration", type=float, default=60.0)
    s.add_argument("--windows", type=int, default=4,
                   help="live windows to decode (default 4)")
    s.add_argument("--monitors", type=int, default=4)
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("--algorithm", default="lpm_greedy",
                   choices=sorted(available_algorithms()))
    s.add_argument("--metric", default="rms",
                   choices=sorted(available_metrics()))
    s.add_argument("--budget", type=int, default=80)
    s.add_argument("--faults", metavar="SPEC", default=None,
                   help="inject channel faults, e.g. "
                   "'drop=0.1,dup=0.05,delay=0.1,crash=0.01,seed=7' "
                   "(keys: drop, dup, reorder, delay, max_delay, crash, "
                   "install_drop, seed)")
    s.add_argument("--stale-policy", choices=STALE_POLICIES,
                   default="strict",
                   help="how decode treats stale-version histograms "
                   "(default strict)")
    s.add_argument("--incremental-rebuilds", action="store_true",
                   help="subtree-memoized DP rebuilds: recalibrations "
                   "re-solve only drifted subtrees (nonoverlapping/"
                   "overlapping only; results are bit-identical)")
    s.add_argument("--stream-kernels", choices=STREAM_KERNEL_MODES,
                   default="fast",
                   help="serving-path kernels: compiled 'fast' (default) "
                   "or the 'naive' reference loops; results are "
                   "bit-identical (also REPRO_STREAM_KERNELS)")
    s.add_argument("--parallel", type=int, default=1, metavar="N",
                   help="partitioning worker threads across monitors "
                   "(default 1 = serial; results are identical)")
    s.add_argument("--wire-format", choices=WIRE_FORMATS, default="v2",
                   help="histogram wire format: 'v2' self-describing "
                   "delta/varint payloads queryable without decode "
                   "(default) or 'v1' modelled (node, 32-bit counter) "
                   "pairs; estimates are bit-identical")
    s.add_argument("--shards", type=int, default=1, metavar="K",
                   help="hash-shard UIDs across K worker processes with "
                   "wire-level fan-in (default 1 = serial; reports are "
                   "bit-identical; needs --wire-format v2)")
    s.add_argument("--tenants", metavar="SPEC", default=None,
                   help="serve a multi-tenant fleet instead of one "
                   "system, e.g. 'alpha:budget=100,bytes=65536;"
                   "beta:algorithm=nonoverlapping' (keys: algorithm, "
                   "budget, bytes, seed); combines with --shards")
    s.add_argument("--capacity-bytes", type=int, default=None,
                   metavar="N",
                   help="admission-control ceiling on the sum of "
                   "declared tenant byte budgets (needs --tenants)")
    s.add_argument("--journal", metavar="PATH", default=None,
                   help="record every pipeline event (installs, faults, "
                   "decodes) as JSON lines; replay with 'repro replay'")
    s.add_argument("--trace", action="store_true",
                   help="trace every histogram copy's lifecycle "
                   "(sent/dropped/delayed/delivered + decode outcome); "
                   "with --journal the trace.* events feed 'repro trace'")
    s.add_argument("--slo", metavar="SPEC", default=None,
                   help="per-window SLO rules, e.g. "
                   "'coverage>=0.9,delivery_p99_windows<=2,"
                   "drift_score<=0.5' (delivery_* quantiles need "
                   "--trace); breaches fire alerts")
    s.add_argument("--slo-file", metavar="PATH", default=None,
                   help="load SLO rules from a JSON (or, on 3.11+, TOML) "
                   "file; combined with --slo rules")
    s.add_argument("--serve-metrics", metavar="[HOST]:PORT", default=None,
                   help="serve live Prometheus text at /metrics (and the "
                   "per-window series at /series.json) while the run "
                   "executes, e.g. ':9100'")
    s.add_argument("--serve-linger", type=float, default=0.0,
                   metavar="SECONDS",
                   help="keep the metrics endpoint up this long after "
                   "the run finishes (default 0)")
    s.add_argument("--metrics-interval", type=float, default=None,
                   metavar="SECONDS",
                   help="re-write the --metrics file every SECONDS while "
                   "the run executes (final state is always written)")
    s.set_defaults(func=_cmd_simulate)

    st = sub.add_parser("stats",
                        help="pretty-print a captured metrics file")
    st.add_argument("metrics_file",
                    help="JSON-lines file written by --metrics")
    st.add_argument("--watch", action="store_true",
                    help="keep re-rendering as the file grows (for "
                    "'simulate --metrics-interval' runs); Ctrl-C to stop")
    st.add_argument("--watch-interval", type=float, default=0.5,
                    metavar="SECONDS",
                    help="polling interval for --watch (default 0.5)")
    st.add_argument("--watch-max", type=int, default=0, metavar="N",
                    help="stop --watch after N renders (0 = run until "
                    "interrupted)")
    st.set_defaults(func=_cmd_stats)

    r = sub.add_parser("replay",
                       help="reconstruct and print a run summary from an "
                       "event journal (no re-simulation)")
    r.add_argument("journal", help="journal written by simulate --journal")
    r.set_defaults(func=_cmd_replay)

    tr = sub.add_parser("trace",
                        help="export a journal as Chrome Trace Event JSON "
                        "(loadable in Perfetto / chrome://tracing)")
    tr.add_argument("journal",
                    help="journal written by simulate --journal --trace")
    tr.add_argument("-o", "--output", metavar="PATH", default=None,
                    help="output path (default <journal>.trace.json; "
                    "'-' writes the JSON to stdout)")
    tr.set_defaults(func=_cmd_trace)

    t = sub.add_parser("top",
                       help="in-terminal dashboard over a live run "
                       "(journal file or metrics-server URL)")
    t.add_argument("source",
                   help="journal path, or metrics-server base URL like "
                   "http://127.0.0.1:9100")
    t.add_argument("--refresh", type=float, default=2.0, metavar="SECONDS",
                   help="refresh interval (default 2)")
    t.add_argument("--once", action="store_true",
                   help="render one frame and exit")
    t.add_argument("--rows", type=int, default=12, metavar="N",
                   help="window rows to show (default 12, most recent)")
    t.add_argument("--max-refreshes", type=int, default=0, metavar="N",
                   help="exit after N frames (0 = until run_end/Ctrl-C)")
    t.set_defaults(func=_cmd_top)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    metrics_path = getattr(args, "metrics", None)
    serving = getattr(args, "serve_metrics", None)
    if not metrics_path and not serving:
        return args.func(args)
    # A live registry is needed both to capture to a file and to serve
    # /metrics; the file is only written when a path was given.
    registry = MetricsRegistry()
    with use_registry(registry):
        rc = args.func(args)
    if metrics_path:
        write_metrics(registry, metrics_path, args.metrics_format)
    return rc


if __name__ == "__main__":
    sys.exit(main())
