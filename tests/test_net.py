"""Tests for the IPv4/prefix substrate."""

import pytest
from hypothesis import given, strategies as st

from repro import UIDDomain
from repro.net import (
    PrefixTable,
    PrefixTrie,
    format_ipv4,
    node_to_prefix,
    parse_cidr,
    parse_ipv4,
    prefix_to_node,
)
from repro.net.ipaddr import IPV4_DOMAIN, format_cidr


class TestIPv4:
    def test_parse_format(self):
        assert parse_ipv4("10.0.0.1") == (10 << 24) + 1
        assert format_ipv4((10 << 24) + 1) == "10.0.0.1"
        assert parse_ipv4("255.255.255.255") == 2**32 - 1

    def test_parse_rejects_garbage(self):
        for bad in ["10.0.0", "256.0.0.1", "a.b.c.d", "1.2.3.4.5"]:
            with pytest.raises(ValueError):
                parse_ipv4(bad)

    def test_format_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            format_ipv4(2**32)

    def test_parse_cidr(self):
        addr, length = parse_cidr("192.168.0.0/16")
        assert format_ipv4(addr) == "192.168.0.0"
        assert length == 16

    def test_cidr_rejects_host_bits(self):
        with pytest.raises(ValueError, match="host bits"):
            parse_cidr("192.168.0.1/16")

    def test_cidr_rejects_missing_length(self):
        with pytest.raises(ValueError):
            parse_cidr("192.168.0.0")

    def test_prefix_node_roundtrip(self):
        addr, length = parse_cidr("172.16.0.0/12")
        node = prefix_to_node(addr, length)
        assert UIDDomain.depth(node) == 12
        assert node_to_prefix(node) == (addr, length)
        assert format_cidr(*node_to_prefix(node)) == "172.16.0.0/12"

@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_ipv4_roundtrip(value):
    assert parse_ipv4(format_ipv4(value)) == value


@given(st.integers(min_value=0, max_value=32), st.data())
def test_cidr_node_roundtrip(length, data):
    prefix = data.draw(st.integers(min_value=0, max_value=(1 << length) - 1
                                   if length else 0))
    addr = prefix << (32 - length) if length < 32 else prefix
    node = prefix_to_node(addr, length)
    assert node_to_prefix(node) == (addr, length)


class TestPrefixTrie:
    @pytest.fixture
    def trie(self):
        dom = UIDDomain(8)
        t = PrefixTrie(dom)
        t.insert(dom.parse_prefix_str("*"), "default")
        t.insert(dom.parse_prefix_str("1*"), "upper")
        t.insert(dom.parse_prefix_str("1010*"), "deep")
        return t

    def test_longest_match(self, trie):
        dom = trie.domain
        assert trie.lookup(0b00000000) == "default"
        assert trie.lookup(0b11000000) == "upper"
        assert trie.lookup(0b10100001) == "deep"

    def test_all_matches_shallowest_first(self, trie):
        dom = trie.domain
        matches = trie.all_matches(0b10100001)
        assert [trie.get(n) for n in matches] == ["default", "upper", "deep"]

    def test_no_match(self):
        dom = UIDDomain(4)
        t = PrefixTrie(dom)
        t.insert(dom.parse_prefix_str("01*"))
        assert t.longest_match(0b1100) is None
        with pytest.raises(KeyError):
            t.lookup(0b1100)

    def test_remove(self, trie):
        node = trie.domain.parse_prefix_str("1010*")
        trie.remove(node)
        assert trie.lookup(0b10100001) == "upper"

    def test_insert_invalid(self):
        t = PrefixTrie(UIDDomain(2))
        with pytest.raises(ValueError):
            t.insert(1 << 10)


class TestPrefixTable:
    def test_nonoverlap_and_coverage_checks(self):
        dom = UIDDomain(3)
        t = PrefixTable(dom)
        t.extend([dom.node(1, 0), dom.node(1, 1)])
        assert t.is_nonoverlapping()
        assert t.covers_domain()
        t.add(dom.node(2, 1))
        assert not t.is_nonoverlapping()

    def test_empty_covers_nothing(self):
        assert not PrefixTable(UIDDomain(3)).covers_domain()

    def test_length_distribution(self):
        dom = UIDDomain(3)
        t = PrefixTable(dom)
        t.extend([dom.node(1, 0), dom.node(2, 2), dom.node(2, 3)])
        assert t.prefix_length_distribution() == {1: 1, 2: 2}

    def test_to_trie(self):
        dom = UIDDomain(3)
        t = PrefixTable(dom)
        t.add(dom.node(1, 0), "low")
        t.add(dom.node(1, 1), "high")
        trie = t.to_trie()
        assert trie.lookup(0) == "low"
        assert trie.lookup(7) == "high"
