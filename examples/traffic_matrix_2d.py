"""Two-dimensional histograms: a source x destination traffic matrix.

The paper's Section 4.2 extends the histograms to multiple hierarchical
dimensions: a bucket becomes a rectangle of (source prefix, destination
prefix).  This example builds a 2-D traffic matrix over two subnet
cuts, constructs optimal nonoverlapping and overlapping 2-D histograms,
and shows the nested rectangles the overlapping DP selects.

Run:  python examples/traffic_matrix_2d.py
"""

import numpy as np

from repro import UIDDomain, get_metric
from repro.algorithms import (
    GridGroups,
    build_nonoverlapping_nd,
    build_overlapping_nd,
    evaluate_nd,
)


def cascade_vector(height: int, rng: np.random.Generator) -> np.ndarray:
    """Skewed, spatially-correlated per-prefix weights."""
    w = np.ones(1)
    for _ in range(height):
        frac = rng.beta(0.5, 0.5, size=w.size)
        w = np.stack([w * frac, w * (1 - frac)], axis=1).reshape(-1)
    return w


def main() -> None:
    rng = np.random.default_rng(17)
    height = 5
    domain = UIDDomain(height)
    n = domain.num_uids
    cut = [domain.node(height, p) for p in range(n)]

    # Traffic matrix: correlated cascades per dimension.
    probs = np.outer(cascade_vector(height, rng), cascade_vector(height, rng))
    probs /= probs.sum()
    counts = rng.multinomial(500_000, probs.reshape(-1)).reshape(n, n)
    grid = GridGroups([domain, domain], [cut, cut], counts.astype(float))
    print(f"traffic matrix: {n}x{n} (src x dst), "
          f"{int(counts.sum())} flows, "
          f"{int((counts > 0).sum())} nonzero cells")

    metric = get_metric("rms")
    budget = 24
    rn = build_nonoverlapping_nd(grid, metric, budget)
    ro = build_overlapping_nd(grid, metric, budget)

    print(f"\n{'buckets':>8}  {'nonoverlapping':>15}  {'overlapping':>12}")
    for b in (4, 8, 16, 24):
        print(f"{b:>8}  {rn.error_at(b):>15.2f}  {ro.error_at(b):>12.2f}")

    buckets = ro.buckets_at(budget)
    measured = evaluate_nd(grid, buckets, metric)
    print(f"\noverlapping @ {budget} buckets: predicted "
          f"{ro.error_at(budget):.2f}, measured {measured:.2f}")
    print("bucket rectangles (src prefix x dst prefix):")
    for r in buckets[:8]:
        src = domain.node_prefix_str(r[0])
        dst = domain.node_prefix_str(r[1])
        print(f"  [{src:>6} x {dst:>6}]")
    if len(buckets) > 8:
        print(f"  ... and {len(buckets) - 8} more")


if __name__ == "__main__":
    main()
