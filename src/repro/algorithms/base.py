"""Shared dynamic-programming machinery (paper Section 3.1).

All of the paper's construction algorithms traverse the (pruned) UID
hierarchy bottom-up, maintaining per-node tables indexed by a bucket
budget, and combine child tables by splitting the budget — a
``(min, +)`` (or ``(min, max)`` for max-combine metrics) convolution.
This module provides:

* :func:`knapsack_merge` — the budget-splitting convolution with
  argmin tracking for solution reconstruction (re-exported from
  :mod:`repro.algorithms.kernels`, which holds the broadcast kernel
  and the naive reference it is tested against), bounded by per-subtree
  bucket capacities (the classic tree-knapsack bound that keeps total
  work near ``O(|G| b)``);
* :class:`DPContext` — postorder leaf arrays over a
  :class:`~repro.core.hierarchy.PrunedHierarchy` that evaluate
  ``grperr`` (the error of estimating every group in a subtree at a
  fixed density) in one vectorized pass, including the O(1)
  contribution of empty regions (Section 4.3).  Batched evaluation
  over many densities (:meth:`DPContext.grperr_many`) serves the
  overlapping DP's ancestor loop, and when the active kernel mode is
  ``"suffstats"`` the context precomputes weighted postorder prefix
  sums of each metric-declared sufficient statistic so sum-combine
  ``grperr`` is O(1) per call instead of O(leaves);
* :class:`ConstructionResult` — a constructed partitioning function
  together with the full budget/error curve (one DP run yields the
  optimal error for *every* budget up to the requested one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..core.errors import PenaltyMetric
from ..core.hierarchy import PNode, PrunedHierarchy
from .kernels import INF, kernel_mode, knapsack_merge

__all__ = ["INF", "knapsack_merge", "DPContext", "ConstructionResult"]


@dataclass
class ConstructionResult:
    """Output of a construction algorithm.

    Attributes
    ----------
    make_function:
        Callable mapping a budget ``B`` (``1 <= B <= budget``) to the
        best partitioning function found for that budget.
    curve:
        ``curve[B]`` is the algorithm's error for budget ``B``
        (``inf`` where infeasible, e.g. budgets too small to cut the
        hierarchy); ``curve[0]`` is always ``inf``/unused.
    budget:
        The largest budget the curve covers.
    """

    make_function: Callable[[int], object]
    curve: np.ndarray
    budget: int
    stats: Dict[str, float] = field(default_factory=dict)

    def error_at(self, b: int) -> float:
        """Best error using at most ``b`` buckets."""
        b = min(b, self.budget)
        if b < 1:
            return INF
        return float(np.min(self.curve[1 : b + 1]))

    def best_budget(self, b: int) -> int:
        """The budget ``<= b`` achieving :meth:`error_at`."""
        b = min(b, self.budget)
        return int(np.argmin(self.curve[1 : b + 1])) + 1

    def function_at(self, b: int):
        """The best partitioning function using at most ``b`` buckets."""
        return self.make_function(self.best_budget(b))


class DPContext:
    """Vectorized ``grperr`` evaluation over a pruned hierarchy.

    The pruned hierarchy's postorder places the leaves of every subtree
    in a contiguous slice, so the error of estimating all groups below
    a node at one density is a single vectorized penalty computation:
    group leaves contribute ``penalty(count, density)`` each, and a
    zero node summarizing ``z`` empty groups contributes
    ``penalty(0, density)`` with weight ``z``.

    Parameters
    ----------
    hierarchy, metric:
        The pruned hierarchy and the penalty metric to evaluate.
    suffstats:
        Force the sufficient-statistic fast path on (``True``) or off
        (``False``).  The default (``None``) follows the active kernel
        mode (:func:`repro.algorithms.kernels.kernel_mode`): only the
        ``"suffstats"`` mode enables it.  The fast path engages only
        for sum-combine metrics that declare a decomposition via
        :meth:`~repro.core.errors.PenaltyMetric.suffstats`; everything
        else keeps the exact vectorized slice path.
    """

    def __init__(
        self,
        hierarchy: PrunedHierarchy,
        metric: PenaltyMetric,
        suffstats: Optional[bool] = None,
    ) -> None:
        if not isinstance(metric, PenaltyMetric):
            raise TypeError(
                "the dynamic programs run on PenaltyMetric instances; "
                "wrap exotic metrics or use the exhaustive oracle"
            )
        self.hierarchy = hierarchy
        self.metric = metric
        mode = kernel_mode()
        #: Whether batched/vectorized evaluation is active (everything
        #: but the ``"naive"`` reference mode).
        self.batched = mode != "naive"
        # Leaf arrays in postorder; per-node contiguous slices.  They
        # depend only on the hierarchy (not the metric or kernel mode),
        # so they are built once per hierarchy and shared by every
        # context over it.
        cached = getattr(hierarchy, "_dp_leaf_arrays", None)
        if cached is None:
            n = len(hierarchy.nodes)
            actual: List[float] = []
            weight: List[float] = []
            leaf_lo = np.zeros(n, dtype=np.int64)
            leaf_hi = np.zeros(n, dtype=np.int64)
            for p in hierarchy.nodes:
                if p.is_leaf:
                    leaf_lo[p.index] = len(actual)
                    if p.kind == "group":
                        actual.append(p.tuples)
                        weight.append(1.0)
                    else:  # zero summary
                        actual.append(0.0)
                        weight.append(float(p.n_groups))
                    leaf_hi[p.index] = len(actual)
                else:
                    leaf_lo[p.index] = leaf_lo[p.left.index]
                    leaf_hi[p.index] = leaf_hi[p.right.index]
            cached = (
                leaf_lo,
                leaf_hi,
                np.asarray(actual, dtype=np.float64),
                np.asarray(weight, dtype=np.float64),
            )
            hierarchy._dp_leaf_arrays = cached
        self.leaf_lo, self.leaf_hi, self.leaf_actual, self.leaf_weight = cached
        # Sufficient-statistic prefix arrays: stats_prefix[k][hi] -
        # stats_prefix[k][lo] is the weighted sum of the k-th statistic
        # over any postorder slice, making sum-combine grperr O(1).
        self._stats_prefix: Optional[List[np.ndarray]] = None
        if suffstats is None:
            suffstats = mode == "suffstats"
        if suffstats and metric.combine == "sum":
            arrays = metric.suffstats(self.leaf_actual)
            if arrays is not None:
                self._stats_prefix = [
                    np.concatenate(([0.0], np.cumsum(self.leaf_weight * a)))
                    for a in arrays
                ]
        # Per-node own-density errors, filled lazily on the first
        # grperr_own call in a batched mode (the nonoverlapping sweep
        # asks for every node's value; low-memory reconstruction asks
        # again per re-sweep, so the precompute amortizes further).
        self._own_err: Optional[np.ndarray] = None

    @property
    def uses_suffstats(self) -> bool:
        """Whether the O(1) sufficient-statistic path is active."""
        return self._stats_prefix is not None

    def grperr(self, pnode: PNode, density: float) -> float:
        """Aggregate penalty of estimating every group below ``pnode``
        (zeros included) at the given density."""
        lo, hi = self.leaf_lo[pnode.index], self.leaf_hi[pnode.index]
        if lo == hi:
            return 0.0
        if self._stats_prefix is not None:
            stats = tuple(P[hi] - P[lo] for P in self._stats_prefix)
            return float(self.metric.penalty_from_stats(stats, density))
        pens = self.metric.penalty_array(self.leaf_actual[lo:hi], density)
        if self.metric.combine == "sum":
            return float(pens @ self.leaf_weight[lo:hi])
        return float(pens.max())

    def grperr_many(
        self, pnode: PNode, densities: Sequence[float]
    ) -> np.ndarray:
        """Batched :meth:`grperr` of one node at many densities.

        The overlapping DP evaluates every leaf against each of its
        O(log|U|) ancestor densities and the quantized heuristic
        against every density cell; batching turns those per-density
        calls into one vectorized evaluation.  Results are bit-for-bit
        identical to repeated :meth:`grperr` calls: single-leaf slices
        (the common case — group leaves and zero summaries are both one
        entry) broadcast the same elementwise operations, and longer
        slices fall back to one exact slice evaluation per density.
        """
        d = np.asarray(densities, dtype=np.float64)
        lo, hi = self.leaf_lo[pnode.index], self.leaf_hi[pnode.index]
        if lo == hi:
            return np.zeros(d.shape)
        if self._stats_prefix is not None:
            stats = tuple(P[hi] - P[lo] for P in self._stats_prefix)
            return np.asarray(
                self.metric.penalty_from_stats(stats, d), dtype=np.float64
            )
        is_sum = self.metric.combine == "sum"
        if self.batched and hi - lo == 1:
            pens = self.metric.penalty_array(self.leaf_actual[lo:hi], d)
            if is_sum:
                return pens * self.leaf_weight[lo]
            return np.asarray(pens, dtype=np.float64)
        actual = self.leaf_actual[lo:hi]
        weight = self.leaf_weight[lo:hi]
        out = np.empty(d.shape)
        for i, di in enumerate(d):
            pens = self.metric.penalty_array(actual, float(di))
            out[i] = pens @ weight if is_sum else pens.max()
        return out

    def grperr_rows(
        self, idx: np.ndarray, densities: np.ndarray
    ) -> np.ndarray:
        """Stacked :meth:`grperr_many` over many nodes.

        ``densities`` is either one shared density vector ``(D,)`` or a
        per-node matrix ``(K, D)`` aligned with ``idx``.  Row ``k``
        equals ``grperr_many(nodes[idx[k]], densities[k])`` bit for
        bit: the suffstats and single-leaf paths broadcast the same
        elementwise penalty expressions over a ``(K, D)`` grid (IEEE
        elementwise operations are shape-independent), and longer leaf
        slices fall back to the per-node evaluation verbatim.  The
        incremental overlapping rebuild uses this to re-condition every
        base node's dirty-ancestor rows in one call.  Batched modes
        only.
        """
        d = np.asarray(densities, dtype=np.float64)
        idx = np.asarray(idx)
        if d.ndim == 1:
            d = np.broadcast_to(d[None, :], (idx.shape[0], d.shape[0]))
        out = np.zeros((idx.shape[0], d.shape[1]))
        lo, hi = self.leaf_lo[idx], self.leaf_hi[idx]
        if self._stats_prefix is not None:
            rows = np.nonzero(hi > lo)[0]
            if rows.size:
                stats = tuple(
                    (P[hi[rows]] - P[lo[rows]])[:, None]
                    for P in self._stats_prefix
                )
                out[rows] = np.asarray(
                    self.metric.penalty_from_stats(stats, d[rows]),
                    dtype=np.float64,
                )
            return out
        is_sum = self.metric.combine == "sum"
        lengths = hi - lo
        single = np.nonzero(lengths == 1)[0]
        if single.size:
            pens = self.metric.penalty_array(
                self.leaf_actual[lo[single]][:, None], d[single]
            )
            out[single] = (
                pens * self.leaf_weight[lo[single]][:, None]
                if is_sum
                else pens
            )
        multi = np.nonzero(lengths > 1)[0]
        if multi.size:
            nodes = self.hierarchy.nodes
            for k in multi.tolist():
                out[k] = self.grperr_many(nodes[int(idx[k])], d[k])
        return out

    def grperr_own(self, pnode: PNode) -> float:
        """``grperr`` at the node's own density — the error of making
        ``pnode`` a bucket in a nonoverlapping cut.

        Batched modes answer from a precomputed per-node array; the
        single-leaf entries (group leaves and zero summaries) are
        evaluated in one vectorized pass whose per-element operations
        match the seed's one-element slice evaluation bit for bit, and
        longer slices run the seed expression verbatim per node.
        """
        if self.batched:
            return float(self.own_errors()[pnode.index])
        return self.grperr(pnode, pnode.density)

    def own_errors(self) -> np.ndarray:
        """The per-node own-density error array (computed on first use).

        Entry ``i`` equals ``grperr(nodes[i], nodes[i].density)``
        bit for bit; the nonoverlapping fast sweep indexes this array
        instead of calling :meth:`grperr_own` per node.
        """
        if self._own_err is None:
            self._own_err = self._compute_own_errors()
        return self._own_err

    def node_densities(self) -> np.ndarray:
        """Per-node densities in postorder (cached on the hierarchy —
        they depend only on the window's counts, not the metric)."""
        hierarchy = self.hierarchy
        dens = getattr(hierarchy, "_dp_densities", None)
        if dens is None:
            nodes = hierarchy.nodes
            dens = np.fromiter(
                (p.density for p in nodes),
                dtype=np.float64,
                count=len(nodes),
            )
            hierarchy._dp_densities = dens
        return dens

    def splice_own_errors(
        self, prev: np.ndarray, dirty_idx: np.ndarray
    ) -> None:
        """Seed the own-error cache from a previous build over the same
        pruned structure, recomputing only the ``dirty_idx`` rows.

        A clean row's own error is a function of its subtree's counts
        alone — the same invariant that lets incremental rebuilds splice
        whole DP tables — and the subset pass runs the identical
        row-independent kernels as the full pass, so the seeded array
        matches a fresh :meth:`own_errors` bit for bit.
        """
        out = prev.copy()
        dirty_idx = np.asarray(dirty_idx)
        if dirty_idx.size:
            vals = self._compute_own_errors(only=dirty_idx)
            out[dirty_idx] = vals[dirty_idx]
        self._own_err = out

    def _compute_own_errors(
        self, only: Optional[np.ndarray] = None
    ) -> np.ndarray:
        n = len(self.hierarchy.nodes)
        dens = self.node_densities()
        out = np.zeros(n)
        lo, hi = self.leaf_lo, self.leaf_hi
        if self._stats_prefix is not None:
            nonempty = hi > lo
            if only is not None:
                sel = np.zeros(n, dtype=bool)
                sel[only] = True
                nonempty = nonempty & sel
            idx = np.nonzero(nonempty)[0]
            stats = tuple(
                P[hi[idx]] - P[lo[idx]] for P in self._stats_prefix
            )
            out[idx] = np.asarray(
                self.metric.penalty_from_stats(stats, dens[idx]),
                dtype=np.float64,
            )
            return out
        is_sum = self.metric.combine == "sum"
        lengths = hi - lo
        if only is not None:
            only = np.asarray(only)
            ls_only = lengths[only]
            single = only[ls_only == 1]
        else:
            single = np.nonzero(lengths == 1)[0]
        if single.size:
            pens = self.metric.penalty_array(
                self.leaf_actual[lo[single]], dens[single]
            )
            out[single] = (
                pens * self.leaf_weight[lo[single]] if is_sum else pens
            )
        pa = self.metric.penalty_array
        actual, weight = self.leaf_actual, self.leaf_weight
        if only is not None:
            multi = only[ls_only > 1]
        else:
            multi = np.nonzero(lengths > 1)[0]
        if multi.size:
            # Nodes whose leaf slices share a length evaluate as one
            # stacked gather + penalty + reduction.  penalty_array is
            # elementwise (it broadcasts a density column across the
            # row-per-node matrix), stacked ``matmul`` performs one dot
            # per row through the same kernel as the seed's 1-D ``@``,
            # and ``max`` is exact under any reduction order — so every
            # entry matches the per-node seed expression bit for bit.
            vals = np.empty(multi.size)
            ls = lengths[multi]
            order = np.argsort(ls, kind="stable")
            ls_sorted = ls[order]
            cuts = np.nonzero(np.diff(ls_sorted))[0] + 1
            starts = np.concatenate(([0], cuts))
            ends = np.concatenate((cuts, [ls_sorted.size]))
            for g0, g1 in zip(starts.tolist(), ends.tolist()):
                rows = order[g0:g1]
                idx = multi[rows]
                span = int(ls_sorted[g0])
                gather = lo[idx][:, None] + np.arange(span)
                pens = pa(actual[gather], dens[idx][:, None])
                if is_sum:
                    vals[rows] = np.matmul(
                        pens[:, None, :], weight[gather][:, :, None]
                    ).reshape(-1)
                else:
                    vals[rows] = pens.max(axis=1)
            out[multi] = vals
        return out

    def finalize(self, total_penalty: float) -> float:
        """Convert an aggregate penalty at the root into the metric's
        final error value over the full group universe."""
        if total_penalty == INF:
            return INF
        return self.metric.finalize_total(
            total_penalty, float(self.hierarchy.root.n_groups)
        )

    def finalize_curve(self, penalties: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`finalize` over a whole budget curve."""
        penalties = np.asarray(penalties, dtype=np.float64)
        if not self.batched:
            out = np.empty_like(penalties)
            for i, p in enumerate(penalties):
                out[i] = self.finalize(float(p))
            return out
        count = float(self.hierarchy.root.n_groups)
        out = np.full(penalties.shape, INF)
        finite = penalties != INF
        if finite.any():
            out[finite] = self.metric.finalize_total_array(
                penalties[finite], count
            )
        return out
