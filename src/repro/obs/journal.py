"""JSON-lines event journal — the pipeline's flight recorder.

While metrics answer "how much", the journal answers "what happened,
in order": one JSON object per line for every install / ack / retry /
fault / decode / recalibration event a monitoring run produces, each
stamped with a **monotonic sequence id** (gapless from 0), the window
index and the monitor id where applicable, plus a wall-clock-free
monotonic timestamp.  Because decode events carry the full per-window
accounting and the ``run_end`` event the run totals,
``repro replay <journal>`` can reconstruct the run's ``SystemReport``
**bit-identically** from the journal alone (see
:mod:`repro.streams.replay`) — which makes the journal verifiable: a
tampered or truncated journal fails replay's consistency checks.

The plumbing mirrors the metrics registry: a module-level *current*
journal defaults to a shared no-op :class:`NullJournal`, so
instrumented code pays one function call and one attribute check when
journaling is off::

    from repro.obs import EventJournal, use_journal

    with use_journal(EventJournal("run.journal")) as journal:
        system.run(live, window_width=w)

Event record shape::

    {"seq": 17, "ts": 3.052, "event": "decode", "window": 4, ...}

``ts`` is seconds since the journal was opened (monotonic clock).
Events are flushed line-by-line so concurrent readers (``repro top``)
always see a prefix of whole records.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from datetime import datetime, timezone
from typing import Dict, Iterator, List, Optional, TextIO, Union

__all__ = [
    "EventJournal",
    "BufferJournal",
    "NullJournal",
    "NULL_JOURNAL",
    "get_journal",
    "set_journal",
    "use_journal",
    "read_journal",
]

#: Event types a monitoring run emits (documented contract; the journal
#: itself accepts any type).
EVENT_TYPES = (
    "run_start",      # run configuration (monitors, algorithm, faults...)
    "rebuild",        # Control Center (re)built the partitioning function
    "install",        # one install transmission (fields: retry, acked)
    "fault.crash",    # a Monitor crash-and-restarted
    "fault.drop",     # an upstream wire copy was lost
    "fault.duplicate",  # the network created an extra wire copy
    "fault.delay",    # a delivered copy will arrive late
    "decode",         # one window decoded (full WindowReport fields)
    "drift",          # drift detector score for one window (adaptive)
    "recalibration",  # drift-triggered rebuild (adaptive)
    "run_end",        # run totals (SystemReport aggregate fields)
    # lifecycle tracing (emitted when a LifecycleTracer is scoped; see
    # repro.obs.lifecycle — fields carry the (monitor, window, version,
    # copy) trace id):
    "trace.sent",       # one wire transmission left a Monitor
    "trace.duplicated",  # this copy exists only by network duplication
    "trace.delayed",    # the copy will arrive `delay` windows late
    "trace.reordered",  # the copy was shuffled in its arrival window
    "trace.delivered",  # the copy reached the Control Center
    "trace.closed",     # final outcome + age_windows (closes the trace)
    # SLO alerting (emitted when an SLOEngine is scoped; see
    # repro.obs.slo):
    "alert.fired",      # a rule went out of bounds this window
    "alert.resolved",   # a firing rule came back in bounds
    # serving layer (see repro.serving):
    "shard.prefetch",    # one shard worker's prefetch pass (windows, bytes)
    "tenant.admitted",   # admission control accepted a tenant
    "tenant.rejected",   # admission control turned a tenant away (reason)
    "tenant.over_budget",  # a tenant's run exceeded its declared bytes
    "tenant.report",     # one tenant's run summary (windows, bytes, error)
    # cross-process telemetry (see repro.obs.crossproc): events captured
    # in a shard worker's BufferJournal are re-sequenced into the parent
    # journal in deterministic (shard, seq) order, namespaced
    # "shard.worker.<original event>" and stamped with shard /
    # worker_seq / worker_ts fields.  Replay ignores them (they carry
    # no decode state), so `repro replay` stays byte-identical:
    "shard.worker.batch",      # one monitor's prefetch build inside a worker
    "shard.worker.resources",  # a worker's per-batch CPU/RSS/GC sample
    "shard.fanin",       # one window's k-way shard merge at the center
    "shard.summary",     # per-shard resource totals (emitted at close())
)


class EventJournal:
    """Append-only JSON-lines event sink with monotonic sequence ids."""

    enabled = True

    def __init__(self, sink: Union[str, TextIO]) -> None:
        if isinstance(sink, str):
            self._file: TextIO = open(sink, "w")
            self._owns_file = True
            self.path: Optional[str] = sink
        else:
            self._file = sink
            self._owns_file = False
            self.path = getattr(sink, "name", None)
        self._lock = threading.Lock()
        self._seq = 0
        self._epoch = time.perf_counter()
        #: Wall-clock anchor (ISO-8601, UTC) for the monotonic ``ts``
        #: offsets — lets journals from different runs be time-aligned
        #: (stamped onto the ``run_start`` event by the run loop).
        self.wall_start = datetime.now(timezone.utc).isoformat()

    def emit(self, event: str, **fields) -> int:
        """Write one event; returns its sequence id."""
        with self._lock:
            seq = self._seq
            self._seq += 1
            record = {
                "seq": seq,
                "ts": round(time.perf_counter() - self._epoch, 6),
                "event": event,
            }
            record.update(fields)
            self._file.write(json.dumps(record, sort_keys=True) + "\n")
            self._file.flush()
        return seq

    @property
    def events_written(self) -> int:
        return self._seq

    def close(self) -> None:
        if self._owns_file and not self._file.closed:
            self._file.close()

    def __enter__(self) -> "EventJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class BufferJournal:
    """An in-memory journal: same ``emit`` contract as
    :class:`EventJournal`, records appended to :attr:`events` instead
    of a file.

    This is the worker-side half of cross-process journal capture
    (:mod:`repro.obs.crossproc`): a shard worker scopes a
    ``BufferJournal``, its instrumented code emits events normally, and
    the buffered records ride back over the IPC pipe (they are plain
    JSON-safe dicts) to be re-sequenced into the parent's real
    :class:`EventJournal` under the ``shard.worker.*`` namespace.
    Sequence ids are gapless from 0 *within this buffer*; ``ts`` is
    seconds since the buffer was created (monotonic clock).
    """

    enabled = True
    path = None

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._epoch = time.perf_counter()
        self.wall_start = datetime.now(timezone.utc).isoformat()
        #: Buffered event records (the same dict shape
        #: :meth:`EventJournal.emit` writes as JSON lines).
        self.events: List[Dict] = []

    def emit(self, event: str, **fields) -> int:
        """Buffer one event; returns its sequence id."""
        with self._lock:
            seq = self._seq
            self._seq += 1
            record = {
                "seq": seq,
                "ts": round(time.perf_counter() - self._epoch, 6),
                "event": event,
            }
            record.update(fields)
            self.events.append(record)
        return seq

    @property
    def events_written(self) -> int:
        return self._seq

    def close(self) -> None:
        pass

    def __enter__(self) -> "BufferJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NullJournal:
    """The disabled journal: ``emit`` is a no-op."""

    enabled = False
    path = None
    wall_start = None

    def emit(self, event: str, **fields) -> int:
        return -1

    def close(self) -> None:
        pass


#: The process-wide disabled journal (the default sink).
NULL_JOURNAL = NullJournal()

_current: Union[EventJournal, NullJournal] = NULL_JOURNAL
_current_lock = threading.Lock()


def get_journal() -> Union[EventJournal, NullJournal]:
    """The journal instrumented code currently reports into."""
    return _current


def set_journal(
    journal: Optional[Union[EventJournal, NullJournal]]
) -> Union[EventJournal, NullJournal]:
    """Install ``journal`` as the current sink (``None`` disables);
    returns the previous one."""
    global _current
    with _current_lock:
        previous = _current
        _current = journal if journal is not None else NULL_JOURNAL
    return previous


@contextmanager
def use_journal(
    journal: Optional[Union[EventJournal, NullJournal]]
) -> Iterator[Union[EventJournal, NullJournal]]:
    """Scope ``journal`` as the current sink for a ``with`` block; the
    journal is closed on exit when one was given."""
    previous = set_journal(journal)
    try:
        yield get_journal()
    finally:
        set_journal(previous)
        if journal is not None:
            journal.close()


def read_journal(path: str, strict: bool = True) -> List[Dict]:
    """Parse a journal file back into event records, enforcing the
    flight-recorder invariants: every line is a JSON object with
    ``seq``/``event``, and sequence ids are gapless from 0 (a gap means
    a truncated or tampered journal).

    ``strict=False`` is the live-tail mode (``repro top`` polling a
    journal still being written): the first malformed line — typically
    a partially flushed final record — ends the read instead of
    raising.
    """
    events: List[Dict] = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if not strict:
                    break
                raise ValueError(
                    f"{path}:{lineno}: not a journal line ({exc})"
                )
            if not isinstance(record, dict) or "event" not in record:
                if not strict:
                    break
                raise ValueError(
                    f"{path}:{lineno}: journal records need an 'event' field"
                )
            if record.get("seq") != len(events):
                if not strict:
                    break
                raise ValueError(
                    f"{path}:{lineno}: sequence gap — expected seq "
                    f"{len(events)}, got {record.get('seq')!r} "
                    f"(truncated or tampered journal?)"
                )
            events.append(record)
    return events
