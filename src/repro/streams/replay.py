"""Deterministic run reconstruction from an event journal.

A run executed with an :class:`~repro.obs.journal.EventJournal` scoped
(``repro simulate --journal run.journal``) writes one event per
install, fault, decode and recalibration.  The decode events carry the
full per-window accounting (an :class:`~.system.WindowReport`,
field-for-field) and the ``run_end`` event the aggregate totals, so the
:class:`~.system.SystemReport` can be rebuilt from the journal alone —
bit-identically, because JSON round-trips Python floats exactly
(shortest-repr) and every journalled number is a plain ``int`` or
``float``.

``repro replay run.journal`` uses this to re-print the original run
summary without re-running the simulation; the tests use it to lock the
journal schema (a replayed report must *equal* the live one).

Reconstruction is strict: the journal must be gapless (sequence ids
checked by :func:`~repro.obs.journal.read_journal`), contain exactly
one ``run_end``, and its event counts must agree with the totals that
``run_end`` claims — a truncated or hand-edited journal is an error,
not a silently wrong report.
"""

from __future__ import annotations

from dataclasses import fields, replace
from typing import Dict, List, Optional, Sequence

from ..obs import Alert
from .recalibrate import AdaptiveReport
from .system import SystemReport, WindowReport

__all__ = ["replay_system_report"]

#: WindowReport field names, in declaration order (decode events carry
#: exactly these, plus the journal's own seq/ts/event envelope).
_WINDOW_FIELDS = tuple(f.name for f in fields(WindowReport))

#: run_end totals copied onto the report.
_TOTAL_FIELDS = (
    "upstream_bytes",
    "function_bytes",
    "raw_bytes",
    "monitor_crashes",
    "expired_messages",
)


def _window_report(event: Dict[str, object]) -> WindowReport:
    missing = [name for name in _WINDOW_FIELDS if name not in event]
    if missing:
        raise ValueError(
            f"decode event (seq {event.get('seq')}) is missing "
            f"window fields: {', '.join(missing)}"
        )
    return WindowReport(**{name: event[name] for name in _WINDOW_FIELDS})


def replay_system_report(
    events: Sequence[Dict[str, object]],
) -> SystemReport:
    """Rebuild the run's report from its journal events.

    Returns an :class:`~.recalibrate.AdaptiveReport` when the journal
    contains drift/recalibration events (an adaptive run), else a plain
    :class:`~.system.SystemReport`.  Raises ``ValueError`` on a journal
    that is incomplete or internally inconsistent.
    """
    windows: List[WindowReport] = []
    drift_scores: List[float] = []
    rebuilds: List[int] = []
    alerts: List[Alert] = []
    #: rule spec -> index into ``alerts`` of the open alert.
    active_alerts: Dict[str, int] = {}
    crashes = 0
    run_end: Optional[Dict[str, object]] = None
    adaptive = False
    for event in events:
        kind = event.get("event")
        if kind == "decode":
            windows.append(_window_report(event))
        elif kind == "fault.crash":
            crashes += 1
        elif kind == "drift":
            adaptive = True
            drift_scores.append(float(event["score"]))
        elif kind == "recalibration":
            adaptive = True
            rebuilds.append(int(event["window"]))
        elif kind == "alert.fired":
            rule = str(event["rule"])
            if rule in active_alerts:
                raise ValueError(
                    f"alert.fired (seq {event.get('seq')}) for rule "
                    f"{rule!r} while it is already firing"
                )
            active_alerts[rule] = len(alerts)
            alerts.append(Alert(
                rule=rule,
                fired_window=int(event["window"]),
                value=float(event["value"]),
                threshold=float(event["threshold"]),
            ))
        elif kind == "alert.resolved":
            rule = str(event["rule"])
            index = active_alerts.pop(rule, None)
            if index is None:
                raise ValueError(
                    f"alert.resolved (seq {event.get('seq')}) for rule "
                    f"{rule!r} that was not firing"
                )
            alerts[index] = replace(
                alerts[index], resolved_window=int(event["window"])
            )
        elif kind == "run_end":
            if run_end is not None:
                raise ValueError("journal contains more than one run_end")
            run_end = event
    if run_end is None:
        raise ValueError(
            "journal has no run_end event (run still in progress, "
            "or the journal is truncated)"
        )
    if len(windows) != run_end["windows"]:
        raise ValueError(
            f"journal has {len(windows)} decode events but run_end "
            f"claims {run_end['windows']} windows"
        )
    if crashes != run_end["monitor_crashes"]:
        raise ValueError(
            f"journal has {crashes} fault.crash events but run_end "
            f"claims {run_end['monitor_crashes']} monitor crashes"
        )
    report = AdaptiveReport() if adaptive else SystemReport()
    report.windows = windows
    report.alerts = alerts
    for name in _TOTAL_FIELDS:
        setattr(report, name, run_end[name])
    if adaptive:
        report.drift_scores = drift_scores
        report.rebuilds = rebuilds
    return report
