"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import GroupTable, PrunedHierarchy, UIDDomain


@pytest.fixture
def small_instance():
    """A deterministic small instance shared across tests."""
    dom = UIDDomain(4)
    table = GroupTable(dom, [dom.node(4, p) for p in range(16)])
    counts = np.array(
        [0, 0, 5, 0, 90, 88, 0, 0, 0, 1, 2, 0, 0, 40, 0, 0], dtype=float
    )
    return dom, table, counts


@pytest.fixture
def small_hierarchy(small_instance):
    _dom, table, counts = small_instance
    return PrunedHierarchy(table, counts)
