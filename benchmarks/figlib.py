"""Shared implementation of the Figure 17-20 benches.

Each figure is one error metric swept over the bucket grid for the six
histogram types of Section 5:

* hierarchical / nonoverlapping buckets (optimal DP),
* hierarchical / overlapping buckets (optimal DP),
* hierarchical / longest-prefix-match via the greedy heuristic,
* hierarchical / longest-prefix-match via the quantized heuristic,
* end-biased histograms,
* V-Optimal histograms (RMS-built, as in the paper).

``figure_series`` returns the error table; the per-figure bench modules
time the headline construction and persist the series to
``benchmarks/results/``.
"""

from __future__ import annotations

import functools
import json
import os
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.algorithms import (
    OverlappingDP,
    build_lpm_greedy,
    build_lpm_quantized,
    build_nonoverlapping,
    build_overlapping,
)
from repro.baselines import build_end_biased, build_v_optimal
from repro.obs import MetricsRegistry, use_registry, write_metrics

from workloads import (
    BUDGETS,
    QUANTIZED_BEAM,
    QUANTIZED_BUDGETS,
    QUANTIZED_THETA,
    RESULTS_DIR,
    FigureWorkload,
    figure_workload,
    format_table,
    metric_for,
    save_series,
)

SERIES = [
    "nonoverlapping",
    "overlapping",
    "greedy",
    "quantized",
    "end_biased",
    "v_optimal",
]

#: Wall-clock construction seconds per series, keyed by metric name —
#: filled by each *uncached* ``figure_series`` evaluation and merged
#: into ``BENCH_construction.json`` by
#: :func:`merge_construction_timings`.
CONSTRUCTION_TIMINGS: Dict[str, Dict[str, float]] = {}

#: Default target for the merged timings: the repo-root perf-trajectory
#: file also written by ``benchmarks/bench_kernel.py``.
BENCH_CONSTRUCTION_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir,
    "BENCH_construction.json",
)


def _timed(timings: Dict[str, float], label: str, fn: Callable, *args, **kw):
    start = time.perf_counter()
    result = fn(*args, **kw)
    timings[label] = round(time.perf_counter() - start, 6)
    return result


@functools.lru_cache(maxsize=8)
def figure_series(metric_name: str) -> Dict[str, Dict[int, float]]:
    """Error per histogram type per bucket count for one metric."""
    wl = figure_workload()
    metric = metric_for(metric_name, wl)
    b_max = max(BUDGETS)
    out: Dict[str, Dict[int, float]] = {}
    timings: Dict[str, float] = {}

    non = _timed(
        timings, "nonoverlapping",
        build_nonoverlapping, wl.hierarchy, metric, b_max,
    )
    out["nonoverlapping"] = {b: non.error_at(b) for b in BUDGETS}

    dp = OverlappingDP(wl.hierarchy, metric, b_max)
    over = _timed(
        timings, "overlapping",
        build_overlapping, wl.hierarchy, metric, b_max,
    )
    out["overlapping"] = {b: over.error_at(b) for b in BUDGETS}

    greedy = _timed(
        timings, "greedy",
        build_lpm_greedy,
        wl.hierarchy, metric, b_max, dp=dp, curve_budgets=BUDGETS,
    )
    out["greedy"] = {b: greedy.error_at(b) for b in BUDGETS}

    quant = _timed(
        timings, "quantized",
        build_lpm_quantized,
        wl.hierarchy, metric, max(QUANTIZED_BUDGETS),
        theta=QUANTIZED_THETA, beam=QUANTIZED_BEAM,
        curve_budgets=QUANTIZED_BUDGETS,
    )
    out["quantized"] = {
        b: quant.error_at(min(b, max(QUANTIZED_BUDGETS))) for b in BUDGETS
    }

    eb = _timed(
        timings, "end_biased", build_end_biased, wl.table, wl.counts, b_max
    )
    out["end_biased"] = {b: eb.error(metric, b) for b in BUDGETS}

    vo = _timed(
        timings, "v_optimal", build_v_optimal, wl.table, wl.counts, b_max
    )
    out["v_optimal"] = {b: vo.error(metric, b) for b in BUDGETS}
    CONSTRUCTION_TIMINGS[metric_name] = timings
    return out


def merge_construction_timings(path: Optional[str] = None) -> Optional[str]:
    """Fold the recorded per-series build timings into
    ``BENCH_construction.json`` (under ``"figure_series"``), preserving
    whatever grid measurements ``bench_kernel.py`` wrote there.  No-op
    when nothing was timed yet (every series came from the cache)."""
    if not CONSTRUCTION_TIMINGS:
        return None
    path = path or BENCH_CONSTRUCTION_PATH
    doc: Dict[str, object] = {}
    if os.path.exists(path):
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError):
            doc = {}
    doc.setdefault("schema", "repro.bench_construction.v1")
    series = doc.setdefault("figure_series", {})
    if isinstance(series, dict):
        series.update(CONSTRUCTION_TIMINGS)
    else:  # pragma: no cover - hand-edited file
        doc["figure_series"] = dict(CONSTRUCTION_TIMINGS)
    with open(path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    return path


def capture_profile(metric_name: str, path: str) -> str:
    """Re-run one figure's constructions under a live metrics registry
    and write the collected profile (phase spans, DP sizes, timings) as
    JSON-lines to ``path``.  Returns the path."""
    registry = MetricsRegistry()
    with use_registry(registry):
        # Bypass the series cache: a cached result records no spans.
        figure_series.__wrapped__(metric_name)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    write_metrics(registry, path, "json")
    return path


def report_figure(
    figure: str, metric_name: str, profile: Optional[bool] = None
) -> str:
    """Persist and render one figure's series.

    With ``profile=True`` (or ``REPRO_PROFILE=1`` in the environment) a
    construction profile is captured alongside the figure CSV, at
    ``benchmarks/results/<figure>_<metric>_profile.jsonl`` — inspect it
    with ``repro stats``.
    """
    if profile is None:
        profile = bool(os.environ.get("REPRO_PROFILE"))
    if profile:
        registry = MetricsRegistry()
        with use_registry(registry):
            series = figure_series(metric_name)
        path = os.path.join(
            RESULTS_DIR, f"{figure}_{metric_name}_profile.jsonl"
        )
        os.makedirs(RESULTS_DIR, exist_ok=True)
        write_metrics(registry, path, "json")
        print(f"profile: {path}")
    else:
        series = figure_series(metric_name)
    timings_path = merge_construction_timings()
    if timings_path:
        print(f"construction timings: {timings_path}")
    header = ["buckets"] + SERIES
    rows: List[List[object]] = []
    for b in BUDGETS:
        rows.append([b] + [series[s][b] for s in SERIES])
    save_series(f"{figure}_{metric_name}.csv", header, rows)
    table = format_table(header, rows)
    text = f"{figure} ({metric_name} error vs. number of buckets)\n{table}"
    print("\n" + text)
    return text
