"""V-Optimal histograms [Jagadish et al., VLDB 1998].

A V-Optimal histogram partitions a value vector into ``b`` contiguous
ranges minimizing the sum of squared errors when each range is
estimated by its mean.  Following the paper's experimental setup
(Section 5):

* the histogram is built over the *nonzero* groups in identifier
  order (the adaptation that makes the ``O(n^2 b)`` dynamic program
  feasible: empty groups outside every range are inferred to be zero);
* construction always minimizes RMS error — the general distributive
  variant is ``O(n^3)`` and impractical — while evaluation may use any
  metric.

The dynamic program uses prefix sums for O(1) range SSE and is
vectorized over the split point, yielding the optimal boundary set for
every budget up to the requested one in one run.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from ..core.errors import DistributiveErrorMetric
from ..core.groups import GroupTable

__all__ = ["VOptimalHistogram", "build_v_optimal"]


class VOptimalHistogram:
    """V-Optimal histogram over the nonzero groups of a count vector."""

    def __init__(self, table: GroupTable, counts: Sequence[float], budget: int):
        if budget < 1:
            raise ValueError(f"budget must be at least 1, got {budget}")
        self.table = table
        self.counts = np.asarray(counts, dtype=np.float64)
        if self.counts.shape != (len(table),):
            raise ValueError(
                f"expected {len(table)} group counts, got {self.counts.shape}"
            )
        self.budget = budget
        self.nonzero_idx = np.nonzero(self.counts > 0)[0]
        v = self.counts[self.nonzero_idx]
        self._values = v
        n = len(v)
        b_max = min(budget, max(n, 1))
        self._n = n
        self._b_max = b_max
        if n == 0:
            self._table = np.zeros((1, 1))
            self._choice = np.zeros((1, 1), dtype=np.int32)
            return
        s1 = np.concatenate([[0.0], np.cumsum(v)])
        s2 = np.concatenate([[0.0], np.cumsum(v * v)])

        def sse_to(j: int, i: np.ndarray) -> np.ndarray:
            """SSE of the range (i, j] for a vector of starts i < j."""
            cnt = j - i
            s = s1[j] - s1[i]
            return (s2[j] - s2[i]) - (s * s) / cnt

        # E[B][j]: minimal SSE of the first j values using B ranges.
        E = np.full((b_max + 1, n + 1), np.inf)
        choice = np.zeros((b_max + 1, n + 1), dtype=np.int32)
        E[0][0] = 0.0
        idx_all = np.arange(n + 1)
        for B in range(1, b_max + 1):
            prev = E[B - 1]
            for j in range(B, n + 1):
                i = idx_all[B - 1 : j]
                cand = prev[i] + sse_to(j, i)
                k = int(np.argmin(cand))
                E[B][j] = cand[k]
                choice[B][j] = B - 1 + k
        self._table = E
        self._choice = choice

    # ------------------------------------------------------------------
    def sse(self, b: int) -> float:
        """Optimal sum of squared errors over nonzero groups with ``b``
        ranges."""
        if self._n == 0:
            return 0.0
        b = max(1, min(b, self._b_max, self._n))
        return float(self._table[b][self._n])

    def boundaries(self, b: int) -> List[Tuple[int, int]]:
        """The optimal ranges for budget ``b`` as half-open index pairs
        into the nonzero-group vector."""
        if self._n == 0:
            return []
        b = max(1, min(b, self._b_max, self._n))
        out: List[Tuple[int, int]] = []
        j = self._n
        for B in range(b, 0, -1):
            i = int(self._choice[B][j])
            out.append((i, j))
            j = i
        out.reverse()
        return out

    def estimates(self, b: int) -> np.ndarray:
        """Per-group estimates: range means for nonzero groups, zero for
        the (inferred-empty) rest."""
        est = np.zeros(len(self.table), dtype=np.float64)
        for i, j in self.boundaries(b):
            seg = self._values[i:j]
            est[self.nonzero_idx[i:j]] = seg.mean()
        return est

    def error(self, metric: DistributiveErrorMetric, b: int) -> float:
        return metric.evaluate(self.counts, self.estimates(b))

    def error_curve(self, metric: DistributiveErrorMetric) -> np.ndarray:
        curve = np.full(self.budget + 1, np.inf)
        for b in range(1, self.budget + 1):
            curve[b] = self.error(metric, b)
        return curve

    def size_bits(self, b: int, counter_bits: int = 32) -> int:
        """Each range: a boundary (group id) plus a counter."""
        b = max(1, min(b, self._b_max, max(self._n, 1)))
        id_bits = max(1, math.ceil(math.log2(max(2, len(self.table)))))
        return b * (id_bits + counter_bits)


def build_v_optimal(
    table: GroupTable, counts: Sequence[float], budget: int
) -> VOptimalHistogram:
    """Construct a V-Optimal histogram (RMS-optimal boundaries for every
    budget up to ``budget`` in one run)."""
    return VOptimalHistogram(table, counts, budget)
