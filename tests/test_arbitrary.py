"""Tests for arbitrary-fanout hierarchies (paper Section 4.1)."""

import numpy as np
import pytest

from repro import (
    PrunedHierarchy,
    UIDDomain,
    build_overlapping,
    evaluate_function,
    get_metric,
)
from repro.algorithms import ArbitraryHierarchy


@pytest.fixture
def figure11():
    """The Figure 11 example: a root with four children a..d."""
    h = ArbitraryHierarchy("root")
    for label in "abcd":
        h.add(None, label)
    h.finalize()
    return h


class TestConversion:
    def test_fanout4_uses_two_bits(self, figure11):
        assert figure11.domain.height == 2

    def test_children_get_disjoint_blocks(self, figure11):
        nodes = [figure11.binary_node(c) for c in figure11.root.children]
        assert len(set(nodes)) == 4
        ranges = sorted(figure11.domain.uid_range(n) for n in nodes)
        for (alo, ahi), (blo, _bhi) in zip(ranges, ranges[1:]):
            assert ahi <= blo

    def test_synthetic_nodes_are_child_runs(self, figure11):
        # binary node 2 covers children {a, b} (Figure 11's left run)
        desc = figure11.describe_binary_node(2)
        assert "{" in desc and "a" in desc and "b" in desc

    def test_real_node_description(self, figure11):
        a = figure11.root.children[0]
        assert figure11.describe_binary_node(
            figure11.binary_node(a)
        ).endswith("a")

    def test_non_power_of_two_fanout_leaves_gaps(self):
        h = ArbitraryHierarchy()
        for label in ("x", "y", "z"):  # fanout 3 -> 2 bits, one gap
            h.add(None, label)
        dom = h.finalize()
        assert dom.height == 2
        used = {h.binary_node(c) for c in h.root.children}
        assert len(used) == 3

    def test_fanout_one_still_distinct(self):
        h = ArbitraryHierarchy()
        a = h.add(None, "a")
        b = h.add(a, "b")
        h.finalize()
        assert h.binary_node(a) != h.binary_node(b)
        assert UIDDomain.is_ancestor(h.binary_node(a), h.binary_node(b))

    def test_add_after_finalize_rejected(self, figure11):
        with pytest.raises(RuntimeError):
            figure11.add(None, "late")

    def test_domain_before_finalize_rejected(self):
        h = ArbitraryHierarchy()
        h.add(None, "a")
        with pytest.raises(RuntimeError):
            _ = h.domain


class TestAddPath:
    def test_paths_share_prefixes(self):
        h = ArbitraryHierarchy()
        l1 = h.add_path(["us", "ca", "sf"])
        l2 = h.add_path(["us", "ca", "la"])
        l3 = h.add_path(["us", "ny"])
        assert l1.parent is l2.parent
        assert l3.parent is l1.parent.parent
        h.finalize()
        assert UIDDomain.is_ancestor(
            h.binary_node(l1.parent), h.binary_node(l1)
        )

    def test_leaf_uid(self):
        h = ArbitraryHierarchy()
        leaf = h.add_path(["a", "b"])
        h.finalize()
        uid = h.leaf_uid(leaf)
        lo, hi = h.domain.uid_range(h.binary_node(leaf))
        assert lo <= uid < hi

    def test_leaf_uid_rejects_interior(self):
        h = ArbitraryHierarchy()
        a = h.add(None, "a")
        h.add(a, "b")
        h.finalize()
        with pytest.raises(ValueError):
            h.leaf_uid(a)


class TestEndToEnd:
    def test_histograms_over_arbitrary_hierarchy(self):
        """Run the full 1-D machinery over a converted 3-level,
        mixed-fanout hierarchy (supply-chain shaped)."""
        h = ArbitraryHierarchy()
        rng = np.random.default_rng(4)
        leaves = []
        for s in range(3):  # 3 suppliers
            for p in range(5):  # 5 products each (fanout 5 -> gaps)
                leaves.append(h.add_path([f"s{s}", f"p{p}"]))
        h.finalize()
        table = h.group_table(leaves)
        counts = rng.integers(0, 50, len(table)).astype(float)
        hier = PrunedHierarchy(table, counts)
        metric = get_metric("rms")
        res = build_overlapping(hier, metric, 5)
        fn = res.function_at(5)
        measured = evaluate_function(table, counts, fn, metric)
        assert measured == pytest.approx(res.error_at(5), abs=1e-9)
        # rendering bucket nodes in hierarchy terms always succeeds
        for b in fn.buckets:
            assert isinstance(h.describe_binary_node(b.node), str)
