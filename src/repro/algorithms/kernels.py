"""Vectorized DP kernels (budget-splitting merges and kernel modes).

Every construction algorithm spends its time in two inner loops: the
``(min, +)`` / ``(min, max)`` budget-splitting convolution
(:func:`knapsack_merge`) and the ``grperr`` evaluations driven by
:class:`~repro.algorithms.base.DPContext`.  This module holds the
knapsack kernels plus the process-wide *kernel mode* that selects
between them:

``"fast"`` (the default)
    Broadcast/blocked merges and batched ``grperr`` evaluation.  Every
    fast path performs the *same* floating-point operations as the
    naive reference, element for element, so results are bit-for-bit
    identical — only Python-loop overhead is eliminated.

``"naive"``
    The seed implementation: a Python loop over the left child's budget
    allocations and one ``grperr`` slice evaluation per density.  Kept
    as the executable reference the fast paths are tested against, and
    as the baseline the construction perf harness
    (``benchmarks/bench_kernel.py``) measures speedups from.

``"suffstats"``
    Everything in ``"fast"``, plus O(1) sufficient-statistic ``grperr``
    for metrics that declare a decomposition
    (:meth:`~repro.core.errors.PenaltyMetric.suffstats`).  The
    algebraic regrouping reassociates floating-point sums, so results
    agree with the reference to ~1e-12 relative error rather than
    bit-for-bit; see ``docs/performance.md`` for the contract.

The mode can also be pinned from the environment with
``REPRO_KERNELS=naive|fast|suffstats`` (read at import time).

Both merge kernels return ``(out, choice)`` with identical semantics,
including argmin tie-breaking: ties go to the smallest left-child
allocation ``c``, so reconstruction walks the same splits either way.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator, Optional, Tuple

import numpy as np

__all__ = [
    "INF",
    "KERNEL_MODES",
    "kernel_mode",
    "set_kernel_mode",
    "use_kernel_mode",
    "knapsack_merge",
    "knapsack_merge_batch",
    "knapsack_merge_reference",
    "knapsack_merge_vectorized",
]

INF = float("inf")

KERNEL_MODES = ("naive", "fast", "suffstats")

#: Cap on candidate-matrix size per block — bounds peak memory of the
#: broadcast merge to a few megabytes regardless of table sizes.
_MAX_BLOCK_ELEMENTS = 1 << 20

#: Below this many candidate cells the scalar loop beats the broadcast
#: setup cost (both kernels are bit-identical, so this is purely a
#: constant-factor choice).
_SMALL_PROBLEM = 96

#: From this many candidate rows on, the transposed candidate layout
#: (allocation axis innermost, so the min/argmin reductions run over
#: contiguous memory) beats the row-major layout, whose reductions
#: stride by the output width.  Same cells, same single combine op,
#: same first-minimum tie-breaking — purely a memory-layout choice.
_TRANSPOSE_ROWS = 100


def _strided(buf: np.ndarray, offset: int, shape, strides) -> np.ndarray:
    """Zero-copy shifted-window view into ``buf`` (byte offset/strides).

    Equivalent to ``np.lib.stride_tricks.as_strided`` on a sliced
    buffer but without its per-call interface-dict overhead — the
    ``np.ndarray`` constructor still bounds-checks every extent against
    the buffer, so this stays safe; callers arrange ``inf`` padding so
    out-of-window cells read as infeasible.
    """
    return np.ndarray(
        shape, dtype=buf.dtype, buffer=buf, offset=offset, strides=strides
    )


def _initial_mode() -> str:
    mode = os.environ.get("REPRO_KERNELS", "").strip().lower()
    return mode if mode in KERNEL_MODES else "fast"


_mode = _initial_mode()
_mode_lock = threading.Lock()


def kernel_mode() -> str:
    """The currently active kernel mode."""
    return _mode


def set_kernel_mode(mode: str) -> str:
    """Install ``mode`` process-wide; returns the previous mode.

    Note that :class:`~repro.algorithms.base.DPContext` snapshots the
    mode at construction time, so switch modes *before* building
    contexts (or use :func:`use_kernel_mode` around whole runs).
    """
    global _mode
    if mode not in KERNEL_MODES:
        known = ", ".join(KERNEL_MODES)
        raise ValueError(f"unknown kernel mode {mode!r}; known modes: {known}")
    with _mode_lock:
        previous = _mode
        _mode = mode
    return previous


@contextmanager
def use_kernel_mode(mode: str) -> Iterator[str]:
    """Scope a kernel mode for a ``with`` block."""
    previous = set_kernel_mode(mode)
    try:
        yield mode
    finally:
        set_kernel_mode(previous)


def knapsack_merge_reference(
    left: np.ndarray,
    right: np.ndarray,
    cap: int,
    combine: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """The seed merge: a Python loop over the left child's allocation.

    Kept verbatim as the executable reference for the vectorized
    kernel; ``REPRO_KERNELS=naive`` routes all merges here.
    """
    m, n = len(left), len(right)
    size = min(cap, m + n - 2) + 1
    out = np.full(size, INF)
    choice = np.full(size, -1, dtype=np.int32)
    maximum = combine == "max"
    for c in range(min(m, size)):
        lv = left[c]
        if lv == INF:
            continue
        jmax = min(n - 1, size - 1 - c)
        if jmax < 0:
            break
        seg = right[: jmax + 1]
        cand = np.maximum(lv, seg) if maximum else lv + seg
        window = out[c : c + jmax + 1]
        better = cand < window
        if better.any():
            window[better] = cand[better]
            choice[c : c + jmax + 1][better] = c
    return out, choice


def knapsack_merge_vectorized(
    left: np.ndarray,
    right: np.ndarray,
    cap: int,
    combine: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Broadcast/blocked merge via a shifted-window candidate matrix.

    The right table is embedded in an ``inf``-padded buffer so that row
    ``c`` of a strided view holds ``right[B - c]`` for every output
    budget ``B`` (out-of-range cells read the padding and stay ``inf``).
    One combine and a column min/argmin then yield the merged table and
    the choice array.  ``np.argmin`` returns the *first* minimum, i.e.
    the smallest ``c``, matching the reference kernel's tie-breaking
    exactly; blocks are processed in ascending ``c`` and only strict
    improvements cross block boundaries, preserving that invariant.
    """
    m, n = len(left), len(right)
    size = min(cap, m + n - 2) + 1
    out = np.full(size, INF)
    choice = np.full(size, -1, dtype=np.int32)
    rows = min(m, size)
    if rows <= 0:
        return out, choice
    maximum = combine == "max"
    ncols = min(n, size)
    pad = np.full(rows - 1 + size, INF)
    pad[rows - 1 : rows - 1 + ncols] = right[:ncols]
    stride = pad.strides[0]
    if rows >= _TRANSPOSE_ROWS and rows * size <= _MAX_BLOCK_ELEMENTS:
        # Tall problem: build the candidate matrix with the allocation
        # axis innermost so min/argmin reduce over contiguous memory.
        shifted = _strided(
            pad, (rows - 1) * stride, (size, rows), (stride, -stride)
        )
        lv = left[None, :rows]
        cand = np.maximum(lv, shifted) if maximum else lv + shifted
        vals = cand.min(axis=1)
        rowmin = cand.argmin(axis=1).astype(np.int32)
        return vals, np.where(vals < INF, rowmin, np.int32(-1))
    block = max(1, _MAX_BLOCK_ELEMENTS // size)
    for c0 in range(0, rows, block):
        c1 = min(rows, c0 + block)
        shifted = _strided(
            pad,
            (rows - 1 - c0) * stride,
            (c1 - c0, size),
            (-stride, stride),
        )
        lv = left[c0:c1, None]
        cand = np.maximum(lv, shifted) if maximum else lv + shifted
        vals = cand.min(axis=0)
        better = vals < out
        if better.any():
            rowmin = cand.argmin(axis=0)
            out[better] = vals[better]
            choice[better] = (c0 + rowmin[better]).astype(np.int32)
    return out, choice


def _merge_one_right(
    left: np.ndarray, right: np.ndarray, size: int, maximum: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact shortcut for a single-entry right table (``n == 1``)."""
    out = np.full(size, INF)
    choice = np.full(size, -1, dtype=np.int32)
    k = min(len(left), size)
    v = np.maximum(left[:k], right[0]) if maximum else left[:k] + right[0]
    out[:k] = v
    choice[:k] = np.where(v < INF, np.arange(k, dtype=np.int32), -1)
    return out, choice


def _merge_one_left(
    left: np.ndarray, right: np.ndarray, size: int, maximum: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact shortcut for a single-entry left table (``m == 1``)."""
    out = np.full(size, INF)
    choice = np.full(size, -1, dtype=np.int32)
    k = min(len(right), size)
    v = np.maximum(left[0], right[:k]) if maximum else left[0] + right[:k]
    out[:k] = v
    choice[:k] = np.where(v < INF, np.int32(0), np.int32(-1))
    return out, choice


def _merge_two_right(
    left: np.ndarray, right: np.ndarray, size: int, maximum: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact shortcut for a two-entry right table (``n == 2``).

    Column ``B`` sees candidate ``c = B - 1`` (combining ``right[1]``)
    first and ``c = B`` (combining ``right[0]``) second, mirroring the
    reference kernel's ascending-``c``, strict-improvement scan — so
    values, tie-breaking, and the recorded choices are bit-identical.
    The common case (a leaf child, ``right[0] == inf``) makes the
    second candidate vacuous at no extra cost.
    """
    m = len(left)
    out = np.full(size, INF)
    choice = np.full(size, -1, dtype=np.int32)
    k1 = min(m, size - 1)
    if k1 > 0:
        v1 = np.maximum(left[:k1], right[1]) if maximum else left[:k1] + right[1]
        out[1 : k1 + 1] = v1
        choice[1 : k1 + 1] = np.where(
            v1 < INF, np.arange(k1, dtype=np.int32), -1
        )
    if right[0] < INF:
        k0 = min(m, size)
        v0 = np.maximum(left[:k0], right[0]) if maximum else left[:k0] + right[0]
        better = v0 < out[:k0]
        if better.any():
            out[:k0][better] = v0[better]
            choice[:k0][better] = np.arange(k0, dtype=np.int32)[better]
    return out, choice


def _merge_two_left(
    left: np.ndarray, right: np.ndarray, size: int, maximum: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact shortcut for a two-entry left table (``m == 2``)."""
    n = len(right)
    out = np.full(size, INF)
    choice = np.full(size, -1, dtype=np.int32)
    if left[0] < INF:
        k0 = min(n, size)
        v0 = np.maximum(left[0], right[:k0]) if maximum else left[0] + right[:k0]
        out[:k0] = v0
        choice[:k0] = np.where(v0 < INF, np.int32(0), np.int32(-1))
    k1 = min(n, size - 1)
    if k1 > 0:
        v1 = np.maximum(left[1], right[:k1]) if maximum else left[1] + right[:k1]
        better = v1 < out[1 : k1 + 1]
        if better.any():
            out[1 : k1 + 1][better] = v1[better]
            choice[1 : k1 + 1][better] = 1
    return out, choice


def _positive_merge(
    l: np.ndarray,
    r: np.ndarray,
    width: int,
    maximum: bool,
    want_choice: bool = True,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Full convolution of two all-finite tables (no capacity-0 row).

    The nonoverlapping sweep's tables are ``inf`` at entry 0 and finite
    everywhere else, so its merges reduce to convolving the finite
    tails ``left[1:]`` / ``right[1:]``: ``l``/``r`` here are those
    tails and ``out[B']`` is the best combine over ``c' + j' = B'``.
    Every output is feasible (hence finite) and the returned choice is
    *1-based* — the left-child bucket count ``c = c' + 1`` — matching
    the reference kernel's smallest-``c`` tie-breaking via the same
    first-minimum argmin.  ``want_choice=False`` skips the argmin pass
    for sweeps that discard split choices (the low-memory
    reconstruction mode).
    """
    m, n = len(l), len(r)
    rows = min(m, width)
    ncols = min(n, width)
    out = np.empty(0)
    choice: Optional[np.ndarray] = None
    pad = np.full(rows - 1 + width, INF)
    pad[rows - 1 : rows - 1 + ncols] = r[:ncols]
    stride = pad.strides[0]
    if rows >= _TRANSPOSE_ROWS and rows * width <= _MAX_BLOCK_ELEMENTS:
        shifted = _strided(
            pad, (rows - 1) * stride, (width, rows), (stride, -stride)
        )
        lv = l[None, :rows]
        cand = np.maximum(lv, shifted) if maximum else lv + shifted
        out = cand.min(axis=1)
        if want_choice:
            choice = cand.argmin(axis=1).astype(np.int32)
            choice += 1
        return out, choice
    block = max(1, _MAX_BLOCK_ELEMENTS // max(1, width))
    for c0 in range(0, rows, block):
        c1 = min(rows, c0 + block)
        shifted = _strided(
            pad,
            (rows - 1 - c0) * stride,
            (c1 - c0, width),
            (-stride, stride),
        )
        lv = l[c0:c1, None]
        cand = np.maximum(lv, shifted) if maximum else lv + shifted
        vals = cand.min(axis=0)
        if c0 == 0:
            out = vals
            if want_choice:
                choice = (cand.argmin(axis=0) + 1).astype(np.int32)
            continue
        better = vals < out
        if better.any():
            out[better] = vals[better]
            if want_choice:
                rowmin = cand.argmin(axis=0)
                choice[better] = (c0 + rowmin[better] + 1).astype(np.int32)
    return out, choice


def _positive_merge_batch(
    l: np.ndarray,
    r: np.ndarray,
    width: int,
    maximum: bool,
    want_choice: bool = True,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Batched :func:`_positive_merge`: row ``k`` convolves the finite
    tails ``l[k]`` / ``r[k]``.

    ``l``/``r`` are ``(K, m)`` / ``(K, n)`` stacks of all-finite table
    tails sharing one shape — the nonoverlapping phase-batched sweep
    groups same-shape merges across nodes so hundreds of per-node
    kernel invocations collapse into one.  Row ``k`` of the result is
    bit-for-bit ``_positive_merge(l[k], r[k], width, maximum)``: the
    same candidate cells combine in the same single operation and the
    per-column first-minimum argmin keeps the smallest-``c``
    tie-breaking (choice is 1-based, as there).
    """
    K, m = l.shape
    n = r.shape[1]
    rows = min(m, width)
    ncols = min(n, width)
    pad = np.full((K, rows - 1 + width), INF)
    pad[:, rows - 1 : rows - 1 + ncols] = r[:, :ncols]
    s0, s1 = pad.strides
    out = np.empty(0)
    choice: Optional[np.ndarray] = None
    if rows >= _TRANSPOSE_ROWS and K * rows * width <= _MAX_BLOCK_ELEMENTS:
        shifted = _strided(
            pad, (rows - 1) * s1, (K, width, rows), (s0, s1, -s1)
        )
        lv = l[:, None, :rows]
        cand = np.maximum(lv, shifted) if maximum else lv + shifted
        out = cand.min(axis=2)
        if want_choice:
            choice = cand.argmin(axis=2).astype(np.int32)
            choice += 1
        return out, choice
    block = max(1, _MAX_BLOCK_ELEMENTS // max(1, width * K))
    for c0 in range(0, rows, block):
        c1 = min(rows, c0 + block)
        shifted = _strided(
            pad,
            (rows - 1 - c0) * s1,
            (K, c1 - c0, width),
            (s0, -s1, s1),
        )
        lv = l[:, c0:c1, None]
        cand = np.maximum(lv, shifted) if maximum else lv + shifted
        vals = cand.min(axis=1)
        if c0 == 0:
            out = vals
            if want_choice:
                choice = cand.argmin(axis=1).astype(np.int32)
                choice += 1
            continue
        better = vals < out
        if better.any():
            out[better] = vals[better]
            if want_choice:
                rowmin = cand.argmin(axis=1)
                choice[better] = (c0 + rowmin[better] + 1).astype(np.int32)
    return out, choice


def _batch_two_right(
    lefts: np.ndarray, rights: np.ndarray, size: int, maximum: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched exact shortcut for two-entry right tables (``n == 2``).

    Stacked analogue of :func:`_merge_two_right`: column ``B`` sees the
    ``c = B - 1`` candidate (combining ``right[1]``) first, then the
    ``c = B`` candidate (``right[0]``) as a strict improvement.  Rows
    whose ``right[0]`` is infinite produce all-``inf`` second-pass
    candidates, which never strictly improve — the same outcome as the
    reference skipping them.
    """
    J, m = lefts.shape
    out = np.full((J, size), INF)
    choice = np.full((J, size), -1, dtype=np.int32)
    k1 = min(m, size - 1)
    if k1 > 0:
        r1 = rights[:, 1:2]
        v1 = np.maximum(lefts[:, :k1], r1) if maximum else lefts[:, :k1] + r1
        out[:, 1 : k1 + 1] = v1
        choice[:, 1 : k1 + 1] = np.where(
            v1 < INF, np.arange(k1, dtype=np.int32), np.int32(-1)
        )
    k0 = min(m, size)
    r0 = rights[:, 0:1]
    v0 = np.maximum(lefts[:, :k0], r0) if maximum else lefts[:, :k0] + r0
    better = v0 < out[:, :k0]
    if better.any():
        out[:, :k0][better] = v0[better]
        ar = np.broadcast_to(np.arange(k0, dtype=np.int32), (J, k0))
        choice[:, :k0][better] = ar[better]
    return out, choice


def _batch_two_left(
    lefts: np.ndarray, rights: np.ndarray, size: int, maximum: bool
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched exact shortcut for two-entry left tables (``m == 2``)."""
    J, n = rights.shape
    out = np.full((J, size), INF)
    choice = np.full((J, size), -1, dtype=np.int32)
    k0 = min(n, size)
    l0 = lefts[:, 0:1]
    v0 = np.maximum(l0, rights[:, :k0]) if maximum else l0 + rights[:, :k0]
    out[:, :k0] = v0
    choice[:, :k0] = np.where(v0 < INF, np.int32(0), np.int32(-1))
    k1 = min(n, size - 1)
    if k1 > 0:
        l1 = lefts[:, 1:2]
        v1 = np.maximum(l1, rights[:, :k1]) if maximum else l1 + rights[:, :k1]
        win = out[:, 1 : k1 + 1]
        better = v1 < win
        if better.any():
            win[better] = v1[better]
            choice[:, 1 : k1 + 1][better] = 1
    return out, choice


def knapsack_merge_batch(
    lefts: np.ndarray,
    rights: np.ndarray,
    cap: int,
    combine: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge ``J`` independent (left, right) table pairs in one call.

    ``lefts``/``rights`` are ``(J, m)`` / ``(J, n)`` matrices — row
    ``i`` is one merge problem.  Returns ``(out, choice)`` of shape
    ``(J, size)``.  Row ``i`` is bit-for-bit identical to
    ``knapsack_merge_reference(lefts[i], rights[i], cap, combine)``:
    the candidate cells combine the same scalars with the same single
    floating-point operation, and the per-column first-minimum argmin
    reproduces the smallest-``c`` tie-breaking.

    The overlapping DP uses this to fold its per-enclosing-ancestor
    loop (one merge per ancestor, per node) into a single stacked
    kernel invocation.
    """
    J, m = lefts.shape
    n = rights.shape[1]
    size = min(cap, m + n - 2) + 1
    rows = min(m, size)
    if rows <= 0 or J == 0:
        out = np.full((J, size), INF)
        choice = np.full((J, size), -1, dtype=np.int32)
        return out, choice
    maximum = combine == "max"
    if n == 2:
        return _batch_two_right(lefts, rights, size, maximum)
    if m == 2:
        return _batch_two_left(lefts, rights, size, maximum)
    ncols = min(n, size)
    pad = np.full((J, rows - 1 + size), INF)
    pad[:, rows - 1 : rows - 1 + ncols] = rights[:, :ncols]
    s0, s1 = pad.strides
    if rows >= _TRANSPOSE_ROWS and J * rows * size <= _MAX_BLOCK_ELEMENTS:
        shifted = _strided(
            pad, (rows - 1) * s1, (J, size, rows), (s0, s1, -s1)
        )
        lv = lefts[:, None, :rows]
        cand = np.maximum(lv, shifted) if maximum else lv + shifted
        vals = cand.min(axis=2)
        rowmin = cand.argmin(axis=2).astype(np.int32)
        choice = np.where(vals < INF, rowmin, np.int32(-1))
        return vals, choice
    block = max(1, _MAX_BLOCK_ELEMENTS // max(1, size * J))
    if rows <= block:
        # Single-block case: the column min/argmin over all candidate
        # rows is the final answer — no running tables needed.
        shifted = _strided(
            pad, (rows - 1) * s1, (J, rows, size), (s0, -s1, s1)
        )
        lv = lefts[:, :rows, None]
        cand = np.maximum(lv, shifted) if maximum else lv + shifted
        vals = cand.min(axis=1)
        rowmin = cand.argmin(axis=1).astype(np.int32)
        choice = np.where(vals < INF, rowmin, np.int32(-1))
        return vals, choice
    out = np.full((J, size), INF)
    choice = np.full((J, size), -1, dtype=np.int32)
    for c0 in range(0, rows, block):
        c1 = min(rows, c0 + block)
        shifted = _strided(
            pad,
            (rows - 1 - c0) * s1,
            (J, c1 - c0, size),
            (s0, -s1, s1),
        )
        lv = lefts[:, c0:c1, None]
        cand = np.maximum(lv, shifted) if maximum else lv + shifted
        vals = cand.min(axis=1)
        better = vals < out
        if better.any():
            rowmin = cand.argmin(axis=1)
            out[better] = vals[better]
            choice[better] = (c0 + rowmin[better]).astype(np.int32)
    return out, choice


def knapsack_merge(
    left: np.ndarray,
    right: np.ndarray,
    cap: int,
    combine: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Budget-splitting merge of two child error tables.

    ``left[c]`` / ``right[c]`` hold the best error of each subtree when
    given ``c`` buckets (``inf`` = infeasible).  Returns ``(out,
    choice)`` of length ``min(cap, len(left) + len(right) - 2) + 1``
    where::

        out[B]    = min over c of  left[c] (+ or max) right[B - c]
        choice[B] = the minimizing c (buckets granted to the left child)

    ``combine`` is ``"sum"`` for additive penalty metrics and ``"max"``
    for max-combine metrics.  Dispatches on the active kernel mode;
    both kernels are bit-for-bit identical.
    """
    if _mode == "naive":
        return knapsack_merge_reference(left, right, cap, combine)
    m, n = len(left), len(right)
    size = min(cap, m + n - 2) + 1
    maximum = combine == "max"
    # One- and two-entry tables (leaf children — half the merges in a
    # binary hierarchy) have closed forms: one vector combine per
    # candidate row, bit-identical to the reference scan.
    if n == 1:
        return _merge_one_right(left, right, size, maximum)
    if m == 1:
        return _merge_one_left(left, right, size, maximum)
    if n == 2:
        return _merge_two_right(left, right, size, maximum)
    if m == 2:
        return _merge_two_left(left, right, size, maximum)
    if min(m, size) * size <= _SMALL_PROBLEM:
        return knapsack_merge_reference(left, right, cap, combine)
    return knapsack_merge_vectorized(left, right, cap, combine)
