"""The remote Monitor (paper Figure 1, left).

A Monitor holds the current partitioning function pushed to it by the
Control Center, partitions each window of identifiers it observes into
per-bucket aggregates, and emits the resulting histogram.  Its
resources are assumed limited: partitioning one identifier is a single
O(height) prefix lookup and the state kept per window is one counter
per (nonzero) bucket.

Under the default ``fast`` stream kernel mode (see
:mod:`repro.streams.kernels`) the function is compiled at install time
into a :class:`~repro.core.compiled.CompiledPartitioner`, reducing a
window to one ``searchsorted`` + ``bincount`` pass; histograms are
bit-identical to the naive path either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.compiled import CompiledPartitioner
from ..core.partition import Histogram, PartitioningFunction
from ..core.wire import WIRE_FORMATS, encode_histogram_v2, encode_histograms_v2
from ..obs import get_registry
from .kernels import stream_kernel_mode

__all__ = ["HistogramMessage", "Monitor"]


@dataclass(frozen=True)
class HistogramMessage:
    """One Monitor-to-Control-Center message: a window's histogram.

    Under the v1 wire format the message carries the
    :class:`~repro.core.partition.Histogram` object and its wire size
    is *modelled* (``Histogram.size_bytes``).  Under v2 the Monitor
    encodes the histogram at send time and ``payload`` holds the actual
    bytes that cross the link — byte accounting charges ``len(payload)``
    and the Control Center queries or decodes those bytes, not the
    object.
    """

    monitor: str
    window_index: int
    histogram: Histogram
    function_version: int
    #: The v2 wire encoding, or ``None`` under the v1 format.
    payload: Optional[bytes] = None

    def size_bytes(self, domain, counter_bits: int = 32) -> int:
        # window index + version header, then the histogram payload.
        if self.payload is not None:
            return 8 + len(self.payload)
        return 8 + self.histogram.size_bytes(domain, counter_bits)


class Monitor:
    """A remote observation point partitioning its identifier stream."""

    def __init__(self, name: str, wire_format: str = "v2") -> None:
        if wire_format not in WIRE_FORMATS:
            raise ValueError(
                f"wire_format must be one of {WIRE_FORMATS}, "
                f"got {wire_format!r}"
            )
        self.name = name
        self.wire_format = wire_format
        self.function: Optional[PartitioningFunction] = None
        self.function_version = -1
        self.windows_processed = 0
        self.tuples_processed = 0
        self.crashes = 0
        self._compiled: Optional[CompiledPartitioner] = None

    def install_function(
        self, function: PartitioningFunction, version: int
    ) -> None:
        """Accept a (new) partitioning function from the Control
        Center.  The function is compiled once here (a fleet sharing
        one function object shares one compilation) so per-window work
        is pure index arithmetic."""
        self.function = function
        self.function_version = version
        self._compiled = CompiledPartitioner.for_function(function)

    def crash(self) -> None:
        """Crash-and-restart: volatile state (the installed function)
        is lost; the lifetime statistics survive (they model persistent
        logs).  The Monitor cannot report again until the Control
        Center's install scheduler gets a function back onto it."""
        self.function = None
        self.function_version = -1
        self._compiled = None
        self.crashes += 1

    def _build(
        self, uids: np.ndarray, values: Optional[Sequence[float]]
    ) -> Histogram:
        if stream_kernel_mode() == "fast":
            return self._compiled.build_histogram(uids, values=values)
        return self.function.build_histogram(uids, values=values)

    def _message(
        self, window_index: int, histogram: Histogram
    ) -> HistogramMessage:
        # Single construction point for outgoing messages (both the
        # serial loop and the parallel ingest pool land here), so the
        # v2 encode happens exactly once per transmission-worthy
        # histogram.
        payload = None
        if self.wire_format == "v2":
            payload = encode_histogram_v2(
                histogram,
                self.function.domain,
                semantics=self.function.semantics,
            )
        return HistogramMessage(
            monitor=self.name,
            window_index=window_index,
            histogram=histogram,
            function_version=self.function_version,
            payload=payload,
        )

    def _account(
        self, windows: int, tuples: int, histograms, metrics: bool = True
    ) -> None:
        """Fold a batch into the lifetime stats and ``monitor.*``
        metrics.  ``metrics=False`` updates only the stats — the
        sharded serving layer passes it when replaying a prefetched
        build whose metrics were already recorded by the worker's own
        registry (and merged under a ``shard=`` label), so hit windows
        are never double-counted."""
        self.windows_processed += windows
        self.tuples_processed += tuples
        if not metrics:
            return
        registry = get_registry()
        if registry.enabled:
            registry.counter("monitor.windows", monitor=self.name).inc(
                windows
            )
            registry.counter("monitor.tuples", monitor=self.name).inc(tuples)
            nonzero = registry.histogram("monitor.window.nonzero_buckets")
            for histogram in histograms:
                nonzero.observe(len(histogram))

    def process_window(
        self,
        window_index: int,
        uids: Sequence[int],
        values: Optional[Sequence[float]] = None,
    ) -> HistogramMessage:
        """Partition one window of identifiers into a histogram.

        Pass a per-tuple ``values`` vector to aggregate sum(value)
        instead of count(*) — e.g. bytes per packet.
        """
        if self.function is None:
            raise RuntimeError(
                f"monitor {self.name!r} has no partitioning function installed"
            )
        uids = np.asarray(uids, dtype=np.int64)
        registry = get_registry()
        if registry.enabled:
            with registry.timer(
                "monitor.partition.duration", monitor=self.name
            ).time():
                histogram = self._build(uids, values)
        else:
            histogram = self._build(uids, values)
        self._account(1, int(uids.size), (histogram,))
        return self._message(window_index, histogram)

    def process_windows(
        self,
        window_indices: Sequence[int],
        uid_windows: Sequence[Sequence[int]],
        values: Optional[Sequence[Optional[Sequence[float]]]] = None,
    ) -> List[HistogramMessage]:
        """Partition several windows in one batched pass.

        Under the ``fast`` kernel mode all windows are matched in one
        concatenated searchsorted + flattened 2-D bincount
        (:meth:`~repro.core.compiled.CompiledPartitioner.build_histograms`);
        the per-window histograms are bit-identical to one
        :meth:`process_window` call each.  Under ``naive`` this is the
        equivalent loop.
        """
        if len(window_indices) != len(uid_windows):
            raise ValueError(
                f"{len(window_indices)} window indices for "
                f"{len(uid_windows)} uid windows"
            )
        if self.function is None:
            raise RuntimeError(
                f"monitor {self.name!r} has no partitioning function installed"
            )
        arrays = [np.asarray(u, dtype=np.int64) for u in uid_windows]
        registry = get_registry()
        if stream_kernel_mode() == "fast":
            if registry.enabled:
                with registry.timer(
                    "monitor.partition.duration", monitor=self.name
                ).time():
                    histograms = self._compiled.build_histograms(
                        arrays, values
                    )
            else:
                histograms = self._compiled.build_histograms(arrays, values)
        else:
            if values is None:
                values = [None] * len(arrays)
            histograms = [
                self.function.build_histogram(u, values=v)
                for u, v in zip(arrays, values)
            ]
        self._account(
            len(arrays), sum(int(a.size) for a in arrays), histograms
        )
        return self._messages(window_indices, histograms)

    def _messages(
        self, window_indices: Sequence[int], histograms: Sequence[Histogram]
    ) -> List[HistogramMessage]:
        """Batched :meth:`_message`: one vectorized v2 encode pass for
        the whole window batch (:func:`~repro.core.wire.encode_histograms_v2`
        is byte-identical to per-histogram encodes)."""
        if self.wire_format != "v2":
            return [
                self._message(w, h)
                for w, h in zip(window_indices, histograms)
            ]
        payloads = encode_histograms_v2(
            histograms,
            self.function.domain,
            semantics=self.function.semantics,
        )
        return [
            HistogramMessage(
                monitor=self.name,
                window_index=w,
                histogram=h,
                function_version=self.function_version,
                payload=p,
            )
            for w, h, p in zip(window_indices, histograms, payloads)
        ]
