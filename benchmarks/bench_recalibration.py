"""Recalibration perf harness: incremental-rebuild speedups vs drift.

Times a from-scratch DP construction against a subtree-memoized
incremental rebuild (``repro.algorithms.incremental``) for both exact
semantics across a drift-locality sweep: the fraction of the nonzero
support whose counts move between builds ranges from 1% to 100%.  The
incremental path must be *bit-identical* to the full build — every
point asserts curve-byte equality — so the only thing measured is how
much of the previous build's DP state the memo lets the rebuild skip.

Timings are construction-only (the ``PrunedHierarchy`` build is timed
separately and reported per workload): the full leg times ``build()``
alone; the incremental leg times session creation + build + memo
finish.  All full-build repetitions run consecutively, then all
incremental repetitions, and each leg reports the minimum — the memo
arena is patched in place, so between incremental reps the harness
rebuilds back to the baseline counts (untimed) to restore the
previous-build state.

Usage::

    python benchmarks/bench_recalibration.py               # full grid
    python benchmarks/bench_recalibration.py --grid tiny   # CI smoke
    python benchmarks/bench_recalibration.py --out /tmp/recal.json
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import PrunedHierarchy, UIDDomain, get_metric
from repro.algorithms import incremental as incmod
from repro.algorithms.construct import build
from repro.data import TrafficModel, generate_subnet_table, generate_trace

SCHEMA = "repro.bench_recalibration.v1"

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir,
    "BENCH_recalibration.json",
)

#: (algorithm, height, packets, budget) workload rows.  The traffic
#: model matches bench_kernel.py's dense zipf mix — high active
#: fraction keeps the pruned hierarchy deep, which is the regime where
#: construction (and therefore recalibration) is expensive.
FULL_GRID: List[Tuple[str, int, int, int]] = [
    ("nonoverlapping", 18, 800_000, 400),
    ("overlapping", 15, 600_000, 96),
]
TINY_GRID: List[Tuple[str, int, int, int]] = [
    ("nonoverlapping", 10, 30_000, 16),
    ("overlapping", 10, 30_000, 10),
]

#: Fraction of the nonzero support drifted between builds.
DRIFT_FRACTIONS = [0.01, 0.10, 0.50, 1.00]

REPS = 5


def _workload(height: int, packets: int):
    table = generate_subnet_table(UIDDomain(height), seed=7)
    model = TrafficModel(
        mode="zipf", active_fraction=0.95, zipf_exponent=1.1
    )
    uids = generate_trace(table, packets, seed=11, model=model)
    return table, table.counts_from_uids(uids)


def _drift(counts: np.ndarray, fraction: float) -> np.ndarray:
    """Scale a contiguous ``fraction`` of the nonzero support.

    The support is carved into 64 equal blocks and the first
    ``round(fraction * 64)`` of them are doubled — localized drift that
    preserves the nonzero mask, so the pruned structure (and therefore
    the memo's same-structure fast path) survives every point.
    """
    out = counts.copy()
    nz = np.nonzero(out)[0]
    k = max(1, round(fraction * 64))
    per = len(nz) // 64
    out[nz[: k * per]] *= 2.0
    return out


def _build_with_memo(table, counts, algorithm, metric, budget, memo):
    """One incremental build; returns (result, next_memo, stats)."""
    h = PrunedHierarchy(table, counts)
    session = incmod.new_session(algorithm, h, metric, budget, memo)
    result = build(algorithm, h, metric, budget, memo=session)
    return result, session.finish(), session.stats()


def run_grid(grid: str) -> Dict[str, object]:
    rows = TINY_GRID if grid == "tiny" else FULL_GRID
    metric = get_metric("rms")
    points: List[Dict[str, object]] = []
    for algorithm, height, packets, budget in rows:
        table, counts = _workload(height, packets)
        t0 = time.perf_counter()
        hierarchy = PrunedHierarchy(table, counts)
        hierarchy_seconds = time.perf_counter() - t0
        workload = {
            "algorithm": algorithm,
            "height": height,
            "packets": packets,
            "budget": budget,
            "groups": table.num_groups,
            "pruned_nodes": len(hierarchy.nodes),
            "nonzero_groups": int(np.count_nonzero(counts)),
            "traffic": "zipf(active=0.95, s=1.1)",
            "hierarchy_seconds": round(hierarchy_seconds, 6),
        }
        print(
            f"{algorithm} h={height} B={budget} "
            f"nodes={workload['pruned_nodes']} "
            f"(hierarchy {hierarchy_seconds * 1e3:.1f} ms)"
        )
        for fraction in DRIFT_FRACTIONS:
            drifted = _drift(counts, fraction)
            # Full-build leg: consecutive reps, construction only.
            full_times = []
            full_result = None
            for _ in range(REPS):
                h = PrunedHierarchy(table, drifted)
                t0 = time.perf_counter()
                full_result = build(algorithm, h, metric, budget)
                full_times.append(time.perf_counter() - t0)
            # Incremental leg: memo seeded from a baseline build
            # (untimed); each rep rebuilds back to baseline between
            # timings because the memo arena is patched in place.
            _, memo, _ = _build_with_memo(
                table, counts, algorithm, metric, budget, None
            )
            inc_times = []
            inc_result = None
            stats: Dict[str, float] = {}
            for _ in range(REPS):
                h = PrunedHierarchy(table, drifted)
                session = incmod.new_session(
                    algorithm, h, metric, budget, memo
                )
                t0 = time.perf_counter()
                inc_result = build(
                    algorithm, h, metric, budget, memo=session
                )
                after = session.finish()
                inc_times.append(time.perf_counter() - t0)
                stats = session.stats()
                _, memo, _ = _build_with_memo(
                    table, counts, algorithm, metric, budget, after
                )
            identical = (
                full_result.curve.tobytes() == inc_result.curve.tobytes()
            )
            if not identical:
                raise AssertionError(
                    f"incremental curve diverged: {algorithm} "
                    f"drift={fraction}"
                )
            full_s = min(full_times)
            inc_s = min(inc_times)
            point = {
                "workload": workload,
                "drift_fraction": fraction,
                "full_seconds": round(full_s, 6),
                "incremental_seconds": round(inc_s, 6),
                "speedup": round(full_s / inc_s, 3),
                "identical": identical,
                "dirty_subtrees": stats["dirty_subtrees"],
                "reused_subtrees": stats["reused_subtrees"],
                "reused_fraction": round(stats["reused_fraction"], 4),
            }
            points.append(point)
            print(
                f"  drift={fraction:.2f}: full={full_s * 1e3:.1f}ms "
                f"inc={inc_s * 1e3:.1f}ms ({point['speedup']}x, "
                f"reused={point['reused_fraction']:.3f}, "
                f"identical={identical})"
            )
    low_drift = {}
    for p in points:
        if p["drift_fraction"] <= 0.10:
            alg = p["workload"]["algorithm"]
            key = f"{alg}@{p['drift_fraction']}"
            low_drift[key] = p["speedup"]
    return {
        "schema": SCHEMA,
        "generated_by": "benchmarks/bench_recalibration.py",
        "grid": grid,
        "drift_fractions": DRIFT_FRACTIONS,
        "reps": REPS,
        "points": points,
        "low_drift_speedups": low_drift,
    }


def write_report(doc: Dict[str, object], out: str) -> str:
    with open(out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--grid", choices=("tiny", "full"), default="full",
        help="workload grid: 'tiny' is the CI smoke grid",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help="output JSON path (default: repo-root "
             "BENCH_recalibration.json)",
    )
    args = parser.parse_args(argv)
    doc = run_grid(args.grid)
    path = write_report(doc, args.out)
    print(f"wrote {os.path.abspath(path)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
