"""Edge cases and failure injection across the stack."""

import numpy as np
import pytest

from repro import (
    Bucket,
    GroupTable,
    Histogram,
    LongestPrefixMatchPartitioning,
    OverlappingPartitioning,
    PrunedHierarchy,
    UIDDomain,
    build_nonoverlapping,
    build_overlapping,
    evaluate_function,
    get_metric,
    reconstruct_estimates,
)
from repro.algorithms import build_lpm_greedy
from repro.streams import ControlCenter, Monitor


class TestDegenerateDomains:
    def test_height_zero_single_identifier(self):
        dom = UIDDomain(0)
        table = GroupTable(dom, [1])
        counts = np.array([5.0])
        h = PrunedHierarchy(table, counts)
        res = build_nonoverlapping(h, get_metric("rms"), 2)
        assert res.error_at(2) == pytest.approx(0.0)
        fn = res.function_at(2)
        assert fn.buckets_for_uid(0) == [1]

    def test_single_group_is_whole_domain(self):
        dom = UIDDomain(3)
        table = GroupTable(dom, [1], ["everything"])
        counts = np.array([42.0])
        h = PrunedHierarchy(table, counts)
        for builder in (build_nonoverlapping, build_overlapping):
            res = builder(h, get_metric("average"), 3)
            assert res.error_at(3) == pytest.approx(0.0)

    def test_wide_domain_within_int64(self):
        dom = UIDDomain(40)
        table = GroupTable(dom, [dom.node(8, p) for p in range(256)])
        uid = (1 << 40) - 1
        assert table.lookup(uid) == 255
        fn = LongestPrefixMatchPartitioning(dom, [Bucket(1)])
        hist = fn.build_histogram(np.array([uid, 0]))
        assert hist.get(1) == 2

    def test_oversized_domain_rejected(self):
        dom = UIDDomain(80)
        with pytest.raises(ValueError, match="62-bit"):
            GroupTable(dom, [1])


class TestBadCounts:
    def test_nan_counts_rejected(self, small_instance):
        _dom, table, counts = small_instance
        bad = counts.copy()
        bad[0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            PrunedHierarchy(table, bad)

    def test_inf_counts_rejected(self, small_instance):
        _dom, table, counts = small_instance
        bad = counts.copy()
        bad[3] = np.inf
        with pytest.raises(ValueError, match="finite"):
            PrunedHierarchy(table, bad)

    def test_fractional_counts_supported(self, small_instance):
        """Sum aggregates produce non-integer 'counts'; everything
        downstream must handle them."""
        _dom, table, counts = small_instance
        frac = counts * 0.37
        h = PrunedHierarchy(table, frac)
        res = build_overlapping(h, get_metric("rms"), 5)
        fn = res.function_at(5)
        assert evaluate_function(table, frac, fn, get_metric("rms")) == \
            pytest.approx(res.error_at(5), abs=1e-9)


class TestDecodeRobustness:
    def test_empty_message_list_decodes_to_zero(self, small_instance):
        _dom, table, counts = small_instance
        cc = ControlCenter(table, get_metric("rms"),
                           algorithm="overlapping", budget=4)
        cc.rebuild_function(counts)
        est = cc.decode([])
        assert np.all(est == 0)

    def test_histogram_missing_buckets_is_zero(self, small_instance):
        """A histogram that omits buckets (all zero-count) reconstructs
        zeros, not garbage."""
        dom, table, _counts = small_instance
        fn = OverlappingPartitioning(dom, [Bucket(1)])
        est = reconstruct_estimates(table, fn, Histogram({}))
        assert np.all(est == 0)

    def test_monitor_empty_window(self, small_instance):
        dom, table, counts = small_instance
        fn = LongestPrefixMatchPartitioning(dom, [Bucket(1)])
        m = Monitor("m")
        m.install_function(fn, 0)
        msg = m.process_window(0, np.array([], dtype=np.int64))
        assert len(msg.histogram) == 0
        assert msg.histogram.total == 0

    def test_live_traffic_outside_history(self, small_instance):
        """A function trained on one window must still decode a window
        whose traffic appears in regions that were empty in history."""
        dom, table, counts = small_instance
        h = PrunedHierarchy(table, counts)
        fn = build_lpm_greedy(h, get_metric("rms"), 5).function_at(5)
        live = np.zeros(len(table))
        live[0] = 50.0  # group that was silent in history
        err = evaluate_function(table, live, fn, get_metric("rms"))
        assert np.isfinite(err)


class TestBudgetExtremes:
    def test_budget_larger_than_capacity(self, small_instance):
        _dom, table, counts = small_instance
        h = PrunedHierarchy(table, counts)
        cap = h.max_useful_buckets()
        res = build_overlapping(h, get_metric("average"), cap * 3)
        # more budget than useful buckets: curve flat at zero error
        assert res.error_at(cap * 3) == pytest.approx(0.0, abs=1e-12)

    def test_function_at_clamps(self, small_instance):
        _dom, table, counts = small_instance
        h = PrunedHierarchy(table, counts)
        res = build_nonoverlapping(h, get_metric("rms"), 4)
        fn = res.function_at(10_000)
        assert fn.num_buckets <= 4
