"""Pane-based sliding-window histograms.

The paper's target query aggregates over a *sliding* window
(Section 2.2.2), but shipping a histogram per slide would recount every
overlapping tuple.  The standard streaming fix applies directly because
count histograms are distributive: the Monitor aggregates per *pane*
(the gcd of window width and slide), and each sliding window's
histogram is the bucket-wise merge of the panes it spans — every tuple
is partitioned exactly once.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Iterator, Tuple

from ..core.partition import Histogram, PartitioningFunction
from .tuples import Trace
from .windows import TumblingWindows

__all__ = ["PaneAggregator"]


def _float_gcd(a: float, b: float, tol: float = 1e-9) -> float:
    while b > tol:
        a, b = b, a % b
    return a


class PaneAggregator:
    """Computes sliding-window histograms from per-pane histograms.

    Parameters
    ----------
    function:
        The partitioning function installed on the Monitor.
    width / slide:
        Sliding-window geometry; the pane size is their gcd, so both
        must be (approximate) multiples of a common unit.
    """

    def __init__(
        self,
        function: PartitioningFunction,
        width: float,
        slide: float,
    ) -> None:
        if width <= 0 or slide <= 0:
            raise ValueError("width and slide must be positive")
        if slide > width:
            raise ValueError(
                f"slide {slide} exceeds width {width}; windows would skip "
                "tuples — use tumbling windows instead"
            )
        self.function = function
        self.width = width
        self.slide = slide
        self.pane = _float_gcd(width, slide)
        self.panes_per_window = round(width / self.pane)
        self.panes_per_slide = round(slide / self.pane)
        if not math.isclose(self.panes_per_window * self.pane, width,
                            rel_tol=1e-6):
            raise ValueError(
                f"width {width} and slide {slide} share no usable pane size"
            )

    def windows(self, trace: Trace) -> Iterator[Tuple[int, Histogram]]:
        """Yield ``(window_index, histogram)`` for every full sliding
        window in the trace.  Each tuple is partitioned exactly once
        (into its pane); window histograms are pane merges."""
        buffer: Deque[Histogram] = deque(maxlen=self.panes_per_window)
        index = 0
        panes_since_emit = self.panes_per_slide  # emit on first full fill
        for pane_window in TumblingWindows(self.pane).segment(trace):
            buffer.append(self.function.build_histogram(pane_window.uids))
            if len(buffer) < self.panes_per_window:
                continue
            panes_since_emit += 1
            if panes_since_emit >= self.panes_per_slide:
                panes_since_emit = 0
                yield index, Histogram.merge(buffer)
                index += 1
