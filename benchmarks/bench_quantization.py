"""Ablation A4: quantization granularity of the quantized heuristic.

The paper's quantized algorithm rounds its counters to
``(1 + theta)^i`` values; the number of quanta k enters the running
time as k^5.  This bench sweeps theta on a moderate workload and
records the accuracy/time trade-off (Section 5.1.1 observed that the
logarithmic counters lose fine-grained information on heavy groups).
"""

import time

import numpy as np

from repro import PrunedHierarchy, UIDDomain, get_metric
from repro.algorithms import build_lpm_quantized
from repro.data import TrafficModel, generate_subnet_table, generate_trace

from workloads import format_table, save_series

THETAS = [4.0, 2.0, 1.0]
BUDGET = 50


def _workload():
    dom = UIDDomain(13)
    table = generate_subnet_table(dom, seed=51)
    uids = generate_trace(table, 300_000, seed=52, model=TrafficModel())
    counts = table.counts_from_uids(uids)
    return table, counts, PrunedHierarchy(table, counts)


def test_theta_tradeoff(benchmark):
    _table, _counts, hierarchy = _workload()
    metric = get_metric("avg_relative", floor=1.0)
    rows = []
    errors = {}
    for theta in THETAS:
        t0 = time.perf_counter()
        res = build_lpm_quantized(
            hierarchy, metric, BUDGET, theta=theta, beam=3,
            curve_budgets=[BUDGET],
        )
        dt = time.perf_counter() - t0
        errors[theta] = res.error_at(BUDGET)
        rows.append([theta, errors[theta], round(dt, 2)])
    save_series("a4_quantization.csv", ["theta", "error", "seconds"], rows)
    print(f"\nA4 quantization granularity (budget {BUDGET}, avg-relative)")
    print(format_table(["theta", "error", "seconds"], rows))

    assert all(np.isfinite(v) for v in errors.values())
    # the finest grid should not be the worst of the sweep
    assert errors[THETAS[-1]] <= max(errors.values()) + 1e-9

    benchmark.pedantic(
        lambda: build_lpm_quantized(
            hierarchy, metric, BUDGET, theta=1.0, beam=3,
            curve_budgets=[BUDGET],
        ),
        rounds=1, iterations=1,
    )
