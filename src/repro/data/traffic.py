"""Synthetic dark-address traffic traces (paper Section 5, Figure 16).

The paper's trace — 7 million packets from 187,866 unique sources on a
slice of unassigned address space — is proprietary; this module
generates traces with its load-bearing properties:

* only a fraction of subnets are active in a window (sparse group
  counts, Section 4.3);
* traffic across active subnets is heavily skewed (Zipf), producing the
  orders-of-magnitude spread of Figure 16;
* identifiers within a subnet are drawn uniformly, preserving the
  hierarchical locality the partitioning functions exploit.

The generators are seeded and scale-free: the bench harness uses scaled
packet counts, the examples smaller ones still.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..core.groups import GroupTable

__all__ = ["TrafficModel", "generate_trace", "generate_timestamped_trace"]


@dataclass
class TrafficModel:
    """Distributional knobs of the synthetic trace.

    Two weight models are provided:

    ``"cascade"`` (default)
        A multiplicative cascade down the address hierarchy: traffic
        mass is split between the two halves of each prefix with a
        random skewed fraction, and whole subtrees go dark with some
        probability.  This produces the heavy-tailed *and spatially
        correlated* per-subnet loads of real traces (busy subnets
        cluster under common prefixes) — the structure hierarchical
        histograms exploit and Figure 16 exhibits.
    ``"zipf"``
        Independent Zipf weights over a random subset of subnets — the
        same marginal skew with *no* spatial locality; useful as an
        adversarial ablation.

    Attributes
    ----------
    mode:
        ``"cascade"`` or ``"zipf"``.
    active_fraction:
        (zipf) Fraction of subnets observed at all during a window.
    zipf_exponent:
        (zipf) Skew across active subnets.
    cascade_skew:
        (cascade) Beta(a, a) parameter for per-level splits in the
        *upper* hierarchy; smaller is more skewed.  0.3-0.6 resembles
        measured traffic.
    cascade_skew_deep:
        (cascade) Beta parameter below the locality depth.  A larger
        (more even) value makes subnets under a busy prefix carry
        similar loads — the within-region homogeneity of real traces.
    cascade_locality_frac:
        (cascade) Fraction of the hierarchy height at which splits
        switch from the top skew to the deep skew (and below which
        dropout stops).
    cascade_dropout:
        (cascade) Probability that one side of an upper-level split
        goes completely dark — controls spatial sparsity.
    """

    mode: str = "cascade"
    active_fraction: float = 0.15
    zipf_exponent: float = 1.2
    cascade_skew: float = 0.35
    cascade_skew_deep: float = 4.0
    cascade_locality_frac: float = 0.55
    cascade_dropout: float = 0.05

    def __post_init__(self) -> None:
        if self.mode not in ("cascade", "zipf"):
            raise ValueError(f"unknown traffic mode {self.mode!r}")
        if not 0 < self.active_fraction <= 1:
            raise ValueError(
                f"active_fraction must be in (0, 1], got {self.active_fraction}"
            )
        if self.zipf_exponent <= 0:
            raise ValueError(
                f"zipf_exponent must be positive, got {self.zipf_exponent}"
            )
        if self.cascade_skew <= 0 or self.cascade_skew_deep <= 0:
            raise ValueError("cascade skew parameters must be positive")
        if not 0 <= self.cascade_locality_frac <= 1:
            raise ValueError(
                "cascade_locality_frac must be in [0, 1], got "
                f"{self.cascade_locality_frac}"
            )
        if not 0 <= self.cascade_dropout < 1:
            raise ValueError(
                f"cascade_dropout must be in [0, 1), got {self.cascade_dropout}"
            )

    def group_weights(
        self, table: GroupTable, rng: np.random.Generator
    ) -> np.ndarray:
        """Per-group traffic weights under the configured model."""
        if self.mode == "zipf":
            return self._zipf_weights(len(table), rng)
        return self._cascade_weights(table, rng)

    def _zipf_weights(
        self, num_groups: int, rng: np.random.Generator
    ) -> np.ndarray:
        n_active = max(1, int(round(num_groups * self.active_fraction)))
        active = rng.choice(num_groups, size=n_active, replace=False)
        ranks = rng.permutation(n_active) + 1
        weights = np.zeros(num_groups, dtype=np.float64)
        weights[active] = ranks ** (-self.zipf_exponent)
        return weights / weights.sum()

    def _cascade_weights(
        self, table: GroupTable, rng: np.random.Generator
    ) -> np.ndarray:
        weights = np.zeros(len(table), dtype=np.float64)
        height = table.domain.height
        locality_depth = height * self.cascade_locality_frac
        # (group index range, uid range, mass, depth)
        stack = [(0, len(table), 0, table.domain.num_uids, 1.0, 0)]
        while stack:
            lo, hi, uid_lo, uid_hi, mass, depth = stack.pop()
            if mass <= 0.0 or lo >= hi:
                continue
            if hi - lo == 1:
                # A single group (possibly wider than the current uid
                # range, when the group node is shallower); assign.
                weights[lo] += mass
                continue
            mid = (uid_lo + uid_hi) // 2
            split = lo + int(
                np.searchsorted(table.starts[lo:hi], mid, side="left")
            )
            upper = depth < locality_depth
            skew = self.cascade_skew if upper else self.cascade_skew_deep
            frac = float(rng.beta(skew, skew))
            dead_left = upper and rng.random() < self.cascade_dropout
            dead_right = upper and rng.random() < self.cascade_dropout
            if dead_left and dead_right:
                # keep at least one side alive so mass is conserved
                if rng.random() < 0.5:
                    dead_left = False
                else:
                    dead_right = False
            left_mass = 0.0 if dead_left else mass * frac
            right_mass = 0.0 if dead_right else mass * (1.0 - frac)
            rescale = left_mass + right_mass
            if rescale <= 0:
                continue
            left_mass, right_mass = (
                mass * left_mass / rescale, mass * right_mass / rescale
            )
            stack.append((lo, split, uid_lo, mid, left_mass, depth + 1))
            stack.append((split, hi, mid, uid_hi, right_mass, depth + 1))
        total = weights.sum()
        if total <= 0:  # pragma: no cover - defensive
            weights[:] = 1.0 / len(weights)
            return weights
        return weights / total


def generate_trace(
    table: GroupTable,
    num_packets: int,
    seed: int = 0,
    model: Optional[TrafficModel] = None,
) -> np.ndarray:
    """Generate ``num_packets`` source identifiers against ``table``.

    Returns an int64 array of identifiers; every identifier falls in
    some group of the table (sources come from allocated space).
    """
    if num_packets < 0:
        raise ValueError(f"num_packets must be nonnegative, got {num_packets}")
    model = model or TrafficModel()
    rng = np.random.default_rng(seed)
    weights = model.group_weights(table, rng)
    groups = rng.choice(len(table), size=num_packets, p=weights)
    starts = table.starts[groups]
    sizes = table.ends[groups] - starts
    offsets = np.floor(rng.random(num_packets) * sizes).astype(np.int64)
    return starts + offsets


def generate_timestamped_trace(
    table: GroupTable,
    num_packets: int,
    duration: float,
    seed: int = 0,
    model: Optional[TrafficModel] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """A trace with uniform-random arrival times in ``[0, duration)``.

    Returns ``(timestamps, uids)`` sorted by time — ready to feed a
    windowing operator.
    """
    if duration <= 0:
        raise ValueError(f"duration must be positive, got {duration}")
    uids = generate_trace(table, num_packets, seed=seed, model=model)
    rng = np.random.default_rng(seed + 0x9E3779B9)
    ts = np.sort(rng.random(num_packets) * duration)
    return ts, uids
