"""Tests for the greedy longest-prefix-match heuristic (Section 3.2.6)."""

import numpy as np
import pytest

from repro import (
    LongestPrefixMatchPartitioning,
    PrunedHierarchy,
    build_lpm_greedy,
    evaluate_function,
    get_metric,
)
from repro.algorithms import OverlappingDP, bucket_approx_errors, exhaustive_lpm

from helpers import ALL_METRICS, random_instance


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("mname", ALL_METRICS)
def test_produces_valid_lpm_function(seed, mname):
    _dom, table, counts = random_instance(seed)
    metric = get_metric(mname)
    h = PrunedHierarchy(table, counts)
    res = build_lpm_greedy(h, metric, 4)
    fn = res.function_at(4)
    assert isinstance(fn, LongestPrefixMatchPartitioning)
    assert fn.num_buckets <= 4
    assert h.root.node in [b.node for b in fn.buckets]


@pytest.mark.parametrize("seed", range(8))
def test_curve_is_measured_error(seed):
    """Heuristic curves must be honest: the reported value equals the
    evaluated error of the materialized function."""
    _dom, table, counts = random_instance(seed + 30)
    metric = get_metric("rms")
    h = PrunedHierarchy(table, counts)
    res = build_lpm_greedy(h, metric, 5)
    for b in (1, 3, 5):
        fn = res.make_function(b)
        assert evaluate_function(table, counts, fn, metric) == pytest.approx(
            float(min(res.curve[1 : b + 1])), abs=1e-9
        ) or res.curve[b] == pytest.approx(
            evaluate_function(table, counts, fn, metric), abs=1e-9
        )


@pytest.mark.parametrize("seed", range(8))
def test_never_beats_optimum(seed):
    _dom, table, counts = random_instance(seed + 60)
    metric = get_metric("average")
    h = PrunedHierarchy(table, counts)
    budget = 3
    res = build_lpm_greedy(h, metric, budget)
    optimum, _ = exhaustive_lpm(table, counts, metric, budget, sparse=True)
    assert res.error_at(budget) >= optimum - 1e-9


@pytest.mark.parametrize("rank", ["error", "benefit"])
def test_ranking_modes(rank, small_hierarchy):
    metric = get_metric("rms")
    res = build_lpm_greedy(small_hierarchy, metric, 4, rank=rank)
    assert np.isfinite(res.error_at(4))


def test_unknown_rank_rejected(small_hierarchy):
    with pytest.raises(ValueError, match="ranking"):
        build_lpm_greedy(small_hierarchy, get_metric("rms"), 3, rank="x")


def test_reuses_supplied_dp(small_hierarchy):
    metric = get_metric("rms")
    dp = OverlappingDP(small_hierarchy, metric, 8)
    res = build_lpm_greedy(small_hierarchy, metric, 4, dp=dp)
    assert np.isfinite(res.error_at(4))


def test_bucket_approx_errors_zero_for_exact(small_hierarchy):
    """Sparse buckets and exact singleton buckets score zero."""
    metric = get_metric("rms")
    dp = OverlappingDP(small_hierarchy, metric, 8)
    buckets = dp.buckets_for_budget(8)
    scores = bucket_approx_errors(small_hierarchy, buckets, metric)
    assert all(v >= 0 for v in scores.values())
    for b in buckets:
        if b.is_sparse:
            assert scores[b.node] == 0.0


def test_overprovision_expands_pool(small_hierarchy):
    metric = get_metric("rms")
    r1 = build_lpm_greedy(small_hierarchy, metric, 3, overprovision=1.0)
    r2 = build_lpm_greedy(small_hierarchy, metric, 3, overprovision=3.0)
    assert r2.stats["pool"] >= r1.stats["pool"]


def test_greedy_uses_budget_monotonically(small_hierarchy):
    metric = get_metric("average")
    res = build_lpm_greedy(small_hierarchy, metric, 6)
    finite = res.curve[np.isfinite(res.curve)]
    assert np.all(np.diff(finite) <= 1e-12)  # curve is monotonized
