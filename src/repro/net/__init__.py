"""Network-identifier substrate: IPv4 addresses, CIDR prefixes and
longest-prefix-match tables."""

from .ipaddr import (
    format_ipv4,
    node_to_prefix,
    parse_cidr,
    parse_ipv4,
    prefix_to_node,
)
from .prefix_table import PrefixTable, PrefixTrie

__all__ = [
    "parse_ipv4",
    "format_ipv4",
    "parse_cidr",
    "prefix_to_node",
    "node_to_prefix",
    "PrefixTable",
    "PrefixTrie",
]
