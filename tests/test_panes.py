"""Tests for pane-based sliding-window histograms."""

import numpy as np
import pytest

from repro import Bucket, Histogram, LongestPrefixMatchPartitioning, UIDDomain
from repro.streams import SlidingWindows, Trace
from repro.streams.panes import PaneAggregator

DOM = UIDDomain(4)


def _fn():
    return LongestPrefixMatchPartitioning(
        DOM, [Bucket(1), Bucket(DOM.node(1, 1))]
    )


class TestHistogramMerge:
    def test_merge_sums_buckets(self):
        a = Histogram({1: 3.0, 2: 1.0}, unmatched=1.0, total=5.0)
        b = Histogram({2: 2.0, 5: 4.0}, total=6.0)
        m = Histogram.merge([a, b])
        assert m.counts == {1: 3.0, 2: 3.0, 5: 4.0}
        assert m.unmatched == 1.0
        assert m.total == 11.0

    def test_merge_empty(self):
        assert len(Histogram.merge([])) == 0


class TestPaneAggregator:
    def test_pane_geometry(self):
        agg = PaneAggregator(_fn(), width=6.0, slide=2.0)
        assert agg.pane == pytest.approx(2.0)
        assert agg.panes_per_window == 3
        assert agg.panes_per_slide == 1

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            PaneAggregator(_fn(), width=0.0, slide=1.0)
        with pytest.raises(ValueError):
            PaneAggregator(_fn(), width=2.0, slide=3.0)

    def test_matches_direct_sliding_windows(self):
        """Pane-merged histograms must equal histograms computed
        directly on each sliding window's tuples."""
        rng = np.random.default_rng(3)
        uids = rng.integers(0, DOM.num_uids, 240)
        trace = Trace(np.arange(240) / 10.0, uids)  # 24s of traffic
        fn = _fn()
        agg = PaneAggregator(fn, width=6.0, slide=2.0)
        pane_windows = dict(agg.windows(trace))
        direct = [
            fn.build_histogram(w.uids)
            for w in SlidingWindows(6.0, 2.0).segment(trace)
        ]
        assert len(pane_windows) >= 3
        for idx, hist in pane_windows.items():
            want = direct[idx]
            assert hist.counts == pytest.approx(want.counts), idx
            assert hist.total == pytest.approx(want.total)

    def test_tumbling_special_case(self):
        """width == slide degenerates to tumbling windows."""
        rng = np.random.default_rng(4)
        uids = rng.integers(0, DOM.num_uids, 100)
        trace = Trace(np.arange(100) / 10.0, uids)
        fn = _fn()
        agg = PaneAggregator(fn, width=5.0, slide=5.0)
        windows = list(agg.windows(trace))
        assert len(windows) == 2
        total = sum(h.total for _i, h in windows)
        assert total == 100

    def test_every_tuple_partitioned_once(self):
        """Across one slide step, only the new pane's tuples are
        re-partitioned — total pane work equals the stream length."""
        rng = np.random.default_rng(5)
        uids = rng.integers(0, DOM.num_uids, 300)
        trace = Trace(np.arange(300) / 10.0, uids)

        calls = []
        fn = _fn()
        original = fn.build_histogram

        def counting(u):
            calls.append(len(u))
            return original(u)

        fn.build_histogram = counting  # type: ignore[method-assign]
        agg = PaneAggregator(fn, width=6.0, slide=3.0)
        list(agg.windows(trace))
        assert sum(calls) <= 300  # each tuple partitioned at most once
