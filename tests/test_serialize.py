"""Tests for the binary and JSON wire formats."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Bucket,
    Histogram,
    LongestPrefixMatchPartitioning,
    NonoverlappingPartitioning,
    OverlappingPartitioning,
    PrunedHierarchy,
    UIDDomain,
    get_metric,
)
from repro.algorithms import build_overlapping
from repro.core.bits import BitReader, BitWriter
from repro.core.serialize import (
    decode_function,
    decode_histogram,
    encode_function,
    encode_histogram,
    function_from_json,
    function_to_json,
)

from helpers import random_instance


class TestBits:
    def test_write_read_roundtrip(self):
        w = BitWriter()
        w.write(0b101, 3)
        w.write(0, 1)
        w.write(0xABCD, 16)
        r = BitReader(w.getvalue())
        assert r.read(3) == 0b101
        assert r.read(1) == 0
        assert r.read(16) == 0xABCD

    def test_zero_width(self):
        w = BitWriter()
        w.write(0, 0)
        assert w.bit_length == 0
        r = BitReader(b"")
        assert r.read(0) == 0

    def test_value_too_wide_rejected(self):
        w = BitWriter()
        with pytest.raises(ValueError):
            w.write(4, 2)
        with pytest.raises(ValueError):
            w.write(1, -1)

    def test_read_past_end(self):
        r = BitReader(b"\xff")
        r.read(8)
        with pytest.raises(EOFError):
            r.read(1)

    @given(st.lists(st.integers(min_value=0, max_value=10**9),
                    min_size=1, max_size=10))
    def test_varint_roundtrip(self, values):
        w = BitWriter()
        for v in values:
            w.write_unary_varint(v)
        r = BitReader(w.getvalue())
        for v in values:
            assert r.read_unary_varint() == v

    @settings(max_examples=60)
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**20),
                              st.integers(min_value=0, max_value=24)),
                    min_size=1, max_size=20))
    def test_mixed_field_roundtrip(self, fields):
        w = BitWriter()
        clipped = [(v & ((1 << width) - 1), width) for v, width in fields]
        for v, width in clipped:
            w.write(v, width)
        r = BitReader(w.getvalue())
        for v, width in clipped:
            assert r.read(width) == v


DOM = UIDDomain(6)


def _fn(cls, *nodes, sparse=None):
    buckets = [Bucket(n) for n in nodes]
    if sparse:
        buckets.append(Bucket(sparse[0], sparse_group_node=sparse[1]))
    return cls(DOM, buckets)


class TestFunctionCodec:
    @pytest.mark.parametrize("cls", [NonoverlappingPartitioning,
                                     OverlappingPartitioning,
                                     LongestPrefixMatchPartitioning])
    def test_roundtrip_plain(self, cls):
        if cls is NonoverlappingPartitioning:
            fn = _fn(cls, DOM.node(1, 0), DOM.node(1, 1))
        else:
            fn = _fn(cls, 1, DOM.node(2, 3), DOM.node(4, 9))
        out = decode_function(encode_function(fn))
        assert type(out) is cls
        assert out.domain == fn.domain
        assert [b.node for b in out.buckets] == [b.node for b in fn.buckets]

    def test_roundtrip_sparse(self):
        fn = _fn(
            OverlappingPartitioning, 1,
            sparse=(DOM.node(2, 1), DOM.node(5, 0b01011)),
        )
        out = decode_function(encode_function(fn))
        sparse = [b for b in out.buckets if b.is_sparse]
        assert len(sparse) == 1
        assert sparse[0].node == DOM.node(2, 1)
        assert sparse[0].sparse_group_node == DOM.node(5, 0b01011)

    def test_encoded_size_tracks_size_bits(self):
        fn = _fn(OverlappingPartitioning, 1, DOM.node(3, 5), DOM.node(6, 40))
        data = encode_function(fn)
        # wire size is within a small header + rounding of the model
        assert len(data) * 8 <= fn.size_bits() + 32

    def test_malformed_rejected(self):
        with pytest.raises((ValueError, EOFError)):
            decode_function(b"\xff\xff")

    @pytest.mark.parametrize("seed", range(6))
    def test_constructed_functions_roundtrip(self, seed):
        _dom, table, counts = random_instance(seed)
        h = PrunedHierarchy(table, counts)
        fn = build_overlapping(h, get_metric("rms"), 4).function_at(4)
        out = decode_function(encode_function(fn))
        assert sorted(out.match_nodes) == sorted(fn.match_nodes)
        assert out.semantics == fn.semantics

    def test_json_roundtrip(self):
        fn = _fn(
            LongestPrefixMatchPartitioning, 1, DOM.node(2, 3),
            sparse=(DOM.node(2, 1), DOM.node(5, 0b01001)),
        )
        out = function_from_json(function_to_json(fn))
        assert type(out) is LongestPrefixMatchPartitioning
        assert [b.node for b in out.buckets] == [b.node for b in fn.buckets]
        assert out.buckets[-1].sparse_group_node == \
            fn.buckets[-1].sparse_group_node

    def test_json_bad_semantics_rejected(self):
        fn = _fn(OverlappingPartitioning, 1)
        text = function_to_json(fn).replace("overlapping", "woozle")
        with pytest.raises(ValueError):
            function_from_json(text)


class TestHistogramCodec:
    def test_roundtrip(self):
        hist = Histogram({1: 100.0, DOM.node(3, 2): 7.0}, total=107.0)
        out = decode_histogram(encode_histogram(hist, DOM))
        assert out.counts == hist.counts
        assert out.total == 107.0

    def test_empty(self):
        out = decode_histogram(encode_histogram(Histogram({}), DOM))
        assert len(out) == 0

    def test_counter_overflow_rejected(self):
        hist = Histogram({1: float(2**33)})
        with pytest.raises(ValueError):
            encode_histogram(hist, DOM, counter_bits=32)

    def test_narrow_counters(self):
        hist = Histogram({1: 200.0})
        data = encode_histogram(hist, DOM, counter_bits=16)
        out = decode_histogram(data, counter_bits=16)
        assert out.get(1) == 200.0

    def test_size_close_to_model(self):
        hist = Histogram({1: 5.0, 2: 6.0, DOM.node(4, 7): 8.0})
        data = encode_histogram(hist, DOM)
        assert len(data) * 8 <= hist.size_bits(DOM) + 40
