"""Metrics registry: labeled counter/gauge/histogram/timer families.

The observability layer the rest of the package reports into.  Design
constraints, in order:

1. **Zero overhead when disabled.**  The module-level *current*
   registry defaults to a :class:`NullRegistry` whose lookups hand back
   shared no-op instruments — instrumented hot paths pay one function
   call and one dictionary-free method dispatch, nothing else.  No
   timestamps are read, no locks taken, nothing allocated per call.
2. **No dependencies.**  Plain stdlib (``threading``, ``time``); the
   exporters in :mod:`repro.obs.export` turn a registry into
   JSON-lines, CSV or Prometheus text.
3. **Thread safety.**  Monitors may be driven from worker threads;
   every instrument child carries its own lock, so two threads updating
   different instruments never contend, and two threads updating the
   same counter serialize on that counter alone.  The registry-wide
   lock guards only family creation, span recording and the snapshot
   series.

Instrument kinds follow the conventional semantics:

* :class:`Counter` — monotonically nondecreasing (``inc`` rejects
  negative deltas); e.g. ``channel.upstream.bytes``.
* :class:`Gauge` — a value that goes both ways; e.g. the last window's
  drift score.
* :class:`HistogramInstrument` — distribution of observations with
  count/sum/min/max plus cumulative buckets (Prometheus-style
  ``le`` bounds); e.g. per-window error.
* :class:`Timer` — a histogram of durations measured on the monotonic
  clock (:func:`time.perf_counter`), with a ``time()`` context
  manager.

Families are keyed by ``(kind, name)``; children by their sorted label
items, so ``reg.counter("x", a="1", b="2")`` and
``reg.counter("x", b="2", a="1")`` are the same child.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "HistogramInstrument",
    "Timer",
    "SpanRecord",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
]

#: Default histogram bucket upper bounds — a decade-spanning log grid
#: that covers both sub-millisecond timings and multi-megabyte sizes.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0,
    1e3, 1e4, 1e5, 1e6, 1e7,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, object]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically nondecreasing count."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelItems, lock: threading.Lock):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can move in either direction."""

    __slots__ = ("name", "labels", "value", "_lock")

    def __init__(self, name: str, labels: LabelItems, lock: threading.Lock):
        self.name = name
        self.labels = labels
        self.value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)


class HistogramInstrument:
    """Distribution summary: count, sum, min, max, cumulative buckets."""

    __slots__ = (
        "name", "labels", "count", "sum", "min", "max",
        "bounds", "bucket_counts", "_lock",
    )

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        lock: threading.Lock,
        bounds: Tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # trailing +inf
        self._lock = lock

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.sum += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            for i, bound in enumerate(self.bounds):
                if value <= bound:
                    self.bucket_counts[i] += 1
                    return
            self.bucket_counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0


class Timer(HistogramInstrument):
    """A histogram of monotonic-clock durations, in seconds."""

    __slots__ = ()

    @contextmanager
    def time(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)


class SpanRecord:
    """One finished tracing span (see :mod:`repro.obs.spans`)."""

    __slots__ = ("name", "parent", "start", "duration", "payload", "thread")

    def __init__(
        self,
        name: str,
        parent: Optional[str],
        start: float,
        duration: float,
        payload: Dict[str, object],
        thread: str,
    ):
        self.name = name
        self.parent = parent
        self.start = start
        self.duration = duration
        self.payload = payload
        self.thread = thread


class MetricsRegistry:
    """A live collection of labeled instrument families plus spans."""

    enabled = True

    _KINDS = {
        "counter": Counter,
        "gauge": Gauge,
        "histogram": HistogramInstrument,
        "timer": Timer,
    }

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[Tuple[str, str], Dict[LabelItems, object]] = {}
        self._spans: List[SpanRecord] = []
        #: Origin of the registry's span timeline (monotonic clock).
        self.epoch = time.perf_counter()
        #: Per-window snapshot-delta records, appended by
        #: :func:`repro.obs.snapshots.emit_window_record` (one per
        #: decoded window of a monitoring run).
        self.window_series: List[Dict[str, object]] = []
        #: The snapshot the next window delta is taken against.
        self._last_snapshot: Optional[object] = None

    # -- instrument lookup -------------------------------------------------
    def _instrument(self, kind: str, name: str, labels: Dict[str, object]):
        key = (kind, name)
        items = _label_items(labels)
        with self._lock:
            family = self._metrics.setdefault(key, {})
            child = family.get(items)
            if child is None:
                # Each child gets its own lock: hot instruments updated
                # from worker threads must not serialize on unrelated
                # families (or on family creation).
                child = self._KINDS[kind](name, items, threading.Lock())
                family[items] = child
            return child

    def counter(self, name: str, **labels) -> Counter:
        return self._instrument("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._instrument("gauge", name, labels)

    def histogram(self, name: str, **labels) -> HistogramInstrument:
        return self._instrument("histogram", name, labels)

    def timer(self, name: str, **labels) -> Timer:
        return self._instrument("timer", name, labels)

    # -- spans -------------------------------------------------------------
    def record_span(self, record: SpanRecord) -> None:
        with self._lock:
            self._spans.append(record)

    @property
    def spans(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._spans)

    # -- introspection -----------------------------------------------------
    def instruments(self) -> Iterator[Tuple[str, object]]:
        """Yield ``(kind, instrument)`` for every child, sorted by
        (kind, name, labels) for deterministic export."""
        with self._lock:
            snapshot = [
                (kind, name, items, child)
                for (kind, name), family in self._metrics.items()
                for items, child in family.items()
            ]
        for kind, _name, _items, child in sorted(
            snapshot, key=lambda row: (row[0], row[1], row[2])
        ):
            yield kind, child

    def get(self, kind: str, name: str, **labels):
        """The existing instrument, or ``None`` (never creates)."""
        family = self._metrics.get((kind, name))
        if family is None:
            return None
        return family.get(_label_items(labels))


class _NullInstrument:
    """Accepts every instrument method as a no-op."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    @contextmanager
    def time(self) -> Iterator[None]:
        yield


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry(MetricsRegistry):
    """The disabled registry: every lookup returns a shared no-op."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()

    def _instrument(self, kind, name, labels):
        return _NULL_INSTRUMENT

    def record_span(self, record: SpanRecord) -> None:
        pass


#: The process-wide disabled registry (instrumentation's default sink).
NULL_REGISTRY = NullRegistry()

_current: MetricsRegistry = NULL_REGISTRY
_current_lock = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The registry instrumented code currently reports into."""
    return _current


def set_registry(registry: Optional[MetricsRegistry]) -> MetricsRegistry:
    """Install ``registry`` as the current sink (``None`` disables);
    returns the previous one."""
    global _current
    with _current_lock:
        previous = _current
        _current = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def use_registry(registry: Optional[MetricsRegistry]) -> Iterator[MetricsRegistry]:
    """Scope ``registry`` as the current sink for a ``with`` block."""
    previous = set_registry(registry)
    try:
        yield get_registry()
    finally:
        set_registry(previous)
