"""Ablation A5: end-to-end bandwidth vs. accuracy (paper Figure 1).

Runs the full monitoring pipeline — train a partitioning function on
history, stream live windows through Monitors, reconstruct at the
Control Center — and records accuracy against bytes shipped, compared
with shipping raw identifiers.  This is the system-level claim the
histograms exist to serve.
"""

import numpy as np

from repro import UIDDomain, get_metric
from repro.data import TrafficModel, generate_subnet_table
from repro.data.traffic import generate_timestamped_trace
from repro.streams import MonitoringSystem, Trace

from workloads import format_table, save_series

BUDGETS = [10, 50, 200]


def _traces():
    dom = UIDDomain(16)
    table = generate_subnet_table(dom, seed=61)
    ts, uids = generate_timestamped_trace(
        table, 600_000, duration=60.0, seed=62, model=TrafficModel()
    )
    trace = Trace(ts, uids)
    return table, trace.slice_time(0, 30), trace.slice_time(30, 60)


def test_bandwidth_accuracy(benchmark):
    table, history, live = _traces()
    metric = get_metric("rms")
    rows = []
    prev_error = np.inf
    for budget in BUDGETS:
        system = MonitoringSystem(
            table, metric, num_monitors=4,
            algorithm="lpm_greedy", budget=budget,
        )
        system.train(history)
        report = system.run(live, window_width=10.0)
        rows.append([
            budget,
            report.mean_error,
            report.upstream_bytes,
            report.function_bytes,
            report.raw_bytes,
            round(report.compression_ratio, 1),
        ])
        assert report.compression_ratio > 1.0
        prev_error = min(prev_error, report.mean_error)
    header = ["budget", "mean_error", "hist_bytes", "function_bytes",
              "raw_bytes", "compression"]
    save_series("a5_bandwidth.csv", header, rows)
    print("\nA5 bandwidth vs accuracy (greedy LPM, 4 monitors)")
    print(format_table(header, rows))

    # more budget -> better accuracy, still far below raw shipping
    assert rows[-1][1] <= rows[0][1] + 1e-9
    assert rows[-1][-1] > 1.0

    def run_once():
        system = MonitoringSystem(
            table, metric, num_monitors=4,
            algorithm="lpm_greedy", budget=50,
        )
        system.train(history)
        return system.run(live, window_width=10.0)

    benchmark.pedantic(run_once, rounds=1, iterations=1)
