"""End-to-end monitoring system simulation (paper Figure 1).

Wires together the full pipeline on a single machine:

1. the Control Center builds a partitioning function from the history
   portion of a trace and installs it on every Monitor (downstream
   bytes are accounted);
2. the trace's remainder is split across the Monitors; for each
   tumbling window every Monitor ships its histogram (upstream bytes);
3. the Control Center merges, decodes and scores each window against
   the exact grouped aggregation.

The output is a list of per-window reports plus channel totals — the
accuracy-per-bit story of the paper, measured rather than asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..core.errors import PenaltyMetric
from ..core.groups import GroupTable
from ..obs import get_registry, span
from .channel import Channel
from .control_center import ControlCenter
from .monitor import Monitor
from .query import exact_group_counts
from .tuples import Trace
from .windows import TumblingWindows

__all__ = ["WindowReport", "MonitoringSystem"]


@dataclass(frozen=True)
class WindowReport:
    """Accuracy and cost accounting for one decoded window."""

    window_index: int
    tuples: int
    error: float
    histogram_bytes: int
    raw_bytes: int
    nonzero_buckets: int


@dataclass
class SystemReport:
    """Aggregate outcome of a monitoring run."""

    windows: List[WindowReport] = field(default_factory=list)
    function_bytes: int = 0
    upstream_bytes: int = 0
    raw_bytes: int = 0

    @property
    def mean_error(self) -> float:
        if not self.windows:
            return 0.0
        return float(np.mean([w.error for w in self.windows]))

    @property
    def compression_ratio(self) -> float:
        """Raw-stream bytes over histogram bytes (higher is better).

        ``0.0`` when nothing was sent — an idle system compressed
        nothing, and ``0.0`` keeps downstream arithmetic finite."""
        sent = self.upstream_bytes + self.function_bytes
        return self.raw_bytes / sent if sent else 0.0


class MonitoringSystem:
    """A Control Center plus a fleet of Monitors over one channel."""

    def __init__(
        self,
        table: GroupTable,
        metric: PenaltyMetric,
        num_monitors: int = 4,
        algorithm: str = "lpm_greedy",
        budget: int = 100,
        cache_size: int = 8,
        **builder_options,
    ) -> None:
        if num_monitors < 1:
            raise ValueError(f"need at least one monitor, got {num_monitors}")
        self.table = table
        self.metric = metric
        self.control_center = ControlCenter(
            table, metric, algorithm=algorithm, budget=budget,
            cache_size=cache_size, **builder_options,
        )
        self.monitors = [Monitor(f"monitor-{i}") for i in range(num_monitors)]
        self.channel = Channel(table.domain)

    def train(self, history: Trace) -> None:
        """Build the partitioning function from past traffic and push it
        to every Monitor."""
        counts = exact_group_counts(self.table, history.uids)
        function = self.control_center.rebuild_function(counts)
        for monitor in self.monitors:
            self.channel.send_function(function)
            monitor.install_function(
                function, self.control_center.function_version
            )

    def run(
        self,
        live: Trace,
        window_width: float,
        split_seed: int = 0,
    ) -> SystemReport:
        """Stream the live trace through the system window by window."""
        if self.control_center.function is None:
            raise RuntimeError("call train() before run()")
        report = SystemReport(
            function_bytes=self.channel.downstream_bytes,
        )
        registry = get_registry()
        shares = live.split(len(self.monitors), seed=split_seed)
        windows = TumblingWindows(window_width)
        segmented = [list(windows.segment(share)) for share in shares]
        n_windows = max((len(s) for s in segmented), default=0)
        with span(
            "system.run", windows=n_windows, monitors=len(self.monitors),
        ):
            for w in range(n_windows):
                messages = []
                window_uids = []
                for monitor, segs in zip(self.monitors, segmented):
                    if w >= len(segs):
                        continue
                    window = segs[w]
                    msg = monitor.process_window(window.index, window.uids)
                    self.channel.send_histogram(msg)
                    messages.append(msg)
                    window_uids.append(window.uids)
                if not messages:
                    continue
                uids = (
                    np.concatenate(window_uids)
                    if window_uids
                    else np.empty(0, dtype=np.int64)
                )
                actual = exact_group_counts(self.table, uids)
                estimates = self.control_center.decode(messages)
                error = self.control_center.error(estimates, actual)
                hist_bytes = sum(
                    m.size_bytes(self.table.domain) for m in messages
                )
                raw = self.channel.raw_stream_bytes(int(uids.size))
                nonzero = sum(len(m.histogram) for m in messages)
                report.windows.append(
                    WindowReport(
                        window_index=w,
                        tuples=int(uids.size),
                        error=error,
                        histogram_bytes=hist_bytes,
                        raw_bytes=raw,
                        nonzero_buckets=nonzero,
                    )
                )
                report.raw_bytes += raw
                if registry.enabled:
                    registry.counter("system.windows").inc()
                    registry.counter("system.tuples").inc(int(uids.size))
                    registry.counter("system.raw.bytes").inc(raw)
                    registry.histogram("system.window.error").observe(error)
                    registry.histogram("system.window.bytes").observe(
                        hist_bytes
                    )
                    registry.histogram(
                        "system.window.nonzero_buckets"
                    ).observe(nonzero)
        report.upstream_bytes = self.channel.upstream_bytes
        if registry.enabled:
            registry.gauge("system.mean_error").set(report.mean_error)
            registry.gauge("system.compression_ratio").set(
                report.compression_ratio
            )
        return report
