"""Fault injection and recovery for the Monitor↔Control-Center link.

The paper's setting is a lossy wide area: remote Monitors ship
histograms to a Control Center over a constrained link.  The rest of
the streams layer simulates that link; this module makes it *imperfect*
in the ways real links are, and provides the recovery machinery the
imperfections force into existence.

Fault taxonomy (all decisions drawn from one seeded generator, so a
given ``(FaultModel, workload)`` pair always misbehaves identically):

* **drop** — a histogram transmission is lost in flight.  The Monitor
  still spent the bytes (the channel charges every wire transmission),
  the Control Center just never sees it.
* **duplicate** — the network delivers a second copy of a histogram.
  Both copies are wire transmissions and both are charged; the Control
  Center deduplicates by ``(monitor, window_index, function_version)``.
* **delay** — a delivered copy arrives ``k`` windows late (``k``
  uniform in ``1..max_delay_windows``).  The decode watermark is one
  window, so late copies are counted and discarded, never decoded.
* **reorder** — a delivered copy is shuffled to a random position in
  its arrival window.  Histogram merging is commutative, so this only
  perturbs floating-point summation order.
* **crash** — a Monitor crash-and-restarts at a window boundary,
  losing its volatile state (the installed partitioning function) and
  that window's report.  It rejoins once the Control Center's install
  scheduler gets a function back onto it.
* **install_drop** — a downstream function install is lost in flight
  (defaults to the upstream ``drop`` probability).  Installs are
  version-stamped and idempotent; the :class:`InstallScheduler`
  retries with capped exponential backoff until the Monitor acks.

See ``docs/fault-model.md`` for the delivery guarantees each path ends
up with.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs import get_journal, get_registry, get_tracer
from .monitor import HistogramMessage

__all__ = ["Delivery", "FaultModel", "InstallScheduler"]


@dataclass(frozen=True, eq=False)
class Delivery:
    """One surviving wire copy of a histogram message.

    ``delay`` is in whole windows (0 = arrives in the window it was
    sent); ``reorder`` marks the copy for shuffling within its arrival
    window; ``copy`` numbers this wire transmission within its send
    (the lifecycle trace id's last component — surviving copies are
    numbered first, so copy indices at/above the survivor count name
    the dropped transmissions).  Identity (not value) equality: two
    copies of the same message are distinct deliveries.
    """

    message: HistogramMessage
    delay: int = 0
    reorder: bool = False
    copy: int = 0


#: Keys accepted by :meth:`FaultModel.parse`, mapped to field names.
_SPEC_ALIASES = {
    "drop": "drop",
    "dup": "duplicate",
    "duplicate": "duplicate",
    "reorder": "reorder",
    "delay": "delay",
    "max_delay": "max_delay_windows",
    "max_delay_windows": "max_delay_windows",
    "crash": "crash",
    "install_drop": "install_drop",
    "seed": "seed",
}
_INT_FIELDS = {"max_delay_windows", "seed"}


@dataclass
class FaultModel:
    """Seeded, deterministic per-message fault decisions.

    All probabilities are per-event: ``drop`` per wire transmission,
    ``duplicate`` per histogram send, ``delay``/``reorder`` per
    delivered copy, ``crash`` per (monitor, window).  A model with all
    probabilities at zero is behaviourally identical to no model at
    all — the zero-fault property tests lock this.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    reorder: float = 0.0
    delay: float = 0.0
    max_delay_windows: int = 2
    crash: float = 0.0
    install_drop: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "reorder", "delay", "crash"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.install_drop is not None and not 0.0 <= self.install_drop <= 1.0:
            raise ValueError(
                f"install_drop must be in [0, 1], got {self.install_drop}"
            )
        if self.max_delay_windows < 1:
            raise ValueError(
                f"max_delay_windows must be >= 1, got {self.max_delay_windows}"
            )
        self.reset()

    @classmethod
    def parse(cls, spec: str) -> "FaultModel":
        """Build a model from a CLI spec like ``drop=0.1,dup=0.05,seed=7``.

        Accepted keys: ``drop``, ``dup``/``duplicate``, ``reorder``,
        ``delay``, ``max_delay``/``max_delay_windows``, ``crash``,
        ``install_drop``, ``seed``.
        """
        kwargs: Dict[str, object] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(
                    f"bad fault spec item {item!r}: expected key=value"
                )
            key, _, value = item.partition("=")
            name = _SPEC_ALIASES.get(key.strip())
            if name is None:
                raise ValueError(
                    f"unknown fault spec key {key.strip()!r} "
                    f"(accepted: {', '.join(sorted(_SPEC_ALIASES))})"
                )
            kwargs[name] = (
                int(value) if name in _INT_FIELDS else float(value)
            )
        return cls(**kwargs)

    def reset(self) -> None:
        """Rewind the generator so the same workload misbehaves the
        same way again (called at the start of every run)."""
        self._rng = np.random.default_rng(self.seed)

    @property
    def is_null(self) -> bool:
        """True when every fault probability is zero."""
        return (
            self.drop == 0.0
            and self.duplicate == 0.0
            and self.reorder == 0.0
            and self.delay == 0.0
            and self.crash == 0.0
            and not self.install_drop
        )

    # -- per-message decisions ---------------------------------------------
    def plan_decisions(self) -> Tuple[int, List[Tuple[int, bool]]]:
        """Draw one upstream send's fault decisions: ``(transmissions,
        [(delay, reorder), ...])`` for the surviving copies.

        The decisions depend only on the generator state — never on the
        message — so a caller may draw them *before* the histogram is
        computed and apply them afterwards
        (:meth:`~.channel.Channel.send_histogram` accepts the pre-drawn
        plan).  This is what lets the parallel ingest pool keep the
        exact per-monitor draw order of the serial loop.
        """
        rng = self._rng
        transmissions = 1
        if self.duplicate and rng.random() < self.duplicate:
            transmissions += 1
        fates: List[Tuple[int, bool]] = []
        for _ in range(transmissions):
            if self.drop and rng.random() < self.drop:
                continue
            delay = 0
            if self.delay and rng.random() < self.delay:
                delay = int(rng.integers(1, self.max_delay_windows + 1))
            reorder = bool(self.reorder and rng.random() < self.reorder)
            fates.append((delay, reorder))
        return transmissions, fates

    def plan_histogram(
        self, message: HistogramMessage
    ) -> Tuple[int, List[Delivery]]:
        """Fault plan for one upstream send: ``(transmissions,
        deliveries)``.

        Every copy put on the wire counts as a transmission (and is
        charged by the channel) whether or not it survives; each copy
        is independently dropped, delayed, and reorder-flagged.
        """
        transmissions, fates = self.plan_decisions()
        return transmissions, [
            Delivery(message, delay=delay, reorder=reorder, copy=i)
            for i, (delay, reorder) in enumerate(fates)
        ]

    def deliver_install(self) -> bool:
        """Whether one downstream function install survives the wire."""
        p = self.drop if self.install_drop is None else self.install_drop
        return not (p and self._rng.random() < p)

    def crashes(self, monitor: str, window: int) -> bool:
        """Whether ``monitor`` crash-and-restarts at window ``window``."""
        return bool(self.crash and self._rng.random() < self.crash)

    def apply_reorder(self, arrivals: List[Delivery]) -> List[Delivery]:
        """Shuffle reorder-flagged deliveries to random positions within
        one arrival window (in place; returns the list)."""
        flagged = [d for d in arrivals if d.reorder]
        tracer = get_tracer()
        for delivery in flagged:
            arrivals.remove(delivery)  # identity equality: exact copy out
            pos = int(self._rng.integers(0, len(arrivals) + 1))
            arrivals.insert(pos, delivery)
            if tracer.enabled:
                m = delivery.message
                tracer.reordered(
                    m.monitor, m.window_index, m.function_version,
                    delivery.copy,
                )
        return arrivals


@dataclass
class _InstallState:
    """Backoff bookkeeping for one Monitor awaiting a function."""

    next_attempt: int
    backoff: int
    attempts: int = 0


class InstallScheduler:
    """Version-stamped install retry loop with capped exponential
    backoff (the Control Center side of function distribution).

    Each window tick the scheduler compares every Monitor's acked
    function version (its heartbeat — heartbeats are assumed tiny and
    reliable) against the Control Center's current version.  Lagging
    Monitors get a retransmission once their backoff expires; every
    attempt goes over the (possibly faulty) channel and is charged as
    downstream bytes.  A delivered install is acked immediately and
    clears the Monitor's backoff state; a lost one doubles the backoff
    up to ``backoff_cap`` windows.
    """

    def __init__(self, backoff_base: int = 1, backoff_cap: int = 8) -> None:
        if backoff_base < 1 or backoff_cap < backoff_base:
            raise ValueError(
                f"need 1 <= backoff_base <= backoff_cap, got "
                f"{backoff_base}/{backoff_cap}"
            )
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._state: Dict[str, _InstallState] = {}
        self.attempts = 0
        self.retries = 0

    def tick(self, window: int, control_center, monitors, channel) -> int:
        """Run one retry round; returns the number of installs
        delivered this tick."""
        target = control_center.function_version
        function = control_center.function
        if function is None:
            return 0
        registry = get_registry()
        delivered_count = 0
        for monitor in monitors:
            if (
                monitor.function is not None
                and monitor.function_version == target
            ):
                self._state.pop(monitor.name, None)
                continue
            state = self._state.get(monitor.name)
            if state is None:
                state = _InstallState(
                    next_attempt=window, backoff=self.backoff_base
                )
                self._state[monitor.name] = state
            if window < state.next_attempt:
                continue
            self.attempts += 1
            retry = state.attempts > 0
            if retry:
                self.retries += 1
                if registry.enabled:
                    registry.counter("control.install.retries").inc()
            if registry.enabled:
                registry.counter("control.install.attempts").inc()
            state.attempts += 1
            acked = channel.send_function(function, version=target)
            journal = get_journal()
            if journal.enabled:
                journal.emit(
                    "install",
                    window=window,
                    monitor=monitor.name,
                    version=target,
                    attempt=state.attempts,
                    retry=retry,
                    acked=acked,
                )
            if acked:
                monitor.install_function(function, target)
                self._state.pop(monitor.name, None)
                delivered_count += 1
            else:
                state.backoff = min(state.backoff * 2, self.backoff_cap)
                state.next_attempt = window + state.backoff
        return delivered_count

    @property
    def pending(self) -> int:
        """Monitors currently awaiting a (re)install."""
        return len(self._state)
