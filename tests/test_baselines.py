"""Tests for the end-biased and V-Optimal baselines (Section 5)."""

from itertools import combinations

import numpy as np
import pytest

from repro import GroupTable, UIDDomain, get_metric
from repro.baselines import build_end_biased, build_v_optimal

from helpers import random_instance


class TestEndBiased:
    @pytest.fixture
    def setup(self):
        dom = UIDDomain(4)
        table = GroupTable(dom, [dom.node(4, p) for p in range(16)])
        counts = np.array(
            [9, 0, 0, 50, 2, 2, 2, 0, 0, 0, 100, 1, 1, 0, 0, 0], float
        )
        return table, counts

    def test_top_groups_exact(self, setup):
        table, counts = setup
        eb = build_end_biased(table, counts, 4)
        est = eb.estimates(4)
        assert est[10] == 100 and est[3] == 50 and est[0] == 9

    def test_remainder_uniform(self, setup):
        table, counts = setup
        eb = build_end_biased(table, counts, 3)
        est = eb.estimates(3)
        rest = counts.sum() - 100 - 50
        assert est[0] == pytest.approx(rest / 14)

    def test_mass_conserved(self, setup):
        table, counts = setup
        eb = build_end_biased(table, counts, 5)
        for b in (1, 2, 5):
            assert eb.estimates(b).sum() == pytest.approx(counts.sum())

    def test_budget_one_all_uniform(self, setup):
        table, counts = setup
        eb = build_end_biased(table, counts, 1)
        est = eb.estimates(1)
        assert np.allclose(est, counts.mean())

    def test_budget_covers_all_groups_zero_error(self, setup):
        table, counts = setup
        eb = build_end_biased(table, counts, 17)
        m = get_metric("rms")
        # all 16 groups singled out (b-1 = 16) -> exact
        assert eb.error(m, 17) == pytest.approx(0.0)

    def test_error_curve_monotone(self, setup):
        table, counts = setup
        eb = build_end_biased(table, counts, 16)
        curve = eb.error_curve(get_metric("rms"))
        assert np.all(np.diff(curve[1:]) <= 1e-9)

    def test_size_grows_linearly(self, setup):
        table, counts = setup
        eb = build_end_biased(table, counts, 8)
        assert eb.size_bits(5) > eb.size_bits(2)

    def test_bad_budget_rejected(self, setup):
        table, counts = setup
        with pytest.raises(ValueError):
            build_end_biased(table, counts, 0)

    def test_deterministic_tiebreak(self, setup):
        table, _ = setup
        counts = np.ones(16)
        eb = build_end_biased(table, counts, 4)
        assert list(eb.order[:3]) == [0, 1, 2]


class TestVOptimal:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force_sse(self, seed):
        _dom, table, counts = random_instance(seed, height_range=(3, 5))
        vo = build_v_optimal(table, counts, 5)
        nz = counts[counts > 0]
        n = len(nz)
        for b in range(1, min(5, n) + 1):
            best = np.inf
            for cuts in combinations(range(1, n), b - 1):
                bounds = [0] + list(cuts) + [n]
                sse = sum(
                    float(((nz[i:j] - nz[i:j].mean()) ** 2).sum())
                    for i, j in zip(bounds, bounds[1:])
                )
                best = min(best, sse)
            assert vo.sse(b) == pytest.approx(best, abs=1e-9)

    def test_zero_groups_estimated_zero(self):
        dom = UIDDomain(3)
        table = GroupTable(dom, [dom.node(3, p) for p in range(8)])
        counts = np.array([0, 5, 0, 0, 7, 0, 0, 0], float)
        vo = build_v_optimal(table, counts, 2)
        est = vo.estimates(2)
        assert est[0] == 0 and est[2] == 0
        assert est[1] == 5 and est[4] == 7

    def test_boundaries_partition(self, small_instance):
        _dom, table, counts = small_instance
        vo = build_v_optimal(table, counts, 3)
        bounds = vo.boundaries(3)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == int((counts > 0).sum())
        for (a, b), (c, d) in zip(bounds, bounds[1:]):
            assert b == c

    def test_all_zero_counts(self):
        dom = UIDDomain(3)
        table = GroupTable(dom, [dom.node(3, p) for p in range(8)])
        vo = build_v_optimal(table, np.zeros(8), 3)
        assert vo.sse(3) == 0.0
        assert np.all(vo.estimates(3) == 0)
        assert vo.error(get_metric("rms"), 3) == 0.0

    def test_curve_monotone(self, small_instance):
        _dom, table, counts = small_instance
        vo = build_v_optimal(table, counts, 5)
        curve = vo.error_curve(get_metric("rms"))
        assert np.all(np.diff(curve[1:]) <= 1e-9)

    def test_full_budget_exact(self, small_instance):
        _dom, table, counts = small_instance
        n = int((counts > 0).sum())
        vo = build_v_optimal(table, counts, n)
        assert vo.sse(n) == pytest.approx(0.0)
        assert vo.error(get_metric("average"), n) == pytest.approx(0.0)

    def test_bad_inputs_rejected(self, small_instance):
        _dom, table, counts = small_instance
        with pytest.raises(ValueError):
            build_v_optimal(table, counts, 0)
        with pytest.raises(ValueError):
            build_v_optimal(table, counts[:3], 2)
