"""Tests for the exact k-holes LPM algorithm (Section 3.2.5)."""

import numpy as np
import pytest

from repro import (
    Bucket,
    LongestPrefixMatchPartitioning,
    PrunedHierarchy,
    UIDDomain,
    evaluate_function,
    get_metric,
)
from repro.algorithms import build_lpm_kholes, exhaustive_lpm, split_to_k_holes

from helpers import random_instance


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("mname", ["rms", "average", "max_relative"])
@pytest.mark.parametrize("sparse", [False, True])
def test_unrestricted_k_matches_lpm_optimum(seed, mname, sparse):
    """With k >= budget the hole restriction is vacuous: the k-holes DP
    is an exact LPM optimizer and must match brute force."""
    _dom, table, counts = random_instance(seed)
    metric = get_metric(mname)
    h = PrunedHierarchy(table, counts)
    budget = 2 + seed % 3
    res = build_lpm_kholes(h, metric, budget, k=budget, sparse=sparse)
    oracle, _ = exhaustive_lpm(table, counts, metric, budget, sparse=sparse)
    assert res.error_at(budget) == pytest.approx(oracle, abs=1e-9)


@pytest.mark.parametrize("seed", range(8))
def test_predicted_error_is_delivered(seed):
    _dom, table, counts = random_instance(seed + 40)
    metric = get_metric("rms")
    h = PrunedHierarchy(table, counts)
    budget = 3
    res = build_lpm_kholes(h, metric, budget, k=budget)
    predicted = res.error_at(budget)
    if not np.isfinite(predicted):
        return
    fn = res.function_at(budget)
    measured = evaluate_function(table, counts, fn, metric)
    assert measured == pytest.approx(predicted, abs=1e-9)


@pytest.mark.parametrize("seed", range(6))
def test_smaller_k_never_better(seed):
    """Restricting holes shrinks the search space, so error is
    monotone nonincreasing in k."""
    _dom, table, counts = random_instance(seed + 70, height_range=(3, 4))
    metric = get_metric("average")
    h = PrunedHierarchy(table, counts)
    budget = 4
    errs = [
        build_lpm_kholes(h, metric, budget, k=k).error_at(budget)
        for k in (1, 2, budget)
    ]
    assert errs[0] >= errs[1] - 1e-9
    assert errs[1] >= errs[2] - 1e-9


def test_scale_guard():
    """The exact search refuses paper-scale inputs (heuristics exist
    for those)."""
    from repro import GroupTable

    dom = UIDDomain(8)
    table = GroupTable(dom, [dom.node(8, p) for p in range(256)])
    counts = np.arange(256, dtype=float) + 1
    h = PrunedHierarchy(table, counts)
    with pytest.raises(ValueError, match="limited"):
        build_lpm_kholes(h, get_metric("rms"), 4)


class TestSplitToKHoles:
    def _many_hole_function(self):
        dom = UIDDomain(4)
        root = 1
        holes = [dom.node(4, p) for p in (0, 3, 6, 9, 12, 15)]
        return dom, LongestPrefixMatchPartitioning(
            dom, [Bucket(root)] + [Bucket(h) for h in holes]
        )

    def test_reduces_direct_holes(self):
        _dom, fn = self._many_hole_function()
        assert max(len(v) for v in fn.holes().values()) > 2
        out = split_to_k_holes(fn, 2)
        assert max(len(v) for v in out.holes().values()) <= 2

    def test_original_buckets_preserved(self):
        _dom, fn = self._many_hole_function()
        out = split_to_k_holes(fn, 2)
        assert set(b.node for b in fn.buckets) <= set(
            b.node for b in out.buckets
        )

    def test_bucket_growth_bounded(self):
        _dom, fn = self._many_hole_function()
        b = fn.num_buckets
        out = split_to_k_holes(fn, 2)
        # Figure 8 argument: at most b(1 + floor(b/(k-1))) buckets.
        assert out.num_buckets <= b * (1 + b // 1)

    def test_error_not_increased_for_rms(self, small_instance):
        """Super-additive metrics (Eq 13): the conversion cannot
        increase error."""
        _dom, table, counts = small_instance
        dom = table.domain
        fn = LongestPrefixMatchPartitioning(
            dom,
            [Bucket(1)] + [Bucket(dom.leaf(u)) for u in (2, 4, 9, 13)],
        )
        metric = get_metric("rms")
        before = evaluate_function(table, counts, fn, metric)
        out = split_to_k_holes(fn, 2)
        after = evaluate_function(table, counts, out, metric)
        assert after <= before + 1e-9

    def test_k_below_two_rejected(self):
        _dom, fn = self._many_hole_function()
        with pytest.raises(ValueError):
            split_to_k_holes(fn, 1)

    def test_noop_when_already_compliant(self):
        dom = UIDDomain(3)
        fn = LongestPrefixMatchPartitioning(
            dom, [Bucket(1), Bucket(dom.node(2, 1))]
        )
        out = split_to_k_holes(fn, 2)
        assert set(b.node for b in out.buckets) == {1, dom.node(2, 1)}
