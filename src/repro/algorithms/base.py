"""Shared dynamic-programming machinery (paper Section 3.1).

All of the paper's construction algorithms traverse the (pruned) UID
hierarchy bottom-up, maintaining per-node tables indexed by a bucket
budget, and combine child tables by splitting the budget — a
``(min, +)`` (or ``(min, max)`` for max-combine metrics) convolution.
This module provides:

* :func:`knapsack_merge` — the budget-splitting convolution with
  argmin tracking for solution reconstruction, vectorized with numpy
  and bounded by per-subtree bucket capacities (the classic tree-
  knapsack bound that keeps total work near ``O(|G| b)``);
* :class:`DPContext` — postorder leaf arrays over a
  :class:`~repro.core.hierarchy.PrunedHierarchy` that evaluate
  ``grperr`` (the error of estimating every group in a subtree at a
  fixed density) in one vectorized pass, including the O(1)
  contribution of empty regions (Section 4.3);
* :class:`ConstructionResult` — a constructed partitioning function
  together with the full budget/error curve (one DP run yields the
  optimal error for *every* budget up to the requested one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..core.errors import PenaltyMetric
from ..core.hierarchy import PNode, PrunedHierarchy

__all__ = ["INF", "knapsack_merge", "DPContext", "ConstructionResult"]

INF = float("inf")


def knapsack_merge(
    left: np.ndarray,
    right: np.ndarray,
    cap: int,
    combine: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Budget-splitting merge of two child error tables.

    ``left[c]`` / ``right[c]`` hold the best error of each subtree when
    given ``c`` buckets (``inf`` = infeasible).  Returns ``(out,
    choice)`` of length ``min(cap, len(left) + len(right) - 2) + 1``
    where::

        out[B]    = min over c of  left[c] (+ or max) right[B - c]
        choice[B] = the minimizing c (buckets granted to the left child)

    ``combine`` is ``"sum"`` for additive penalty metrics and ``"max"``
    for max-combine metrics.
    """
    m, n = len(left), len(right)
    size = min(cap, m + n - 2) + 1
    out = np.full(size, INF)
    choice = np.full(size, -1, dtype=np.int32)
    maximum = combine == "max"
    for c in range(min(m, size)):
        lv = left[c]
        if lv == INF:
            continue
        jmax = min(n - 1, size - 1 - c)
        if jmax < 0:
            break
        seg = right[: jmax + 1]
        cand = np.maximum(lv, seg) if maximum else lv + seg
        window = out[c : c + jmax + 1]
        better = cand < window
        if better.any():
            window[better] = cand[better]
            choice[c : c + jmax + 1][better] = c
    return out, choice


@dataclass
class ConstructionResult:
    """Output of a construction algorithm.

    Attributes
    ----------
    make_function:
        Callable mapping a budget ``B`` (``1 <= B <= budget``) to the
        best partitioning function found for that budget.
    curve:
        ``curve[B]`` is the algorithm's error for budget ``B``
        (``inf`` where infeasible, e.g. budgets too small to cut the
        hierarchy); ``curve[0]`` is always ``inf``/unused.
    budget:
        The largest budget the curve covers.
    """

    make_function: Callable[[int], object]
    curve: np.ndarray
    budget: int
    stats: Dict[str, float] = field(default_factory=dict)

    def error_at(self, b: int) -> float:
        """Best error using at most ``b`` buckets."""
        b = min(b, self.budget)
        if b < 1:
            return INF
        return float(np.min(self.curve[1 : b + 1]))

    def best_budget(self, b: int) -> int:
        """The budget ``<= b`` achieving :meth:`error_at`."""
        b = min(b, self.budget)
        return int(np.argmin(self.curve[1 : b + 1])) + 1

    def function_at(self, b: int):
        """The best partitioning function using at most ``b`` buckets."""
        return self.make_function(self.best_budget(b))


class DPContext:
    """Vectorized ``grperr`` evaluation over a pruned hierarchy.

    The pruned hierarchy's postorder places the leaves of every subtree
    in a contiguous slice, so the error of estimating all groups below
    a node at one density is a single vectorized penalty computation:
    group leaves contribute ``penalty(count, density)`` each, and a
    zero node summarizing ``z`` empty groups contributes
    ``penalty(0, density)`` with weight ``z``.
    """

    def __init__(self, hierarchy: PrunedHierarchy, metric: PenaltyMetric) -> None:
        if not isinstance(metric, PenaltyMetric):
            raise TypeError(
                "the dynamic programs run on PenaltyMetric instances; "
                "wrap exotic metrics or use the exhaustive oracle"
            )
        self.hierarchy = hierarchy
        self.metric = metric
        n = len(hierarchy.nodes)
        # Leaf arrays in postorder; per-node contiguous slices.
        actual: List[float] = []
        weight: List[float] = []
        self.leaf_lo = np.zeros(n, dtype=np.int64)
        self.leaf_hi = np.zeros(n, dtype=np.int64)
        for p in hierarchy.nodes:
            if p.is_leaf:
                self.leaf_lo[p.index] = len(actual)
                if p.kind == "group":
                    actual.append(p.tuples)
                    weight.append(1.0)
                else:  # zero summary
                    actual.append(0.0)
                    weight.append(float(p.n_groups))
                self.leaf_hi[p.index] = len(actual)
            else:
                self.leaf_lo[p.index] = self.leaf_lo[p.left.index]
                self.leaf_hi[p.index] = self.leaf_hi[p.right.index]
        self.leaf_actual = np.asarray(actual, dtype=np.float64)
        self.leaf_weight = np.asarray(weight, dtype=np.float64)

    def grperr(self, pnode: PNode, density: float) -> float:
        """Aggregate penalty of estimating every group below ``pnode``
        (zeros included) at the given density."""
        lo, hi = self.leaf_lo[pnode.index], self.leaf_hi[pnode.index]
        if lo == hi:
            return 0.0
        pens = self.metric.penalty_array(self.leaf_actual[lo:hi], density)
        if self.metric.combine == "sum":
            return float(pens @ self.leaf_weight[lo:hi])
        return float(pens.max())

    def grperr_own(self, pnode: PNode) -> float:
        """``grperr`` at the node's own density — the error of making
        ``pnode`` a bucket in a nonoverlapping cut."""
        return self.grperr(pnode, pnode.density)

    def finalize(self, total_penalty: float) -> float:
        """Convert an aggregate penalty at the root into the metric's
        final error value over the full group universe."""
        if total_penalty == INF:
            return INF
        return self.metric.finalize_total(
            total_penalty, float(self.hierarchy.root.n_groups)
        )

    def finalize_curve(self, penalties: np.ndarray) -> np.ndarray:
        out = np.empty_like(penalties)
        for i, p in enumerate(penalties):
            out[i] = self.finalize(float(p))
        return out
