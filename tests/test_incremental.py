"""Incremental (subtree-memoized) rebuilds must be bit-identical to
from-scratch builds.

The memo splices previous-build DP arrays for subtrees whose content
fingerprint is unchanged; because those arrays are exactly what an
identical solve on identical content produces, the curve bytes and the
reconstructed bucket lists must match a full rebuild with zero
tolerance — for both semantics, all three kernel modes, and arbitrary
count perturbations including ones that change the pruned structure.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import UIDDomain, get_metric
from repro.algorithms import incremental as incmod
from repro.algorithms.construct import build
from repro.algorithms.kernels import use_kernel_mode
from repro.algorithms.nonoverlapping import build_nonoverlapping
from repro.core.hierarchy import PrunedHierarchy
from repro.data import generate_subnet_table
from repro.obs import (
    EventJournal,
    MetricsRegistry,
    read_journal,
    use_journal,
    use_registry,
)
from repro.streams import ControlCenter

MODES = ("naive", "fast", "suffstats")
BUDGETS = {"nonoverlapping": 16, "overlapping": 10}

TABLE = generate_subnet_table(UIDDomain(10), seed=5)
METRIC = get_metric("rms")


def _base_counts(seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 60, len(TABLE)).astype(float)


def _buckets(fn):
    return [
        (b.node, getattr(b, "sparse_group_node", None)) for b in fn.buckets
    ]


def _check_pair(algorithm, counts, memo, **options):
    """Build full + incremental from the same counts; assert
    bit-identity and return the refreshed memo + session stats."""
    budget = BUDGETS[algorithm]
    h_full = PrunedHierarchy(TABLE, counts)
    full = build(algorithm, h_full, METRIC, budget, **options)
    h_inc = PrunedHierarchy(TABLE, counts)
    session = incmod.new_session(
        algorithm, h_inc, METRIC, budget, memo, **options
    )
    incr = build(algorithm, h_inc, METRIC, budget, memo=session, **options)
    assert full.curve.tobytes() == incr.curve.tobytes()
    for b in (1, 3, budget):
        assert _buckets(full.function_at(b)) == _buckets(
            incr.function_at(b)
        )
    return session.finish(), session.stats()


class TestBitIdentity:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize(
        "algorithm", ("nonoverlapping", "overlapping")
    )
    @given(data=st.data())
    @settings(max_examples=8, deadline=None)
    def test_random_perturbation_chain(self, mode, algorithm, data):
        counts = _base_counts()
        n = len(counts)
        with use_kernel_mode(mode):
            memo, _ = _check_pair(algorithm, counts, None)
            steps = data.draw(st.integers(1, 3))
            for _ in range(steps):
                idx = data.draw(
                    st.lists(
                        st.integers(0, n - 1), min_size=1, max_size=12,
                        unique=True,
                    )
                )
                vals = data.draw(
                    st.lists(
                        st.integers(0, 200),  # 0 changes pruned shape
                        min_size=len(idx), max_size=len(idx),
                    )
                )
                counts = counts.copy()
                counts[idx] = np.asarray(vals, dtype=float)
                if counts.sum() == 0:
                    counts[0] = 1.0  # empty windows are not built
                memo, _ = _check_pair(algorithm, counts, memo)

    @pytest.mark.parametrize("mode", MODES)
    def test_localized_drift_reuses_subtrees(self, mode):
        counts = _base_counts()
        with use_kernel_mode(mode):
            for algorithm in ("nonoverlapping", "overlapping"):
                memo, first = _check_pair(algorithm, counts, None)
                assert first["reused_subtrees"] == 0  # cold start
                drifted = counts.copy()
                nz = np.nonzero(drifted)[0]
                drifted[nz[:3]] *= 2.0
                _, stats = _check_pair(algorithm, drifted, memo)
                assert stats["dirty_groups"] == 3
                assert stats["reused_fraction"] > 0.3
                assert stats["dirty_subtrees"] > 0

    def test_identical_counts_reuse_everything(self):
        counts = _base_counts()
        memo, _ = _check_pair("nonoverlapping", counts, None)
        _, stats = _check_pair("nonoverlapping", counts.copy(), memo)
        assert stats["dirty_subtrees"] == 0
        assert stats["reused_fraction"] == 1.0
        assert stats["dirty_groups"] == 0

    def test_overlapping_sparse_off_round_trips(self):
        counts = _base_counts()
        memo, _ = _check_pair("overlapping", counts, None, sparse=False)
        drifted = counts.copy()
        drifted[np.nonzero(drifted)[0][:2]] += 7.0
        _, stats = _check_pair(
            "overlapping", drifted, memo, sparse=False
        )
        assert stats["reused_subtrees"] > 0


class TestMemoKeying:
    def test_config_change_invalidates_memo(self):
        counts = _base_counts()
        memo, _ = _check_pair("nonoverlapping", counts, None)
        # Same counts, different budget: nothing may be spliced.
        h = PrunedHierarchy(TABLE, counts)
        session = incmod.new_session(
            "nonoverlapping", h, METRIC, BUDGETS["nonoverlapping"] + 4,
            memo,
        )
        build_nonoverlapping(
            h, METRIC, BUDGETS["nonoverlapping"] + 4, memo=session
        )
        assert session.stats()["reused_subtrees"] == 0

    def test_kernel_mode_is_part_of_the_key(self):
        # suffstats grperr values are ~1e-12 off the other modes', so a
        # memo recorded under one mode must not leak into another.
        counts = _base_counts()
        with use_kernel_mode("fast"):
            memo, _ = _check_pair("nonoverlapping", counts, None)
        with use_kernel_mode("suffstats"):
            _, stats = _check_pair("nonoverlapping", counts, memo)
        assert stats["reused_subtrees"] == 0

    def test_unsupported_algorithms_are_rejected(self):
        assert not incmod.supports_incremental("lpm_greedy", {})
        assert not incmod.supports_incremental(
            "nonoverlapping", {"low_memory": True}
        )
        assert incmod.supports_incremental("overlapping", {})
        h = PrunedHierarchy(TABLE, _base_counts())
        with pytest.raises(ValueError):
            incmod.new_session("lpm_greedy", h, METRIC, 8, None)

    def test_low_memory_with_memo_rejected(self):
        h = PrunedHierarchy(TABLE, _base_counts())
        session = incmod.new_session(
            "nonoverlapping", h, METRIC, 8, None
        )
        with pytest.raises(ValueError):
            build_nonoverlapping(h, METRIC, 8, low_memory=True,
                                 memo=session)

    def test_fingerprints_track_content_not_position(self):
        counts = _base_counts()
        h1 = PrunedHierarchy(TABLE, counts)
        h2 = PrunedHierarchy(TABLE, counts.copy())
        fp1 = incmod.subtree_fingerprints(h1)
        fp2 = incmod.subtree_fingerprints(h2)
        assert fp1 == fp2
        drifted = counts.copy()
        g = np.nonzero(drifted)[0][0]
        drifted[g] += 1.0
        fp3 = incmod.subtree_fingerprints(PrunedHierarchy(TABLE, drifted))
        assert fp3[-1] != fp1[-1]  # root fingerprint moved
        changed = sum(1 for a, b in zip(fp1, fp3) if a != b)
        assert 0 < changed < len(fp1)  # but only the dirty spine


class TestControlCenterIncremental:
    def _counts_pair(self):
        counts1 = _base_counts(seed=3)
        counts2 = counts1.copy()
        counts2[np.nonzero(counts2)[0][:4]] *= 3.0
        return counts1, counts2

    def test_journal_and_counters(self, tmp_path):
        counts1, counts2 = self._counts_pair()
        registry = MetricsRegistry()
        path = str(tmp_path / "inc.journal")
        with use_registry(registry), use_journal(EventJournal(path)):
            center = ControlCenter(
                TABLE, METRIC, algorithm="nonoverlapping", budget=16,
                incremental=True,
            )
            center.rebuild_function(counts1)
            center.rebuild_function(counts2)
        rebuilds = [
            e for e in read_journal(path) if e["event"] == "rebuild"
        ]
        assert len(rebuilds) == 2
        for event in rebuilds:
            assert "dirty_subtrees" in event
            assert "reused_fraction" in event
        assert rebuilds[0]["reused_fraction"] == 0.0
        assert rebuilds[1]["reused_fraction"] > 0.0
        assert registry.counter("control.rebuild.subtrees.reused").value > 0
        assert registry.counter("control.rebuild.subtrees.dirty").value > 0

    def test_flag_off_journal_has_no_incremental_fields(self, tmp_path):
        counts1, counts2 = self._counts_pair()
        path = str(tmp_path / "plain.journal")
        with use_journal(EventJournal(path)):
            center = ControlCenter(
                TABLE, METRIC, algorithm="nonoverlapping", budget=16,
            )
            center.rebuild_function(counts1)
            center.rebuild_function(counts2)
        for event in read_journal(path):
            if event["event"] == "rebuild":
                assert "dirty_subtrees" not in event
                assert "reused_fraction" not in event

    def test_functions_identical_with_and_without_flag(self):
        counts1, counts2 = self._counts_pair()
        for algorithm in ("nonoverlapping", "overlapping"):
            plain = ControlCenter(
                TABLE, METRIC, algorithm=algorithm, budget=12,
            )
            inc = ControlCenter(
                TABLE, METRIC, algorithm=algorithm, budget=12,
                incremental=True,
            )
            for counts in (counts1, counts2, counts1 * 2.0):
                f_plain = plain.rebuild_function(counts)
                f_inc = inc.rebuild_function(counts)
                assert _buckets(f_plain) == _buckets(f_inc)
                assert plain.function_version == inc.function_version

    def test_incremental_with_unsupported_algorithm_is_inert(self):
        counts1, counts2 = self._counts_pair()
        center = ControlCenter(
            TABLE, METRIC, algorithm="lpm_greedy", budget=12,
            incremental=True,
        )
        assert not center.incremental  # silently degraded to full
        center.rebuild_function(counts1)
        center.rebuild_function(counts2)
        assert center._curve_memo is None
