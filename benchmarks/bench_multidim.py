"""Ablation A2: multidimensional histograms (paper Section 4.2).

Builds a source-subnet x destination-subnet traffic matrix and compares
the 2-D nonoverlapping and overlapping DPs across bucket budgets.  The
paper's point: the extensions stay optimal and polynomial for fixed
dimensionality; overlapping buckets keep their edge in 2-D.
"""

import numpy as np
import pytest

from repro import UIDDomain, get_metric
from repro.algorithms import (
    GridGroups,
    build_nonoverlapping_nd,
    build_overlapping_nd,
    evaluate_nd,
)

from workloads import format_table, save_series

BUDGETS_2D = [4, 8, 16, 32]


def _traffic_matrix(height=5, seed=31):
    """A spatially-correlated src x dst count matrix via two coupled
    cascades."""
    rng = np.random.default_rng(seed)
    n = 1 << height
    dom = UIDDomain(height)
    cut = [dom.node(height, p) for p in range(n)]

    def cascade_vec():
        w = np.ones(1)
        for _ in range(height):
            frac = rng.beta(0.5, 0.5, size=w.size)
            w = np.stack([w * frac, w * (1 - frac)], axis=1).reshape(-1)
        return w

    src, dst = cascade_vec(), cascade_vec()
    probs = np.outer(src, dst)
    probs = probs / probs.sum()
    counts = rng.multinomial(200_000, probs.reshape(-1)).reshape(n, n)
    return GridGroups([dom, dom], [cut, cut], counts.astype(float))


def test_multidim_accuracy(benchmark):
    grid = _traffic_matrix()
    metric = get_metric("rms")
    b_max = max(BUDGETS_2D)

    rn = build_nonoverlapping_nd(grid, metric, b_max)

    def construct():
        return build_overlapping_nd(grid, metric, b_max)

    ro = benchmark.pedantic(construct, rounds=1, iterations=1)

    rows = []
    for b in BUDGETS_2D:
        rows.append([b, rn.error_at(b), ro.error_at(b)])
    save_series("a2_multidim.csv",
                ["buckets", "nonoverlapping_2d", "overlapping_2d"], rows)
    print("\nA2 two-dimensional histograms (RMS error)")
    print(format_table(["buckets", "nonoverlapping_2d", "overlapping_2d"],
                       rows))

    for b in BUDGETS_2D:
        assert ro.error_at(b) <= rn.error_at(b) + 1e-9
    # measured error equals the DP's claim
    b = BUDGETS_2D[-1]
    assert evaluate_nd(grid, ro.buckets_at(b), metric) == pytest.approx(
        ro.error_at(b), abs=1e-6
    )


def test_multidim_respects_group_tiles(benchmark):
    """Bucket regions never slice a group tile even with coarse group
    cuts along each dimension."""
    rng = np.random.default_rng(7)
    dom = UIDDomain(4)
    cut = [dom.node(2, p) for p in range(4)]  # coarse /2 groups
    counts = rng.integers(0, 50, (4, 4)).astype(float)
    grid = GridGroups([dom, dom], [cut, cut], counts)
    metric = get_metric("average")
    res = benchmark.pedantic(
        lambda: build_overlapping_nd(grid, metric, 8), rounds=1, iterations=1
    )
    for region in res.buckets_at(8):
        assert grid.tile_slice(region) is not None
