"""Figure 17: RMS error vs. number of buckets for all six histogram
types.

Paper claim (Section 5.1.1): longest-prefix-match histograms from the
greedy heuristic win — they isolate the outlier groups RMS emphasizes
inside nested partitions; the quantized heuristic lands mid-pack.
"""

from repro.algorithms import OverlappingDP, build_lpm_greedy

from figlib import figure_series, report_figure
from workloads import BUDGETS, figure_workload, metric_for

METRIC = "rms"


def test_fig17_series(benchmark):
    """Reproduce the Figure 17 series; times the winning construction
    (greedy longest-prefix-match at the full budget)."""
    wl = figure_workload()
    metric = metric_for(METRIC, wl)
    b_max = max(BUDGETS)

    def construct():
        dp = OverlappingDP(wl.hierarchy, metric, b_max)
        return build_lpm_greedy(
            wl.hierarchy, metric, b_max, dp=dp, curve_budgets=BUDGETS
        )

    benchmark.pedantic(construct, rounds=1, iterations=1)
    report_figure("fig17", METRIC)
    series = figure_series(METRIC)
    # Shape checks mirroring the paper's qualitative findings.
    for s, curve in series.items():
        assert curve[max(BUDGETS)] <= curve[min(BUDGETS)] + 1e-9, s
    mid = 50
    assert series["greedy"][mid] <= series["nonoverlapping"][mid]
    assert series["greedy"][mid] <= series["end_biased"][mid]
    assert series["overlapping"][mid] <= series["nonoverlapping"][mid]


if __name__ == "__main__":
    report_figure("fig17", METRIC)
