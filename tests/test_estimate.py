"""Tests for Control-Center reconstruction (uniformity estimates)."""

import numpy as np
import pytest

from repro import (
    Bucket,
    GroupTable,
    LongestPrefixMatchPartitioning,
    NonoverlappingPartitioning,
    OverlappingPartitioning,
    UIDDomain,
    assign_groups_to_buckets,
    evaluate_function,
    get_metric,
    histogram_from_group_counts,
    net_group_populations,
    reconstruct_estimates,
)

DOM = UIDDomain(3)


def node(p):
    return DOM.parse_prefix_str(p)


@pytest.fixture
def leaf_table():
    """Eight singleton groups, one per identifier."""
    return GroupTable(DOM, [DOM.leaf(u) for u in range(8)])


class TestNonoverlapping:
    def test_uniform_spread(self, leaf_table):
        fn = NonoverlappingPartitioning(
            DOM, [Bucket(node("0*")), Bucket(node("1*"))]
        )
        counts = np.array([8, 0, 0, 0, 2, 2, 0, 0], dtype=float)
        hist = histogram_from_group_counts(leaf_table, counts, fn)
        est = reconstruct_estimates(leaf_table, fn, hist)
        assert list(est) == [2.0] * 4 + [1.0] * 4

    def test_empty_bucket_estimates_zero(self, leaf_table):
        fn = NonoverlappingPartitioning(
            DOM, [Bucket(node("0*")), Bucket(node("1*"))]
        )
        counts = np.array([4, 0, 0, 0, 0, 0, 0, 0], dtype=float)
        hist = histogram_from_group_counts(leaf_table, counts, fn)
        # the zero bucket is omitted entirely (inferred, Section 4.3)
        assert node("1*") not in hist.counts
        est = reconstruct_estimates(leaf_table, fn, hist)
        assert list(est[4:]) == [0.0] * 4

    def test_mass_conservation(self, leaf_table):
        fn = NonoverlappingPartitioning(
            DOM, [Bucket(node("0*")), Bucket(node("10*")), Bucket(node("11*"))]
        )
        counts = np.arange(8, dtype=float)
        hist = histogram_from_group_counts(leaf_table, counts, fn)
        est = reconstruct_estimates(leaf_table, fn, hist)
        assert est.sum() == pytest.approx(counts.sum())


class TestOverlapping:
    def test_closest_bucket_density(self, leaf_table):
        fn = OverlappingPartitioning(
            DOM, [Bucket(node("*")), Bucket(node("1*"))]
        )
        counts = np.array([1, 1, 1, 1, 10, 10, 10, 10], dtype=float)
        hist = histogram_from_group_counts(leaf_table, counts, fn)
        # overlapping counts: root sees everything
        assert hist.get(node("*")) == 44
        assert hist.get(node("1*")) == 40
        est = reconstruct_estimates(leaf_table, fn, hist)
        # groups under 1* use density 40/4; others use the root 44/8
        assert list(est[4:]) == [10.0] * 4
        assert list(est[:4]) == [5.5] * 4

    def test_sparse_bucket_exact(self, leaf_table):
        fn = OverlappingPartitioning(
            DOM,
            [Bucket(node("*")),
             Bucket(node("0*"), sparse_group_node=DOM.leaf(2))],
        )
        counts = np.array([0, 0, 7, 0, 3, 3, 3, 3], dtype=float)
        hist = histogram_from_group_counts(leaf_table, counts, fn)
        est = reconstruct_estimates(leaf_table, fn, hist)
        assert est[2] == pytest.approx(7.0)        # exact sparse group
        assert list(est[:2]) == [0.0, 0.0]          # explicit emptiness
        assert est[3] == 0.0


class TestLongestPrefixMatch:
    def test_holes_reduce_parent_population(self, leaf_table):
        fn = LongestPrefixMatchPartitioning(
            DOM, [Bucket(node("*")), Bucket(node("1*"))]
        )
        pops = net_group_populations(leaf_table, fn)
        assert pops[node("*")] == 4   # 8 groups minus the 4 in the hole
        assert pops[node("1*")] == 4

    def test_lpm_estimates(self, leaf_table):
        fn = LongestPrefixMatchPartitioning(
            DOM, [Bucket(node("*")), Bucket(node("1*"))]
        )
        counts = np.array([1, 1, 1, 1, 10, 10, 10, 10], dtype=float)
        hist = histogram_from_group_counts(leaf_table, counts, fn)
        assert hist.get(node("*")) == 4      # net of the hole
        est = reconstruct_estimates(leaf_table, fn, hist)
        assert list(est[:4]) == [1.0] * 4    # exact thanks to the hole
        assert list(est[4:]) == [10.0] * 4

    def test_sparse_lpm(self, leaf_table):
        fn = LongestPrefixMatchPartitioning(
            DOM,
            [Bucket(node("*")),
             Bucket(node("0*"), sparse_group_node=DOM.leaf(1))],
        )
        counts = np.array([0, 9, 0, 0, 4, 4, 4, 4], dtype=float)
        hist = histogram_from_group_counts(leaf_table, counts, fn)
        est = reconstruct_estimates(leaf_table, fn, hist)
        assert est[1] == pytest.approx(9.0)
        assert list(est[[0, 2, 3]]) == [0.0] * 3


class TestGuards:
    def test_bucket_below_group_rejected(self):
        table = GroupTable(DOM, [node("0*"), node("1*")])
        fn = OverlappingPartitioning(DOM, [Bucket(node("01*"))])
        with pytest.raises(ValueError, match="strictly below group"):
            assign_groups_to_buckets(table, fn)

    def test_count_shape_rejected(self, leaf_table):
        fn = OverlappingPartitioning(DOM, [Bucket(node("*"))])
        with pytest.raises(ValueError):
            histogram_from_group_counts(leaf_table, np.zeros(3), fn)

    def test_uncovered_groups_estimate_zero(self, leaf_table):
        fn = LongestPrefixMatchPartitioning(DOM, [Bucket(node("0*"))])
        counts = np.ones(8)
        err = evaluate_function(
            leaf_table, counts, fn, get_metric("average")
        )
        # the uncovered half is estimated 0 -> |1-0| each, averaged
        assert err == pytest.approx(0.5)

    def test_nonzero_only_mode(self, leaf_table):
        fn = LongestPrefixMatchPartitioning(DOM, [Bucket(node("*"))])
        counts = np.array([8, 0, 0, 0, 0, 0, 0, 0], dtype=float)
        full = evaluate_function(leaf_table, counts, fn, get_metric("average"))
        nz = evaluate_function(
            leaf_table, counts, fn, get_metric("average"), nonzero_only=True
        )
        assert full == pytest.approx((7 + 7) / 8)  # |8-1| + 7*|0-1| over 8
        assert nz == pytest.approx(7.0)
