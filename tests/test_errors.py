"""Tests for the distributive error metric framework."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import (
    AverageError,
    AverageRelativeError,
    MaximumRelativeError,
    PenaltyMetric,
    RMSError,
    available_metrics,
    get_metric,
    register_metric,
)

counts = st.lists(
    st.floats(min_value=0, max_value=1e6, allow_nan=False),
    min_size=1, max_size=30,
)


class TestConcreteValues:
    def test_rms(self):
        m = RMSError()
        assert m.evaluate([3, 4], [3, 4]) == 0.0
        assert m.evaluate([0, 0], [3, 4]) == pytest.approx(math.sqrt(12.5))

    def test_average(self):
        m = AverageError()
        assert m.evaluate([10, 0], [4, 2]) == pytest.approx(4.0)

    def test_avg_relative(self):
        m = AverageRelativeError(floor=1.0)
        # |10-5|/10 = 0.5 ; |0-2|/max(0,1) = 2.0
        assert m.evaluate([10, 0], [5, 2]) == pytest.approx(1.25)

    def test_max_relative(self):
        m = MaximumRelativeError(floor=1.0)
        assert m.evaluate([10, 0], [5, 2]) == pytest.approx(2.0)

    def test_relative_floor_prevents_blowup(self):
        m = AverageRelativeError(floor=10.0)
        assert m.evaluate([0], [5]) == pytest.approx(0.5)

    def test_bad_floor_rejected(self):
        with pytest.raises(ValueError):
            AverageRelativeError(floor=0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            RMSError().evaluate([1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RMSError().evaluate([], [])


class TestRegistry:
    def test_get_all(self):
        for name in available_metrics():
            assert get_metric(name).name == name

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            get_metric("nope")

    def test_kwargs_passthrough(self):
        m = get_metric("max_relative", floor=7.0)
        assert m.floor == 7.0

    def test_register_requires_name(self):
        class Anon(RMSError):
            name = ""

        with pytest.raises(ValueError):
            register_metric(Anon)


class TestGenericVsFastPath:
    """The PSR interface and the scalar fast path must agree."""

    @pytest.mark.parametrize("name", ["rms", "average", "avg_relative",
                                      "max_relative"])
    def test_psr_evaluate_matches_vectorized(self, name):
        m = get_metric(name)
        rng = np.random.default_rng(0)
        actual = rng.integers(0, 100, 17).astype(float)
        est = rng.integers(0, 100, 17).astype(float)
        psr = m.start(actual[0], est[0])
        for a, e in zip(actual[1:], est[1:]):
            psr = m.merge(psr, m.start(a, e))
        assert m.finalize(psr) == pytest.approx(m.evaluate(actual, est))

    @pytest.mark.parametrize("name", ["rms", "average", "avg_relative",
                                      "max_relative"])
    def test_merge_associative_commutative(self, name):
        m = get_metric(name)
        a, b, c = m.start(5, 2), m.start(0, 7), m.start(3, 3)
        ab_c = m.merge(m.merge(a, b), c)
        a_bc = m.merge(a, m.merge(b, c))
        assert m.finalize(ab_c) == pytest.approx(m.finalize(a_bc))
        assert m.finalize(m.merge(a, b)) == pytest.approx(
            m.finalize(m.merge(b, a))
        )

    def test_repeated_penalty_sum(self):
        m = AverageError()
        assert m.repeated_penalty(3.0, 4) == 12.0
        assert m.repeated_penalty(3.0, 0) == 0.0

    def test_repeated_penalty_max(self):
        m = MaximumRelativeError()
        assert m.repeated_penalty(3.0, 4) == 3.0
        assert m.repeated_penalty(3.0, 0) == 0.0


@pytest.mark.parametrize("name", ["rms", "average", "avg_relative",
                                  "max_relative"])
@given(data=st.data())
def test_monotonicity_property(name, data):
    """The paper's Section 2.2.4 monotonicity requirements (Eqs 1-2)."""
    m = get_metric(name)
    pairs = data.draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e4, allow_nan=False),
                st.floats(min_value=0, max_value=1e4, allow_nan=False),
            ),
            min_size=3, max_size=9,
        )
    )
    psrs = [m.start(a, e) for a, e in pairs]
    A, B, C = psrs[0], psrs[1], psrs[2]
    fb, fc = m.finalize(B), m.finalize(C)
    fab, fac = m.finalize(m.merge(A, B)), m.finalize(m.merge(A, C))
    if fb > fc:
        assert fab >= fac - 1e-9
    # Eq 2 needs PSRs with equal counts for the averaging metrics; a
    # single start PSR always has count 1, so it applies directly.
    if fb == fc:
        assert fab == pytest.approx(fac)


@given(counts, st.floats(min_value=0, max_value=1e6, allow_nan=False))
def test_exact_estimate_zero_error(actual, _x):
    for name in ["rms", "average", "avg_relative", "max_relative"]:
        m = get_metric(name)
        assert m.evaluate(actual, actual) == 0.0


@given(counts)
def test_penalties_nonnegative(actual):
    actual = np.asarray(actual)
    est = actual[::-1].copy()
    for name in ["rms", "average", "avg_relative", "max_relative"]:
        m = get_metric(name)
        assert np.all(m.penalty_array(actual, est) >= 0)
        assert m.evaluate(actual, est) >= 0


def test_super_additivity_rms():
    """RMS penalties (SSE) are super-additive over disjoint partitions —
    the property the k-holes conversion argument relies on (Eq 13)."""
    rng = np.random.default_rng(1)
    m = RMSError()
    for _ in range(20):
        v = rng.integers(0, 50, 12).astype(float)
        split = int(rng.integers(1, 11))
        p1, p2 = v[:split], v[split:]

        def sse(x):
            return float(((x - x.mean()) ** 2).sum())

        assert sse(p1) + sse(p2) <= sse(v) + 1e-9


class CountingMetric(PenaltyMetric):
    """A custom metric exercising the extension API."""

    name = "counting_test"
    combine = "sum"

    def penalty(self, actual, estimate):
        return 1.0 if actual != estimate else 0.0

    def penalty_array(self, actual, estimate):
        return (actual != estimate).astype(float)

    def finalize_total(self, total, count):
        return total


def test_custom_metric_registration():
    register_metric(CountingMetric)
    m = get_metric("counting_test")
    assert m.evaluate([1, 2, 3], [1, 0, 3]) == 1.0
