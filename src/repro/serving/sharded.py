"""Sharded ingest with wire-level fan-in (the serving tentpole).

:class:`ShardedMonitoringSystem` promotes the single-process
:class:`~repro.streams.MonitoringSystem` loop into a ``shards=K``
engine while keeping its :class:`~repro.streams.SystemReport`
**bit-identical** to the serial run for the same seed — faults
included.  Three mechanisms, none of which touches the fault RNG:

1. **Shard prefetch.**  Before the window loop starts, every
   ``(monitor, window)`` histogram is built by shard worker processes:
   UIDs are hash-split across Monitors exactly as the serial run splits
   them (:meth:`~repro.streams.tuples.Trace.split` is seeded), the
   window buffers are placed in :mod:`multiprocessing.shared_memory`
   segments (workers read zero-copy ``int64``/``float64`` views), and
   each worker runs the batched
   :meth:`~repro.streams.Monitor.process_windows` kernel — which is
   property-tested bit-identical to the serial per-window build.
   Histogram *content* is independent of fault outcomes, so prefetch
   needs no fault model; the base loop then draws crash and delivery
   decisions in the exact serial order
   (:meth:`~repro.streams.faults.FaultModel.plan_decisions`) and simply
   consumes prefetched messages in phase 2.
2. **Wire-level fan-in.**  Each shard ships v2-encoded payloads; the
   :class:`FanInControlCenter` combines one window's shard histograms
   with the shared k-way merge arithmetic
   (:func:`repro.core.wire.merge_views`) and decodes **exactly once at
   the tenant boundary** — no per-payload re-parse, no re-encode of the
   merged buffer.  The estimates are bit-identical to the serial
   query-from-wire path (same concatenate/unique/bincount accumulation
   order, and v2 encode/decode is a lossless inverse).
3. **Batched ground truth.**  The exact per-window grouped aggregation
   is computed for the whole run in one flattened bincount
   (:func:`~repro.streams.query.exact_group_counts_batched`) and
   answered from the matrix.

If a prefetched message is missing or carries a stale function version
(e.g. an adaptive subclass rebuilt mid-run), phase 2 falls back to the
inline serial build for that job — correctness never depends on the
prefetch; ``prefetch_misses`` counts the fallbacks.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.compiled import CompiledEstimator
from ..core.partition import Histogram
from ..core.wire import merge_views
from ..obs import (
    NULL_JOURNAL,
    NULL_TRACER,
    BufferJournal,
    MetricsRegistry,
    NullRegistry,
    capture_worker_snapshot,
    export_resources,
    get_journal,
    get_registry,
    merge_worker_snapshots,
    resource_delta,
    sample_resources,
    use_journal,
    use_registry,
    use_tracer,
    worker_resource_events,
)
from ..streams.control_center import ControlCenter
from ..streams.kernels import stream_kernel_mode, use_stream_kernel_mode
from ..streams.monitor import HistogramMessage, Monitor
from ..streams.query import exact_group_counts_batched
from ..streams.system import MonitoringSystem, SystemReport, _UNSET
from ..streams.tuples import Trace

__all__ = ["FanInControlCenter", "ShardedMonitoringSystem"]


class FanInControlCenter(ControlCenter):
    """Control center that merges shard payloads without re-encoding.

    The serial fast path demonstrates query-from-wire end to end: it
    merges payloads with :func:`~repro.core.wire.merge_wire` (parse
    each, re-encode the merged buffer) and estimates off a
    :class:`~repro.core.wire.WireHistogram` re-parse.  At serving
    fan-in that wire round-trip is pure overhead — the shard messages'
    histograms *are* the decoded payloads (the v2 codec is a lossless
    inverse, fuzz-tested in ``tests/test_wire.py``) — so this decoder
    runs the same k-way merge arithmetic directly on the bucket arrays
    and estimates through the compiled gather.  Estimates and merged
    histograms are bit-identical to the serial path; only the
    parse×k + encode + parse glue is gone.
    """

    def _merge_and_estimate(self, usable):
        if (
            not usable
            or stream_kernel_mode() != "fast"
            or any(m.payload is None for m in usable)
        ):
            # Empty, naive-mode, or v1 messages: the base behaviour is
            # already the lean one (or is the documented reference).
            return super()._merge_and_estimate(usable)
        registry = get_registry()
        journal = get_journal()
        timed = registry.enabled or journal.enabled
        start = time.perf_counter() if timed else 0.0
        nodes, sums, unmatched, total = merge_views(
            [m.histogram for m in usable]
        )
        merged = Histogram.from_arrays(
            nodes, sums, unmatched=unmatched, total=total
        )
        estimator = CompiledEstimator.for_pair(self.table, self.function)
        estimates = estimator.estimate(merged)
        if timed:
            # The fan-in merge is the serving layer's per-window hot
            # spot; surface it as a timer plus a journal slice (the
            # Chrome trace exporter renders `shard.fanin` events on the
            # control-center track).
            duration = time.perf_counter() - start
            window = usable[0].window_index
            if registry.enabled:
                registry.timer("serving.fanin.duration").observe(duration)
                registry.counter("serving.fanin.payloads").inc(len(usable))
            if journal.enabled:
                journal.emit(
                    "shard.fanin",
                    window=window,
                    payloads=len(usable),
                    duration_us=round(duration * 1e6, 1),
                )
        return merged, estimates


def _shard_worker(task):
    """Build all of one shard's (monitor, window) histograms.

    Runs in a worker process with the parent's stream kernel mode
    pinned explicitly so a ``spawn`` start method cannot drift from
    the serial build.  Returns pickled
    :class:`~repro.streams.monitor.HistogramMessage` lists — histogram
    arrays are fresh bincount outputs, never views into the shared
    segments.

    Observability is nulled by default (worker Monitor objects are
    throwaway; the parent owns metrics and the journal).  When the
    parent requests telemetry (``task[-1]`` is a ``(metrics_on, seq)``
    pair) the worker instead runs a **real local**
    :class:`~repro.obs.MetricsRegistry` and an in-memory
    :class:`~repro.obs.BufferJournal`, samples its own CPU/RSS/GC
    delta around the batch, and ships one
    :func:`~repro.obs.capture_worker_snapshot` wire dict back with the
    results for the parent to merge under a ``shard=N`` label.
    """
    (
        shard_id,
        shm_name,
        values_shm_name,
        total_tuples,
        mode,
        function,
        version,
        monitor_jobs,
        telemetry,
    ) = task
    shm = shared_memory.SharedMemory(name=shm_name)
    vshm = (
        shared_memory.SharedMemory(name=values_shm_name)
        if values_shm_name is not None
        else None
    )
    if telemetry is not None:
        metrics_on, seq = telemetry
        registry = MetricsRegistry() if metrics_on else NullRegistry()
        buffer = BufferJournal()
    else:
        registry = NullRegistry()
        buffer = NULL_JOURNAL

    def build_all():
        # Scoped so every view into the shared segments is dropped when
        # this returns (SharedMemory refuses to close while exported
        # buffers are alive).  Histogram arrays are bincount outputs —
        # fresh memory, never views.
        uid_buf = np.ndarray((total_tuples,), dtype=np.int64, buffer=shm.buf)
        val_buf = (
            np.ndarray((total_tuples,), dtype=np.float64, buffer=vshm.buf)
            if vshm is not None
            else None
        )
        results = []
        for name, wins in monitor_jobs:
            batch_start = time.perf_counter()
            monitor = Monitor(name, wire_format="v2")
            monitor.install_function(function, version)
            indices = [w for (w, _off, _n, _hv) in wins]
            arrays = [uid_buf[off:off + n] for (_w, off, n, _hv) in wins]
            if val_buf is not None and all(hv for (*_rest, hv) in wins):
                vals = [val_buf[off:off + n] for (_w, off, n, _hv) in wins]
                messages = monitor.process_windows(indices, arrays, vals)
            elif val_buf is not None:
                # Mixed weighted/unweighted windows (cannot happen
                # from Trace.split, but keep the slow exact path).
                messages = [
                    monitor.process_window(
                        w,
                        uid_buf[off:off + n],
                        values=val_buf[off:off + n] if hv else None,
                    )
                    for (w, off, n, hv) in wins
                ]
            else:
                messages = monitor.process_windows(indices, arrays)
            if buffer.enabled:
                buffer.emit(
                    "batch",
                    monitor=name,
                    windows=len(messages),
                    tuples=sum(n for (_w, _o, n, _hv) in wins),
                    payload_bytes=sum(len(m.payload) for m in messages),
                    duration_us=round(
                        (time.perf_counter() - batch_start) * 1e6, 1
                    ),
                )
            results.append(_pack_messages(name, messages))
        return results

    try:
        before = sample_resources() if telemetry is not None else None
        with use_registry(registry), use_journal(buffer), \
                use_tracer(NULL_TRACER), use_stream_kernel_mode(mode):
            results = build_all()
        snapshot = None
        if telemetry is not None:
            usage = resource_delta(sample_resources(), before)
            export_resources(registry, usage)
            buffer.emit("resources", **usage.as_fields())
            snapshot = capture_worker_snapshot(
                registry, buffer, shard_id, seq
            )
        return shard_id, results, snapshot
    finally:
        shm.close()
        if vshm is not None:
            vshm.close()


def _pack_messages(name, messages):
    """Flatten one monitor's messages into a few large objects for the
    result pipe: per-message pickling of thousands of small arrays,
    payload bytes and dataclass instances costs more than the build
    itself, while a handful of concatenated arrays plus one payload
    blob crosses the pipe almost for free.  :func:`_unpack_messages`
    reconstructs messages with histogram arrays that are slices of the
    blobs — every downstream consumer (the k-way merge, accounting,
    byte charging) only reads them."""
    indices = np.asarray([m.window_index for m in messages], dtype=np.int64)
    lengths = np.asarray(
        [m.histogram.nodes.size for m in messages], dtype=np.int64
    )
    nodes = (
        np.concatenate([m.histogram.nodes for m in messages])
        if messages
        else np.empty(0, dtype=np.int64)
    )
    values = (
        np.concatenate([m.histogram.values for m in messages])
        if messages
        else np.empty(0, dtype=np.float64)
    )
    unmatched = np.asarray(
        [m.histogram.unmatched for m in messages], dtype=np.float64
    )
    totals = np.asarray(
        [m.histogram.total for m in messages], dtype=np.float64
    )
    payload_lengths = np.asarray(
        [len(m.payload) for m in messages], dtype=np.int64
    )
    payload_blob = b"".join(m.payload for m in messages)
    return (
        name, indices, lengths, nodes, values, unmatched, totals,
        payload_lengths, payload_blob,
    )


def _unpack_messages(packed, function_version):
    """Inverse of :func:`_pack_messages`."""
    (
        name, indices, lengths, nodes, values, unmatched, totals,
        payload_lengths, payload_blob,
    ) = packed
    messages = []
    bucket_off = 0
    payload_off = 0
    for i in range(int(indices.size)):
        n = int(lengths[i])
        p = int(payload_lengths[i])
        histogram = Histogram.__new__(Histogram)
        histogram.nodes = nodes[bucket_off:bucket_off + n]
        histogram.values = values[bucket_off:bucket_off + n]
        histogram.unmatched = float(unmatched[i])
        histogram.total = float(totals[i])
        histogram._dict = None
        messages.append(
            HistogramMessage(
                monitor=name,
                window_index=int(indices[i]),
                histogram=histogram,
                function_version=function_version,
                payload=payload_blob[payload_off:payload_off + p],
            )
        )
        bucket_off += n
        payload_off += p
    return name, messages


class ShardedMonitoringSystem(MonitoringSystem):
    """A :class:`~repro.streams.MonitoringSystem` whose ingest fans out
    across ``shards`` worker processes and whose decode fans shard
    payloads in at the tenant boundary.

    Reports are bit-identical (dataclass-equal) to the serial system
    for the same seeds, clean or faulty — the fault RNG, channel and
    decode bookkeeping all run unmodified in the base loop; only the
    pure per-monitor partitioning work and the merge arithmetic move.

    Parameters beyond the base class:

    shards:
        Worker processes for the prefetch pass.  Monitors are assigned
        round-robin (monitor ``i`` → shard ``i % shards``); UIDs are
        already hash-split across monitors by the seeded
        :meth:`~repro.streams.tuples.Trace.split`.
    tenant:
        Optional tenant label stamped on ``serving.shard.*`` metrics
        and ``shard.prefetch`` journal events (the
        :class:`~.engine.ServingEngine` sets it).
    worker_telemetry:
        When true (the default) **and** a live registry or journal is
        scoped in the parent at prefetch time, shard workers run a real
        local :class:`~repro.obs.MetricsRegistry` plus an in-memory
        :class:`~repro.obs.BufferJournal` and ship a
        :mod:`repro.obs.crossproc` snapshot back with the results; the
        parent merges the metrics under ``shard=N`` labels and
        re-sequences the events as ``shard.worker.*`` in deterministic
        ``(shard, seq)`` order.  With observability disabled (or this
        flag off) workers run fully nulled and nothing changes on the
        wire — reports and journals stay byte-identical.
    """

    control_center_class = FanInControlCenter

    def __init__(
        self,
        table,
        metric,
        num_monitors: int = 4,
        shards: int = 2,
        tenant: Optional[str] = None,
        wire_format: str = "v2",
        worker_telemetry: bool = True,
        **kwargs,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if wire_format != "v2":
            raise ValueError(
                "sharded serving fans histograms in at the wire level; "
                f"wire_format must be 'v2', got {wire_format!r}"
            )
        super().__init__(
            table, metric, num_monitors=num_monitors,
            wire_format=wire_format, **kwargs,
        )
        self.shards = shards
        self.tenant = tenant
        #: Persistent worker pool: forked lazily on the first prefetch
        #: and reused for the system's lifetime (fork + interpreter
        #: warm-up costs as much as building several windows' worth of
        #: histograms, so paying it once per run would dominate short
        #: runs).  :meth:`close` tears it down.
        self._pool: Optional[ProcessPoolExecutor] = None
        #: (monitor name, window index) -> prefetched message.
        self._prefetched: Dict[Tuple[str, int], HistogramMessage] = {}
        #: Segmentation computed by the prefetch pass, handed to the
        #: base loop so the (deterministic) split/segment work runs
        #: once per run.  Keyed by the run parameters as a guard.
        self._segmented_cache: Optional[Tuple[Tuple[int, float, int], List[list]]] = None
        #: window index -> exact per-group aggregates row.
        self._truth: Dict[int, np.ndarray] = {}
        self._truth_sizes: Dict[int, int] = {}
        self.prefetch_hits = 0
        self.prefetch_misses = 0
        self.worker_telemetry = worker_telemetry
        #: Monotonic snapshot sequence: one per prefetch pass, shared
        #: by every shard in that pass (the merge orders by
        #: ``(shard, seq)``, so within one pass shards disambiguate).
        self._telemetry_seq = 0
        #: True while worker ``monitor.*`` metrics for the current run
        #: were merged into the parent registry — prefetch hits then
        #: replay accounting with ``metrics=False`` so nothing is
        #: counted twice.
        self._worker_metrics_merged = False
        #: shard id -> accumulated worker resource usage, summarized
        #: (gauges + ``shard.summary`` events) at :meth:`close`.
        self._shard_resources: Dict[int, Dict[str, float]] = {}
        #: Per-window prefetch hit/miss tallies and shard imbalance
        #: (max/mean prefetch tuples across shards), feeding the
        #: ``prefetch_miss_rate`` / ``shard_imbalance`` SLO signals.
        self._window_hits: Dict[int, int] = {}
        self._window_misses: Dict[int, int] = {}
        self._window_imbalance: Dict[int, float] = {}

    # -- worker pool --------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.shards)
        return self._pool

    def close(self) -> None:
        """Shut the shard worker pool down (idempotent).  The system
        remains usable — the next run re-forks the pool.  Accumulated
        per-shard worker resource usage is summarized first (so the
        summaries land while the caller's registry/journal scope is
        still live)."""
        self._export_shard_summaries()
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def _export_shard_summaries(self) -> None:
        """Flush per-shard resource totals as ``serving.shard.*``
        gauges and ``shard.summary`` journal events, then reset."""
        usage, self._shard_resources = self._shard_resources, {}
        if not usage:
            return
        registry = get_registry()
        journal = get_journal()
        labels = {"tenant": self.tenant} if self.tenant else {}
        for shard in sorted(usage):
            summary = usage[shard]
            cpu_s = round(summary["cpu_s"], 6)
            if registry.enabled:
                registry.gauge(
                    "serving.shard.cpu_seconds", shard=str(shard), **labels
                ).set(cpu_s)
                registry.gauge(
                    "serving.shard.max_rss_kb", shard=str(shard), **labels
                ).set(summary["max_rss_kb"])
            if journal.enabled:
                journal.emit(
                    "shard.summary",
                    shard=shard,
                    tenant=self.tenant or "",
                    batches=int(summary["batches"]),
                    cpu_s=cpu_s,
                    max_rss_kb=round(summary["max_rss_kb"], 3),
                )

    def __enter__(self) -> "ShardedMonitoringSystem":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- prefetch -----------------------------------------------------------
    def _segment_shares(
        self, live: Trace, window_width: float, split_seed: int
    ) -> List[list]:
        """Reuse the prefetch pass's decomposition when the base loop
        asks for the same one (split and segmentation are
        deterministic, so it is exactly what the base computation would
        return); recompute otherwise."""
        cached = self._segmented_cache
        if cached is not None:
            key, segmented = cached
            if key == (id(live), float(window_width), int(split_seed)):
                return segmented
        return super()._segment_shares(live, window_width, split_seed)

    def _prefetch_truth(self, segmented: List[list], n_windows: int) -> None:
        plain: List[Tuple[int, np.ndarray]] = []
        weighted: List[Tuple[int, np.ndarray, np.ndarray]] = []
        for w in range(n_windows):
            window_uids = [s[w].uids for s in segmented if w < len(s)]
            if not window_uids:
                continue
            window_values = [
                s[w].values
                for s in segmented
                if w < len(s) and s[w].values is not None
            ]
            uids = np.concatenate(window_uids)
            # Same all-or-nothing rule as the base loop: a window where
            # some share lacks values is scored unweighted.
            if len(window_values) == len(window_uids):
                weighted.append((w, uids, np.concatenate(window_values)))
            else:
                plain.append((w, uids))
        if plain:
            rows = exact_group_counts_batched(
                self.table, [u for _w, u in plain]
            )
            for (w, u), row in zip(plain, rows):
                self._truth[w] = row
                self._truth_sizes[w] = int(u.size)
        if weighted:
            rows = exact_group_counts_batched(
                self.table,
                [u for _w, u, _v in weighted],
                [v for _w, _u, v in weighted],
            )
            for (w, u, _v), row in zip(weighted, rows):
                self._truth[w] = row
                self._truth_sizes[w] = int(u.size)

    def _prefetch(
        self, live: Trace, window_width: float, split_seed: int
    ) -> None:
        cc = self.control_center
        segmented = MonitoringSystem._segment_shares(
            self, live, window_width, split_seed
        )
        self._segmented_cache = (
            (id(live), float(window_width), int(split_seed)),
            segmented,
        )
        n_windows = max((len(s) for s in segmented), default=0)
        if n_windows == 0:
            return
        self._prefetch_truth(segmented, n_windows)
        total = sum(len(win) for segs in segmented for win in segs)
        has_values = any(
            win.values is not None for segs in segmented for win in segs
        )
        # One shared segment per stream column; workers map zero-copy
        # typed views over it and slice windows by (offset, length).
        shm = shared_memory.SharedMemory(create=True, size=max(8, total * 8))
        vshm = (
            shared_memory.SharedMemory(create=True, size=max(8, total * 8))
            if has_values
            else None
        )
        try:
            uid_buf = np.ndarray((total,), dtype=np.int64, buffer=shm.buf)
            val_buf = (
                np.ndarray((total,), dtype=np.float64, buffer=vshm.buf)
                if vshm is not None
                else None
            )
            shard_jobs: List[list] = [[] for _ in range(self.shards)]
            offset = 0
            for i, (monitor, segs) in enumerate(
                zip(self.monitors, segmented)
            ):
                wins = []
                for win in segs:
                    n = len(win)
                    uid_buf[offset:offset + n] = win.uids
                    win_has_values = win.values is not None
                    if val_buf is not None and win_has_values:
                        val_buf[offset:offset + n] = win.values
                    wins.append((win.index, offset, n, win_has_values))
                    offset += n
                shard_jobs[i % self.shards].append((monitor.name, wins))
            registry = get_registry()
            journal = get_journal()
            telemetry = None
            if self.worker_telemetry and (
                registry.enabled or journal.enabled
            ):
                self._telemetry_seq += 1
                telemetry = (registry.enabled, self._telemetry_seq)
            tasks = [
                (
                    shard,
                    shm.name,
                    vshm.name if vshm is not None else None,
                    total,
                    stream_kernel_mode(),
                    cc.function,
                    cc.function_version,
                    jobs,
                    telemetry,
                )
                for shard, jobs in enumerate(shard_jobs)
                if jobs
            ]
            shard_bytes = [0] * self.shards
            snapshots = []
            pool = self._ensure_pool()
            for shard, results, snapshot in pool.map(_shard_worker, tasks):
                if snapshot is not None:
                    snapshots.append(snapshot)
                for packed in results:
                    name, messages = _unpack_messages(
                        packed, cc.function_version
                    )
                    for msg in messages:
                        self._prefetched[(name, msg.window_index)] = msg
                        shard_bytes[shard] += len(msg.payload)
        finally:
            del uid_buf, val_buf
            shm.close()
            shm.unlink()
            if vshm is not None:
                vshm.close()
                vshm.unlink()
        self._record_imbalance(shard_jobs)
        labels = {"tenant": self.tenant} if self.tenant else {}
        for shard, jobs in enumerate(shard_jobs):
            if not jobs:
                continue
            windows = sum(len(wins) for _name, wins in jobs)
            tuples = sum(n for _name, wins in jobs for (_w, _o, n, _hv) in wins)
            if registry.enabled:
                registry.counter(
                    "serving.shard.windows", shard=str(shard), **labels
                ).inc(windows)
                registry.counter(
                    "serving.shard.tuples", shard=str(shard), **labels
                ).inc(tuples)
                registry.counter(
                    "serving.shard.payload_bytes", shard=str(shard), **labels
                ).inc(shard_bytes[shard])
            if journal.enabled:
                journal.emit(
                    "shard.prefetch",
                    shard=shard,
                    tenant=self.tenant or "",
                    monitors=[name for name, _wins in jobs],
                    windows=windows,
                    tuples=tuples,
                    payload_bytes=shard_bytes[shard],
                )
        if snapshots:
            # Deterministic fan-in: metrics merge under shard=N labels,
            # worker events re-sequence as shard.worker.* in
            # (shard, seq) order.  Resource deltas accumulate for the
            # close()-time per-shard summaries.
            merge_worker_snapshots(registry, journal, snapshots)
            if registry.enabled:
                self._worker_metrics_merged = True
            for doc in snapshots:
                shard = int(doc["shard"])
                for rec in worker_resource_events(doc):
                    entry = self._shard_resources.setdefault(
                        shard,
                        {"cpu_s": 0.0, "max_rss_kb": 0.0, "batches": 0},
                    )
                    entry["cpu_s"] += float(rec.get("cpu_user_s", 0.0))
                    entry["cpu_s"] += float(rec.get("cpu_system_s", 0.0))
                    entry["max_rss_kb"] = max(
                        entry["max_rss_kb"],
                        float(rec.get("max_rss_kb", 0.0)),
                    )
                    entry["batches"] += 1

    def _record_imbalance(self, shard_jobs: List[list]) -> None:
        """Per-window shard imbalance: max/mean prefetch tuples across
        the configured shards (1.0 = perfectly balanced; idle shards
        count, because they are provisioned capacity)."""
        per_window: Dict[int, List[float]] = {}
        for shard, jobs in enumerate(shard_jobs):
            for _name, wins in jobs:
                for (w, _off, n, _hv) in wins:
                    per_window.setdefault(
                        w, [0.0] * self.shards
                    )[shard] += n
        for w, tuples in per_window.items():
            mean = sum(tuples) / len(tuples)
            self._window_imbalance[w] = (
                max(tuples) / mean if mean > 0 else 0.0
            )

    # -- base-loop hooks ----------------------------------------------------
    def _partition_jobs(self, pool, jobs):
        prefetched = self._prefetched
        if not prefetched:
            return super()._partition_jobs(pool, jobs)
        messages = []
        hits = misses = 0
        for monitor, window, _plan in jobs:
            msg = prefetched.get((monitor.name, window.index))
            if (
                msg is None
                or msg.function_version != monitor.function_version
            ):
                # Not prefetched (or built against a superseded
                # function): fall back to the inline serial build.
                self.prefetch_misses += 1
                misses += 1
                messages.append(
                    monitor.process_window(
                        window.index, window.uids, values=window.values
                    )
                )
                continue
            self.prefetch_hits += 1
            hits += 1
            # The worker's throwaway Monitor absorbed the per-window
            # accounting; replay it on the real one so lifetime stats
            # match the serial run.  When the worker's own registry was
            # merged (telemetry on) the monitor.* metrics already exist
            # under shard=N labels, so skip them here — otherwise every
            # hit window would be counted twice.
            monitor._account(
                1,
                len(window),
                (msg.histogram,),
                metrics=not self._worker_metrics_merged,
            )
            messages.append(msg)
        if jobs:
            w = int(jobs[0][1].index)
            self._window_hits[w] = self._window_hits.get(w, 0) + hits
            self._window_misses[w] = (
                self._window_misses.get(w, 0) + misses
            )
            registry = get_registry()
            if registry.enabled:
                labels = {"tenant": self.tenant} if self.tenant else {}
                if hits:
                    registry.counter(
                        "serving.prefetch.hits", **labels
                    ).inc(hits)
                if misses:
                    registry.counter(
                        "serving.prefetch.misses", **labels
                    ).inc(misses)
                total = hits + misses
                registry.gauge(
                    "serving.prefetch.miss_rate", **labels
                ).set(misses / total if total else 0.0)
                imbalance = self._window_imbalance.get(w)
                if imbalance is not None:
                    registry.gauge(
                        "serving.shard.imbalance", **labels
                    ).set(round(imbalance, 6))
        return messages

    def _window_signals(self, window: int) -> Dict[str, float]:
        signals = super()._window_signals(window)
        hits = self._window_hits.get(window, 0)
        misses = self._window_misses.get(window, 0)
        total = hits + misses
        if total:
            signals["prefetch_miss_rate"] = misses / total
        imbalance = self._window_imbalance.get(window)
        if imbalance is not None:
            signals["shard_imbalance"] = imbalance
        return signals

    def _ground_truth(self, window, uids, values):
        row = self._truth.get(window)
        if row is not None and self._truth_sizes.get(window) == int(uids.size):
            return row
        return super()._ground_truth(window, uids, values)

    # -- entry point --------------------------------------------------------
    def run(
        self,
        live: Trace,
        window_width: float,
        split_seed: int = 0,
        faults: object = _UNSET,
    ) -> "SystemReport":
        self._prefetched = {}
        self._truth = {}
        self._truth_sizes = {}
        self._segmented_cache = None
        self._worker_metrics_merged = False
        self._window_hits = {}
        self._window_misses = {}
        self._window_imbalance = {}
        if self.control_center.function is not None:
            # Untrained systems skip straight to the base loop's
            # "call train() before run()" error.
            self._prefetch(live, window_width, split_seed)
        try:
            report = super().run(live, window_width, split_seed, faults)
            registry = get_registry()
            if registry.enabled:
                # Parent-process counterpart of the worker proc.*
                # series: cumulative totals under shard="parent".
                export_resources(
                    registry, sample_resources(), shard="parent"
                )
            return report
        finally:
            # Per-run caches can pin the whole live trace; drop them.
            self._segmented_cache = None
            self._truth = {}
            self._truth_sizes = {}
