"""Quickstart: compress a lookup table into a compact histogram.

Builds a small subnet lookup table, observes a window of identifiers,
constructs each class of partitioning function, and shows the error /
size trade-off against simply shipping everything.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    PrunedHierarchy,
    UIDDomain,
    evaluate_function,
    get_metric,
    histogram_from_group_counts,
)
from repro.algorithms import (
    build_lpm_greedy,
    build_nonoverlapping,
    build_overlapping,
)
from repro.data import TrafficModel, generate_subnet_table, generate_trace


def main() -> None:
    # 1. The lookup table: ~1500 nonoverlapping subnets covering a
    #    14-bit identifier space (a scaled model of a WHOIS dump).
    domain = UIDDomain(14)
    table = generate_subnet_table(domain, seed=7)
    print(f"lookup table: {table}")

    # 2. A window of traffic and its exact per-group counts — the
    #    answer the Control Center wants without shipping raw packets.
    uids = generate_trace(table, 100_000, seed=8, model=TrafficModel())
    counts = table.counts_from_uids(uids)
    print(f"window: {len(uids)} packets, "
          f"{int((counts > 0).sum())} active subnets")

    # 3. Construct partitioning functions with a 48-bucket budget.
    hierarchy = PrunedHierarchy(table, counts)
    metric = get_metric("rms")
    budget = 48
    functions = {
        "nonoverlapping": build_nonoverlapping(hierarchy, metric, budget),
        "overlapping": build_overlapping(hierarchy, metric, budget),
        "greedy LPM": build_lpm_greedy(hierarchy, metric, budget),
    }

    # 4. Compare: error of the reconstructed answer, and bytes shipped
    #    per window vs. shipping raw identifiers.
    raw_bytes = len(uids) * 2  # 14-bit identifiers -> 2 bytes each
    print(f"\n{'method':>16}  {'rms error':>10}  {'bytes/window':>12}  "
          f"{'vs raw':>8}")
    for name, result in functions.items():
        fn = result.function_at(budget)
        err = evaluate_function(table, counts, fn, metric)
        hist = histogram_from_group_counts(table, counts, fn)
        nbytes = hist.size_bytes(domain)
        print(f"{name:>16}  {err:>10.2f}  {nbytes:>12}  "
              f"{raw_bytes / nbytes:>7.0f}x")

    # 5. Look inside the winning function.
    best = functions["greedy LPM"].function_at(budget)
    print(f"\ngreedy LPM function: {best.num_buckets} buckets, "
          f"{best.size_bits()} bits")
    for bucket in best.buckets[:5]:
        kind = "sparse" if bucket.is_sparse else "plain"
        print(f"  {kind:>6} bucket at prefix "
              f"{domain.node_prefix_str(bucket.node)!r}")
    print("  ...")


if __name__ == "__main__":
    main()
