"""Tests for drift detection and adaptive recalibration (the paper's
Section 6 future-work item)."""

import numpy as np
import pytest

from repro import Histogram, UIDDomain, get_metric
from repro.data import TrafficModel, generate_subnet_table
from repro.data.traffic import generate_timestamped_trace
from repro.streams import FaultModel, MonitoringSystem, Trace
from repro.streams.recalibrate import (
    AdaptiveMonitoringSystem,
    BucketDriftDetector,
)


class TestDriftDetector:
    def test_identical_distribution_no_drift(self):
        d = BucketDriftDetector(threshold=0.1, patience=1)
        h = Histogram({1: 50.0, 2: 50.0})
        assert not d.observe(h)  # first window anchors the reference
        assert not d.observe(h)
        assert d.last_score == pytest.approx(0.0)

    def test_shifted_distribution_detected(self):
        d = BucketDriftDetector(threshold=0.3, patience=1)
        d.observe(Histogram({1: 100.0}))
        assert d.observe(Histogram({2: 100.0}))  # total shift -> TV = 1
        assert d.last_score == pytest.approx(1.0)

    def test_unmatched_traffic_counts_as_drift(self):
        d = BucketDriftDetector(threshold=0.3, patience=1)
        d.observe(Histogram({1: 100.0}))
        assert d.observe(Histogram({1: 50.0}, unmatched=50.0))

    def test_patience_requires_sustained_drift(self):
        d = BucketDriftDetector(threshold=0.3, patience=2)
        d.observe(Histogram({1: 100.0}))
        assert not d.observe(Histogram({2: 100.0}))  # first strike
        assert d.observe(Histogram({2: 100.0}))      # second fires

    def test_streak_resets_on_calm_window(self):
        d = BucketDriftDetector(threshold=0.3, patience=2)
        calm = Histogram({1: 100.0})
        drifted = Histogram({2: 100.0})
        d.observe(calm)
        assert not d.observe(drifted)
        assert not d.observe(calm)     # streak broken
        assert not d.observe(drifted)  # needs two again
        assert d.observe(drifted)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            BucketDriftDetector(threshold=0.0)
        with pytest.raises(ValueError):
            BucketDriftDetector(patience=0)


def _drifting_workload():
    """A trace whose active region shifts halfway through."""
    dom = UIDDomain(12)
    table = generate_subnet_table(dom, seed=81)
    # phase 1 and phase 2 concentrate in different halves of the space
    m1 = TrafficModel(mode="zipf", active_fraction=0.05, zipf_exponent=1.2)
    ts1, u1 = generate_timestamped_trace(table, 30_000, 30.0, seed=82,
                                         model=m1)
    m2 = TrafficModel(mode="zipf", active_fraction=0.05, zipf_exponent=1.2)
    ts2, u2 = generate_timestamped_trace(table, 30_000, 30.0, seed=983,
                                         model=m2)
    trace = Trace(
        np.concatenate([ts1, ts2 + 30.0]), np.concatenate([u1, u2])
    )
    return table, trace


class TestAdaptiveSystem:
    def test_rebuild_fires_and_helps(self):
        table, trace = _drifting_workload()
        history = trace.slice_time(0, 15)
        live = trace.slice_time(15, 60)
        metric = get_metric("average")

        static = MonitoringSystem(
            table, metric, num_monitors=2,
            algorithm="overlapping", budget=40,
        )
        static.train(history)
        static_report = static.run(live, window_width=5.0)

        adaptive = AdaptiveMonitoringSystem(
            table, metric, num_monitors=2,
            algorithm="overlapping", budget=40,
            detector=BucketDriftDetector(threshold=0.3, patience=1),
        )
        adaptive.train(history)
        report = adaptive.run(live, window_width=5.0)

        # drift happens at t=30 -> at least one rebuild
        assert report.rebuilds
        # after the rebuild, the adaptive system beats the static one
        # on the drifted tail
        tail_static = np.mean(
            [w.error for w in static_report.windows[-3:]]
        )
        tail_adaptive = np.mean([w.error for w in report.windows[-3:]])
        assert tail_adaptive <= tail_static + 1e-9
        # rebuilds cost downstream bytes
        assert report.function_bytes > static_report.function_bytes

    def test_no_drift_no_rebuild(self):
        dom = UIDDomain(12)
        table = generate_subnet_table(dom, seed=91)
        ts, uids = generate_timestamped_trace(
            table, 40_000, 40.0, seed=92, model=TrafficModel()
        )
        trace = Trace(ts, uids)
        adaptive = AdaptiveMonitoringSystem(
            table, get_metric("rms"), num_monitors=2,
            algorithm="lpm_greedy", budget=40,
            detector=BucketDriftDetector(threshold=0.6, patience=2),
        )
        adaptive.train(trace.slice_time(0, 20))
        report = adaptive.run(trace.slice_time(20, 40), window_width=5.0)
        assert report.rebuilds == []
        assert len(report.drift_scores) == len(report.windows)

    def test_bad_warehouse_rejected(self):
        dom = UIDDomain(10)
        table = generate_subnet_table(dom, seed=1)
        with pytest.raises(ValueError):
            AdaptiveMonitoringSystem(
                table, get_metric("rms"), warehouse_windows=0
            )


class TestPartialInstall:
    """A rebuild whose installs are (partially) lost leaves a
    mixed-version fleet; recalibration must ride it out via the stale
    policy and the install scheduler's retries, not crash."""

    def _system(self, stale_policy):
        table, trace = _drifting_workload()
        system = AdaptiveMonitoringSystem(
            table, get_metric("average"), num_monitors=2,
            algorithm="overlapping", budget=40,
            detector=BucketDriftDetector(threshold=0.3, patience=1),
            stale_policy=stale_policy,
        )
        system.train(trace.slice_time(0, 15))
        return system, trace.slice_time(15, 60)

    def test_lost_installs_quarantined_and_survived(self):
        system, live = self._system("quarantine")
        baseline_downstream = system.channel.downstream_bytes
        # Every install transmission after training is lost: once the
        # drift detector fires, the whole fleet goes permanently stale.
        report = system.run(
            live, window_width=5.0,
            faults=FaultModel(install_drop=1.0, seed=5),
        )
        assert report.rebuilds  # drift still detected and acted on
        first = report.rebuilds[0]
        degraded = [w for w in report.windows if w.window_index > first]
        assert degraded
        assert all(w.stale_messages > 0 for w in degraded)
        assert all(w.monitors_reporting == 0 for w in degraded)
        assert all(np.isfinite(w.error) for w in report.windows)
        # The rebuild itself plus the scheduler's backoff retries were
        # all charged downstream.
        assert report.function_bytes > baseline_downstream

    def test_lost_installs_strict_policy_raises(self):
        system, live = self._system("strict")
        with pytest.raises(ValueError, match="stale"):
            system.run(
                live, window_width=5.0,
                faults=FaultModel(install_drop=1.0, seed=5),
            )

    def test_recovering_installs_reconverge(self):
        """With installs lost only sometimes, retries eventually land
        and the fleet converges back to the current version."""
        system, live = self._system("rescale")
        report = system.run(
            live, window_width=5.0,
            faults=FaultModel(install_drop=0.5, seed=8),
        )
        assert report.rebuilds
        assert all(np.isfinite(w.error) for w in report.windows)
        # After the last rebuild settles, full-strength windows exist.
        assert any(
            w.monitors_reporting == 2 for w in report.windows
        )


class TestDetectorReset:
    def test_reset_drops_reference_and_streak(self):
        d = BucketDriftDetector(threshold=0.3, patience=2)
        d.observe(Histogram({1: 100.0}))
        assert not d.observe(Histogram({2: 100.0}))  # streak = 1
        d.reset()
        assert d._reference is None
        assert d._streak == 0
        # next window re-anchors instead of firing
        assert not d.observe(Histogram({2: 100.0}))
        assert d._reference is not None

    def test_reset_then_observe_measures_against_new_anchor(self):
        d = BucketDriftDetector(threshold=0.3, patience=1)
        d.observe(Histogram({1: 100.0}))
        d.reset()
        d.observe(Histogram({2: 100.0}))      # new reference
        assert not d.observe(Histogram({2: 100.0}))
        assert d.last_score == pytest.approx(0.0)


class TestWarehouse:
    def _run(self, **kwargs):
        table, trace = _drifting_workload()
        kwargs.setdefault("algorithm", "lpm_greedy")
        system = AdaptiveMonitoringSystem(
            table, get_metric("rms"), num_monitors=2, budget=40,
            detector=BucketDriftDetector(threshold=0.3, patience=1),
            **kwargs,
        )
        system.train(trace.slice_time(0, 15))
        report = system.run(trace.slice_time(15, 60), window_width=5.0)
        return system, report

    def test_warehouse_bounded_and_sum_maintained(self):
        system, report = self._run(warehouse_windows=3)
        assert len(report.windows) > 3
        assert len(system._warehouse) == 3  # deque maxlen enforced
        np.testing.assert_array_equal(
            system._warehouse_sum,
            np.sum(np.stack(list(system._warehouse)), axis=0),
        )

    def test_single_window_warehouse(self):
        system, _report = self._run(warehouse_windows=1)
        assert len(system._warehouse) == 1
        np.testing.assert_array_equal(
            system._warehouse_sum, system._warehouse[0]
        )

    def test_incremental_adaptive_report_identical(self):
        """End-to-end: recalibrations through the subtree memo produce
        the same report as full rebuilds."""
        full_sys, full = self._run(algorithm="nonoverlapping")
        inc_sys, inc = self._run(algorithm="nonoverlapping",
                                 incremental=True)
        assert inc_sys.control_center.incremental
        assert full.rebuilds == inc.rebuilds
        assert full.drift_scores == inc.drift_scores
        assert [w.error for w in full.windows] == [
            w.error for w in inc.windows
        ]
        assert full.function_bytes == inc.function_bytes
