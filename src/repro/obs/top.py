"""``repro top`` — an in-terminal dashboard over a live run.

Renders per-window telemetry — error proxy / actual error, decode
coverage, trash-bin spill, drift, fault counters, ingest rate — from
either of the two live surfaces a run exposes:

* an **event journal** (``repro simulate --journal run.journal``):
  decode events carry the full per-window accounting, fault events the
  degradation story; the dashboard tails the file (lenient reads
  tolerate a partially flushed last line) and exits once it sees the
  ``run_end`` event;
* a **metrics server URL** (``repro simulate --serve-metrics :9100``):
  the per-window snapshot-delta series is fetched from
  ``<url>/series.json`` (:mod:`repro.obs.snapshots`); here the error
  column is the window's measured error from the
  ``system.window.error`` histogram delta and the quality gauges ride
  along.

Rendering is plain text (one screenful, ANSI clear between refreshes
when stdout is a TTY) so it works over ssh and in CI logs alike.
"""

from __future__ import annotations

import json
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .journal import read_journal

__all__ = ["TopRow", "TopSource", "TopState", "load_state", "render_top"]


@dataclass(frozen=True)
class TopRow:
    """One decoded window as the dashboard shows it."""

    window: int
    ts: Optional[float] = None
    tuples: Optional[int] = None
    error: Optional[float] = None
    coverage: Optional[float] = None
    spill: Optional[float] = None
    drift: Optional[float] = None
    bytes: Optional[int] = None
    reporting: Optional[int] = None


@dataclass
class TopState:
    """Everything one refresh of the dashboard needs."""

    source: str
    rows: List[TopRow] = field(default_factory=list)
    #: Cumulative degradation/install counters.
    counters: Dict[str, float] = field(default_factory=dict)
    #: SLO alert history as dicts (``rule``, ``fired_window``,
    #: ``value``, ``threshold``, ``resolved_window``), open alerts
    #: having ``resolved_window`` None.
    alerts: List[Dict] = field(default_factory=list)
    #: Per-shard rollups (shard id -> short-key dict: ``windows``,
    #: ``tuples``, ``bytes``, ``cpu_s``, ``rss_kb``) from
    #: ``shard.prefetch`` / ``shard.worker.resources`` events or the
    #: ``/shards.json`` endpoint.  The parent process appears as
    #: shard ``"parent"``.
    shards: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Per-tenant rollups (``windows``, ``bytes``, ``mean_error``,
    #: ``over_budget``).
    tenants: Dict[str, Dict[str, float]] = field(default_factory=dict)
    finished: bool = False

    @property
    def active_alerts(self) -> List[Dict]:
        return [a for a in self.alerts if a.get("resolved_window") is None]

    @property
    def total_tuples(self) -> int:
        return sum(r.tuples or 0 for r in self.rows)

    @property
    def mean_error(self) -> float:
        errors = [r.error for r in self.rows if r.error is not None]
        return sum(errors) / len(errors) if errors else 0.0

    @property
    def ingest_rate(self) -> float:
        """Tuples/second over the observed windows (0 until two
        timestamped windows exist)."""
        timed = [r for r in self.rows if r.ts is not None]
        if len(timed) < 2:
            return 0.0
        elapsed = timed[-1].ts - timed[0].ts
        if elapsed <= 0:
            return 0.0
        return sum(r.tuples or 0 for r in timed[1:]) / elapsed


def state_from_journal(events: List[Dict], source: str) -> TopState:
    """Fold journal events into dashboard state."""
    state = TopState(source=source)
    counters = state.counters
    for ev in events:
        kind = ev.get("event")
        if kind == "decode":
            state.rows.append(
                TopRow(
                    window=int(ev.get("window_index", len(state.rows))),
                    ts=ev.get("ts"),
                    tuples=ev.get("tuples"),
                    error=ev.get("error"),
                    coverage=ev.get("coverage"),
                    spill=ev.get("spill_fraction"),
                    drift=ev.get("drift_score"),
                    bytes=ev.get("histogram_bytes"),
                    reporting=ev.get("monitors_reporting"),
                )
            )
            late = ev.get("late_messages", 0)
            if late:
                counters["late"] = counters.get("late", 0) + late
        elif kind == "fault.drop":
            counters["drop"] = counters.get("drop", 0) + 1
        elif kind == "fault.duplicate":
            counters["dup"] = counters.get("dup", 0) + 1
        elif kind == "fault.delay":
            counters["delay"] = counters.get("delay", 0) + 1
        elif kind == "fault.crash":
            counters["crash"] = counters.get("crash", 0) + 1
        elif kind == "install":
            counters["installs"] = counters.get("installs", 0) + 1
            if ev.get("retry"):
                counters["retries"] = counters.get("retries", 0) + 1
        elif kind == "recalibration":
            counters["recalibrations"] = (
                counters.get("recalibrations", 0) + 1
            )
        elif kind == "alert.fired":
            state.alerts.append({
                "rule": ev.get("rule"),
                "fired_window": ev.get("window"),
                "value": ev.get("value"),
                "threshold": ev.get("threshold"),
                "resolved_window": None,
            })
        elif kind == "alert.resolved":
            rule = ev.get("rule")
            for alert in reversed(state.alerts):
                if alert["rule"] == rule and alert["resolved_window"] is None:
                    alert["resolved_window"] = ev.get("window")
                    break
        elif kind == "shard.prefetch":
            entry = state.shards.setdefault(str(ev.get("shard")), {})
            for key, src in (
                ("windows", "windows"),
                ("tuples", "tuples"),
                ("bytes", "payload_bytes"),
            ):
                value = ev.get(src)
                if value is not None:
                    entry[key] = entry.get(key, 0) + value
        elif kind == "shard.worker.resources":
            entry = state.shards.setdefault(str(ev.get("shard")), {})
            cpu = float(ev.get("cpu_user_s", 0.0)) + float(
                ev.get("cpu_system_s", 0.0)
            )
            entry["cpu_s"] = entry.get("cpu_s", 0.0) + cpu
            entry["rss_kb"] = max(
                entry.get("rss_kb", 0.0), float(ev.get("max_rss_kb", 0.0))
            )
        elif kind == "tenant.report":
            entry = state.tenants.setdefault(str(ev.get("tenant")), {})
            for key, src in (
                ("windows", "windows"),
                ("bytes", "bytes_used"),
            ):
                value = ev.get(src)
                if value is not None:
                    entry[key] = entry.get(key, 0) + value
            if ev.get("mean_error") is not None:
                entry["mean_error"] = float(ev["mean_error"])
            if ev.get("over_budget"):
                entry["over_budget"] = entry.get("over_budget", 0) + 1
        elif kind == "run_end":
            state.finished = True
    return state


#: snapshot-series keys -> dashboard counter keys.
_SERIES_COUNTERS = {
    "channel.faults.dropped": "drop",
    "channel.faults.duplicated": "dup",
    "channel.faults.delayed": "delay",
    "system.monitor.crashes": "crash",
    "system.messages.late": "late",
    "control.install.attempts": "installs",
    "control.install.retries": "retries",
    "system.recalibrations": "recalibrations",
}


def state_from_series(records: List[Dict], source: str) -> TopState:
    """Fold per-window snapshot-delta records (``/series.json``) into
    dashboard state."""
    state = TopState(source=source)
    for rec in records:
        counters = rec.get("counters", {})
        gauges = rec.get("gauges", {})
        hists = dict(rec.get("histograms", {}))
        hists.update(rec.get("timers", {}))
        error_dist = hists.get("system.window.error")
        bytes_dist = hists.get("system.window.bytes")
        reporting_dist = hists.get("system.window.monitors_reporting")
        tuples = counters.get("system.tuples")
        state.rows.append(
            TopRow(
                window=int(rec.get("window") or len(state.rows)),
                ts=rec.get("ts"),
                tuples=int(tuples) if tuples is not None else None,
                error=error_dist["mean"] if error_dist else None,
                coverage=gauges.get("quality.coverage"),
                spill=gauges.get("quality.spill_fraction"),
                drift=gauges.get("quality.drift_score"),
                bytes=int(bytes_dist["sum"]) if bytes_dist else None,
                reporting=(
                    int(round(reporting_dist["mean"]))
                    if reporting_dist
                    else None
                ),
            )
        )
        for key, short in _SERIES_COUNTERS.items():
            delta = counters.get(key)
            if delta:
                state.counters[short] = state.counters.get(short, 0) + delta
    return state


def _fold_shard_summary(state: TopState, doc: Dict) -> None:
    """Normalize a ``/shards.json`` document (full metric names per
    shard/tenant) into the dashboard's short-key rollups.  Values are
    registry totals, so they replace rather than accumulate."""
    for shard, series in doc.get("shards", {}).items():
        entry = state.shards.setdefault(str(shard), {})
        for key, src in (
            ("windows", "serving.shard.windows"),
            ("tuples", "serving.shard.tuples"),
            ("bytes", "serving.shard.payload_bytes"),
        ):
            if src in series:
                entry[key] = series[src]
        cpu = series.get("serving.shard.cpu_seconds")
        if cpu is None and (
            "proc.cpu.user_seconds" in series
            or "proc.cpu.system_seconds" in series
        ):
            cpu = series.get("proc.cpu.user_seconds", 0.0) + series.get(
                "proc.cpu.system_seconds", 0.0
            )
        if cpu is not None:
            entry["cpu_s"] = cpu
        rss = series.get(
            "serving.shard.max_rss_kb", series.get("proc.rss.max_kb")
        )
        if rss is not None:
            entry["rss_kb"] = rss
    for tenant, series in doc.get("tenants", {}).items():
        entry = state.tenants.setdefault(str(tenant), {})
        for key, src in (
            ("windows", "serving.tenant.windows"),
            ("bytes", "serving.tenant.bytes"),
            ("mean_error", "serving.tenant.mean_error"),
            ("over_budget", "serving.tenant.over_budget"),
        ):
            if src in series:
                entry[key] = series[src]


class TopSource:
    """Stateful poller behind the ``repro top`` refresh loop.

    URL mode fetches ``/series.json?since=N`` (``N`` = records already
    held) so each window record crosses the wire exactly once, then
    polls ``/alerts.json`` and ``/shards.json`` best-effort for the
    alert and shards/tenants panes.  Journal mode re-reads the file
    leniently each poll — the page cache makes that cheap and the
    lenient parser already tolerates the live tail.
    """

    def __init__(self, source: str, timeout: float = 5.0) -> None:
        self.source = source
        self.timeout = timeout
        self.is_url = source.startswith(("http://", "https://"))
        self._records: List[Dict] = []

    def poll(self) -> TopState:
        """Fetch whatever is new and fold it into a fresh state."""
        if not self.is_url:
            return state_from_journal(
                read_journal(self.source, strict=False), self.source
            )
        base = self.source.rstrip("/")
        url = f"{base}/series.json?since={len(self._records)}"
        with urllib.request.urlopen(url, timeout=self.timeout) as resp:
            fresh = json.loads(resp.read().decode("utf-8"))
        self._records.extend(fresh)
        state = state_from_series(self._records, self.source)
        try:
            with urllib.request.urlopen(
                f"{base}/alerts.json", timeout=self.timeout
            ) as resp:
                doc = json.loads(resp.read().decode("utf-8"))
            state.alerts = list(doc.get("alerts", []))
        except Exception:
            pass  # pre-SLO server — the alert pane just stays empty
        try:
            with urllib.request.urlopen(
                f"{base}/shards.json", timeout=self.timeout
            ) as resp:
                doc = json.loads(resp.read().decode("utf-8"))
            _fold_shard_summary(state, doc)
        except Exception:
            pass  # pre-sharding server — the shards pane stays empty
        return state


def load_state(source: str, timeout: float = 5.0) -> TopState:
    """One-shot dashboard state from a journal path or metrics-server
    URL (a single :class:`TopSource` poll)."""
    return TopSource(source, timeout=timeout).poll()


def _fmt(value, spec: str, width: int) -> str:
    if value is None:
        return "-".rjust(width)
    return format(value, spec).rjust(width)


def _fmt_rate(rate: float) -> str:
    if rate >= 1e6:
        return f"{rate / 1e6:.1f}M tup/s"
    if rate >= 1e3:
        return f"{rate / 1e3:.1f}k tup/s"
    return f"{rate:.0f} tup/s"


def render_top(state: TopState, max_rows: int = 12) -> str:
    """One screenful of dashboard."""
    out: List[str] = []
    status = "finished" if state.finished else "running"
    out.append(
        f"repro top — {state.source}  [{status}]"
    )
    out.append(
        f"windows {len(state.rows)}   tuples {state.total_tuples:,}   "
        f"ingest {_fmt_rate(state.ingest_rate)}   "
        f"mean error {state.mean_error:.4g}"
    )
    if state.counters:
        parts = [
            f"{key} {int(value)}"
            for key, value in sorted(state.counters.items())
        ]
        out.append("faults/installs: " + "  ".join(parts))
    if state.shards:
        out.append(
            f"shards: {'shard':>8} {'windows':>8} {'tuples':>10} "
            f"{'bytes':>10} {'cpu(s)':>8} {'rss(MB)':>8}"
        )
        # Numeric shard ids first (in order), then "parent" and any
        # other named processes.
        def _shard_order(item):
            key = item[0]
            return (0, int(key), key) if key.isdigit() else (1, 0, key)
        for shard, e in sorted(state.shards.items(), key=_shard_order):
            rss = e.get("rss_kb")
            out.append(
                f"        {shard:>8}"
                f" {_fmt(e.get('windows'), '.0f', 8)}"
                f" {_fmt(e.get('tuples'), '.0f', 10)}"
                f" {_fmt(e.get('bytes'), '.0f', 10)}"
                f" {_fmt(e.get('cpu_s'), '.2f', 8)}"
                f" {_fmt(rss / 1024.0 if rss is not None else None, '.1f', 8)}"
            )
    if state.tenants:
        out.append(
            f"tenants: {'tenant':>10} {'windows':>8} {'bytes':>10} "
            f"{'mean err':>10} {'over':>5}"
        )
        for tenant, e in sorted(state.tenants.items()):
            out.append(
                f"         {tenant:>10}"
                f" {_fmt(e.get('windows'), '.0f', 8)}"
                f" {_fmt(e.get('bytes'), '.0f', 10)}"
                f" {_fmt(e.get('mean_error'), '.4g', 10)}"
                f" {_fmt(e.get('over_budget'), '.0f', 5)}"
            )
    if state.alerts:
        active = state.active_alerts
        out.append(
            f"alerts: {len(active)} firing / {len(state.alerts)} total"
        )
        for alert in state.alerts[-5:]:
            resolved = alert.get("resolved_window")
            status = (
                "FIRING" if resolved is None else f"resolved w{resolved}"
            )
            value = alert.get("value")
            value_text = (
                f"{value:.4g}" if isinstance(value, (int, float)) else "-"
            )
            out.append(
                f"  [{status:>12}] {alert.get('rule')}  "
                f"fired w{alert.get('fired_window')}  value {value_text}"
            )
    out.append("")
    header = (
        f"{'win':>5} {'tuples':>9} {'error':>10} {'cover':>6} "
        f"{'spill':>6} {'drift':>6} {'bytes':>8} {'rep':>4}  error bar"
    )
    out.append(header)
    rows = state.rows[-max_rows:]
    max_error = max(
        (r.error for r in rows if r.error is not None), default=0.0
    )
    for r in rows:
        bar = ""
        if r.error is not None and max_error > 0:
            bar = "#" * max(1, round(20 * r.error / max_error))
        out.append(
            f"{r.window:>5}"
            f" {_fmt(r.tuples, 'd', 9)}"
            f" {_fmt(r.error, '.4g', 10)}"
            f" {_fmt(r.coverage, '.2f', 6)}"
            f" {_fmt(r.spill, '.3f', 6)}"
            f" {_fmt(r.drift, '.3f', 6)}"
            f" {_fmt(r.bytes, 'd', 8)}"
            f" {_fmt(r.reporting, 'd', 4)}"
            f"  {bar}"
        )
    if not rows:
        out.append("  (no decoded windows yet)")
    return "\n".join(out) + "\n"
