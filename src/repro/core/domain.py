"""The binary hierarchy of unique identifiers (the *UID hierarchy*).

The paper (Section 2) models unique identifiers as the leaves of a
complete binary tree of height ``h``; interior nodes correspond to
identifier *prefixes* and every subtree covers a contiguous range of
the identifier space.  A hierarchy over a ``2**32``-address space (IPv4)
has more than eight billion nodes, so this module never materializes
the tree.  Instead it provides *node arithmetic* over an implicit heap
numbering:

* the root is node ``1``;
* the children of node ``i`` are ``2 * i`` and ``2 * i + 1``;
* the node for the ``d``-bit prefix ``p`` is ``2**d + p``;
* the leaf for identifier ``u`` is ``2**h + u``.

This numbering is exactly the one used by the paper's dynamic programs
(Table 1), and it makes ancestor tests, least-common-ancestor
computation and range conversions single arithmetic expressions on
Python integers.

:class:`UIDDomain` captures the height of the hierarchy and exposes the
node arithmetic; all other modules treat node ids as plain ``int``
values interpreted against a domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = ["UIDDomain", "ROOT"]

#: The node id of the hierarchy root.
ROOT = 1


@dataclass(frozen=True)
class UIDDomain:
    """A ``2**height``-leaf binary identifier space.

    Parameters
    ----------
    height:
        Number of levels below the root; identifiers are integers in
        ``[0, 2**height)``.  IPv4 uses ``height=32``.

    Examples
    --------
    >>> dom = UIDDomain(3)
    >>> dom.leaf(0b010)
    10
    >>> dom.node_prefix_str(dom.node(2, 0b01))
    '01*'
    >>> dom.uid_range(dom.node(2, 0b01))
    (2, 4)
    """

    height: int

    def __post_init__(self) -> None:
        if self.height < 0:
            raise ValueError(f"height must be nonnegative, got {self.height}")

    # ------------------------------------------------------------------
    # Basic facts
    # ------------------------------------------------------------------
    @property
    def num_uids(self) -> int:
        """Size of the identifier universe ``|U|``."""
        return 1 << self.height

    @property
    def num_nodes(self) -> int:
        """Total number of nodes in the (virtual) hierarchy."""
        return (1 << (self.height + 1)) - 1

    def contains_uid(self, uid: int) -> bool:
        """Whether ``uid`` is a member of the identifier universe."""
        return 0 <= uid < self.num_uids

    def contains_node(self, node: int) -> bool:
        """Whether ``node`` is a valid node id for this domain."""
        return 1 <= node < (1 << (self.height + 1))

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def node(self, depth: int, prefix: int) -> int:
        """The node id of the ``depth``-bit prefix ``prefix``."""
        if not 0 <= depth <= self.height:
            raise ValueError(f"depth {depth} out of range 0..{self.height}")
        if not 0 <= prefix < (1 << depth):
            raise ValueError(f"prefix {prefix:#x} does not fit in {depth} bits")
        return (1 << depth) + prefix

    def leaf(self, uid: int) -> int:
        """The leaf node id of identifier ``uid``."""
        if not self.contains_uid(uid):
            raise ValueError(f"uid {uid} outside universe of size {self.num_uids}")
        return (1 << self.height) + uid

    # ------------------------------------------------------------------
    # Node arithmetic (static where the domain is irrelevant)
    # ------------------------------------------------------------------
    @staticmethod
    def depth(node: int) -> int:
        """Depth of ``node`` (the root has depth 0)."""
        if node < 1:
            raise ValueError(f"invalid node id {node}")
        return node.bit_length() - 1

    @staticmethod
    def prefix(node: int) -> int:
        """The prefix value encoded by ``node`` (``depth(node)`` bits)."""
        return node - (1 << UIDDomain.depth(node))

    @staticmethod
    def parent(node: int) -> int:
        """Parent node id; the root is its own fixed point error."""
        if node <= 1:
            raise ValueError("the root has no parent")
        return node >> 1

    @staticmethod
    def children(node: int) -> Tuple[int, int]:
        """The two child node ids ``(2 * node, 2 * node + 1)``."""
        return (node << 1, (node << 1) | 1)

    @staticmethod
    def left_child(node: int) -> int:
        return node << 1

    @staticmethod
    def right_child(node: int) -> int:
        return (node << 1) | 1

    @staticmethod
    def sibling(node: int) -> int:
        """The other child of ``node``'s parent."""
        if node <= 1:
            raise ValueError("the root has no sibling")
        return node ^ 1

    @staticmethod
    def is_ancestor(anc: int, node: int) -> bool:
        """Whether ``anc`` is an ancestor of ``node`` (or equal to it)."""
        shift = UIDDomain.depth(node) - UIDDomain.depth(anc)
        return shift >= 0 and (node >> shift) == anc

    @staticmethod
    def ancestor_at_depth(node: int, depth: int) -> int:
        """The unique ancestor of ``node`` at the given depth."""
        shift = UIDDomain.depth(node) - depth
        if shift < 0:
            raise ValueError(
                f"node {node} is above depth {depth}; no ancestor there"
            )
        return node >> shift

    @staticmethod
    def ancestors(node: int) -> Iterator[int]:
        """All strict ancestors of ``node``, closest first, ending at the root."""
        node >>= 1
        while node >= 1:
            yield node
            node >>= 1

    @staticmethod
    def lca(a: int, b: int) -> int:
        """Least common ancestor of nodes ``a`` and ``b``."""
        da, db = UIDDomain.depth(a), UIDDomain.depth(b)
        if da > db:
            a >>= da - db
        elif db > da:
            b >>= db - da
        while a != b:
            a >>= 1
            b >>= 1
        return a

    # ------------------------------------------------------------------
    # Identifier ranges
    # ------------------------------------------------------------------
    def uid_range(self, node: int) -> Tuple[int, int]:
        """Half-open identifier range ``[lo, hi)`` covered by ``node``."""
        d = self.depth(node)
        if d > self.height:
            raise ValueError(f"node {node} deeper than domain height {self.height}")
        shift = self.height - d
        lo = self.prefix(node) << shift
        return (lo, lo + (1 << shift))

    def subtree_size(self, node: int) -> int:
        """Number of identifiers covered by ``node``."""
        return 1 << (self.height - self.depth(node))

    def node_for_range(self, lo: int, hi: int) -> int:
        """The node covering exactly ``[lo, hi)``.

        Raises :class:`ValueError` when the range is not a power-of-two
        aligned block (i.e. not a subtree of the hierarchy).
        """
        size = hi - lo
        if size <= 0 or size & (size - 1):
            raise ValueError(f"range [{lo}, {hi}) is not a power-of-two block")
        if lo % size:
            raise ValueError(f"range [{lo}, {hi}) is not aligned to its size")
        if hi > self.num_uids or lo < 0:
            raise ValueError(f"range [{lo}, {hi}) outside the identifier universe")
        depth = self.height - (size.bit_length() - 1)
        return self.node(depth, lo >> (self.height - depth))

    def leaf_ancestor_of(self, uid: int, depth: int) -> int:
        """The depth-``depth`` ancestor node of identifier ``uid``."""
        return self.ancestor_at_depth(self.leaf(uid), depth)

    # ------------------------------------------------------------------
    # Formatting
    # ------------------------------------------------------------------
    def node_prefix_str(self, node: int) -> str:
        """Render ``node`` as a bit-prefix pattern such as ``'01*'``."""
        d = self.depth(node)
        if d == 0:
            return "*"
        bits = format(self.prefix(node), f"0{d}b")
        return bits + ("*" if d < self.height else "")

    def parse_prefix_str(self, text: str) -> int:
        """Inverse of :meth:`node_prefix_str`."""
        body = text.rstrip("*")
        if text == "*":
            return ROOT
        if not body or any(c not in "01" for c in body):
            raise ValueError(f"malformed prefix pattern {text!r}")
        return self.node(len(body), int(body, 2))

    def describe(self, node: int) -> str:
        """Human-readable node description for logs and error messages."""
        lo, hi = self.uid_range(node)
        return (
            f"node {node} (depth {self.depth(node)}, "
            f"prefix {self.node_prefix_str(node)}, uids [{lo}, {hi}))"
        )
