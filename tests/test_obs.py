"""Tests for the observability layer (repro.obs) and its wiring."""

import csv
import io
import json
import threading

import numpy as np
import pytest

from repro import GroupTable, PrunedHierarchy, UIDDomain, get_metric
from repro.algorithms.construct import available_algorithms, build
from repro.cli import main
from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    get_registry,
    load_jsonl,
    registry_records,
    render_summary,
    set_registry,
    span,
    to_csv,
    to_jsonl,
    to_prometheus,
    use_registry,
    write_metrics,
)
from repro.obs.spans import _NULL_SPAN


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    with use_registry(reg):
        yield reg


class TestRegistry:
    def test_counter_monotonic(self, registry):
        c = registry.counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)
        assert c.value == 5

    def test_gauge_moves_both_ways(self, registry):
        g = registry.gauge("level")
        g.set(10)
        g.dec(3)
        g.inc(1)
        assert g.value == 8

    def test_histogram_stats(self, registry):
        h = registry.histogram("sizes")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0
        assert sum(h.bucket_counts) == 3

    def test_timer_records_duration(self, registry):
        t = registry.timer("work")
        with t.time():
            pass
        assert t.count == 1
        assert t.sum >= 0

    def test_label_identity(self, registry):
        a = registry.counter("x", algorithm="greedy", budget="10")
        b = registry.counter("x", budget="10", algorithm="greedy")
        c = registry.counter("x", algorithm="other", budget="10")
        assert a is b
        assert a is not c

    def test_label_cardinality(self, registry):
        for i in range(10):
            registry.counter("fam", shard=i).inc()
        children = [
            inst for kind, inst in registry.instruments()
            if kind == "counter" and inst.name == "fam"
        ]
        assert len(children) == 10

    def test_get_never_creates(self, registry):
        assert registry.get("counter", "nope") is None
        registry.counter("yes", a="1").inc(2)
        assert registry.get("counter", "yes", a="1").value == 2

    def test_thread_safety(self, registry):
        c = registry.counter("shared")

        def work():
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestNullRegistry:
    def test_disabled_by_default(self):
        assert get_registry() is NULL_REGISTRY
        assert not get_registry().enabled

    def test_noop_instruments_are_shared(self):
        a = NULL_REGISTRY.counter("a", x="1")
        b = NULL_REGISTRY.timer("b")
        assert a is b  # one inert object, no allocation per lookup
        a.inc()
        a.observe(3.0)
        with b.time():
            pass
        assert list(NULL_REGISTRY.instruments()) == []

    def test_span_is_inert_when_disabled(self):
        with span("phase", detail=1) as sp:
            sp.annotate(more=2)
        assert sp is _NULL_SPAN
        assert NULL_REGISTRY.spans == []

    def test_instrumented_code_leaves_no_trace(self, small_hierarchy):
        # The no-op path of the acceptance criteria: building with no
        # registry installed must record nothing anywhere.
        build("nonoverlapping", small_hierarchy, get_metric("rms"), 4)
        assert list(NULL_REGISTRY.instruments()) == []
        assert NULL_REGISTRY.spans == []

    def test_set_registry_restores(self):
        reg = MetricsRegistry()
        previous = set_registry(reg)
        try:
            assert get_registry() is reg
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestSpans:
    def test_nesting_records_parent(self, registry):
        with span("outer"):
            with span("inner"):
                pass
        spans = {s.name: s for s in registry.spans}
        assert spans["inner"].parent == "outer"
        assert spans["outer"].parent is None
        # Inner finishes first; both carry nonnegative durations.
        assert spans["outer"].duration >= spans["inner"].duration >= 0

    def test_payload_and_annotate(self, registry):
        with span("phase", budget=7) as sp:
            sp.annotate(cells=12)
        record = registry.spans[0]
        assert record.payload == {"budget": 7, "cells": 12}

    def test_span_feeds_duration_timer(self, registry):
        with span("phase"):
            pass
        timer = registry.get("timer", "phase.duration")
        assert timer is not None and timer.count == 1

    def test_exception_still_records(self, registry):
        with pytest.raises(RuntimeError):
            with span("doomed"):
                raise RuntimeError("boom")
        assert registry.spans[0].name == "doomed"


class TestExporters:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("c", a="1").inc(3)
        reg.gauge("g").set(2.5)
        reg.histogram("h").observe(4.0)
        with use_registry(reg):
            with span("s", k="v"):
                pass
        return reg

    def test_jsonl_roundtrip(self, tmp_path):
        reg = self._populated()
        path = str(tmp_path / "m.jsonl")
        write_metrics(reg, path, "json")
        records = load_jsonl(path)
        assert records == registry_records(reg)
        by_type = {r["type"] for r in records}
        assert {"counter", "gauge", "histogram", "timer", "span"} <= by_type

    def test_csv_parses(self):
        reg = self._populated()
        rows = list(csv.reader(io.StringIO(to_csv(reg))))
        header, body = rows[0], rows[1:]
        assert header[:3] == ["type", "name", "labels"]
        assert len(body) == len(registry_records(reg))

    def test_prometheus_format(self):
        reg = self._populated()
        text = to_prometheus(reg)
        assert '# TYPE c counter' in text
        assert 'c{a="1"} 3.0' in text
        assert "# TYPE h histogram" in text
        assert "h_count 1" in text
        assert 'h_bucket{le="+Inf"} 1' in text
        # Span names never reach Prometheus directly — their timers do.
        assert "s_duration_count" in text

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_metrics(MetricsRegistry(), str(tmp_path / "x"), "xml")

    def test_load_rejects_non_jsonl(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("definitely,not,json\n")
        with pytest.raises(ValueError):
            load_jsonl(str(path))

    def test_summary_renders_all_sections(self):
        reg = self._populated()
        text = render_summary(registry_records(reg))
        for section in ("counters", "gauges", "distributions", "spans"):
            assert section in text

    def test_summary_of_nothing(self):
        assert render_summary([]) == "no metrics recorded\n"


@pytest.mark.parametrize("algorithm", sorted(available_algorithms()))
def test_every_builder_emits_span_and_size_counter(
    small_hierarchy, algorithm
):
    """Acceptance: each construction algorithm records at least one
    timing span and one size counter."""
    reg = MetricsRegistry()
    with use_registry(reg):
        build(algorithm, small_hierarchy, get_metric("rms"), 5)
    build_spans = [s for s in reg.spans if s.name == "build"]
    assert len(build_spans) == 1
    assert build_spans[0].payload["algorithm"] == algorithm
    assert build_spans[0].duration > 0
    # Beyond the generic build span, every builder traces its own phase.
    assert any(s.name != "build" for s in reg.spans)
    timer = reg.get("timer", "build.duration", algorithm=algorithm)
    assert timer is not None and timer.count == 1
    nodes = reg.get("counter", "build.size.nodes", algorithm=algorithm)
    assert nodes is not None and nodes.value > 0


class TestCLIMetrics:
    SIMULATE = [
        "simulate", "--height", "8", "--packets", "4000",
        "--windows", "2", "--monitors", "2", "--budget", "20",
    ]

    def test_simulate_metrics_roundtrip(self, tmp_path, capsys):
        out = str(tmp_path / "run.jsonl")
        assert main(self.SIMULATE + ["--metrics", out]) == 0
        records = load_jsonl(out)
        assert any(r["type"] == "span" and r["name"] == "build"
                   for r in records)
        assert any(r["type"] == "counter" and r["name"] == "system.windows"
                   for r in records)
        capsys.readouterr()
        assert main(["stats", out]) == 0
        text = capsys.readouterr().out
        assert "system.windows" in text
        assert "build.duration" in text

    def test_metrics_formats(self, tmp_path):
        for fmt, name in (("csv", "run.csv"), ("prom", "run.prom")):
            out = str(tmp_path / name)
            assert main(
                self.SIMULATE + ["--metrics", out, "--metrics-format", fmt]
            ) == 0
            with open(out) as f:
                assert f.read().strip()

    def test_no_metrics_flag_stays_disabled(self, tmp_path):
        assert main(self.SIMULATE) == 0
        assert get_registry() is NULL_REGISTRY
        assert list(NULL_REGISTRY.instruments()) == []

    def test_stats_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.csv"
        bad.write_text("type,name\ncounter,x\n")
        assert main(["stats", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err
