"""Core substrates: domain arithmetic, lookup tables, error metrics,
pruned hierarchies, partitioning functions and reconstruction."""

from .domain import ROOT, UIDDomain
from .errors import (
    AverageError,
    AverageRelativeError,
    DistributiveErrorMetric,
    MaximumRelativeError,
    PenaltyMetric,
    RMSError,
    available_metrics,
    get_metric,
    register_metric,
)
from .estimate import (
    assign_groups_to_buckets,
    evaluate_function,
    histogram_from_group_counts,
    net_group_populations,
    reconstruct_estimates,
)
from .compiled import CompiledEstimator, CompiledPartitioner
from .groups import GroupTable
from .hierarchy import PNode, PrunedHierarchy
from .serialize import (
    decode_function,
    decode_histogram,
    encode_function,
    encode_histogram,
    function_from_json,
    function_to_json,
)
from .wire import (
    WIRE_FORMATS,
    WireHistogram,
    decode_histogram_v2,
    encode_histogram_v2,
    encode_histograms_v2,
    merge_views,
    merge_wire,
)
from .partition import (
    Bucket,
    Histogram,
    LongestPrefixMatchPartitioning,
    NonoverlappingPartitioning,
    OverlappingPartitioning,
    PartitioningFunction,
)

__all__ = [
    "ROOT",
    "UIDDomain",
    "GroupTable",
    "PNode",
    "PrunedHierarchy",
    "DistributiveErrorMetric",
    "PenaltyMetric",
    "RMSError",
    "AverageError",
    "AverageRelativeError",
    "MaximumRelativeError",
    "get_metric",
    "register_metric",
    "available_metrics",
    "Bucket",
    "Histogram",
    "PartitioningFunction",
    "NonoverlappingPartitioning",
    "OverlappingPartitioning",
    "LongestPrefixMatchPartitioning",
    "CompiledPartitioner",
    "CompiledEstimator",
    "assign_groups_to_buckets",
    "histogram_from_group_counts",
    "reconstruct_estimates",
    "evaluate_function",
    "net_group_populations",
    "encode_function",
    "decode_function",
    "encode_histogram",
    "decode_histogram",
    "function_to_json",
    "function_from_json",
    "WIRE_FORMATS",
    "WireHistogram",
    "encode_histogram_v2",
    "encode_histograms_v2",
    "decode_histogram_v2",
    "merge_views",
    "merge_wire",
]
