"""Tests for the multidimensional extension (paper Section 4.2)."""

import numpy as np
import pytest

from repro import (
    GroupTable,
    PrunedHierarchy,
    UIDDomain,
    build_nonoverlapping,
    build_overlapping,
    get_metric,
)
from repro.algorithms import (
    GridGroups,
    build_nonoverlapping_nd,
    build_overlapping_nd,
    evaluate_nd,
)


def leaf_grid(h1, h2, counts):
    d1, d2 = UIDDomain(h1), UIDDomain(h2)
    cut1 = [d1.node(h1, p) for p in range(2 ** h1)]
    cut2 = [d2.node(h2, p) for p in range(2 ** h2)]
    return GridGroups([d1, d2], [cut1, cut2], counts)


class TestGridGroups:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="shape"):
            leaf_grid(2, 2, np.zeros((4, 3)))

    def test_cut_must_cover(self):
        d = UIDDomain(2)
        with pytest.raises(ValueError, match="covering cut"):
            GridGroups([d], [[d.node(2, 0)]], np.zeros(1))

    def test_region_stats(self):
        counts = np.arange(16, dtype=float).reshape(4, 4)
        grid = leaf_grid(2, 2, counts)
        total, ntiles = grid.region_stats(grid.root_region)
        assert total == counts.sum()
        assert ntiles == 16

    def test_can_split_respects_tiles(self):
        d1 = UIDDomain(2)
        # dim-1 groups are the two /1 halves -> splitting below depth 1
        # would slice a tile
        cut1 = [d1.node(1, 0), d1.node(1, 1)]
        d2 = UIDDomain(1)
        cut2 = [d2.node(1, 0), d2.node(1, 1)]
        grid = GridGroups([d1, d2], [cut1, cut2], np.zeros((2, 2)))
        root = grid.root_region
        assert grid.can_split(root, 0)
        left, _ = grid.split(root, 0)
        assert not grid.can_split(left, 0)  # would slice the /1 tile

    def test_contains(self):
        grid = leaf_grid(2, 2, np.zeros((4, 4)))
        root = grid.root_region
        inner = (UIDDomain.left_child(1), UIDDomain.right_child(1))
        assert grid.contains(root, inner)
        assert not grid.contains(inner, root)


class TestOneDimensionalConsistency:
    """With d=1 the multidimensional DPs must match the 1-D optimal
    algorithms exactly — a strong cross-implementation check."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("mname", ["rms", "average", "max_relative"])
    def test_nonoverlapping(self, seed, mname):
        rng = np.random.default_rng(seed)
        h = 4
        dom = UIDDomain(h)
        cut = [dom.node(h, p) for p in range(2 ** h)]
        counts = rng.integers(0, 30, 2 ** h).astype(float)
        counts[rng.random(2 ** h) < 0.3] = 0
        if counts.sum() == 0:
            counts[0] = 3
        metric = get_metric(mname)
        budget = 2 + seed % 4
        hier = PrunedHierarchy(GroupTable(dom, cut), counts)
        r1 = build_nonoverlapping(hier, metric, budget)
        r2 = build_nonoverlapping_nd(
            GridGroups([dom], [cut], counts), metric, budget
        )
        assert r1.error_at(budget) == pytest.approx(
            r2.error_at(budget), abs=1e-9
        )

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("mname", ["rms", "average"])
    def test_overlapping(self, seed, mname):
        rng = np.random.default_rng(seed + 100)
        h = 4
        dom = UIDDomain(h)
        cut = [dom.node(h, p) for p in range(2 ** h)]
        counts = rng.integers(0, 30, 2 ** h).astype(float)
        counts[rng.random(2 ** h) < 0.3] = 0
        if counts.sum() == 0:
            counts[0] = 3
        metric = get_metric(mname)
        budget = 2 + seed % 4
        hier = PrunedHierarchy(GroupTable(dom, cut), counts)
        r1 = build_overlapping(hier, metric, budget, sparse=False)
        r2 = build_overlapping_nd(
            GridGroups([dom], [cut], counts), metric, budget
        )
        assert r1.error_at(budget) == pytest.approx(
            r2.error_at(budget), abs=1e-9
        )


class TestTwoDimensions:
    @pytest.fixture
    def grid(self):
        rng = np.random.default_rng(5)
        counts = rng.integers(0, 20, (8, 8)).astype(float)
        counts[rng.random((8, 8)) < 0.5] = 0
        return leaf_grid(3, 3, counts)

    @pytest.mark.parametrize("budget", [1, 3, 6])
    def test_overlapping_never_worse(self, grid, budget):
        metric = get_metric("rms")
        rn = build_nonoverlapping_nd(grid, metric, budget)
        ro = build_overlapping_nd(grid, metric, budget)
        assert ro.error_at(budget) <= rn.error_at(budget) + 1e-9

    @pytest.mark.parametrize("budget", [1, 4, 8])
    def test_evaluation_matches_prediction(self, grid, budget):
        metric = get_metric("rms")
        rn = build_nonoverlapping_nd(grid, metric, budget)
        ro = build_overlapping_nd(grid, metric, budget)
        assert evaluate_nd(
            grid, rn.buckets_at(budget), metric, semantics="nonoverlapping"
        ) == pytest.approx(rn.error_at(budget), abs=1e-9)
        assert evaluate_nd(
            grid, ro.buckets_at(budget), metric
        ) == pytest.approx(ro.error_at(budget), abs=1e-9)

    def test_curves_monotone(self, grid):
        metric = get_metric("average")
        res = build_overlapping_nd(grid, metric, 8)
        finite = res.curve[np.isfinite(res.curve)]
        assert np.all(np.diff(finite) <= 1e-12)

    def test_full_budget_zero_error(self):
        counts = np.arange(16, dtype=float).reshape(4, 4)
        grid = leaf_grid(2, 2, counts)
        metric = get_metric("average")
        res = build_nonoverlapping_nd(grid, metric, 16)
        assert res.error_at(16) == pytest.approx(0.0, abs=1e-12)

    def test_buckets_are_disjoint_for_nonoverlapping(self, grid):
        metric = get_metric("rms")
        res = build_nonoverlapping_nd(grid, metric, 5)
        buckets = res.buckets_at(5)
        for i, a in enumerate(buckets):
            for b in buckets[i + 1:]:
                assert not (grid.contains(a, b) or grid.contains(b, a))

    def test_overlapping_buckets_strictly_nested(self, grid):
        metric = get_metric("rms")
        res = build_overlapping_nd(grid, metric, 6)
        buckets = res.buckets_at(6)
        assert grid.root_region in buckets
        for b in buckets:
            assert grid.contains(grid.root_region, b)


class TestThreeDimensions:
    def test_runs_in_3d(self):
        rng = np.random.default_rng(9)
        doms = [UIDDomain(2)] * 3
        cuts = [[d.node(2, p) for p in range(4)] for d in doms]
        counts = rng.integers(0, 10, (4, 4, 4)).astype(float)
        grid = GridGroups(doms, cuts, counts)
        metric = get_metric("rms")
        rn = build_nonoverlapping_nd(grid, metric, 5)
        ro = build_overlapping_nd(grid, metric, 5)
        assert ro.error_at(5) <= rn.error_at(5) + 1e-9
        assert evaluate_nd(grid, ro.buckets_at(5), metric) == pytest.approx(
            ro.error_at(5), abs=1e-9
        )


def test_bad_budget_rejected():
    grid = leaf_grid(2, 2, np.zeros((4, 4)))
    with pytest.raises(ValueError):
        build_nonoverlapping_nd(grid, get_metric("rms"), 0)
    with pytest.raises(ValueError):
        build_overlapping_nd(grid, get_metric("rms"), 0)


def test_evaluate_rejects_bad_semantics():
    grid = leaf_grid(2, 2, np.zeros((4, 4)))
    with pytest.raises(ValueError):
        evaluate_nd(grid, [grid.root_region], get_metric("rms"),
                    semantics="weird")


class TestLPMSemanticsND:
    def test_lpm_nets_out_holes(self):
        """A nested region removes its tiles from the parent's density
        — the 1-D LPM rule carried to rectangles."""
        counts = np.zeros((4, 4))
        counts[0, 0] = 100.0  # one hot tile
        counts[2:, 2:] = 1.0  # a calm quadrant
        grid = leaf_grid(2, 2, counts)
        metric = get_metric("average")
        root = grid.root_region
        hot = (UIDDomain(2).leaf(0), UIDDomain(2).leaf(0))
        overlapping_err = evaluate_nd(grid, [root, hot], metric)
        lpm_err = evaluate_nd(
            grid, [root, hot], metric, semantics="longest_prefix_match"
        )
        # netting the hot tile out of the root makes the rest exact-ish
        assert lpm_err <= overlapping_err + 1e-9

    @pytest.mark.parametrize("budget", [2, 4, 8])
    def test_greedy_nd_valid_and_measured(self, budget):
        rng = np.random.default_rng(13)
        counts = rng.integers(0, 30, (8, 8)).astype(float)
        counts[rng.random((8, 8)) < 0.5] = 0
        grid = leaf_grid(3, 3, counts)
        metric = get_metric("rms")
        from repro.algorithms import build_lpm_greedy_nd

        res = build_lpm_greedy_nd(grid, metric, budget)
        err = res.error_at(budget)
        assert np.isfinite(err)
        buckets = res.buckets_at(budget)
        measured = evaluate_nd(
            grid, buckets, metric, semantics="longest_prefix_match"
        )
        assert measured == pytest.approx(err, abs=1e-9)

    def test_greedy_nd_not_worse_than_nonoverlapping(self):
        rng = np.random.default_rng(14)
        counts = rng.integers(0, 30, (8, 8)).astype(float)
        grid = leaf_grid(3, 3, counts)
        metric = get_metric("average")
        from repro.algorithms import build_lpm_greedy_nd

        rn = build_nonoverlapping_nd(grid, metric, 8)
        rg = build_lpm_greedy_nd(grid, metric, 9)
        assert rg.error_at(9) <= rn.error_at(8) * 1.5 + 1e-9
