"""Ablation A7: spatial locality is what hierarchical histograms eat.

The paper's traces are real network traffic, where busy subnets cluster
under common prefixes.  This ablation re-runs the Figure-17 comparison
on two synthetic traces with the *same marginal skew* but different
spatial structure:

* ``cascade`` — multiplicative-cascade weights (spatially correlated,
  like real traffic; the harness default);
* ``zipf``   — independent Zipf weights over random subnets (no
  correlation between neighbors).

Expected outcome: with locality, hierarchical histograms beat the
group-by-group baselines; without it, a hierarchy bucket covers
unrelated groups and flat end-biased histograms catch up — evidence
that the paper's gains come from exploiting identifier structure, not
from skew alone.
"""

import numpy as np

from repro import PrunedHierarchy, UIDDomain, get_metric
from repro.algorithms import build_lpm_greedy, build_overlapping
from repro.baselines import build_end_biased
from repro.data import TrafficModel, generate_subnet_table, generate_trace

from workloads import format_table, save_series

BUDGET = 50


def _errors(mode: str):
    dom = UIDDomain(16)
    table = generate_subnet_table(dom, seed=71)
    model = TrafficModel(mode=mode) if mode == "cascade" else TrafficModel(
        mode="zipf", active_fraction=0.08, zipf_exponent=1.1
    )
    uids = generate_trace(table, 1_000_000, seed=72, model=model)
    counts = table.counts_from_uids(uids)
    hierarchy = PrunedHierarchy(table, counts)
    metric = get_metric("rms")
    over = build_overlapping(hierarchy, metric, BUDGET).error_at(BUDGET)
    greedy = build_lpm_greedy(
        hierarchy, metric, BUDGET, curve_budgets=[BUDGET]
    ).error_at(BUDGET)
    eb = build_end_biased(table, counts, BUDGET).error(metric, BUDGET)
    return over, greedy, eb


def test_locality_ablation(benchmark):
    rows = []
    ratios = {}
    for mode in ("cascade", "zipf"):
        over, greedy, eb = _errors(mode)
        best_hier = min(over, greedy)
        ratios[mode] = eb / best_hier
        rows.append([mode, over, greedy, eb, round(ratios[mode], 3)])
    header = ["traffic", "overlapping", "greedy", "end_biased",
              "endbiased_over_hierarchical"]
    save_series("a7_locality.csv", header, rows)
    print(f"\nA7 spatial locality (RMS, budget {BUDGET})")
    print(format_table(header, rows))

    # With locality, hierarchical histograms should look *relatively*
    # better against end-biased than without it.
    assert ratios["cascade"] > ratios["zipf"]

    benchmark.pedantic(lambda: _errors("cascade"), rounds=1, iterations=1)
