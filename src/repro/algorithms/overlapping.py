"""Optimal overlapping partitioning functions (paper Section 3.2.3).

Overlapping functions let bucket subtrees nest (Figure 4); estimation
maps every group to its *closest* selected ancestor.  The dynamic
program therefore carries the closest-selected-ancestor ``j`` as an
extra parameter::

    E[i, B, j] = grperr(i, j)                         if B == 0
               = min( bucket case, non-bucket case )  otherwise

where the bucket case conditions the children on ``j = i`` and spends
one bucket on ``i`` itself.  Crucially — and this is what the greedy
longest-prefix-match heuristic (Section 3.2.6) relies on — the bucket
case is *independent of the enclosing ancestor*, so it is computed once
per node (table ``F``/``E_b`` here) and shared across all ``j``.

Sparse buckets (Section 4.3, Figure 14) are folded in as a base case:
any subtree containing at most one nonzero group is representable
exactly by a single (sparse) bucket, so the DP can cap such subtrees at
one bucket and "start at the upper node of each sparse bucket", exactly
as the paper prescribes.  Disable with ``sparse=False`` to explore the
plain bucket space only.

The root must itself be a bucket node (every identifier needs an
enclosing bucket; see Figures 4-6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import PenaltyMetric
from ..core.hierarchy import PNode, PrunedHierarchy
from ..core.partition import Bucket, OverlappingPartitioning
from ..obs import span
from .base import INF, ConstructionResult, DPContext
from .kernels import knapsack_merge, knapsack_merge_batch

__all__ = ["build_overlapping", "OverlappingDP"]

# Flags recorded for reconstruction.
_NOT_BUCKET = 0
_BUCKET = 1
_SPARSE = 2


@dataclass
class _NodeRecord:
    """Reconstruction state for one pruned node."""

    # Bucket case: split_b[B] = buckets granted to the left child when
    # this node is a bucket and B buckets are spent at/below it.
    split_b: Optional[np.ndarray] = None
    sparse_at: Optional[int] = None  # node id of the single nonzero leaf
    bucket_flag: Optional[np.ndarray] = None  # _BUCKET or _SPARSE per B
    # Per enclosing ancestor j (by pruned-node index):
    flags: Optional[Dict[int, np.ndarray]] = None
    splits_nb: Optional[Dict[int, np.ndarray]] = None
    # Batched-mode equivalents: row i of each block is the table for
    # the ancestor at depth i (ancestors are root-first, so an
    # ancestor's depth is its row).
    flags_block: Optional[np.ndarray] = None
    splits_block: Optional[np.ndarray] = None


class OverlappingDP:
    """One run of the overlapping dynamic program.

    Kept as a class so that the longest-prefix-match greedy heuristic
    can inspect per-bucket approximation errors after the run.
    """

    def __init__(
        self,
        hierarchy: PrunedHierarchy,
        metric: PenaltyMetric,
        budget: int,
        sparse: bool = True,
    ) -> None:
        if budget < 1:
            raise ValueError(f"budget must be at least 1, got {budget}")
        self.hierarchy = hierarchy
        self.metric = metric
        self.budget = budget
        self.sparse = sparse
        self.ctx = DPContext(hierarchy, metric)
        self.records: List[_NodeRecord] = [
            _NodeRecord() for _ in hierarchy.nodes
        ]
        self._caps = self._compute_caps()
        # Full tables E[p, ., j] per node, keyed by node index then by
        # ancestor index; entries are freed as soon as the parent has
        # consumed them (the paper's Section 4.4 space optimization —
        # reconstruction uses the retained choice arrays instead).
        self._tables: Dict[int, Dict[int, np.ndarray]] = {}
        # Ancestor state maintained along the recursion: entry d holds
        # the pruned index / density of the ancestor at depth d, so the
        # first ``depth`` entries are the current node's strict
        # ancestors root-first (no per-node list rebuilding).
        n_nodes = len(hierarchy.nodes)
        self._anc_idx = np.empty(n_nodes + 1, dtype=np.int64)
        self._anc_dens = np.empty(n_nodes + 1, dtype=np.float64)
        self._depths = np.zeros(n_nodes, dtype=np.int64)
        with span(
            "dp.overlapping.solve", budget=budget,
            nodes=len(hierarchy.nodes), sparse=sparse,
        ) as sp:
            root_bucket_table = self._solve(hierarchy.root, 0)
            sp.annotate(
                sparse_collapses=sum(
                    1 for r in self.records if r.sparse_at is not None
                ),
            )
        self.root_table = root_bucket_table

    # ------------------------------------------------------------------
    def _compute_caps(self) -> np.ndarray:
        """Max useful buckets per subtree (tree-knapsack bound)."""
        caps = np.zeros(len(self.hierarchy.nodes), dtype=np.int64)
        for p in self.hierarchy.nodes:  # postorder
            if p.is_leaf or (self.sparse and p.n_nonzero <= 1):
                caps[p.index] = 1
            else:
                caps[p.index] = min(
                    self.budget, caps[p.left.index] + caps[p.right.index] + 1
                )
        return caps

    def _single_nonzero_leaf(self, p: PNode) -> Optional[PNode]:
        """The unique nonzero group leaf below ``p`` (requires
        ``p.n_nonzero == 1``)."""
        while not p.is_leaf:
            p = p.left if p.left.n_nonzero == 1 else p.right
        return p if p.kind == "group" else None

    # ------------------------------------------------------------------
    def _solve(self, p: PNode, depth: int) -> np.ndarray:
        """Fill this subtree's tables.

        ``depth`` is the number of strict ancestors; their pruned
        indices / densities are the first ``depth`` entries of
        ``self._anc_idx`` / ``self._anc_dens`` (root-first).  Returns
        the node's *bucket-case* table (used directly at the root); the
        per-ancestor full tables are handed to the caller via
        ``_tables`` on the record.
        """
        rec = self.records[p.index]
        self._depths[p.index] = depth
        cap = int(self._caps[p.index])
        collapse = (not p.is_leaf) and self.sparse and p.n_nonzero <= 1

        if p.is_leaf or collapse:
            # Base: one bucket resolves this subtree exactly — a plain
            # bucket at a leaf, or a sparse bucket over a subtree with
            # at most one nonzero group.
            e_b = np.full(cap + 1, INF)
            e_b[1] = 0.0
            rec.bucket_flag = np.full(cap + 1, _BUCKET, dtype=np.int8)
            if collapse:
                leaf = self._single_nonzero_leaf(p)
                if leaf is not None:
                    rec.sparse_at = leaf.node
                    rec.bucket_flag[1] = _SPARSE
            # One batched grperr over every ancestor density replaces
            # the per-ancestor slice evaluations — the O(log|U|) inner
            # loop of the overlapping DP's base case.
            anc_pens = (
                self.ctx.grperr_many(p, self._anc_dens[:depth])
                if depth
                else ()
            )
            if self.ctx.batched:
                # Batched layout: tables for all ancestors live in one
                # (J, cap + 1) block, row i conditioned on the ancestor
                # at depth i; reconstruction indexes rows by ancestor
                # depth.  Entries match the per-ancestor loop below
                # exactly: e[0] = pen, e[1] = e_b[1].
                e2 = np.empty((depth, cap + 1))
                flags2 = np.zeros(e2.shape, dtype=np.int8)
                if depth:
                    if cap > 1:
                        e2[:, 2:] = INF
                    e2[:, 0] = anc_pens
                    e2[:, 1] = e_b[1]
                    flags2[:, 1] = rec.bucket_flag[1]
                rec.flags_block = flags2
                self._tables[p.index] = e2
                return e_b
            tables = {}
            rec.flags = {}
            for i, pen in enumerate(anc_pens):
                j_idx = int(self._anc_idx[i])
                e = np.full(cap + 1, INF)
                e[0] = pen
                e[1] = min(e[1], e_b[1])
                tables[j_idx] = e
                flags = np.full(cap + 1, _NOT_BUCKET, dtype=np.int8)
                flags[1] = rec.bucket_flag[1]
                rec.flags[j_idx] = flags
            self._tables[p.index] = tables
            return e_b

        self._anc_idx[depth] = p.index
        self._anc_dens[depth] = p.density
        self._solve(p.left, depth + 1)
        self._solve(p.right, depth + 1)
        left_tabs = self._tables[p.left.index]
        right_tabs = self._tables[p.right.index]
        J = depth
        batched = self.ctx.batched
        # In batched mode the child tables are (J + 1, width) blocks:
        # rows [0, J) are conditioned on this node's ancestors and row
        # J on this node itself.
        if batched:
            left_self, right_self = left_tabs[J], right_tabs[J]
        else:
            left_self, right_self = left_tabs[p.index], right_tabs[p.index]

        # Bucket case: one bucket on p, the rest split among children
        # which now see p as their closest selected ancestor.
        merged, split = knapsack_merge(
            left_self, right_self, cap - 1, self.metric.combine
        )
        # size - 1 <= len(merged), so every entry past 0 comes from the
        # merge — no inf prefill needed beyond entry 0.
        size_b = min(cap, len(merged)) + 1
        e_b = np.empty(size_b)
        e_b[0] = INF
        e_b[1:] = merged[: size_b - 1]
        rec.split_b = split
        rec.bucket_flag = np.full(size_b, _BUCKET, dtype=np.int8)

        # Non-bucket case per enclosing ancestor.
        if batched:
            # One stacked merge replaces the per-ancestor loop below.
            # Each row of the batch is the same merge the loop would
            # run, and the bucket-case overlay applies the identical
            # strict-improvement comparison — results are bit-for-bit
            # unchanged.
            merged2, split2 = knapsack_merge_batch(
                left_tabs[:J], right_tabs[:J], cap, self.metric.combine
            )
            size = min(cap, merged2.shape[1] - 1) + 1
            e2 = merged2[:, :size]
            flags2 = np.zeros(e2.shape, dtype=np.int8)
            lim = min(size, size_b)
            better2 = e_b[:lim] < e2[:, :lim]
            np.copyto(e2[:, :lim], e_b[:lim], where=better2)
            np.copyto(flags2[:, :lim], rec.bucket_flag[:lim], where=better2)
            rec.flags_block = flags2
            rec.splits_block = split2
            self._tables[p.index] = e2
            del self._tables[p.left.index]
            del self._tables[p.right.index]
            return e_b
        rec.flags = {}
        rec.splits_nb = {}
        tables = {}
        for i in range(depth):
            j_idx = int(self._anc_idx[i])
            merged_nb, split_nb = knapsack_merge(
                left_tabs[j_idx], right_tabs[j_idx], cap,
                self.metric.combine,
            )
            size = min(cap, len(merged_nb) - 1) + 1
            e = np.full(size, INF)
            e[:size] = merged_nb[:size]
            flags = np.full(size, _NOT_BUCKET, dtype=np.int8)
            lim = min(size, len(e_b))
            better = e_b[:lim] < e[:lim]
            e[:lim][better] = e_b[:lim][better]
            flags[:lim][better] = rec.bucket_flag[:lim][better]
            tables[j_idx] = e
            rec.flags[j_idx] = flags
            rec.splits_nb[j_idx] = split_nb
        self._tables[p.index] = tables
        # Child tables are no longer needed; free the bulky arrays.
        del self._tables[p.left.index]
        del self._tables[p.right.index]
        return e_b

    # ------------------------------------------------------------------
    # Solution reconstruction
    # ------------------------------------------------------------------
    def buckets_for_budget(self, b: int) -> List[Bucket]:
        """Materialize the optimal bucket set for budget ``b``."""
        out: List[Bucket] = []
        b = max(1, min(b, len(self.root_table) - 1))
        with span("dp.overlapping.collect", budget=b) as sp:
            self._collect_bucket(self.hierarchy.root, b, out)
            sp.annotate(buckets=len(out))
        return out

    def _collect_bucket(self, p: PNode, b: int, out: List[Bucket]) -> None:
        """Expand the bucket case at ``p`` with ``b`` buckets."""
        rec = self.records[p.index]
        b = min(b, len(rec.bucket_flag) - 1)
        if rec.bucket_flag[b] == _SPARSE or (
            b == 1 and rec.sparse_at is not None
        ):
            out.append(Bucket(p.node, sparse_group_node=rec.sparse_at))
            return
        out.append(Bucket(p.node))
        if p.is_leaf or rec.split_b is None or b <= 1:
            return
        c = int(rec.split_b[b - 1])
        self._collect(p.left, c, p.index, out)
        self._collect(p.right, b - 1 - c, p.index, out)

    def _collect(self, p: PNode, b: int, j_idx: int, out: List[Bucket]) -> None:
        """Expand the full table entry E[p, b, j]."""
        if b <= 0:
            return
        rec = self.records[p.index]
        if rec.flags_block is not None:
            # Batched mode: the ancestor's depth is its row in the
            # blocks (ancestors are stacked root-first).
            row = int(self._depths[j_idx])
            flags = rec.flags_block[row]
        else:
            flags = rec.flags[j_idx]
        b = min(b, len(flags) - 1)
        if flags[b] != _NOT_BUCKET:
            self._collect_bucket(p, b, out)
            return
        if rec.flags_block is not None:
            c = int(rec.splits_block[row][b])
        else:
            c = int(rec.splits_nb[j_idx][b])
        self._collect(p.left, c, j_idx, out)
        self._collect(p.right, b - c, j_idx, out)


def build_overlapping(
    hierarchy: PrunedHierarchy,
    metric: PenaltyMetric,
    budget: int,
    sparse: bool = True,
) -> ConstructionResult:
    """Construct the optimal overlapping partitioning function.

    See :class:`OverlappingDP` for the algorithm; the returned curve
    covers every budget up to ``budget`` from the single run.
    """
    dp = OverlappingDP(hierarchy, metric, budget, sparse=sparse)
    curve = np.full(budget + 1, INF)
    upto = min(budget, len(dp.root_table) - 1)
    curve[1 : upto + 1] = dp.ctx.finalize_curve(dp.root_table[1 : upto + 1])
    best = INF
    for b in range(1, budget + 1):
        best = min(best, curve[b])
        curve[b] = best

    def make_function(b: int) -> OverlappingPartitioning:
        return OverlappingPartitioning(
            hierarchy.domain, dp.buckets_for_budget(b)
        )

    return ConstructionResult(
        make_function=make_function,
        curve=curve,
        budget=budget,
        stats={"nodes": float(len(hierarchy.nodes))},
    )
