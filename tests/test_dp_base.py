"""Tests for the shared DP machinery (knapsack merge, grperr)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import PrunedHierarchy, get_metric
from repro.algorithms.base import INF, ConstructionResult, DPContext, knapsack_merge

from helpers import random_instance

arrays = st.lists(
    st.one_of(st.floats(min_value=0, max_value=100), st.just(INF)),
    min_size=1, max_size=8,
)


def brute_merge(a, b, cap, combine):
    size = min(cap, len(a) + len(b) - 2) + 1
    out = np.full(size, INF)
    for c, av in enumerate(a):
        for d, bv in enumerate(b):
            if c + d >= size or av == INF or bv == INF:
                continue
            v = max(av, bv) if combine == "max" else av + bv
            out[c + d] = min(out[c + d], v)
    return out


@settings(max_examples=120, deadline=None)
@given(arrays, arrays, st.integers(min_value=0, max_value=12),
       st.sampled_from(["sum", "max"]))
def test_knapsack_matches_brute_force(a, b, cap, combine):
    a, b = np.asarray(a), np.asarray(b)
    got, choice = knapsack_merge(a, b, cap, combine)
    want = brute_merge(a, b, cap, combine)
    assert np.allclose(got, want, equal_nan=True)
    # choices reproduce the values
    for B, c in enumerate(choice):
        if got[B] == INF:
            continue
        c = int(c)
        v = max(a[c], b[B - c]) if combine == "max" else a[c] + b[B - c]
        assert v == pytest.approx(got[B])


def test_knapsack_all_infeasible():
    out, choice = knapsack_merge(np.array([INF]), np.array([INF, 1.0]), 5, "sum")
    assert out[0] == INF
    assert np.all(choice[out == INF] == -1)


class TestDPContext:
    def test_rejects_generic_metric(self, small_hierarchy):
        class NotPenalty:
            pass

        with pytest.raises(TypeError):
            DPContext(small_hierarchy, NotPenalty())

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("mname", ["rms", "average", "max_relative"])
    def test_grperr_matches_direct_computation(self, seed, mname):
        """grperr over leaf arrays must equal a direct penalty over the
        raw group counts (zeros included)."""
        _dom, table, counts = random_instance(seed)
        metric = get_metric(mname)
        h = PrunedHierarchy(table, counts)
        ctx = DPContext(h, metric)
        for p in h.nodes:
            d = p.density
            idx = table.group_indices_below(p.node)
            pens = metric.penalty_array(counts[idx], d)
            want = float(pens.sum()) if metric.combine == "sum" else (
                float(pens.max()) if pens.size else 0.0
            )
            assert ctx.grperr(p, d) == pytest.approx(want)

    def test_finalize_full_universe(self, small_hierarchy):
        metric = get_metric("rms")
        ctx = DPContext(small_hierarchy, metric)
        total = 160.0
        want = metric.finalize_total(total, small_hierarchy.root.n_groups)
        assert ctx.finalize(total) == pytest.approx(want)
        assert ctx.finalize(INF) == INF


class TestConstructionResult:
    def test_error_at_and_best_budget(self):
        curve = np.array([INF, 10.0, 4.0, 4.0, 2.0])
        res = ConstructionResult(
            make_function=lambda b: f"fn@{b}", curve=curve, budget=4
        )
        assert res.error_at(1) == 10.0
        assert res.error_at(3) == 4.0
        assert res.best_budget(3) == 2  # earliest budget hitting the min
        assert res.function_at(3) == "fn@2"
        assert res.error_at(0) == INF
        assert res.error_at(99) == 2.0
