"""The Control Center (paper Figure 1, right).

The Control Center owns the full lookup table.  Periodically it runs a
construction algorithm over the recent history of the identifier stream
to (re)build the partitioning function it pushes to the Monitors; for
each incoming window it merges the Monitors' histograms (count
histograms merge by bucket-wise addition) and joins the result with the
key density table to produce the approximate group-by answer.

Rebuilds are memoized: the history counts plus the construction
configuration are fingerprinted, and a small LRU of recently built
partitioning functions answers repeat requests without re-running the
dynamic programs.  Recalibration loops frequently ask for the same
window of warehouse history (drift detectors can fire repeatedly while
traffic is stable), so identical rebuilds are pure waste; a cache hit
still installs the function and bumps the version, exactly as a fresh
build would.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..algorithms.construct import build
from ..algorithms.incremental import (
    memo_compatible,
    memo_config_key,
    new_session,
    supports_incremental,
)
from ..core.compiled import CompiledEstimator
from ..core.errors import DistributiveErrorMetric, PenaltyMetric
from ..core.estimate import reconstruct_estimates
from ..core.groups import GroupTable
from ..core.hierarchy import PrunedHierarchy
from ..core.partition import Histogram, PartitioningFunction
from ..core.wire import WireHistogram, decode_histogram_v2, merge_wire
from ..obs import (
    QualityTracker,
    WindowQuality,
    get_journal,
    get_registry,
    get_tracer,
    span,
)
from .kernels import stream_kernel_mode
from .monitor import HistogramMessage

__all__ = ["ControlCenter", "DecodedWindow", "STALE_POLICIES"]

#: How :meth:`ControlCenter.decode_window` treats histograms built with
#: a stale partitioning function:
#:
#: * ``"strict"`` — raise (the pre-fault-era contract; right when the
#:   fleet is supposed to be version-homogeneous).
#: * ``"quarantine"`` — set stale histograms aside (their bucket layout
#:   does not match the current function, so they cannot be merged) and
#:   decode from the current-version ones as-is.
#: * ``"rescale"`` — quarantine stale histograms, then rescale the
#:   estimates by observed-monitor coverage: with ``r`` of ``m``
#:   expected monitors reporting and traffic split uniformly, the
#:   merged histogram saw roughly ``r/m`` of the window's traffic, so
#:   estimates are divided by ``r/m``.
STALE_POLICIES = ("strict", "quarantine", "rescale")


@dataclass(frozen=True)
class DecodedWindow:
    """One window's decode outcome plus its degradation accounting."""

    #: Per-group estimates (coverage-rescaled under the ``rescale``
    #: policy).
    estimates: np.ndarray
    #: Bucket-wise merge of the histograms that were actually used.
    merged: Histogram
    #: Distinct monitors whose histograms contributed to the decode.
    monitors_reporting: int
    #: Monitors that were expected to report this window.
    expected_monitors: int
    #: Redundant copies discarded by ``(monitor, window, version)`` dedup.
    duplicates_dropped: int
    #: Histograms quarantined for carrying a stale function version.
    stale_messages: int
    #: ``monitors_reporting / expected_monitors`` (0.0 when nothing was
    #: expected).
    coverage: float
    #: Nonzero buckets across the used histograms (decode-time cost).
    nonzero_buckets: int
    #: Online quality signals for this window (``None`` when neither
    #: metrics nor the journal are enabled — the disabled path stays
    #: strictly no-op).
    quality: Optional[WindowQuality] = None


class ControlCenter:
    """Builds partitioning functions and decodes histogram streams."""

    def __init__(
        self,
        table: GroupTable,
        metric: PenaltyMetric,
        algorithm: str = "lpm_greedy",
        budget: int = 100,
        cache_size: int = 8,
        stale_policy: str = "strict",
        incremental: bool = False,
        shared_cache=None,
        **builder_options,
    ) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        if stale_policy not in STALE_POLICIES:
            raise ValueError(
                f"stale_policy must be one of {STALE_POLICIES}, "
                f"got {stale_policy!r}"
            )
        self.table = table
        self.metric = metric
        self.algorithm = algorithm
        self.budget = budget
        #: Mixed-version decode policy (see :data:`STALE_POLICIES`).
        self.stale_policy = stale_policy
        self.builder_options = builder_options
        self.function: Optional[PartitioningFunction] = None
        self.function_version = -1
        #: Max memoized partitioning functions (0 disables the cache).
        self.cache_size = cache_size
        self._function_cache: OrderedDict[bytes, PartitioningFunction] = (
            OrderedDict()
        )
        #: Subtree-memoized incremental rebuilds (ROADMAP item 2): when
        #: on, each DP rebuild re-solves only the subtrees whose counts
        #: changed since the previous build and splices the rest from
        #: the curve memo.  Results are bit-identical to full rebuilds;
        #: the flag only changes how much of the sweep is re-run.  An
        #: exact-fingerprint LRU hit still short-circuits everything,
        #: including the memo refresh.
        self.incremental = bool(incremental) and supports_incremental(
            algorithm, builder_options
        )
        self._curve_memo = None
        #: Cross-tenant cache (:class:`repro.serving.SharedServingCache`
        #: or anything with its ``get_function``/``put_function``/
        #: ``get_memo``/``put_memo`` surface).  Keyed by the table
        #: fingerprint *plus* the rebuild fingerprint, so tenants with
        #: identical group tables, history counts and configuration
        #: reuse each other's DP work; ``None`` keeps every tenant's
        #: work private.
        self.shared_cache = shared_cache
        #: Online quality bookkeeping (drift reference per function
        #: version); consulted by :meth:`decode_window` when metrics or
        #: the event journal are live.
        self.quality = QualityTracker()

    # -- function construction -------------------------------------------
    def _fingerprint(self, counts: np.ndarray) -> bytes:
        """Cache key for a rebuild: the exact history counts plus every
        configuration knob that influences construction."""
        digest = hashlib.blake2b(digest_size=16)
        digest.update(counts.tobytes())
        config = (
            self.algorithm,
            self.budget,
            repr(self.metric),
            sorted(self.builder_options.items()),
        )
        digest.update(repr(config).encode("utf-8"))
        return digest.digest()

    def rebuild_function(
        self, history_counts: Sequence[float]
    ) -> PartitioningFunction:
        """(Re)build the partitioning function from past per-group
        counts (typically loaded from the warehouse of Monitor logs).

        Identical requests (same counts, same configuration) are served
        from the LRU cache without re-running construction; hits and
        misses are counted in the metrics registry.  The function
        version advances either way — Monitors must still reinstall,
        because a version only certifies which function a histogram was
        built against, not how the Control Center obtained it.
        """
        counts = np.asarray(history_counts, dtype=np.float64)
        registry = get_registry()
        key: Optional[bytes] = None
        if self.cache_size > 0 or self.shared_cache is not None:
            key = self._fingerprint(counts)
        if self.cache_size > 0 and key is not None:
            cached = self._function_cache.get(key)
            if cached is not None:
                self._function_cache.move_to_end(key)
                self.function = cached
                self.function_version += 1
                self._journal_rebuild(cached, cache="hit")
                if registry.enabled:
                    registry.counter("control.rebuilds").inc()
                    registry.counter("control.rebuild.cache.hits").inc()
                    registry.gauge("control.function.buckets").set(
                        cached.num_buckets
                    )
                    registry.gauge("control.function.bits").set(
                        cached.size_bits()
                    )
                return cached
        if self.shared_cache is not None and key is not None:
            shared = self.shared_cache.get_function(
                self.table.fingerprint(), key
            )
            if shared is not None:
                # Another tenant (same table, counts and configuration)
                # already ran this DP; adopt its function.  It enters
                # the local LRU too, so repeat recalibrations stay
                # process-local.
                if self.cache_size > 0:
                    self._function_cache[key] = shared
                    while len(self._function_cache) > self.cache_size:
                        self._function_cache.popitem(last=False)
                self.function = shared
                self.function_version += 1
                self._journal_rebuild(shared, cache="shared")
                if registry.enabled:
                    registry.counter("control.rebuilds").inc()
                    registry.counter(
                        "control.rebuild.cache.shared_hits"
                    ).inc()
                    registry.gauge("control.function.buckets").set(
                        shared.num_buckets
                    )
                    registry.gauge("control.function.bits").set(
                        shared.size_bits()
                    )
                return shared
        inc_stats: Optional[Dict[str, float]] = None
        with span(
            "control.rebuild", algorithm=self.algorithm, budget=self.budget,
        ) as sp:
            hierarchy = PrunedHierarchy(self.table, counts)
            session = None
            if self.incremental:
                if self._curve_memo is None and self.shared_cache is not None:
                    # Cold start: seed from a config-compatible memo
                    # another tenant with the same table left behind.
                    candidate = self.shared_cache.get_memo(
                        self.table.fingerprint(),
                        memo_config_key(
                            self.algorithm, self.metric, self.budget,
                            self.builder_options,
                        ),
                    )
                    if memo_compatible(
                        candidate, self.algorithm, self.metric,
                        self.budget, self.builder_options,
                    ):
                        self._curve_memo = candidate
                session = new_session(
                    self.algorithm, hierarchy, self.metric, self.budget,
                    self._curve_memo, **self.builder_options,
                )
            result = build(
                self.algorithm, hierarchy, self.metric, self.budget,
                memo=session, **self.builder_options,
            )
            self.function = result.function_at(self.budget)
            if session is not None:
                self._curve_memo = session.finish()
                if self.shared_cache is not None:
                    self.shared_cache.put_memo(
                        self.table.fingerprint(),
                        self._curve_memo.config,
                        self._curve_memo,
                    )
                inc_stats = session.stats()
                sp.annotate(
                    dirty_subtrees=inc_stats["dirty_subtrees"],
                    reused_fraction=inc_stats["reused_fraction"],
                )
            sp.annotate(
                buckets=self.function.num_buckets,
                function_bits=self.function.size_bits(),
            )
        self.function_version += 1
        self._journal_rebuild(
            self.function, cache="miss" if key is not None else "off",
            incremental=inc_stats,
        )
        if key is not None and self.cache_size > 0:
            self._function_cache[key] = self.function
            while len(self._function_cache) > self.cache_size:
                self._function_cache.popitem(last=False)
        if key is not None and self.shared_cache is not None:
            self.shared_cache.put_function(
                self.table.fingerprint(), key, self.function
            )
        if registry.enabled:
            registry.counter("control.rebuilds").inc()
            if key is not None:
                registry.counter("control.rebuild.cache.misses").inc()
            if inc_stats is not None:
                registry.counter("control.rebuild.subtrees.dirty").inc(
                    int(inc_stats["dirty_subtrees"])
                )
                registry.counter("control.rebuild.subtrees.reused").inc(
                    int(inc_stats["reused_subtrees"])
                )
            registry.gauge("control.function.buckets").set(
                self.function.num_buckets
            )
            registry.gauge("control.function.bits").set(
                self.function.size_bits()
            )
        return self.function

    def _journal_rebuild(
        self,
        function: PartitioningFunction,
        cache: str,
        incremental: Optional[Dict[str, float]] = None,
    ) -> None:
        journal = get_journal()
        if journal.enabled:
            extra = {}
            if incremental is not None:
                # Only incremental rebuilds carry these fields, so
                # journals written with the flag off stay byte-identical
                # to previous releases; replay ignores rebuild events
                # either way.
                extra = {
                    "dirty_subtrees": int(incremental["dirty_subtrees"]),
                    "reused_fraction": float(
                        incremental["reused_fraction"]
                    ),
                }
            journal.emit(
                "rebuild",
                version=self.function_version,
                buckets=int(function.num_buckets),
                function_bits=int(function.size_bits()),
                cache=cache,
                **extra,
            )

    # -- decoding ----------------------------------------------------------
    @staticmethod
    def merge_histograms(messages: Sequence[HistogramMessage]) -> Histogram:
        """Merge one window's histograms from all Monitors (count
        aggregates are distributive: bucket-wise sums)."""
        return Histogram.merge(msg.histogram for msg in messages)

    def _merge_and_estimate(self, usable: Sequence[HistogramMessage]):
        """Merge one window's usable histograms and reconstruct the
        per-group estimates.  Under the ``fast`` stream kernel mode the
        reconstruction runs through the compiled gather/divide arrays
        (:class:`~repro.core.compiled.CompiledEstimator`, cached per
        install); estimates are bit-identical either way.

        Messages carrying a v2 wire payload are handled from the bytes
        that actually crossed the link: the ``fast`` path merges the
        payloads at the wire level (:func:`repro.core.wire.merge_wire`)
        and estimates straight off the merged buffer through a
        :class:`~repro.core.wire.WireHistogram` view — no
        :class:`~repro.core.partition.Histogram` is materialized for
        estimation; the ``naive`` path decodes each payload and merges
        the objects.  Both produce bit-identical estimates (wire merge
        accumulates in the same concatenate/unique/bincount order as
        the object merge, and integral wire counters cast exactly)."""
        if not usable:
            return self.merge_histograms(usable), np.zeros(
                len(self.table), dtype=np.float64
            )
        payloads = [m.payload for m in usable]
        if all(p is not None for p in payloads):
            if stream_kernel_mode() == "fast":
                # Query-from-wire: one wire-level merge, then compiled
                # gathers over the merged buffer's zero-copy view.
                view = WireHistogram(merge_wire(payloads))
                estimator = CompiledEstimator.for_pair(
                    self.table, self.function
                )
                return view.to_histogram(), estimator.estimate(view)
            merged = Histogram.merge(
                decode_histogram_v2(p) for p in payloads
            )
            return merged, reconstruct_estimates(
                self.table, self.function, merged
            )
        merged = self.merge_histograms(usable)
        if stream_kernel_mode() == "fast":
            estimator = CompiledEstimator.for_pair(self.table, self.function)
            return merged, estimator.estimate(merged)
        return merged, reconstruct_estimates(self.table, self.function, merged)

    def decode_window(
        self,
        messages: Sequence[HistogramMessage],
        expected_monitors: Optional[int] = None,
        policy: Optional[str] = None,
    ) -> DecodedWindow:
        """Decode one window, tolerant of the imperfect delivery a real
        link produces.

        The pipeline is: deduplicate by ``(monitor, window_index,
        function_version)`` (at-least-once delivery must not double
        count), quarantine stale-version histograms per ``policy``
        (default: the instance's ``stale_policy``), merge and
        reconstruct what remains, and — under ``"rescale"`` — divide
        the estimates by observed-monitor coverage.  An empty usable
        set decodes to all-zero estimates, never an error: total
        message loss is a degraded answer, not a crash.
        """
        if self.function is None:
            raise RuntimeError("no partitioning function built yet")
        policy = self.stale_policy if policy is None else policy
        if policy not in STALE_POLICIES:
            raise ValueError(
                f"stale_policy must be one of {STALE_POLICIES}, "
                f"got {policy!r}"
            )
        seen = set()
        unique: List[HistogramMessage] = []
        for m in messages:
            key = (m.monitor, m.window_index, m.function_version)
            if key in seen:
                continue
            seen.add(key)
            unique.append(m)
        duplicates = len(messages) - len(unique)
        usable = [
            m for m in unique if m.function_version == self.function_version
        ]
        stale = len(unique) - len(usable)
        if stale and policy == "strict":
            raise ValueError(
                f"{stale} histogram(s) built with a stale partitioning "
                f"function (expected version {self.function_version})"
            )
        registry = get_registry()
        if registry.enabled:
            with registry.timer("control.decode.duration").time():
                merged, estimates = self._merge_and_estimate(usable)
        else:
            merged, estimates = self._merge_and_estimate(usable)
        monitors_reporting = len({m.monitor for m in usable})
        if expected_monitors is None:
            expected_monitors = len({m.monitor for m in messages})
        coverage = (
            monitors_reporting / expected_monitors if expected_monitors else 0.0
        )
        if policy == "rescale" and 0.0 < coverage < 1.0:
            estimates = estimates / coverage
        tracer = get_tracer()
        if tracer.enabled:
            # Close each copy's lifecycle trace with its decode fate.
            # Copies decoded here arrived without delay, so the close
            # tick is the message's own window (age 0 in window-time).
            rescaled = policy == "rescale" and 0.0 < coverage < 1.0
            closed = set()
            for m in messages:
                key = (m.monitor, m.window_index, m.function_version)
                if key in closed:
                    outcome = "deduped"
                elif m.function_version != self.function_version:
                    closed.add(key)
                    outcome = "quarantined"
                else:
                    closed.add(key)
                    outcome = "rescaled" if rescaled else "decoded"
                tracer.close(
                    m.monitor, m.window_index, m.function_version,
                    outcome, at_window=m.window_index,
                )
        quality: Optional[WindowQuality] = None
        if registry.enabled or get_journal().enabled:
            # Online quality signals need no ground truth — everything
            # below derives from the merged histogram and the decode
            # accounting.  Skipped entirely on the disabled path.
            quality = self.quality.observe(
                counts=merged.counts,
                unmatched=merged.unmatched,
                num_buckets=self.function.num_buckets,
                version=self.function_version,
                coverage=coverage,
                messages=len(messages),
                duplicates=duplicates,
                stale=stale,
            )
            if registry.enabled:
                for name, value in quality.as_dict().items():
                    registry.gauge(f"quality.{name}").set(value)
        if registry.enabled:
            registry.counter("control.decodes").inc()
            registry.counter("control.decode.messages").inc(len(messages))
            if duplicates:
                registry.counter("control.decode.duplicates").inc(duplicates)
            if stale:
                registry.counter("control.decode.stale").inc(stale)
        return DecodedWindow(
            estimates=estimates,
            merged=merged,
            monitors_reporting=monitors_reporting,
            expected_monitors=expected_monitors,
            duplicates_dropped=duplicates,
            stale_messages=stale,
            coverage=coverage,
            nonzero_buckets=sum(len(m.histogram) for m in usable),
            quality=quality,
        )

    def decode(self, messages: Sequence[HistogramMessage]) -> np.ndarray:
        """Approximate per-group counts for one window (the
        estimates-only view of :meth:`decode_window`)."""
        return self.decode_window(messages).estimates

    def approximate_answer(
        self, messages: Sequence[HistogramMessage]
    ) -> Dict[object, float]:
        """The approximate group-by result keyed by group id (groups
        estimated nonzero only — Section 4.3 notes decode time is
        proportional to these)."""
        estimates = self.decode(messages)
        return {
            self.table.group_ids[i]: float(v)
            for i, v in enumerate(estimates)
            if v > 0
        }

    def error(
        self,
        estimates: np.ndarray,
        actual: Sequence[float],
        metric: Optional[DistributiveErrorMetric] = None,
    ) -> float:
        """Score an approximate answer against the exact one."""
        metric = metric or self.metric
        return metric.evaluate(np.asarray(actual, dtype=np.float64), estimates)
