"""Bit-exactness of the vectorized DP kernels against the seed
reference, across metrics, kernel modes, and randomized hierarchies.

The fast kernels' contract is not "close" — it is *identical*: the
same candidate cells combine with the same single floating-point
operation and ties break the same way, so builders must produce
bit-for-bit equal curves and the very same bucket sets in every mode.
These tests pin that contract down at each layer: the raw merge
kernels, the batched grperr paths, and whole constructions.
"""

import numpy as np
import pytest

from repro import PrunedHierarchy, get_metric
from repro.algorithms import (
    build_nonoverlapping,
    build_overlapping,
    knapsack_merge_reference,
    knapsack_merge_vectorized,
    use_kernel_mode,
)
from repro.algorithms.base import DPContext
from repro.algorithms.kernels import (
    INF,
    _positive_merge,
    _positive_merge_batch,
    knapsack_merge,
    knapsack_merge_batch,
)

from helpers import ALL_METRICS, random_instance

COMBINES = ["sum", "max"]


def _random_table(rng, n, inf_frac=0.3, entry0_inf=True):
    """A DP error table: nonnegative entries, some infeasible."""
    t = rng.random(n) * 10.0
    t[rng.random(n) < inf_frac] = INF
    if entry0_inf and n > 0:
        t[0] = INF
    return t


def _assert_same_merge(got, want):
    out_g, ch_g = got
    out_w, ch_w = want
    assert np.array_equal(out_g, out_w)
    assert np.array_equal(ch_g, ch_w)


@pytest.mark.parametrize("combine", COMBINES)
@pytest.mark.parametrize("seed", range(20))
def test_vectorized_merge_matches_reference(seed, combine):
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 30))
    n = int(rng.integers(1, 30))
    cap = int(rng.integers(1, m + n + 3))
    left = _random_table(rng, m, entry0_inf=bool(rng.integers(2)))
    right = _random_table(rng, n, entry0_inf=bool(rng.integers(2)))
    _assert_same_merge(
        knapsack_merge_vectorized(left, right, cap, combine),
        knapsack_merge_reference(left, right, cap, combine),
    )


@pytest.mark.parametrize("combine", COMBINES)
@pytest.mark.parametrize("m,n", [(150, 120), (256, 40), (101, 101)])
def test_vectorized_merge_transposed_layout(m, n, combine):
    """Problems past the transpose threshold switch candidate layout;
    results must stay identical, including choice tie-breaking."""
    rng = np.random.default_rng(m * 1000 + n)
    left = _random_table(rng, m)
    right = _random_table(rng, n)
    cap = m + n  # wide output => single transposed shot
    _assert_same_merge(
        knapsack_merge_vectorized(left, right, cap, combine),
        knapsack_merge_reference(left, right, cap, combine),
    )


@pytest.mark.parametrize("combine", COMBINES)
@pytest.mark.parametrize("m,n", [(1, 7), (7, 1), (2, 9), (9, 2), (2, 2)])
def test_dispatcher_shortcut_tables(m, n, combine):
    """One- and two-entry child tables take closed-form shortcuts."""
    for seed in range(10):
        rng = np.random.default_rng(seed)
        left = _random_table(rng, m, entry0_inf=bool(rng.integers(2)))
        right = _random_table(rng, n, entry0_inf=bool(rng.integers(2)))
        cap = int(rng.integers(1, m + n + 2))
        with use_kernel_mode("fast"):
            got = knapsack_merge(left, right, cap, combine)
        _assert_same_merge(
            got, knapsack_merge_reference(left, right, cap, combine)
        )


@pytest.mark.parametrize("combine", COMBINES)
@pytest.mark.parametrize("seed", range(10))
def test_batch_merge_matches_reference_rows(seed, combine):
    rng = np.random.default_rng(100 + seed)
    J = int(rng.integers(1, 8))
    m = int(rng.integers(2, 25))
    n = int(rng.integers(2, 25))
    cap = int(rng.integers(1, m + n + 2))
    lefts = np.stack([_random_table(rng, m) for _ in range(J)])
    rights = np.stack([_random_table(rng, n) for _ in range(J)])
    out, choice = knapsack_merge_batch(lefts, rights, cap, combine)
    for j in range(J):
        ref_out, ref_ch = knapsack_merge_reference(
            lefts[j], rights[j], cap, combine
        )
        assert np.array_equal(out[j], ref_out)
        assert np.array_equal(choice[j], ref_ch)


@pytest.mark.parametrize("combine", COMBINES)
def test_batch_merge_tall_transposed(combine):
    rng = np.random.default_rng(7)
    J, m, n = 3, 130, 110
    lefts = np.stack([_random_table(rng, m) for _ in range(J)])
    rights = np.stack([_random_table(rng, n) for _ in range(J)])
    out, choice = knapsack_merge_batch(lefts, rights, m + n, combine)
    for j in range(J):
        ref_out, ref_ch = knapsack_merge_reference(
            lefts[j], rights[j], m + n, combine
        )
        assert np.array_equal(out[j], ref_out)
        assert np.array_equal(choice[j], ref_ch)


@pytest.mark.parametrize("maximum", [False, True])
@pytest.mark.parametrize("seed", range(10))
def test_positive_merge_matches_reference(seed, maximum):
    """The all-finite-tail convolution equals the reference merge of
    the corresponding inf-at-0 tables (choices are the 1-based left
    bucket counts the reference records)."""
    rng = np.random.default_rng(200 + seed)
    m = int(rng.integers(1, 140))
    n = int(rng.integers(1, 140))
    l, r = rng.random(m) * 5, rng.random(n) * 5
    left = np.concatenate(([INF], l))
    right = np.concatenate(([INF], r))
    combine = "max" if maximum else "sum"
    cap = int(rng.integers(2, m + n + 1))
    ref_out, ref_ch = knapsack_merge_reference(left, right, cap, combine)
    size = min(cap, m + n) + 1
    out, choice = _positive_merge(l, r, size - 2, maximum)
    assert np.array_equal(out, ref_out[2:])
    assert np.array_equal(choice, ref_ch[2:])


@pytest.mark.parametrize("maximum", [False, True])
@pytest.mark.parametrize("seed", range(10))
def test_positive_merge_batch_matches_single(seed, maximum):
    rng = np.random.default_rng(300 + seed)
    K = int(rng.integers(1, 9))
    m = int(rng.integers(1, 120))
    n = int(rng.integers(1, 120))
    width = int(rng.integers(1, m + n))
    l = rng.random((K, m)) * 5
    r = rng.random((K, n)) * 5
    out, choice = _positive_merge_batch(l, r, width, maximum)
    for k in range(K):
        o1, c1 = _positive_merge(l[k], r[k], width, maximum)
        assert np.array_equal(out[k], o1)
        assert np.array_equal(choice[k], c1)
    out_nc, choice_nc = _positive_merge_batch(
        l, r, width, maximum, want_choice=False
    )
    assert np.array_equal(out_nc, out)
    assert choice_nc is None


@pytest.mark.parametrize("mname", ALL_METRICS)
@pytest.mark.parametrize("seed", range(6))
def test_grperr_many_matches_grperr(seed, mname):
    _dom, table, counts = random_instance(seed, height_range=(3, 6))
    metric = get_metric(mname)
    h = PrunedHierarchy(table, counts)
    with use_kernel_mode("fast"):
        ctx = DPContext(h, metric)
    rng = np.random.default_rng(seed)
    densities = rng.random(5) * counts.max()
    for node in h.nodes:
        many = ctx.grperr_many(node, densities)
        each = np.array([ctx.grperr(node, float(d)) for d in densities])
        assert np.array_equal(many, each), (mname, node.index)


@pytest.mark.parametrize("mname", ALL_METRICS)
@pytest.mark.parametrize("seed", range(6))
def test_own_errors_match_naive_grperr(seed, mname):
    """The precomputed per-node array equals the naive mode's per-node
    slice evaluation bit for bit."""
    _dom, table, counts = random_instance(seed + 50, height_range=(3, 6))
    metric = get_metric(mname)
    h = PrunedHierarchy(table, counts)
    with use_kernel_mode("naive"):
        naive_ctx = DPContext(h, metric)
        expected = np.array(
            [naive_ctx.grperr_own(p) for p in h.nodes]
        )
    with use_kernel_mode("fast"):
        fast_ctx = DPContext(h, metric)
        got = fast_ctx.own_errors()
    assert np.array_equal(got, expected)


@pytest.mark.parametrize("seed", range(6))
def test_suffstats_grperr_close(seed):
    """RMS declares sufficient statistics; the O(1) path agrees with
    the exact slice evaluation to tight tolerance."""
    _dom, table, counts = random_instance(seed + 80, height_range=(3, 6))
    metric = get_metric("rms")
    h = PrunedHierarchy(table, counts)
    with use_kernel_mode("fast"):
        exact = DPContext(h, metric)
    with use_kernel_mode("suffstats"):
        fast = DPContext(h, metric)
    assert fast.uses_suffstats
    rng = np.random.default_rng(seed)
    densities = rng.random(4) * max(counts.max(), 1.0)
    for node in h.nodes:
        for d in densities:
            a = exact.grperr(node, float(d))
            b = fast.grperr(node, float(d))
            assert b == pytest.approx(a, rel=1e-9, abs=1e-9)


def test_suffstats_falls_back_for_undeclared_metrics():
    """Metrics without a decomposition run the exact path even in
    suffstats mode — results are bit-identical, not merely close."""
    _dom, table, counts = random_instance(3, height_range=(3, 5))
    metric = get_metric("max_relative")
    h = PrunedHierarchy(table, counts)
    with use_kernel_mode("suffstats"):
        ctx = DPContext(h, metric)
    assert not ctx.uses_suffstats
    with use_kernel_mode("fast"):
        exact = DPContext(h, metric)
    for node in h.nodes:
        assert ctx.grperr(node, node.density) == exact.grperr(
            node, node.density
        )


@pytest.mark.parametrize("mname", ALL_METRICS)
def test_finalize_curve_matches_scalar_loop(mname):
    _dom, table, counts = random_instance(9, height_range=(3, 5))
    metric = get_metric(mname)
    h = PrunedHierarchy(table, counts)
    rng = np.random.default_rng(9)
    penalties = rng.random(12) * 100
    penalties[rng.random(12) < 0.25] = INF
    with use_kernel_mode("fast"):
        fast_ctx = DPContext(h, metric)
    with use_kernel_mode("naive"):
        naive_ctx = DPContext(h, metric)
    assert np.array_equal(
        fast_ctx.finalize_curve(penalties),
        naive_ctx.finalize_curve(penalties),
    )


@pytest.mark.parametrize("builder", [build_nonoverlapping, build_overlapping])
@pytest.mark.parametrize("mname", ALL_METRICS)
@pytest.mark.parametrize("seed", range(8))
def test_builders_identical_across_modes(seed, mname, builder):
    """Whole constructions: fast curves and bucket sets equal the
    naive reference exactly, for every metric."""
    _dom, table, counts = random_instance(seed, height_range=(4, 7))
    metric = get_metric(mname)
    budget = 2 + seed % 6
    results = {}
    for mode in ("naive", "fast"):
        h = PrunedHierarchy(table, counts)
        with use_kernel_mode(mode):
            results[mode] = builder(h, metric, budget)
    naive, fast = results["naive"], results["fast"]
    finite = np.isfinite(naive.curve)
    assert np.array_equal(finite, np.isfinite(fast.curve))
    assert np.array_equal(naive.curve[finite], fast.curve[finite])
    for b in range(1, budget + 1):
        fn_naive = naive.function_at(b)
        fn_fast = fast.function_at(b)
        assert {bk.node for bk in fn_naive.buckets} == {
            bk.node for bk in fn_fast.buckets
        }


@pytest.mark.parametrize("seed", range(6))
def test_low_memory_reconstruction_matches_fast(seed):
    """The low-memory multipass reconstruction (which re-runs subtree
    sweeps through the fast kernels) picks the same buckets."""
    _dom, table, counts = random_instance(seed + 30, height_range=(4, 7))
    metric = get_metric("rms")
    budget = 3 + seed % 4
    h = PrunedHierarchy(table, counts)
    with use_kernel_mode("fast"):
        full = build_nonoverlapping(h, metric, budget)
        low = build_nonoverlapping(h, metric, budget, low_memory=True)
    assert np.array_equal(
        np.nan_to_num(full.curve, posinf=-1.0),
        np.nan_to_num(low.curve, posinf=-1.0),
    )
    assert {b.node for b in full.function_at(budget).buckets} == {
        b.node for b in low.function_at(budget).buckets
    }
