"""Windowed registry snapshots and per-window deltas.

A cumulative :class:`~repro.obs.registry.MetricsRegistry` answers "what
has happened so far"; a live operator wants "what happened *this*
window".  This module bridges the two:

* :func:`take_snapshot` freezes the registry's current state into an
  immutable :class:`RegistrySnapshot` (counter/gauge values, histogram
  and timer states keyed by ``name{label=value,...}``).
* :func:`snapshot_delta` turns two snapshots into one time-series
  record: **counters as deltas**, **gauges as levels**, **histograms
  and timers as per-window count/sum/mean plus approximate p50/p90/p99
  quantiles** interpolated from the bucket-count deltas.
* :func:`emit_window_record` does both against the registry's last
  snapshot and appends the record to ``registry.window_series`` — the
  monitoring loop calls it once per decoded window, so a run leaves a
  full per-window telemetry trail behind (served live at
  ``/series.json`` by :mod:`repro.obs.server` and rendered by
  ``repro top``).

Everything here is read-only with respect to the instruments and costs
nothing when the registry is the no-op ``NullRegistry``
(:func:`emit_window_record` returns immediately).

Snapshot-delta record shape (JSON-friendly)::

    {"window": 3, "ts": 12.345,          # seconds since registry epoch
     "counters":  {"system.tuples": 4096.0, ...},          # deltas
     "gauges":    {"quality.coverage": 1.0, ...},          # levels
     "timers":    {"control.decode.duration":
                   {"count": 1, "sum": ..., "mean": ...,
                    "p50": ..., "p90": ..., "p99": ...}},
     "histograms": {...same shape as timers...}}
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from .registry import (
    Counter,
    Gauge,
    HistogramInstrument,
    MetricsRegistry,
    Timer,
)

__all__ = [
    "RegistrySnapshot",
    "take_snapshot",
    "snapshot_delta",
    "emit_window_record",
    "bucket_quantile",
    "instrument_key",
]

#: Quantiles reported for every histogram/timer family per window.
WINDOW_QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50), ("p90", 0.90), ("p99", 0.99),
)


def instrument_key(name: str, labels: Tuple[Tuple[str, str], ...]) -> str:
    """Flat series key for one instrument child:
    ``name`` or ``name{k=v,...}`` (labels already sorted)."""
    if not labels:
        return name
    body = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{body}}}"


@dataclass(frozen=True)
class _HistogramState:
    """Frozen histogram/timer state inside a snapshot."""

    count: int
    sum: float
    bounds: Tuple[float, ...]
    bucket_counts: Tuple[int, ...]
    #: Observation extrema (the instrument's sentinels ±inf when no
    #: observation landed yet) — carried so the cross-process snapshot
    #: merge (:mod:`repro.obs.crossproc`) can pool them losslessly.
    min: float = float("inf")
    max: float = float("-inf")


@dataclass(frozen=True)
class RegistrySnapshot:
    """An immutable point-in-time capture of a registry's instruments.

    The mappings are built once and never mutated; treat them as
    read-only (they are shared between the snapshot and any deltas
    derived from it).
    """

    #: Seconds since the registry's epoch (monotonic clock).
    ts: float
    counters: Dict[str, float]
    gauges: Dict[str, float]
    histograms: Dict[str, _HistogramState]
    #: Keys in ``histograms`` that are timers (durations in seconds).
    timer_keys: FrozenSet[str]


def take_snapshot(registry: MetricsRegistry) -> RegistrySnapshot:
    """Freeze the registry's current instrument values."""
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, _HistogramState] = {}
    timer_keys = set()
    for kind, inst in registry.instruments():
        key = instrument_key(inst.name, inst.labels)
        if isinstance(inst, HistogramInstrument):
            with inst._lock:
                state = _HistogramState(
                    count=inst.count,
                    sum=inst.sum,
                    bounds=tuple(inst.bounds),
                    bucket_counts=tuple(inst.bucket_counts),
                    min=inst.min,
                    max=inst.max,
                )
            histograms[key] = state
            if isinstance(inst, Timer):
                timer_keys.add(key)
        elif isinstance(inst, Counter):
            counters[key] = inst.value
        elif isinstance(inst, Gauge):
            gauges[key] = inst.value
    return RegistrySnapshot(
        ts=time.perf_counter() - registry.epoch,
        counters=counters,
        gauges=gauges,
        histograms=histograms,
        timer_keys=frozenset(timer_keys),
    )


def bucket_quantile(
    bounds: Tuple[float, ...],
    bucket_counts: Tuple[int, ...],
    q: float,
) -> float:
    """Approximate the ``q``-quantile of a bucketed distribution.

    Linear interpolation within the bucket holding the target rank
    (Prometheus ``histogram_quantile`` style); the overflow (+Inf)
    bucket is clamped to the last finite bound.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    total = sum(bucket_counts)
    if total <= 0:
        return 0.0
    rank = q * total
    cum = 0.0
    lo = 0.0
    for i, n in enumerate(bucket_counts):
        hi = bounds[i] if i < len(bounds) else bounds[-1]
        if n > 0 and cum + n >= rank:
            if i >= len(bounds):
                return float(hi)
            fraction = (rank - cum) / n
            return float(lo + (hi - lo) * max(0.0, min(1.0, fraction)))
        cum += n
        lo = hi
    return float(bounds[-1])


def _distribution_delta(
    cur: _HistogramState, prev: Optional[_HistogramState]
) -> Optional[Dict[str, object]]:
    """Per-window view of one histogram/timer family (``None`` when no
    observations landed this window)."""
    prev_count = prev.count if prev is not None else 0
    count = cur.count - prev_count
    if count <= 0:
        return None
    prev_sum = prev.sum if prev is not None else 0.0
    prev_buckets = (
        prev.bucket_counts if prev is not None else (0,) * len(cur.bucket_counts)
    )
    dbuckets = tuple(
        c - p for c, p in zip(cur.bucket_counts, prev_buckets)
    )
    dsum = cur.sum - prev_sum
    entry: Dict[str, object] = {
        "count": count,
        "sum": dsum,
        "mean": dsum / count,
    }
    for label, q in WINDOW_QUANTILES:
        entry[label] = bucket_quantile(cur.bounds, dbuckets, q)
    return entry


def snapshot_delta(
    prev: Optional[RegistrySnapshot],
    cur: RegistrySnapshot,
    window: Optional[int] = None,
) -> Dict[str, object]:
    """One time-series record between two snapshots (``prev`` may be
    ``None`` for the first window: deltas are then absolute values)."""
    record: Dict[str, object] = {
        "window": window,
        "ts": cur.ts,
        "counters": {},
        "gauges": dict(cur.gauges),
        "timers": {},
        "histograms": {},
    }
    counters = record["counters"]
    for key, value in cur.counters.items():
        base = prev.counters.get(key, 0.0) if prev is not None else 0.0
        delta = value - base
        if delta:
            counters[key] = delta
    for key, state in cur.histograms.items():
        entry = _distribution_delta(
            state, prev.histograms.get(key) if prev is not None else None
        )
        if entry is None:
            continue
        section = "timers" if key in cur.timer_keys else "histograms"
        record[section][key] = entry
    return record


def emit_window_record(
    registry: MetricsRegistry, window: int
) -> Optional[Dict[str, object]]:
    """Snapshot the registry, append the delta record for ``window`` to
    ``registry.window_series``, and return it (``None`` when the
    registry is disabled — strictly free on the no-op path)."""
    if not registry.enabled:
        return None
    cur = take_snapshot(registry)
    with registry._lock:
        prev = registry._last_snapshot
        registry._last_snapshot = cur
        record = snapshot_delta(prev, cur, window=window)
        registry.window_series.append(record)
    return record
