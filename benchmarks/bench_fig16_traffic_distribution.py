"""Figure 16: the distribution of trace traffic by source subnet.

The paper plots per-subnet packet counts on a log scale: traffic is
concentrated in a small number of subnets spread across the address
space, with most subnets silent.  This bench regenerates the (scaled)
series and verifies the concentration and sparsity structure.
"""

import numpy as np

from repro.data import TrafficModel, generate_trace

from workloads import figure_workload, format_table, save_series


def test_fig16_distribution(benchmark):
    wl = figure_workload()
    counts = wl.counts

    def regenerate():
        return generate_trace(
            wl.table, 200_000, seed=12, model=TrafficModel()
        )

    benchmark.pedantic(regenerate, rounds=1, iterations=1)

    nonzero = counts[counts > 0]
    order = np.sort(nonzero)[::-1]
    total = counts.sum()
    header = ["statistic", "value"]
    rows = [
        ["groups_total", wl.num_groups],
        ["groups_nonzero", wl.num_nonzero],
        ["packets_total", int(total)],
        ["max_subnet_count", int(order[0])],
        ["median_nonzero_count", float(np.median(nonzero))],
        ["top_1pct_share", float(order[: max(1, len(order) // 100)].sum() / total)],
        ["top_10pct_share", float(order[: max(1, len(order) // 10)].sum() / total)],
    ]
    save_series("fig16_traffic_distribution.csv", header, rows)
    # the log-scale per-subnet series itself (what Figure 16 plots)
    series_rows = [
        [int(i), int(counts[i])] for i in np.nonzero(counts > 0)[0]
    ]
    save_series("fig16_series.csv", ["group_index", "packets"], series_rows)
    print("\nfig16 (traffic by source subnet)")
    print(format_table(header, rows))

    # Structural claims of Figure 16 at our scale:
    assert wl.num_nonzero < wl.num_groups * 0.5    # most subnets silent
    assert order[0] / total > 0.01                 # dominant heavy hitters
    assert float(order[: max(1, len(order) // 10)].sum() / total) > 0.5
    # dynamic range spans orders of magnitude (log-scale plot)
    assert order[0] / order[-1] >= 100


if __name__ == "__main__":
    wl = figure_workload()
    nz = wl.counts[wl.counts > 0]
    print(f"{wl.num_nonzero}/{wl.num_groups} subnets active; "
          f"max={nz.max():.0f} median={np.median(nz):.0f}")
