"""Ablation A8: Haar-wavelet synopses vs. hierarchical histograms.

The paper's related-work section (1.2) argues its histograms have a
simpler bucket concept than Haar coefficients, handle arbitrary (not
just binary) hierarchies, and optimize arbitrary distributive metrics
directly.  This bench adds the classic L2-thresholded wavelet synopsis
to the standard workload comparison to quantify where each stands.
"""

import numpy as np

from repro.algorithms import build_lpm_greedy, build_overlapping
from repro.baselines import build_wavelet

from workloads import BUDGETS, figure_workload, format_table, metric_for, \
    save_series


def test_wavelet_vs_hierarchical(benchmark):
    wl = figure_workload()
    b_max = max(BUDGETS)

    def construct():
        return build_wavelet(wl.table, wl.counts, b_max)

    wavelet = benchmark.pedantic(construct, rounds=1, iterations=1)

    rows = []
    for metric_name in ("rms", "avg_relative"):
        metric = metric_for(metric_name, wl)
        over = build_overlapping(wl.hierarchy, metric, b_max)
        greedy = build_lpm_greedy(
            wl.hierarchy, metric, b_max, curve_budgets=BUDGETS
        )
        for b in BUDGETS:
            rows.append([
                metric_name, b,
                over.error_at(b), greedy.error_at(b),
                wavelet.error(metric, b),
            ])
    header = ["metric", "buckets", "overlapping", "greedy", "wavelet"]
    save_series("a8_wavelet.csv", header, rows)
    print("\nA8 wavelet synopses vs hierarchical histograms")
    print(format_table(header, rows))

    # The RMS-optimal wavelet synopsis should be competitive on RMS;
    # the metric-aware hierarchical histograms should win on the
    # relative metric they actually optimize.
    rel = [r for r in rows if r[0] == "avg_relative" and r[1] == 100]
    assert rel[0][2] <= rel[0][4] + 1e-9  # overlapping <= wavelet
