"""Baseline histograms: the two the paper compares against in
Section 5 — end-biased [Ioannidis & Poosala 1995] and V-Optimal
[Jagadish et al. 1998] — plus the Haar-wavelet synopses its related
work discusses (Section 1.2)."""

from .end_biased import EndBiasedHistogram, build_end_biased
from .v_optimal import VOptimalHistogram, build_v_optimal
from .wavelet import WaveletHistogram, build_wavelet

__all__ = [
    "EndBiasedHistogram",
    "build_end_biased",
    "VOptimalHistogram",
    "build_v_optimal",
    "WaveletHistogram",
    "build_wavelet",
]
