"""Message-lifecycle tracing: conservation, attribution, export.

The tentpole invariant, locked exactly under arbitrary seeded fault
configurations::

    sent copies == delivered + dropped + expired
    delivered   == decoded + rescaled + deduped + quarantined + late

plus: the tracer is strictly opt-in (a run without one is untouched),
its journal events reconstruct into a valid Chrome Trace Event
document with every delivery flow paired, and replay stays
bit-identical on journals carrying the new ``trace.*`` event types.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import UIDDomain, get_metric
from repro.data import TrafficModel, generate_subnet_table
from repro.data.traffic import generate_timestamped_trace
from repro.obs import (
    DELIVERED_OUTCOMES,
    LifecycleTracer,
    MetricsRegistry,
    NULL_TRACER,
    OUTCOMES,
    chrome_trace,
    get_tracer,
    read_journal,
    unpaired_flows,
    use_journal,
    use_registry,
    use_tracer,
)
from repro.obs.journal import EventJournal
from repro.streams import FaultModel, MonitoringSystem, Trace
from repro.streams.replay import replay_system_report


@pytest.fixture(scope="module")
def workload():
    dom = UIDDomain(8)
    table = generate_subnet_table(dom, seed=21)
    ts, uids = generate_timestamped_trace(
        table, 4000, duration=24.0, seed=22,
        model=TrafficModel(active_fraction=0.2, zipf_exponent=1.1),
    )
    trace = Trace(ts, uids)
    return table, trace.slice_time(0, 12), trace.slice_time(12, 24)


def _traced_run(workload, faults, stale_policy="rescale", journal=None):
    table, history, live = workload
    system = MonitoringSystem(
        table, get_metric("rms"), num_monitors=3,
        algorithm="lpm_greedy", budget=25, stale_policy=stale_policy,
        faults=faults,
    )
    tracer = LifecycleTracer()
    with use_journal(journal), use_tracer(tracer):
        system.train(history)
        report = system.run(live, window_width=3.0)
    return system, report, tracer


class TestConservation:
    @settings(max_examples=15, deadline=None)
    @given(
        drop=st.floats(min_value=0.0, max_value=0.5),
        duplicate=st.floats(min_value=0.0, max_value=0.5),
        delay=st.floats(min_value=0.0, max_value=0.5),
        reorder=st.floats(min_value=0.0, max_value=1.0),
        max_delay=st.integers(min_value=1, max_value=4),
        crash=st.floats(min_value=0.0, max_value=0.1),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_every_copy_attributed_exactly_once(
        self, workload, drop, duplicate, delay, reorder, max_delay,
        crash, seed,
    ):
        faults = FaultModel(
            drop=drop, duplicate=duplicate, delay=delay,
            reorder=reorder, max_delay_windows=max_delay,
            crash=crash, seed=seed,
        )
        _system, report, tracer = _traced_run(workload, faults)
        c = tracer.conservation()
        assert tracer.conservation_ok(), c
        assert c["open"] == 0
        assert c["sent"] == c["delivered"] + c["dropped"] + c["expired"]
        assert c["delivered"] == sum(
            c[outcome] for outcome in DELIVERED_OUTCOMES
        )
        # The tracer's books must agree with the report's accounting.
        assert c["expired"] == report.expired_messages
        assert c["late"] == sum(w.late_messages for w in report.windows)
        assert c["deduped"] == sum(
            w.duplicates_dropped for w in report.windows
        )

    def test_delay_reorder_at_watermark_boundary(self, workload):
        """Every surviving copy delayed exactly one window (the decode
        watermark) and reorder-flagged: all deliveries that land before
        the run ends must close as late, never decoded."""
        faults = FaultModel(
            delay=1.0, max_delay_windows=1, reorder=1.0, seed=3,
        )
        _system, report, tracer = _traced_run(workload, faults)
        c = tracer.conservation()
        assert tracer.conservation_ok(), c
        assert c["decoded"] == 0 and c["rescaled"] == 0
        assert c["delivered"] == c["late"]
        assert c["late"] + c["expired"] == c["sent"]
        assert c["late"] > 0  # the boundary case actually exercised

    def test_zero_faults_all_decoded_at_age_zero(self, workload):
        registry = MetricsRegistry()
        with use_registry(registry):
            _system, report, tracer = _traced_run(
                workload, faults=None, stale_policy="strict",
            )
        c = tracer.conservation()
        assert tracer.conservation_ok()
        assert c["sent"] == c["decoded"] == len(report.windows) * 3
        assert all(
            c[o] == 0
            for o in OUTCOMES
            if o != "decoded"
        )
        timer = registry.timer("delivery.age_windows")
        assert timer.count == c["decoded"]
        assert timer.max == 0.0  # clean link: same-window delivery


class TestOptIn:
    def test_default_tracer_is_null(self):
        assert get_tracer() is NULL_TRACER
        assert not NULL_TRACER.enabled
        assert NULL_TRACER.conservation_ok()
        assert NULL_TRACER.expire_open(5) == 0
        assert NULL_TRACER.drain_window_ages() == []

    def test_untraced_run_records_nothing(self, workload):
        table, history, live = workload
        system = MonitoringSystem(
            table, get_metric("rms"), num_monitors=3, budget=25,
            faults=FaultModel(drop=0.2, seed=1),
        )
        system.train(history)
        system.run(live, window_width=3.0)
        assert get_tracer() is NULL_TRACER
        assert NULL_TRACER.sent_copies == 0

    def test_unknown_outcome_rejected(self):
        tracer = LifecycleTracer()
        tracer.sent("m", 0, 0, 0)
        with pytest.raises(ValueError, match="unknown lifecycle outcome"):
            tracer.close("m", 0, 0, "vanished", at_window=0)

    def test_closing_unknown_key_is_noop(self):
        tracer = LifecycleTracer()
        tracer.close("never-sent", 0, 0, "decoded", at_window=0)
        assert tracer.outcomes == {}


class TestJournalAndTrace:
    @pytest.fixture(scope="class")
    def traced_journal(self, workload, tmp_path_factory):
        path = str(tmp_path_factory.mktemp("lifecycle") / "run.journal")
        faults = FaultModel(
            drop=0.2, duplicate=0.2, delay=0.3, max_delay_windows=2,
            reorder=0.5, seed=9,
        )
        _system, report, tracer = _traced_run(
            workload, faults, journal=EventJournal(path),
        )
        return path, report, tracer

    def test_trace_events_journalled(self, traced_journal):
        path, _report, tracer = traced_journal
        events = read_journal(path)
        kinds = {e["event"] for e in events}
        assert {"trace.sent", "trace.closed"} <= kinds
        sent = [e for e in events if e["event"] == "trace.sent"]
        closed = [e for e in events if e["event"] == "trace.closed"]
        assert len(sent) == tracer.sent_copies
        assert len(closed) == len(sent)  # every copy closed exactly once
        for e in sent:
            assert {"monitor", "window", "version", "copy"} <= set(e)
        for e in closed:
            assert e["outcome"] in OUTCOMES
            assert e["age_windows"] == e["at_window"] - e["window"]

    def test_replay_bit_identical_with_tracing(self, traced_journal):
        path, report, _tracer = traced_journal
        replayed = replay_system_report(read_journal(path))
        assert replayed.windows == report.windows
        assert replayed.expired_messages == report.expired_messages
        assert replayed.alerts == report.alerts == []

    def test_chrome_trace_valid_and_paired(self, traced_journal):
        path, _report, tracer = traced_journal
        doc = chrome_trace(read_journal(path))
        # Round-trips as JSON (what `repro trace` writes to disk).
        doc = json.loads(json.dumps(doc))
        assert unpaired_flows(doc) == []
        events = doc["traceEvents"]
        tails = [e for e in events if e.get("ph") == "s"]
        heads = [e for e in events if e.get("ph") == "f"]
        assert len(tails) == len(heads) == tracer.sent_copies
        # One named track per monitor plus the control center.
        names = {
            e["args"]["name"]
            for e in events
            if e.get("ph") == "M" and e.get("name") == "thread_name"
        }
        assert names == {
            "control-center", "monitor-0", "monitor-1", "monitor-2",
        }
        tids = {e["tid"] for e in events}
        assert tids == {0, 1, 2, 3}

    def test_flow_ids_are_deterministic_trace_ids(self, traced_journal):
        path, _report, _tracer = traced_journal
        doc = chrome_trace(read_journal(path))
        for e in doc["traceEvents"]:
            if e.get("ph") in ("s", "t", "f"):
                monitor, window, version, copy = e["id"].split("/")
                assert monitor.startswith("monitor-")
                assert window.startswith("w")
                assert version.startswith("v")
                assert copy.startswith("c")

    def test_chrome_trace_of_untraced_journal_has_no_flows(
        self, workload, tmp_path
    ):
        path = str(tmp_path / "plain.journal")
        table, history, live = workload
        system = MonitoringSystem(
            table, get_metric("rms"), num_monitors=3, budget=25,
        )
        with use_journal(EventJournal(path)):
            system.train(history)
            system.run(live, window_width=3.0)
        doc = chrome_trace(read_journal(path))
        assert unpaired_flows(doc) == []
        assert not any(
            e.get("ph") in ("s", "t", "f") for e in doc["traceEvents"]
        )
        # Decode slices still render on the center track.
        assert any(
            e.get("cat") == "decode" for e in doc["traceEvents"]
        )
