"""Cross-tenant sharing of DP rebuilds and compiled tables.

Two tenants whose group tables, budgets and builder configurations
match byte-for-byte perform byte-for-byte identical dynamic-programming
work.  :class:`SharedServingCache` deduplicates that work across the
:class:`~repro.streams.ControlCenter` instances of a
:class:`~.engine.ServingEngine`:

* **functions** — finished :class:`~repro.core.partition.PartitioningFunction`
  objects keyed by ``(table fingerprint, rebuild fingerprint)``.  The
  rebuild fingerprint (``ControlCenter._fingerprint``) hashes the count
  vector, algorithm, budget, metric and builder options but *not* the
  table, so the table's own BLAKE2b content fingerprint
  (:meth:`~repro.core.groups.GroupTable.fingerprint`) joins the key.
* **memos** — incremental curve memos keyed by ``(table fingerprint,
  config key)``.  Memos self-guard: every subtree entry carries a
  content fingerprint, so a tenant whose counts drifted from the
  donor's simply rebuilds the differing subtrees
  (see :func:`repro.algorithms.incremental.memo_compatible`).
* **canonical tables** — the first :class:`~repro.core.groups.GroupTable`
  instance seen per fingerprint.  The compiled-table caches
  (:meth:`~repro.core.compiled.CompiledEstimator.for_pair`,
  :meth:`~repro.core.compiled.CompiledPartitioner.for_function`) key by
  *object identity*; routing every tenant with an equal table through
  one canonical instance makes those caches hit across tenants.

The cache is in-process and not thread-safe; the serving engine drives
tenants sequentially from the control plane (shard workers never touch
it — they receive finished functions).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

from ..core.groups import GroupTable
from ..core.partition import PartitioningFunction

__all__ = ["SharedServingCache"]


class SharedServingCache:
    """Shared rebuild/memo/compiled-table cache for a tenant fleet.

    Parameters
    ----------
    max_functions:
        LRU bound on retained finished functions (each is a few KB of
        bucket arrays).  Memos are kept one per ``(table, config)`` —
        a newer memo for the same key replaces the older.
    """

    def __init__(self, max_functions: int = 128) -> None:
        if max_functions < 1:
            raise ValueError(
                f"max_functions must be >= 1, got {max_functions}"
            )
        self.max_functions = max_functions
        self._functions: "OrderedDict[Tuple[bytes, bytes], PartitioningFunction]" = (
            OrderedDict()
        )
        self._memos: Dict[Tuple[bytes, tuple], object] = {}
        self._tables: Dict[bytes, GroupTable] = {}
        self.function_hits = 0
        self.function_misses = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.table_hits = 0
        self.table_misses = 0
        #: Counter values already published via :meth:`publish_metrics`
        #: (counters are monotonic, so only the delta is emitted).
        self._published: Dict[str, int] = {}

    # -- canonical tables ---------------------------------------------------
    def canonical_table(self, table: GroupTable) -> GroupTable:
        """The first-seen table instance with this content fingerprint.

        Build tenant systems against the returned instance so the
        identity-keyed compiled caches are shared fleet-wide."""
        fp = table.fingerprint()
        canonical = self._tables.get(fp)
        if canonical is None:
            self.table_misses += 1
            self._tables[fp] = table
            return table
        self.table_hits += 1
        return canonical

    # -- finished functions -------------------------------------------------
    def get_function(
        self, table_fp: bytes, rebuild_fp: bytes
    ) -> Optional[PartitioningFunction]:
        function = self._functions.get((table_fp, rebuild_fp))
        if function is None:
            self.function_misses += 1
            return None
        self._functions.move_to_end((table_fp, rebuild_fp))
        self.function_hits += 1
        return function

    def put_function(
        self,
        table_fp: bytes,
        rebuild_fp: bytes,
        function: PartitioningFunction,
    ) -> None:
        key = (table_fp, rebuild_fp)
        self._functions[key] = function
        self._functions.move_to_end(key)
        while len(self._functions) > self.max_functions:
            self._functions.popitem(last=False)

    # -- incremental curve memos --------------------------------------------
    def get_memo(self, table_fp: bytes, config_key: tuple) -> Optional[object]:
        memo = self._memos.get((table_fp, config_key))
        if memo is None:
            self.memo_misses += 1
        else:
            self.memo_hits += 1
        return memo

    def put_memo(
        self, table_fp: bytes, config_key: tuple, memo: object
    ) -> None:
        self._memos[(table_fp, config_key)] = memo

    # -- reporting ----------------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Hit/miss counters plus current sizes, for benchmarks and the
        engine's journal events."""
        return {
            "function_hits": self.function_hits,
            "function_misses": self.function_misses,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "table_hits": self.table_hits,
            "table_misses": self.table_misses,
            "functions": len(self._functions),
            "memos": len(self._memos),
            "tables": len(self._tables),
        }

    def publish_metrics(self, registry) -> None:
        """Export hit/miss totals as ``serving.cache.*`` counters.

        Idempotent across calls: only the delta since the last publish
        is added, so an engine serving several windows (or several
        engines sharing one cache) can publish after every run without
        inflating the counters.  No-op on a disabled registry — the
        deltas stay pending until a live one is scoped.
        """
        if not registry.enabled:
            return
        values = {
            "serving.cache.function.hits": self.function_hits,
            "serving.cache.function.misses": self.function_misses,
            "serving.cache.memo.hits": self.memo_hits,
            "serving.cache.memo.misses": self.memo_misses,
            "serving.cache.table.hits": self.table_hits,
            "serving.cache.table.misses": self.table_misses,
        }
        for name, total in values.items():
            delta = total - self._published.get(name, 0)
            if delta:
                registry.counter(name).inc(delta)
                self._published[name] = total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"SharedServingCache(functions={s['functions']}, "
            f"memos={s['memos']}, tables={s['tables']}, "
            f"hits={s['function_hits'] + s['memo_hits']})"
        )
