"""Per-process resource profiling: CPU time, RSS, GC activity.

The serving layer runs real work in shard worker *processes*
(:mod:`repro.serving.sharded`), so wall-clock timers in the parent say
nothing about where compute actually burned.  This module samples the
only three resource axes the stdlib can answer portably —

* **CPU time** — ``resource.getrusage(RUSAGE_SELF)`` user/system
  seconds (``os.times()`` when the ``resource`` module is unavailable,
  e.g. Windows);
* **peak RSS** — ``ru_maxrss``, normalized to kilobytes (Linux reports
  KB, macOS bytes);
* **GC pressure** — cumulative collections / collected / uncollectable
  objects summed over the generations of ``gc.get_stats()``.

and exports them as ``proc.*`` gauges.  Samples are *cumulative
process totals*; :func:`resource_delta` turns two samples into a
per-interval reading (CPU and GC as differences, peak RSS kept at the
later sample's level) — that is what shard workers ship per prefetch
batch, because a persistent pool process serves many batches and only
the delta is attributable to one of them.

Everything is opt-in and allocation-light: nothing here runs unless a
caller samples explicitly, and :func:`export_resources` is a no-op on
the disabled registry.
"""

from __future__ import annotations

import gc
import os
import sys
from dataclasses import asdict, dataclass
from typing import Dict

try:  # pragma: no cover - always present on POSIX (the CI platforms)
    import resource as _resource
except ImportError:  # pragma: no cover - Windows
    _resource = None

from .registry import MetricsRegistry

__all__ = [
    "ResourceSample",
    "sample_resources",
    "resource_delta",
    "export_resources",
    "PROC_GAUGES",
]

#: The gauge families :func:`export_resources` writes.
PROC_GAUGES = (
    "proc.cpu.user_seconds",
    "proc.cpu.system_seconds",
    "proc.rss.max_kb",
    "proc.gc.collections",
    "proc.gc.collected",
    "proc.gc.uncollectable",
)


@dataclass(frozen=True)
class ResourceSample:
    """One point-in-time (or per-interval) resource reading."""

    cpu_user_s: float
    cpu_system_s: float
    max_rss_kb: float
    gc_collections: int
    gc_collected: int
    gc_uncollectable: int
    pid: int

    def as_fields(self) -> Dict[str, object]:
        """JSON-safe field dict (for journal events)."""
        fields = asdict(self)
        fields["cpu_user_s"] = round(self.cpu_user_s, 6)
        fields["cpu_system_s"] = round(self.cpu_system_s, 6)
        fields["max_rss_kb"] = round(self.max_rss_kb, 3)
        return fields


def _gc_totals() -> Dict[str, int]:
    totals = {"collections": 0, "collected": 0, "uncollectable": 0}
    get_stats = getattr(gc, "get_stats", None)
    if get_stats is None:  # pragma: no cover - non-CPython
        return totals
    for generation in get_stats():
        for key in totals:
            totals[key] += int(generation.get(key, 0))
    return totals


def sample_resources() -> ResourceSample:
    """Cumulative resource totals for the calling process."""
    if _resource is not None:
        ru = _resource.getrusage(_resource.RUSAGE_SELF)
        cpu_user, cpu_system = float(ru.ru_utime), float(ru.ru_stime)
        max_rss_kb = float(ru.ru_maxrss)
        if sys.platform == "darwin":  # pragma: no cover - macOS: bytes
            max_rss_kb /= 1024.0
    else:  # pragma: no cover - Windows fallback
        times = os.times()
        cpu_user, cpu_system = float(times.user), float(times.system)
        max_rss_kb = 0.0
    totals = _gc_totals()
    return ResourceSample(
        cpu_user_s=cpu_user,
        cpu_system_s=cpu_system,
        max_rss_kb=max_rss_kb,
        gc_collections=totals["collections"],
        gc_collected=totals["collected"],
        gc_uncollectable=totals["uncollectable"],
        pid=os.getpid(),
    )


def resource_delta(
    cur: ResourceSample, prev: ResourceSample
) -> ResourceSample:
    """The resources consumed between two samples of one process.

    CPU and GC counters subtract (clamped at zero — ``os.times`` can
    lose precision); peak RSS is a high-water mark, so the later
    sample's level is kept as-is.
    """
    return ResourceSample(
        cpu_user_s=max(0.0, cur.cpu_user_s - prev.cpu_user_s),
        cpu_system_s=max(0.0, cur.cpu_system_s - prev.cpu_system_s),
        max_rss_kb=cur.max_rss_kb,
        gc_collections=max(0, cur.gc_collections - prev.gc_collections),
        gc_collected=max(0, cur.gc_collected - prev.gc_collected),
        gc_uncollectable=max(
            0, cur.gc_uncollectable - prev.gc_uncollectable
        ),
        pid=cur.pid,
    )


def export_resources(
    registry: MetricsRegistry, sample: ResourceSample, **labels
) -> None:
    """Set the ``proc.*`` gauges from one sample (no-op when the
    registry is disabled).

    The serving layer labels parent-process samples ``shard="parent"``
    and leaves worker samples unlabeled — the snapshot merge
    (:mod:`repro.obs.crossproc`) stamps ``shard=N`` on them, so the
    ``proc.*`` families end up with one series per process either way.
    """
    if not registry.enabled:
        return
    registry.gauge("proc.cpu.user_seconds", **labels).set(sample.cpu_user_s)
    registry.gauge("proc.cpu.system_seconds", **labels).set(
        sample.cpu_system_s
    )
    registry.gauge("proc.rss.max_kb", **labels).set(sample.max_rss_kb)
    registry.gauge("proc.gc.collections", **labels).set(
        sample.gc_collections
    )
    registry.gauge("proc.gc.collected", **labels).set(sample.gc_collected)
    registry.gauge("proc.gc.uncollectable", **labels).set(
        sample.gc_uncollectable
    )
