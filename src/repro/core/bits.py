"""Bit-level readers and writers for the wire formats.

The whole point of the paper's partitioning functions is that they are
*small*: each bucket is a single identifier, sparse buckets pay only an
``O(log log |U|)`` surcharge, and histograms ship one (identifier,
counter) pair per nonzero bucket.  The codecs in
:mod:`repro.core.serialize` realize exactly that size model, and these
helpers provide the MSB-first bit packing they need.
"""

from __future__ import annotations

__all__ = ["BitWriter", "BitReader"]


class BitWriter:
    """Accumulates an MSB-first bit string and renders it as bytes."""

    def __init__(self) -> None:
        self._value = 0
        self._bits = 0

    def write(self, value: int, width: int) -> None:
        """Append ``value`` as exactly ``width`` bits."""
        if width < 0:
            raise ValueError(f"negative width {width}")
        if value < 0 or (width < value.bit_length()):
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._value = (self._value << width) | value
        self._bits += width

    def write_unary_varint(self, value: int, chunk: int = 8) -> None:
        """Append a nonnegative integer in continuation-bit chunks
        (``chunk`` payload bits + 1 continuation bit per group)."""
        if value < 0:
            raise ValueError(f"varint values must be nonnegative: {value}")
        groups = []
        while True:
            groups.append(value & ((1 << chunk) - 1))
            value >>= chunk
            if not value:
                break
        for i, g in enumerate(reversed(groups)):
            cont = 0 if i == len(groups) - 1 else 1
            self.write(cont, 1)
            self.write(g, chunk)

    @property
    def bit_length(self) -> int:
        return self._bits

    def getvalue(self) -> bytes:
        """The accumulated bits, zero-padded to a byte boundary."""
        pad = (-self._bits) % 8
        v = self._value << pad
        return v.to_bytes((self._bits + pad) // 8, "big")


class BitReader:
    """Reads an MSB-first bit string produced by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0
        self._total = len(data) * 8

    def read(self, width: int) -> int:
        """Consume and return the next ``width`` bits."""
        if width < 0:
            raise ValueError(f"negative width {width}")
        if self._pos + width > self._total:
            raise EOFError(
                f"requested {width} bits at offset {self._pos} of "
                f"{self._total}"
            )
        out = 0
        pos = self._pos
        for _ in range(width):
            byte = self._data[pos >> 3]
            bit = (byte >> (7 - (pos & 7))) & 1
            out = (out << 1) | bit
            pos += 1
        self._pos = pos
        return out

    def read_unary_varint(self, chunk: int = 8) -> int:
        """Inverse of :meth:`BitWriter.write_unary_varint`."""
        out = 0
        while True:
            cont = self.read(1)
            out = (out << chunk) | self.read(chunk)
            if not cont:
                return out

    @property
    def bits_remaining(self) -> int:
        return self._total - self._pos
