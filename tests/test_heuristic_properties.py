"""Property-based invariants for the longest-prefix-match heuristics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    GroupTable,
    LongestPrefixMatchPartitioning,
    PrunedHierarchy,
    UIDDomain,
    evaluate_function,
    get_metric,
)
from repro.algorithms import (
    build_lpm_greedy,
    build_lpm_quantized,
    build_overlapping,
)

from helpers import random_cut


@st.composite
def instances(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    height = int(rng.integers(3, 6))
    dom = UIDDomain(height)
    table = GroupTable(dom, random_cut(rng, height))
    counts = rng.integers(0, 50, len(table)).astype(float)
    counts[rng.random(len(table)) < 0.4] = 0.0
    if counts.sum() == 0:
        counts[0] = 10.0
    budget = int(rng.integers(2, 7))
    metric = get_metric(
        ["rms", "average", "avg_relative"][seed % 3]
    )
    return table, counts, PrunedHierarchy(table, counts), budget, metric


@settings(max_examples=25, deadline=None)
@given(instances())
def test_greedy_invariants(data):
    table, counts, hierarchy, budget, metric = data
    res = build_lpm_greedy(hierarchy, metric, budget)
    fn = res.function_at(budget)
    # structural validity
    assert isinstance(fn, LongestPrefixMatchPartitioning)
    assert fn.num_buckets <= budget
    assert hierarchy.root.node in [b.node for b in fn.buckets]
    # honesty: reported error is the measured error of the function
    assert evaluate_function(table, counts, fn, metric) == pytest.approx(
        res.error_at(budget), abs=1e-9
    )
    # monotone curve after monotonization
    finite = res.curve[np.isfinite(res.curve)]
    assert np.all(np.diff(finite) <= 1e-9)


@settings(max_examples=15, deadline=None)
@given(instances())
def test_quantized_invariants(data):
    table, counts, hierarchy, budget, metric = data
    res = build_lpm_quantized(hierarchy, metric, budget, theta=1.0, beam=4)
    fn = res.function_at(budget)
    assert isinstance(fn, LongestPrefixMatchPartitioning)
    assert fn.num_buckets <= budget
    assert evaluate_function(table, counts, fn, metric) == pytest.approx(
        res.error_at(budget), abs=1e-9
    )


@settings(max_examples=15, deadline=None)
@given(instances())
def test_lpm_reinterpretation_never_catastrophic_for_sum_metrics(data):
    """For additive metrics, reinterpreting the overlapping set under
    LPM semantics keeps the same coverage structure — its error stays
    within a constant factor of the overlapping optimum on these small
    instances.  (Max-relative is excluded: Figure 20 shows the greedy
    reinterpretation legitimately explodes there.)"""
    table, counts, hierarchy, budget, metric = data
    if metric.combine == "max":
        return
    over = build_overlapping(hierarchy, metric, budget)
    greedy = build_lpm_greedy(hierarchy, metric, budget)
    oe = over.error_at(budget)
    ge = greedy.error_at(budget)
    if oe == 0:
        assert ge <= max(1e-9, float(counts.max()) * 0.5)
    else:
        assert ge <= oe * 25 + 1e-9
