"""Cross-cutting property-based tests tying the layers together."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Bucket,
    GroupTable,
    LongestPrefixMatchPartitioning,
    NonoverlappingPartitioning,
    OverlappingPartitioning,
    PrunedHierarchy,
    UIDDomain,
    evaluate_function,
    get_metric,
    histogram_from_group_counts,
    reconstruct_estimates,
)
from repro.core.serialize import decode_function, encode_function

from helpers import random_cut


@st.composite
def instances(draw):
    """A random (table, counts) pair over a small domain."""
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    height = int(rng.integers(2, 6))
    dom = UIDDomain(height)
    table = GroupTable(dom, random_cut(rng, height))
    counts = rng.integers(0, 40, len(table)).astype(float)
    counts[rng.random(len(table)) < 0.4] = 0.0
    return table, counts, rng


def _expand_uids(table, counts):
    """A uid stream realizing exactly the given group counts (each
    group's tuples at its range start)."""
    out = []
    for i, c in enumerate(counts):
        out.extend([int(table.starts[i])] * int(c))
    return np.asarray(out, dtype=np.int64)


def _random_nested_buckets(table, rng, sparse=False):
    """A random bucket set containing the all-groups ancestor."""
    top = int(table.nodes[0])
    for g in table.nodes.tolist()[1:]:
        top = UIDDomain.lca(top, int(g))
    nodes = {top}
    candidates = set()
    for g in table.nodes.tolist():
        candidates.add(int(g))
        candidates.update(
            a for a in UIDDomain.ancestors(int(g))
            if UIDDomain.is_ancestor(top, a)
        )
    candidates.discard(top)
    for node in candidates:
        if rng.random() < 0.3:
            nodes.add(node)
    return [Bucket(n) for n in sorted(nodes)]


@settings(max_examples=40, deadline=None)
@given(instances())
def test_uid_level_and_count_level_histograms_agree(data):
    """Building a histogram from raw identifiers and from exact group
    counts must agree for every semantics (buckets sit above groups)."""
    table, counts, rng = data
    uids = _expand_uids(table, counts)
    for cls in (OverlappingPartitioning, LongestPrefixMatchPartitioning):
        fn = cls(table.domain, _random_nested_buckets(table, rng))
        from_counts = histogram_from_group_counts(table, counts, fn)
        from_uids = fn.build_histogram(uids)
        assert from_uids.counts == pytest.approx(from_counts.counts)
        assert from_uids.unmatched == pytest.approx(from_counts.unmatched)


def _random_cut_above_groups(table, rng):
    """A random covering cut that never descends below a group node."""
    group_set = set(table.nodes.tolist())
    out = []
    stack = [1]
    while stack:
        node = stack.pop()
        if node in group_set or rng.random() < 0.4:
            out.append(node)
        else:
            stack.extend(UIDDomain.children(node))
    return out


@settings(max_examples=40, deadline=None)
@given(instances())
def test_mass_conservation_for_covering_cuts(data):
    """A covering nonoverlapping cut loses no mass in reconstruction."""
    table, counts, rng = data
    cut = _random_cut_above_groups(table, rng)
    fn = NonoverlappingPartitioning(table.domain, [Bucket(n) for n in cut])
    hist = histogram_from_group_counts(table, counts, fn)
    est = reconstruct_estimates(table, fn, hist)
    assert est.sum() == pytest.approx(counts.sum())


@settings(max_examples=40, deadline=None)
@given(instances())
def test_lpm_reconstruction_conserves_mass(data):
    """Longest-prefix-match functions whose buckets enclose all groups
    also conserve mass (counts are net of holes, populations too)."""
    table, counts, rng = data
    fn = LongestPrefixMatchPartitioning(
        table.domain, _random_nested_buckets(table, rng)
    )
    hist = histogram_from_group_counts(table, counts, fn)
    est = reconstruct_estimates(table, fn, hist)
    assert est.sum() == pytest.approx(counts.sum())


@settings(max_examples=40, deadline=None)
@given(instances())
def test_wire_roundtrip_preserves_behaviour(data):
    """encode/decode preserves not just structure but *behaviour*:
    the decoded function yields identical errors."""
    table, counts, rng = data
    fn = LongestPrefixMatchPartitioning(
        table.domain, _random_nested_buckets(table, rng)
    )
    out = decode_function(encode_function(fn))
    metric = get_metric("average")
    assert evaluate_function(table, counts, out, metric) == pytest.approx(
        evaluate_function(table, counts, fn, metric)
    )


@settings(max_examples=25, deadline=None)
@given(instances())
def test_exact_window_zero_error_with_full_resolution(data):
    """With one bucket per group (plus root), longest-prefix-match
    reconstruction is exact."""
    table, counts, _rng = data
    top = int(table.nodes[0])
    for g in table.nodes.tolist()[1:]:
        top = UIDDomain.lca(top, int(g))
    buckets = [Bucket(top)] + [
        Bucket(int(n)) for n in table.nodes.tolist() if int(n) != top
    ]
    fn = LongestPrefixMatchPartitioning(table.domain, buckets)
    err = evaluate_function(table, counts, fn, get_metric("average"))
    assert err == pytest.approx(0.0, abs=1e-12)


@settings(max_examples=25, deadline=None)
@given(instances(), st.integers(min_value=1, max_value=6))
def test_dp_errors_never_negative_and_finite_when_feasible(data, budget):
    table, counts, _rng = data
    from repro.algorithms import build_nonoverlapping, build_overlapping

    h = PrunedHierarchy(table, counts)
    for builder in (build_nonoverlapping, build_overlapping):
        res = builder(h, get_metric("rms"), budget)
        err = res.error_at(budget)
        assert err >= 0.0
        assert np.isfinite(err)
