"""The Monitor-to-Control-Center communication channel.

The whole point of the paper is reducing what flows over this link, so
the simulated channel does byte accounting for every message: histogram
updates upstream, partitioning-function installs downstream, and the
raw-stream baseline (shipping every identifier) for comparison.
"""

from __future__ import annotations

from typing import List

from ..core.domain import UIDDomain
from ..core.partition import PartitioningFunction
from ..obs import get_registry
from .monitor import HistogramMessage

__all__ = ["Channel"]


class Channel:
    """Byte-accounting transport between Monitors and the Control
    Center."""

    def __init__(self, domain: UIDDomain, counter_bits: int = 32) -> None:
        self.domain = domain
        self.counter_bits = counter_bits
        self.messages: List[HistogramMessage] = []
        self.upstream_bytes = 0
        self.downstream_bytes = 0

    def send_histogram(self, message: HistogramMessage) -> HistogramMessage:
        """Monitor -> Control Center."""
        self.messages.append(message)
        size = message.size_bytes(self.domain, self.counter_bits)
        self.upstream_bytes += size
        registry = get_registry()
        if registry.enabled:
            registry.counter("channel.upstream.bytes").inc(size)
            registry.counter("channel.upstream.messages").inc()
            registry.histogram("channel.message.bytes").observe(size)
        return message

    def send_function(self, function: PartitioningFunction) -> None:
        """Control Center -> Monitor (function install)."""
        size = (function.size_bits() + 7) // 8
        self.downstream_bytes += size
        registry = get_registry()
        if registry.enabled:
            registry.counter("channel.downstream.bytes").inc(size)
            registry.counter("channel.downstream.installs").inc()

    @property
    def total_bytes(self) -> int:
        return self.upstream_bytes + self.downstream_bytes

    def raw_stream_bytes(self, num_tuples: int) -> int:
        """What shipping the raw identifiers would have cost."""
        return num_tuples * ((self.domain.height + 7) // 8)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Channel(up={self.upstream_bytes}B, "
            f"down={self.downstream_bytes}B, "
            f"{len(self.messages)} messages)"
        )
