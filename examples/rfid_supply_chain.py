"""Supply-chain RFID monitoring over an arbitrary-fanout hierarchy.

The paper's second motivating domain (Section 1): tag readers stream
EPC-style identifiers; the query breaks reads down by (manufacturer,
product class) — "frozen chickens by wholesaler".  Manager and class
fanouts are not powers of two, so this exercises the Section 4.1
arbitrary-hierarchy machinery: unassigned code space simply becomes
uncovered identifier ranges.

Run:  python examples/rfid_supply_chain.py
"""

import numpy as np

from repro import PrunedHierarchy, evaluate_function, get_metric
from repro.algorithms import build_lpm_greedy, build_overlapping
from repro.data import EPCScheme, generate_epc_population


def main() -> None:
    # 12 manufacturers x 10 product classes x 1024 serials each.
    scheme = EPCScheme(num_managers=12, num_classes=10, serial_bits=10)
    table = scheme.group_table()
    print(f"EPC space: {scheme.domain.num_uids} codes, "
          f"{len(table)} (manager, class) groups "
          f"(covers_domain={table.covers_domain()} — unassigned codes "
          "stay uncovered)")

    # A day of tag reads: big wholesalers dominate.
    reads = generate_epc_population(scheme, 150_000, seed=3,
                                    manager_skew=1.3)
    counts = table.counts_from_uids(reads)
    print(f"reads: {len(reads)}; active groups: "
          f"{int((counts > 0).sum())}/{len(table)}")

    hierarchy = PrunedHierarchy(table, counts)
    metric = get_metric("avg_relative", floor=1.0)
    budget = 16

    for name, result in (
        ("overlapping", build_overlapping(hierarchy, metric, budget)),
        ("greedy LPM", build_lpm_greedy(hierarchy, metric, budget)),
    ):
        fn = result.function_at(budget)
        err = evaluate_function(table, counts, fn, metric)
        print(f"\n[{name}] {fn.num_buckets} buckets, "
              f"avg relative error {err:.3f}")
        # Render a few buckets in supply-chain terms.
        for bucket in fn.buckets[:4]:
            lo, hi = scheme.domain.uid_range(bucket.node)
            m_lo, c_lo, _ = scheme.decode(lo)
            m_hi, c_hi, _ = scheme.decode(hi - 1)
            if (m_lo, c_lo) == (m_hi, c_hi):
                span = f"manager {m_lo}, class {c_lo}"
            elif m_lo == m_hi:
                span = f"manager {m_lo}, classes {c_lo}..{c_hi}"
            else:
                span = f"managers {m_lo}..{m_hi}"
            print(f"  bucket over {span}")

    # The approximate per-wholesaler rollup from the greedy histogram.
    fn = build_lpm_greedy(hierarchy, metric, budget).function_at(budget)
    from repro import histogram_from_group_counts, reconstruct_estimates

    hist = histogram_from_group_counts(table, counts, fn)
    estimates = reconstruct_estimates(table, fn, hist)
    print(f"\nhistogram: {len(hist)} nonzero buckets, "
          f"{hist.size_bytes(scheme.domain)} bytes per window")
    by_manager: dict = {}
    for i, gid in enumerate(table.group_ids):
        manager = str(gid).split("/")[0]
        by_manager.setdefault(manager, [0.0, 0.0])
        by_manager[manager][0] += counts[i]
        by_manager[manager][1] += estimates[i]
    print("per-wholesaler rollup (actual vs estimated reads):")
    for manager, (actual, est) in sorted(
        by_manager.items(), key=lambda kv: -kv[1][0]
    )[:6]:
        print(f"  {manager:>6}: {actual:>8.0f} actual  ~{est:>8.0f} est")


if __name__ == "__main__":
    main()
