"""Message-lifecycle tracing for the monitor→center path.

Every histogram *copy* put on the wire gets a deterministic trace id —
``(monitor, window_index, function_version, copy)`` where ``copy``
numbers the wire transmissions of one send (0 is the original, 1+ are
network duplicates) — and the tracer follows it end to end:

* the :class:`~repro.streams.channel.Channel` reports ``sent`` /
  ``duplicated`` / ``dropped`` / ``delayed`` per copy at send time;
* the :class:`~repro.streams.faults.FaultModel` reports ``reordered``
  copies as it shuffles an arrival window;
* the run loop reports ``delivered`` when a copy reaches the Control
  Center, and :meth:`~repro.streams.control_center.ControlCenter.
  decode_window` **closes** each trace with its decode outcome.

Close outcomes partition every copy exactly once:

========== ===========================================================
outcome    meaning
========== ===========================================================
decoded    merged into the window's estimate
rescaled   merged, in a window whose estimates were coverage-rescaled
deduped    redundant copy discarded by ``(monitor, window, version)``
quarantined carried a stale function version; set aside by policy
late       arrived after its window's decode watermark; discarded
dropped    lost in flight (never reached the Control Center)
expired    still in flight when the run ended
========== ===========================================================

The first five are *delivered* outcomes, which yields the conservation
invariant the tests lock exactly::

    sent copies == delivered + dropped + expired
    delivered   == decoded + rescaled + deduped + quarantined + late

Delivered closes record their **end-to-end age in window-time**
(``close window - send window``) into the ``delivery.age_windows``
timer; every transition is journalled as a ``trace.*`` event (the raw
material of ``repro trace``) and counted as a ``lifecycle.*`` metric.

Plumbing mirrors the registry/journal: a module-level *current* tracer
defaults to a shared no-op :class:`NullTracer`, so the instrumented
paths pay one function call and one attribute check when tracing is
off::

    from repro.obs import LifecycleTracer, use_tracer

    with use_tracer(LifecycleTracer()) as tracer:
        system.run(live, window_width=w)
    assert tracer.conservation_ok()
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple, Union

from .journal import get_journal
from .registry import get_registry

__all__ = [
    "DELIVERED_OUTCOMES",
    "OUTCOMES",
    "LifecycleTracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]

#: Close outcomes meaning "the copy reached the Control Center".
DELIVERED_OUTCOMES = (
    "decoded", "rescaled", "deduped", "quarantined", "late",
)

#: Every close outcome; each copy gets exactly one.
OUTCOMES = DELIVERED_OUTCOMES + ("dropped", "expired")

#: A trace id: (monitor, window_index, function_version) — the message
#: key; the copy index completes the per-wire-transmission identity.
TraceKey = Tuple[str, int, int]

#: Copy status while a trace is open.
_IN_FLIGHT = "in_flight"
_ARRIVED = "arrived"


class LifecycleTracer:
    """Per-copy lifecycle bookkeeping with exact conservation totals."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        #: key -> {copy: status} for traces not yet closed (insertion
        #: order is send order; closes pick the oldest eligible copy).
        self._open: Dict[TraceKey, Dict[int, str]] = {}
        self.sent_copies = 0
        self.outcomes: Dict[str, int] = {}
        #: Delivered-close ages since the last :meth:`drain_window_ages`
        #: (consumed by the SLO engine for per-window quantiles).
        self._window_ages: List[float] = []

    # -- transport-side events (Channel / FaultModel) ----------------------
    def sent(
        self, monitor: str, window: int, version: int, copy: int
    ) -> None:
        """One wire transmission left a Monitor."""
        with self._lock:
            self.sent_copies += 1
            self._open.setdefault((monitor, window, version), {})[copy] = (
                _IN_FLIGHT
            )
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "trace.sent",
                monitor=monitor, window=window, version=version, copy=copy,
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter("lifecycle.sent").inc()

    def duplicated(
        self, monitor: str, window: int, version: int, copy: int
    ) -> None:
        """Copy ``copy`` exists only because the network duplicated the
        send (informational; the copy was separately :meth:`sent`)."""
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "trace.duplicated",
                monitor=monitor, window=window, version=version, copy=copy,
            )

    def dropped(
        self, monitor: str, window: int, version: int, copy: int
    ) -> None:
        """The copy was lost in flight — closes its trace."""
        self._close_copy(
            (monitor, window, version), copy, "dropped", at_window=window,
        )

    def delayed(
        self, monitor: str, window: int, version: int, copy: int, k: int
    ) -> None:
        """The copy will arrive ``k`` windows late (still in flight)."""
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "trace.delayed",
                monitor=monitor, window=window, version=version,
                copy=copy, delay=k,
            )

    def reordered(
        self, monitor: str, window: int, version: int, copy: int
    ) -> None:
        """The copy was shuffled within its arrival window."""
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "trace.reordered",
                monitor=monitor, window=window, version=version, copy=copy,
            )

    def delivered(
        self,
        monitor: str,
        window: int,
        version: int,
        copy: int,
        at_window: int,
    ) -> None:
        """The copy reached the Control Center at tick ``at_window``."""
        with self._lock:
            copies = self._open.get((monitor, window, version))
            if copies is not None and copy in copies:
                copies[copy] = _ARRIVED
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "trace.delivered",
                monitor=monitor, window=window, version=version,
                copy=copy, at_window=at_window,
            )

    # -- decode-side closes ------------------------------------------------
    def close(
        self,
        monitor: str,
        window: int,
        version: int,
        outcome: str,
        at_window: int,
        copy: Optional[int] = None,
    ) -> None:
        """Close one open copy of ``(monitor, window, version)`` with
        its decode outcome.

        Without an explicit ``copy`` the oldest *arrived* open copy is
        closed (copies of one message are bit-identical, so FIFO
        attribution is exact), falling back to the oldest open copy.
        Closing a key the tracer never saw sent is a no-op — decode may
        legitimately be fed messages that bypassed a traced channel.
        """
        if outcome not in OUTCOMES:
            raise ValueError(
                f"unknown lifecycle outcome {outcome!r} "
                f"(known: {', '.join(OUTCOMES)})"
            )
        self._close_copy((monitor, window, version), copy, outcome, at_window)

    def _close_copy(
        self,
        key: TraceKey,
        copy: Optional[int],
        outcome: str,
        at_window: int,
    ) -> None:
        with self._lock:
            copies = self._open.get(key)
            if not copies:
                return
            if copy is None:
                copy = next(
                    (c for c, s in copies.items() if s == _ARRIVED),
                    next(iter(copies)),
                )
            elif copy not in copies:
                return
            del copies[copy]
            if not copies:
                del self._open[key]
            self.outcomes[outcome] = self.outcomes.get(outcome, 0) + 1
            age = at_window - key[1]
            if outcome in DELIVERED_OUTCOMES:
                self._window_ages.append(float(age))
        journal = get_journal()
        if journal.enabled:
            journal.emit(
                "trace.closed",
                monitor=key[0], window=key[1], version=key[2],
                copy=copy, outcome=outcome, at_window=at_window,
                age_windows=age,
            )
        registry = get_registry()
        if registry.enabled:
            registry.counter(f"lifecycle.outcome.{outcome}").inc()
            if outcome in DELIVERED_OUTCOMES:
                registry.timer("delivery.age_windows").observe(float(age))

    def expire_open(self, at_window: int) -> int:
        """Close every still-open trace as ``expired`` (the run ended
        while they were in flight); returns how many were expired."""
        with self._lock:
            pending = [
                (key, copy)
                for key, copies in self._open.items()
                for copy in copies
            ]
        for key, copy in pending:
            self._close_copy(key, copy, "expired", at_window)
        return len(pending)

    # -- accounting --------------------------------------------------------
    @property
    def open_traces(self) -> int:
        with self._lock:
            return sum(len(copies) for copies in self._open.values())

    @property
    def delivered_total(self) -> int:
        return sum(self.outcomes.get(o, 0) for o in DELIVERED_OUTCOMES)

    def conservation(self) -> Dict[str, int]:
        """The invariant's terms: ``sent``, ``delivered`` (with its
        per-outcome split), ``dropped``, ``expired``, ``open``."""
        with self._lock:
            open_count = sum(len(c) for c in self._open.values())
        totals = {
            "sent": self.sent_copies,
            "delivered": self.delivered_total,
            "dropped": self.outcomes.get("dropped", 0),
            "expired": self.outcomes.get("expired", 0),
            "open": open_count,
        }
        totals.update(
            {o: self.outcomes.get(o, 0) for o in DELIVERED_OUTCOMES}
        )
        return totals

    def conservation_ok(self) -> bool:
        """``sent == delivered + dropped + expired`` with no trace left
        open — every copy attributed exactly once."""
        c = self.conservation()
        return (
            c["open"] == 0
            and c["sent"] == c["delivered"] + c["dropped"] + c["expired"]
        )

    def drain_window_ages(self) -> List[float]:
        """Delivered-close ages since the last drain (window-time);
        consumed once per window by the SLO engine."""
        with self._lock:
            ages = self._window_ages
            self._window_ages = []
        return ages


class NullTracer:
    """The disabled tracer: every hook is a no-op."""

    enabled = False
    sent_copies = 0
    outcomes: Dict[str, int] = {}

    def sent(self, *a, **k) -> None:
        pass

    def duplicated(self, *a, **k) -> None:
        pass

    def dropped(self, *a, **k) -> None:
        pass

    def delayed(self, *a, **k) -> None:
        pass

    def reordered(self, *a, **k) -> None:
        pass

    def delivered(self, *a, **k) -> None:
        pass

    def close(self, *a, **k) -> None:
        pass

    def expire_open(self, at_window: int) -> int:
        return 0

    def conservation(self) -> Dict[str, int]:
        return {}

    def conservation_ok(self) -> bool:
        return True

    def drain_window_ages(self) -> List[float]:
        return []


#: The process-wide disabled tracer (the default).
NULL_TRACER = NullTracer()

_current: Union[LifecycleTracer, NullTracer] = NULL_TRACER
_current_lock = threading.Lock()


def get_tracer() -> Union[LifecycleTracer, NullTracer]:
    """The tracer instrumented code currently reports into."""
    return _current


def set_tracer(
    tracer: Optional[Union[LifecycleTracer, NullTracer]]
) -> Union[LifecycleTracer, NullTracer]:
    """Install ``tracer`` as the current sink (``None`` disables);
    returns the previous one."""
    global _current
    with _current_lock:
        previous = _current
        _current = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def use_tracer(
    tracer: Optional[Union[LifecycleTracer, NullTracer]]
) -> Iterator[Union[LifecycleTracer, NullTracer]]:
    """Scope ``tracer`` as the current sink for a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield get_tracer()
    finally:
        set_tracer(previous)
