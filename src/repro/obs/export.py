"""Exporters for a :class:`~repro.obs.registry.MetricsRegistry`.

Three wire formats plus a human-readable summary:

* **JSON-lines** (``.jsonl``) — one record per line; the only format
  ``repro stats`` reads back, and the round-trip format of choice.
* **CSV** — flat table for spreadsheets; labels and span payloads are
  encoded ``k=v;k=v``.
* **Prometheus text** — counters/gauges/histograms in the exposition
  format (names sanitized to ``[a-zA-Z0-9_]``); spans are not emitted
  directly since every span already feeds its ``<name>.duration``
  timer.

Record dictionaries share a common shape across formats::

    {"type": "counter"|"gauge", "name", "labels", "value"}
    {"type": "histogram"|"timer", "name", "labels",
     "count", "sum", "min", "max", "mean"}
    {"type": "span", "name", "parent", "start", "duration",
     "payload", "thread"}
"""

from __future__ import annotations

import csv
import io
import json
import os
import tempfile
from typing import Dict, Iterable, List, Optional

from .registry import (
    Counter,
    Gauge,
    HistogramInstrument,
    MetricsRegistry,
)

__all__ = [
    "registry_records",
    "to_jsonl",
    "to_csv",
    "to_prometheus",
    "write_metrics",
    "load_jsonl",
    "render_summary",
    "render_span_tree",
    "EXPORT_FORMATS",
]

#: ``--metrics-format`` choice -> (renderer, conventional extension).
EXPORT_FORMATS = ("json", "csv", "prom")


def registry_records(registry: MetricsRegistry) -> List[Dict]:
    """Flatten a registry into export records (metrics, then spans)."""
    records: List[Dict] = []
    for kind, inst in registry.instruments():
        labels = dict(inst.labels)
        if isinstance(inst, HistogramInstrument):
            records.append({
                "type": kind,
                "name": inst.name,
                "labels": labels,
                "count": inst.count,
                "sum": inst.sum,
                "min": inst.min if inst.count else 0.0,
                "max": inst.max if inst.count else 0.0,
                "mean": inst.mean,
            })
        elif isinstance(inst, (Counter, Gauge)):
            records.append({
                "type": kind,
                "name": inst.name,
                "labels": labels,
                "value": inst.value,
            })
    for sp in registry.spans:
        records.append({
            "type": "span",
            "name": sp.name,
            "parent": sp.parent,
            "start": sp.start,
            "duration": sp.duration,
            "payload": dict(sp.payload),
            "thread": sp.thread,
        })
    return records


def to_jsonl(registry: MetricsRegistry) -> str:
    lines = [
        json.dumps(record, sort_keys=True, default=str)
        for record in registry_records(registry)
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def _kv(pairs: Dict[str, object]) -> str:
    return ";".join(f"{k}={v}" for k, v in sorted(pairs.items()))


def to_csv(registry: MetricsRegistry) -> str:
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow([
        "type", "name", "labels", "value",
        "count", "sum", "min", "max", "mean",
        "parent", "start", "duration",
    ])
    for r in registry_records(registry):
        if r["type"] == "span":
            writer.writerow([
                "span", r["name"], _kv(r["payload"]), "",
                "", "", "", "", "",
                r["parent"] or "", f"{r['start']:.9f}",
                f"{r['duration']:.9f}",
            ])
        elif r["type"] in ("histogram", "timer"):
            writer.writerow([
                r["type"], r["name"], _kv(r["labels"]), "",
                r["count"], r["sum"], r["min"], r["max"], r["mean"],
                "", "", "",
            ])
        else:
            writer.writerow([
                r["type"], r["name"], _kv(r["labels"]), r["value"],
                "", "", "", "", "", "", "", "",
            ])
    return out.getvalue()


def _prom_name(name: str) -> str:
    return "".join(c if c.isalnum() or c == "_" else "_" for c in name)


def _prom_escape_label(value: str) -> str:
    """Escape a label value per the exposition format: backslash,
    double quote and newline."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_escape_help(text: str) -> str:
    """Escape HELP text per the exposition format (backslash and
    newline only; quotes are legal in HELP)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _prom_labels(labels: Dict[str, str], extra: Dict[str, str] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{_prom_name(k)}="{_prom_escape_label(v)}"'
        for k, v in sorted(merged.items())
    )
    return "{" + body + "}"


def _prom_header(
    lines: List[str], seen: set, name: str, raw_name: str, kind: str
) -> None:
    """Emit ``# HELP`` and ``# TYPE`` exactly once per metric family,
    before its first sample."""
    if name in seen:
        return
    seen.add(name)
    lines.append(
        f"# HELP {name} {_prom_escape_help(f'repro metric {raw_name}')}"
    )
    lines.append(f"# TYPE {name} {kind}")


def to_prometheus(registry: MetricsRegistry) -> str:
    lines: List[str] = []
    typed = set()
    for kind, inst in registry.instruments():
        name = _prom_name(inst.name)
        labels = dict(inst.labels)
        if isinstance(inst, HistogramInstrument):
            _prom_header(lines, typed, name, inst.name, "histogram")
            acc = 0
            for bound, n in zip(inst.bounds, inst.bucket_counts):
                acc += n
                lines.append(
                    f"{name}_bucket"
                    f"{_prom_labels(labels, {'le': repr(float(bound))})}"
                    f" {acc}"
                )
            acc += inst.bucket_counts[-1]
            lines.append(
                f"{name}_bucket{_prom_labels(labels, {'le': '+Inf'})} {acc}"
            )
            lines.append(f"{name}_sum{_prom_labels(labels)} {inst.sum}")
            lines.append(f"{name}_count{_prom_labels(labels)} {inst.count}")
        else:
            prom_kind = "counter" if kind == "counter" else "gauge"
            _prom_header(lines, typed, name, inst.name, prom_kind)
            lines.append(f"{name}{_prom_labels(labels)} {inst.value}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics(registry: MetricsRegistry, path: str, fmt: str = "json") -> None:
    """Render ``registry`` in ``fmt`` (``json``/``csv``/``prom``) to
    ``path``.

    The write is **atomic**: the rendering lands in a temp file in the
    same directory and is moved into place with :func:`os.replace`, so
    a collector tailing the file (or a crash mid-write) never observes
    a torn half-rendered state — which matters for
    :class:`~repro.obs.server.PeriodicMetricsWriter` rewriting the
    same path every few seconds.
    """
    renderers = {"json": to_jsonl, "csv": to_csv, "prom": to_prometheus}
    try:
        renderer = renderers[fmt]
    except KeyError:
        raise ValueError(
            f"unknown metrics format {fmt!r}; known: {', '.join(renderers)}"
        )
    text = renderer(registry)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path) + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as f:
            f.write(text)
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_jsonl(path: str) -> List[Dict]:
    """Parse a JSON-lines metrics file back into export records."""
    records: List[Dict] = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not a JSON-lines metrics file ({exc})"
                )
    return records


def _fmt_num(v: float) -> str:
    if isinstance(v, float) and not v.is_integer():
        return f"{v:.6g}"
    return f"{int(v)}"


def _fmt_seconds(v: float) -> str:
    if v >= 1.0:
        return f"{v:.3f}s"
    if v >= 1e-3:
        return f"{v * 1e3:.3f}ms"
    return f"{v * 1e6:.1f}us"


def render_summary(records: Iterable[Dict]) -> str:
    """Human-readable rollup of export records (``repro stats``)."""
    counters, gauges, dists, spans = [], [], [], []
    for r in records:
        t = r.get("type")
        if t == "counter":
            counters.append(r)
        elif t == "gauge":
            gauges.append(r)
        elif t in ("histogram", "timer"):
            dists.append(r)
        elif t == "span":
            spans.append(r)
    out: List[str] = []

    def name_with_labels(r: Dict) -> str:
        labels = r.get("labels") or {}
        if not labels:
            return r["name"]
        return f"{r['name']}{{{_kv(labels)}}}"

    if counters:
        out.append("counters")
        for r in counters:
            out.append(f"  {name_with_labels(r):<48} {_fmt_num(r['value'])}")
    if gauges:
        out.append("gauges")
        for r in gauges:
            out.append(f"  {name_with_labels(r):<48} {_fmt_num(r['value'])}")
    if dists:
        out.append("distributions")
        for r in dists:
            unit = _fmt_seconds if r["type"] == "timer" else _fmt_num
            out.append(
                f"  {name_with_labels(r):<48} count={r['count']}"
                f" mean={unit(r['mean'])}"
                f" min={unit(r['min'])} max={unit(r['max'])}"
                f" total={unit(r['sum'])}"
            )
    if spans:
        out.append("spans")
        out.extend(render_span_tree(spans))
    if not out:
        return "no metrics recorded\n"
    return "\n".join(out) + "\n"


def render_span_tree(spans: Iterable[Dict]) -> List[str]:
    """Span rollup lines with parent/child indentation.

    Spans are aggregated by name; each name is placed under its
    *first-seen* parent (a name recorded under several parents — e.g.
    ``control.rebuild`` both at train time and inside ``system.run``
    during recalibration — appears once, where it first showed up).
    Names whose parent never appears as a span name render as roots.
    """
    rollup: Dict[str, List[float]] = {}
    order: List[str] = []
    parent_of: Dict[str, Optional[str]] = {}
    for r in spans:
        name = r["name"]
        if name not in rollup:
            rollup[name] = []
            order.append(name)
            parent_of[name] = r.get("parent")
        rollup[name].append(float(r["duration"]))
    children: Dict[str, List[str]] = {}
    roots: List[str] = []
    for name in order:
        parent = parent_of[name]
        if parent is None or parent not in rollup or parent == name:
            roots.append(name)
        else:
            children.setdefault(parent, []).append(name)
    lines: List[str] = []
    seen = set()

    def emit(name: str, depth: int) -> None:
        if name in seen:  # cycle guard (malformed parent chains)
            return
        seen.add(name)
        durs = rollup[name]
        label = "  " * depth + name
        lines.append(
            f"  {label:<48} count={len(durs)}"
            f" total={_fmt_seconds(sum(durs))}"
            f" mean={_fmt_seconds(sum(durs) / len(durs))}"
        )
        for child in children.get(name, ()):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    for name in order:  # anything unreachable (defensive)
        emit(name, 0)
    return lines
