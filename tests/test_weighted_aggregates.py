"""Tests for the sum(value) aggregate extension (the paper notes other
SQL aggregates are a straightforward extension of count(*))."""

import numpy as np
import pytest

from repro import (
    Bucket,
    GroupTable,
    LongestPrefixMatchPartitioning,
    OverlappingPartitioning,
    UIDDomain,
)
from repro.streams import Monitor

DOM = UIDDomain(4)


@pytest.fixture
def table():
    return GroupTable(DOM, [DOM.node(2, p) for p in range(4)])


class TestWeightedCounts:
    def test_counts_from_uids_weighted(self, table):
        uids = [0, 1, 4, 15]
        values = [10.0, 5.0, 2.0, 1.0]
        agg = table.counts_from_uids(uids, values=values)
        assert list(agg) == [15.0, 2.0, 0.0, 1.0]

    def test_uncovered_values_dropped(self):
        t = GroupTable(DOM, [DOM.node(2, 0)])  # covers [0, 4)
        agg = t.counts_from_uids([0, 8], values=[3.0, 99.0])
        assert list(agg) == [3.0]

    def test_shape_mismatch_rejected(self, table):
        with pytest.raises(ValueError):
            table.counts_from_uids([0, 1], values=[1.0])

    def test_unweighted_equals_unit_weights(self, table):
        rng = np.random.default_rng(0)
        uids = rng.integers(0, 16, 200)
        a = table.counts_from_uids(uids)
        b = table.counts_from_uids(uids, values=np.ones(200))
        assert np.array_equal(a, b)


class TestWeightedHistograms:
    def test_lpm_weighted(self):
        fn = LongestPrefixMatchPartitioning(
            DOM, [Bucket(1), Bucket(DOM.node(1, 1))]
        )
        hist = fn.build_histogram([0, 8, 12], values=[5.0, 7.0, 1.0])
        assert hist.get(1) == 5.0
        assert hist.get(DOM.node(1, 1)) == 8.0
        assert hist.total == 13.0

    def test_overlapping_weighted(self):
        fn = OverlappingPartitioning(
            DOM, [Bucket(1), Bucket(DOM.node(1, 1))]
        )
        hist = fn.build_histogram([0, 8], values=[5.0, 7.0])
        assert hist.get(1) == 12.0  # root sees all mass
        assert hist.get(DOM.node(1, 1)) == 7.0

    def test_unmatched_mass(self):
        fn = LongestPrefixMatchPartitioning(DOM, [Bucket(DOM.node(1, 0))])
        hist = fn.build_histogram([0, 8], values=[5.0, 7.0])
        assert hist.unmatched == 7.0

    def test_weight_shape_rejected(self):
        fn = LongestPrefixMatchPartitioning(DOM, [Bucket(1)])
        with pytest.raises(ValueError):
            fn.build_histogram([0, 1], values=[1.0, 2.0, 3.0])

    def test_monitor_weighted_window(self):
        fn = LongestPrefixMatchPartitioning(DOM, [Bucket(1)])
        m = Monitor("m0")
        m.install_function(fn, 0)
        msg = m.process_window(0, [0, 1], values=[100.0, 50.0])
        assert msg.histogram.get(1) == 150.0

    def test_weighted_matches_expansion(self, table):
        """sum(value) over a stream equals count(*) over a stream with
        each tuple repeated value times (integer values)."""
        fn = OverlappingPartitioning(DOM, [Bucket(1), Bucket(DOM.node(1, 0))])
        uids = np.array([0, 5, 9])
        values = np.array([3.0, 2.0, 4.0])
        weighted = fn.build_histogram(uids, values=values)
        expanded = fn.build_histogram(
            np.repeat(uids, values.astype(int))
        )
        assert weighted.counts == pytest.approx(expanded.counts)
