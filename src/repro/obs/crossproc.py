"""Cross-process telemetry: snapshot codec, fan-in merge, shard views.

The sharded serving layer (:mod:`repro.serving.sharded`) builds its
histograms inside worker *processes*; a worker's metrics and journal
events live in that process's memory and would vanish with it.  This
module is the bridge:

* **Worker side** — each shard worker runs a real local
  :class:`~repro.obs.registry.MetricsRegistry` plus an in-memory
  :class:`~repro.obs.journal.BufferJournal`;
  :func:`capture_worker_snapshot` freezes both into one JSON-safe dict
  (a :func:`snapshot_to_wire` registry snapshot + the buffered event
  records + a shard/seq envelope) that rides the existing IPC result
  pipe back to the parent alongside the packed v2 payloads.
* **Parent side** — :func:`merge_worker_snapshots` folds any number of
  worker snapshots into the parent registry/journal
  **deterministically**: snapshots are processed in ``(shard, seq)``
  order, and per snapshot

  - **counters add** (worker registries are fresh per batch, so their
    values are per-batch deltas),
  - **gauges are last-write-by-seq** (a later snapshot of the same
    shard overwrites an earlier one; distinct shards write distinct
    children, so cross-shard order cannot matter),
  - **histogram/timer observation buckets pool** — counts, sums and
    per-bucket tallies add, extrema take min/max — so
    :func:`~repro.obs.snapshots.bucket_quantile` over a merged
    instrument is *exactly* the quantile over the pooled observations'
    buckets (property-tested in ``tests/test_crossproc.py``),

  every merged instrument gaining a ``shard=N`` label.  Buffered
  journal events are re-emitted under the ``shard.worker.*`` namespace
  with ``shard`` / ``worker_seq`` / ``worker_ts`` fields; the parent
  journal assigns fresh gapless sequence ids, and replay ignores the
  namespace, so ``repro replay`` stays byte-identical.

* **Serving views** — :func:`shard_tenant_summary` rolls a registry up
  into per-shard / per-tenant dicts, the document behind the metrics
  server's ``/shards.json`` endpoint and the shards pane of
  ``repro top``.

The wire format is versioned (``"v": 1``) and strictly JSON-safe so it
can cross pickle pipes, files, or sockets unchanged.  Snapshot series
keys are the flat ``name{k=v,...}`` strings of
:func:`~repro.obs.snapshots.instrument_key`;
:func:`parse_instrument_key` is its exact inverse for label values
free of ``,`` ``=`` ``{`` ``}`` (every label this package emits —
monitor, tenant, shard names — satisfies that; the parser raises on
anything else rather than mis-merging).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .journal import BufferJournal
from .registry import HistogramInstrument, MetricsRegistry
from .snapshots import RegistrySnapshot, _HistogramState, take_snapshot

__all__ = [
    "WIRE_SNAPSHOT_VERSION",
    "parse_instrument_key",
    "snapshot_to_wire",
    "snapshot_from_wire",
    "capture_worker_snapshot",
    "merge_snapshot",
    "merge_worker_snapshots",
    "replay_worker_events",
    "worker_resource_events",
    "shard_tenant_summary",
]

#: Version stamp of the worker-snapshot wire dict.
WIRE_SNAPSHOT_VERSION = 1

#: Journal-envelope keys stripped from a buffered record before it is
#: re-emitted in the parent (the parent journal writes fresh ones).
_ENVELOPE = ("seq", "ts", "event")


# -- series-key codec --------------------------------------------------------
def parse_instrument_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`~repro.obs.snapshots.instrument_key`:
    ``"name{k=v,...}"`` → ``(name, {k: v})``.

    Raises ``ValueError`` on malformed keys (unterminated braces, items
    without ``=``) instead of guessing — a mis-parsed label would merge
    a worker series into the wrong parent child.
    """
    brace = key.find("{")
    if brace < 0:
        return key, {}
    if not key.endswith("}"):
        raise ValueError(f"unterminated label block in series key {key!r}")
    name = key[:brace]
    body = key[brace + 1:-1]
    labels: Dict[str, str] = {}
    if body:
        for item in body.split(","):
            label, sep, value = item.partition("=")
            if not sep or not label:
                raise ValueError(
                    f"label item {item!r} in series key {key!r} "
                    f"is not k=v"
                )
            labels[label] = value
    return name, labels


# -- RegistrySnapshot codec --------------------------------------------------
def snapshot_to_wire(snapshot: RegistrySnapshot) -> Dict[str, object]:
    """Encode a :class:`~repro.obs.snapshots.RegistrySnapshot` as a
    JSON-safe dict (exact round trip through
    :func:`snapshot_from_wire`).

    Distribution extrema are ``None`` on the wire while no observation
    landed (JSON has no ±inf) and decode back to the instrument
    sentinels.
    """
    histograms = {}
    for key, state in snapshot.histograms.items():
        histograms[key] = {
            "count": int(state.count),
            "sum": float(state.sum),
            "bounds": list(state.bounds),
            "buckets": list(state.bucket_counts),
            "min": None if state.count == 0 else float(state.min),
            "max": None if state.count == 0 else float(state.max),
        }
    return {
        "ts": float(snapshot.ts),
        "counters": dict(snapshot.counters),
        "gauges": dict(snapshot.gauges),
        "histograms": histograms,
        "timers": sorted(snapshot.timer_keys),
    }


def snapshot_from_wire(doc: Dict[str, object]) -> RegistrySnapshot:
    """Decode :func:`snapshot_to_wire` output (validating shape)."""
    if not isinstance(doc, dict):
        raise ValueError(f"snapshot wire doc must be a dict, got {doc!r}")
    try:
        counters = {str(k): float(v) for k, v in doc["counters"].items()}
        gauges = {str(k): float(v) for k, v in doc["gauges"].items()}
        histograms: Dict[str, _HistogramState] = {}
        for key, entry in doc["histograms"].items():
            count = int(entry["count"])
            histograms[str(key)] = _HistogramState(
                count=count,
                sum=float(entry["sum"]),
                bounds=tuple(float(b) for b in entry["bounds"]),
                bucket_counts=tuple(int(n) for n in entry["buckets"]),
                min=(
                    float("inf")
                    if entry.get("min") is None
                    else float(entry["min"])
                ),
                max=(
                    float("-inf")
                    if entry.get("max") is None
                    else float(entry["max"])
                ),
            )
        timer_keys = frozenset(str(k) for k in doc["timers"])
        ts = float(doc["ts"])
    except (KeyError, TypeError, AttributeError) as exc:
        raise ValueError(f"malformed snapshot wire doc: {exc}") from None
    return RegistrySnapshot(
        ts=ts,
        counters=counters,
        gauges=gauges,
        histograms=histograms,
        timer_keys=timer_keys,
    )


# -- worker capture ----------------------------------------------------------
def capture_worker_snapshot(
    registry: MetricsRegistry,
    journal: object,
    shard: int,
    seq: int,
) -> Dict[str, object]:
    """Freeze one worker batch's telemetry into the wire dict the
    worker returns over the IPC pipe.

    ``journal`` is the worker's :class:`~repro.obs.journal.BufferJournal`
    (any disabled journal contributes no events).  ``seq`` is the
    parent-assigned batch sequence — snapshots merge in ``(shard,
    seq)`` order, which is what makes gauge merging deterministic.
    """
    events: List[Dict] = []
    if isinstance(journal, BufferJournal):
        with journal._lock:
            events = [dict(record) for record in journal.events]
    return {
        "v": WIRE_SNAPSHOT_VERSION,
        "shard": int(shard),
        "seq": int(seq),
        "snapshot": snapshot_to_wire(take_snapshot(registry)),
        "events": events,
    }


def _check_wire(doc: Dict[str, object]) -> None:
    if not isinstance(doc, dict) or doc.get("v") != WIRE_SNAPSHOT_VERSION:
        raise ValueError(
            f"unsupported worker snapshot (want v={WIRE_SNAPSHOT_VERSION}): "
            f"{doc if not isinstance(doc, dict) else doc.get('v')!r}"
        )


# -- parent-side merge -------------------------------------------------------
def merge_snapshot(
    registry: MetricsRegistry,
    snapshot: RegistrySnapshot,
    extra_labels: Optional[Dict[str, str]] = None,
) -> None:
    """Fold one registry snapshot into ``registry``, optionally adding
    labels (the serving layer passes ``{"shard": "N"}``).

    Counters add, gauges overwrite, distributions pool (count / sum /
    per-bucket tallies add, extrema min/max).  Bucket bounds must match
    the existing parent child's — a mismatch raises rather than pooling
    incomparable buckets.  No-op on a disabled registry.
    """
    if not registry.enabled:
        return
    extra = dict(extra_labels or {})

    def resolved(key: str) -> Tuple[str, Dict[str, str]]:
        name, labels = parse_instrument_key(key)
        labels.update(extra)
        return name, labels

    for key, value in sorted(snapshot.counters.items()):
        name, labels = resolved(key)
        registry.counter(name, **labels).inc(value)
    for key, value in sorted(snapshot.gauges.items()):
        name, labels = resolved(key)
        registry.gauge(name, **labels).set(value)
    for key, state in sorted(snapshot.histograms.items()):
        name, labels = resolved(key)
        lookup = (
            registry.timer if key in snapshot.timer_keys
            else registry.histogram
        )
        child = lookup(name, **labels)
        _pool_distribution(child, state)


def _pool_distribution(
    child: HistogramInstrument, state: _HistogramState
) -> None:
    with child._lock:
        if tuple(child.bounds) != tuple(state.bounds):
            raise ValueError(
                f"cannot pool {child.name!r}: bucket bounds differ "
                f"({tuple(child.bounds)} vs {tuple(state.bounds)})"
            )
        child.count += state.count
        child.sum += state.sum
        if state.count:
            if state.min < child.min:
                child.min = state.min
            if state.max > child.max:
                child.max = state.max
        child.bucket_counts = [
            have + add
            for have, add in zip(child.bucket_counts, state.bucket_counts)
        ]


def replay_worker_events(journal: object, doc: Dict[str, object]) -> None:
    """Re-emit one worker snapshot's buffered events into the parent
    journal under the ``shard.worker.*`` namespace.

    The parent journal stamps fresh gapless sequence ids; the worker's
    original ``seq``/``ts`` survive as ``worker_seq``/``worker_ts`` so
    the in-worker ordering and timing stay reconstructible.
    """
    _check_wire(doc)
    if not getattr(journal, "enabled", False):
        return
    shard = int(doc["shard"])
    for record in doc["events"]:
        fields = {
            k: v for k, v in record.items() if k not in _ENVELOPE
        }
        fields.setdefault("shard", shard)
        fields["worker_seq"] = record.get("seq")
        fields["worker_ts"] = record.get("ts")
        journal.emit(f"shard.worker.{record.get('event')}", **fields)


def merge_worker_snapshots(
    registry: MetricsRegistry,
    journal: object,
    docs: Iterable[Dict[str, object]],
) -> List[Dict[str, object]]:
    """Fold worker snapshot wire dicts into the parent sinks in
    deterministic ``(shard, seq)`` order; returns the sorted list.

    Metrics merge under a ``shard=N`` label (see :func:`merge_snapshot`)
    and journal events re-sequence under ``shard.worker.*``
    (:func:`replay_worker_events`); either half is a no-op when its
    parent sink is disabled.
    """
    ordered = sorted(docs, key=lambda d: (d.get("shard"), d.get("seq")))
    for doc in ordered:
        _check_wire(doc)
        merge_snapshot(
            registry,
            snapshot_from_wire(doc["snapshot"]),
            extra_labels={"shard": str(doc["shard"])},
        )
        replay_worker_events(journal, doc)
    return ordered


def worker_resource_events(
    doc: Dict[str, object]
) -> List[Dict[str, object]]:
    """The ``resources`` records buffered in one worker snapshot
    (each a per-batch :class:`~repro.obs.resources.ResourceSample`
    field dict) — what the serving layer accumulates into its
    per-shard ``close()`` summaries."""
    _check_wire(doc)
    return [
        record
        for record in doc["events"]
        if record.get("event") == "resources"
    ]


# -- serving views -----------------------------------------------------------
def shard_tenant_summary(registry: MetricsRegistry) -> Dict[str, object]:
    """Roll a registry up into per-shard and per-tenant summaries.

    Every counter/gauge child carrying a ``shard=`` (resp. ``tenant=``)
    label contributes its value to that shard's (tenant's) entry under
    its metric name, summing across any remaining labels; histogram
    and timer children contribute ``<name>.count`` / ``<name>.sum``.
    This is the ``/shards.json`` document of
    :class:`~repro.obs.server.MetricsServer` and the data source of the
    shards/tenants panes in ``repro top``.
    """
    shards: Dict[str, Dict[str, float]] = {}
    tenants: Dict[str, Dict[str, float]] = {}
    for kind, inst in registry.instruments():
        labels = dict(inst.labels)
        if isinstance(inst, HistogramInstrument):
            entries = (
                (inst.name + ".count", float(inst.count)),
                (inst.name + ".sum", float(inst.sum)),
            )
        else:
            entries = ((inst.name, float(inst.value)),)
        for label, rollup in (("shard", shards), ("tenant", tenants)):
            owner = labels.get(label)
            if owner is None:
                continue
            bucket = rollup.setdefault(owner, {})
            for key, value in entries:
                bucket[key] = bucket.get(key, 0.0) + value
    return {"shards": shards, "tenants": tenants}
