"""Imposing a hierarchy on data that has none.

The paper's conclusion conjectures that hierarchical histograms help
"even when dealing with data that lacks an inherent hierarchy": any
total order on the keys induces a binary hierarchy (split the sorted
key space in half, recursively), and if similar keys end up near each
other the histograms can exploit it.

This example monitors a stream of *session ids* — opaque integers with
no prefix structure — under two impositions:

* **value order**: sessions are numbered sequentially, so nearby ids
  were created at similar times and behave similarly (hidden locality);
* **hashed order**: the same stream with ids scrambled by a hash,
  destroying all locality (the adversarial case).

The same construction runs in both; the error gap *is* the value of
the imposed structure.

Run:  python examples/imposed_hierarchy.py
"""

import numpy as np

from repro import (
    GroupTable,
    PrunedHierarchy,
    UIDDomain,
    evaluate_function,
    get_metric,
)
from repro.algorithms import build_lpm_greedy
from repro.baselines import build_end_biased


def session_stream(num_sessions: int, num_events: int, seed: int):
    """Events per session: intensity decays with session age, so
    sequential ids carry hidden locality."""
    rng = np.random.default_rng(seed)
    age = np.arange(num_sessions)
    intensity = np.exp(-age / (num_sessions / 4)) + 0.01 * rng.random(
        num_sessions
    )
    weights = intensity / intensity.sum()
    return rng.choice(num_sessions, size=num_events, p=weights)


def scramble(ids: np.ndarray, bits: int, seed: int) -> np.ndarray:
    """A random permutation 'hash' of the id space."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(1 << bits)
    return perm[ids]


def main() -> None:
    bits = 12
    num_sessions = 1 << bits
    events = session_stream(num_sessions, 200_000, seed=5)

    domain = UIDDomain(bits)
    table = GroupTable(domain, [domain.leaf(u) for u in range(num_sessions)])
    metric = get_metric("rms")
    budget = 48

    print(f"{'ordering':>12}  {'greedy LPM':>12}  {'end-biased':>12}")
    for label, uids in (
        ("value", events),
        ("hashed", scramble(events, bits, seed=6)),
    ):
        counts = table.counts_from_uids(uids)
        hierarchy = PrunedHierarchy(table, counts)
        res = build_lpm_greedy(hierarchy, metric, budget,
                               curve_budgets=[budget])
        fn = res.function_at(budget)
        hier_err = evaluate_function(table, counts, fn, metric)
        eb_err = build_end_biased(table, counts, budget).error(metric, budget)
        print(f"{label:>12}  {hier_err:>12.2f}  {eb_err:>12.2f}")

    print(
        "\nWith value ordering the imposed hierarchy captures the hidden "
        "locality\nand the histogram wins; hashing the ids removes it and "
        "the advantage\n(mostly) disappears — order your keys before "
        "imposing a hierarchy."
    )


if __name__ == "__main__":
    main()
