"""Optimal nonoverlapping partitioning functions (paper Section 3.2.2).

The bucket nodes of a nonoverlapping function form a cut of the UID
hierarchy (Figure 3).  The dynamic program fills::

    E[i, B] = grperr(i)                                   if B == 1
            = min over c of E[left, c] (+) E[right, B-c]  otherwise

bottom-up over the pruned hierarchy.  ``grperr(i)`` is the error of
estimating every group below ``i`` at ``i``'s density — the error of
making ``i`` a single bucket.  The table at the root yields the optimal
error for *every* budget up to the requested one in a single run.

The pruned hierarchy retains the attachment points of all-zero sibling
subtrees, so cuts that isolate empty regions (which then cost nothing
to transmit — their buckets are inferred, Section 4.3) are part of the
search space and the result is optimal over the full virtual hierarchy.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core.errors import PenaltyMetric
from ..core.hierarchy import PNode, PrunedHierarchy
from ..core.partition import Bucket, NonoverlappingPartitioning
from ..obs import span
from .base import INF, ConstructionResult, DPContext
from .kernels import (
    _positive_merge,
    _positive_merge_batch,
    knapsack_merge,
)

__all__ = ["build_nonoverlapping"]


def build_nonoverlapping(
    hierarchy: PrunedHierarchy,
    metric: PenaltyMetric,
    budget: int,
    low_memory: bool = False,
    memo=None,
) -> ConstructionResult:
    """Construct the optimal nonoverlapping partitioning function.

    Parameters
    ----------
    hierarchy:
        Pruned hierarchy of the window being summarized.
    metric:
        The distributive error metric to minimize.
    budget:
        Maximum number of histogram buckets ``b``.
    low_memory:
        Apply the paper's Section 4.4 space optimization (after Guha):
        keep no per-node choice tables at all — only the O(b x depth)
        error tables live during the sweep — and reconstruct bucket
        sets by re-running the DP recursively on the two subtrees of
        each chosen split.  Same optimum; reconstruction costs an extra
        O(depth) factor, which is why it is opt-in.
    memo:
        A :class:`~repro.algorithms.incremental.NonoverlappingSession`
        for subtree-memoized rebuilds; its sweep replaces the full one
        (splicing clean-subtree tables, re-merging only dirty nodes)
        and is bit-identical to it.  Incompatible with ``low_memory``,
        which keeps none of the arrays the memo splices.

    Returns
    -------
    ConstructionResult
        ``result.curve[B]`` is the optimal error for every ``B`` up to
        the budget; ``result.function_at(B)`` materializes the cut.
    """
    if budget < 1:
        raise ValueError(f"budget must be at least 1, got {budget}")
    if memo is not None and low_memory:
        raise ValueError("incremental rebuilds require split tables; "
                         "low_memory drops them")
    ctx = DPContext(hierarchy, metric)
    with span(
        "dp.nonoverlapping.sweep", budget=budget,
        nodes=len(hierarchy.nodes), low_memory=low_memory,
    ) as sp:
        if memo is not None:
            root_table, splits = memo.sweep(hierarchy.root, ctx, budget)
        else:
            root_table, splits = _sweep(
                hierarchy.root, ctx, budget, keep_splits=not low_memory
            )
        sp.annotate(root_entries=int(len(root_table)) - 1)
    curve = np.full(budget + 1, INF)
    upto = min(budget, len(root_table) - 1)
    curve[1 : upto + 1] = ctx.finalize_curve(root_table[1 : upto + 1])
    # Error is nonincreasing in budget: extra buckets can't hurt, so
    # budgets beyond the hierarchy's capacity keep the best value.
    best = INF
    for b in range(1, budget + 1):
        best = min(best, curve[b])
        curve[b] = best

    def make_function(b: int) -> NonoverlappingPartitioning:
        b = min(b, upto)
        bucket_nodes: List[int] = []
        with span("dp.nonoverlapping.collect", budget=b) as sp:
            if low_memory:
                _collect_multipass(hierarchy.root, b, ctx, bucket_nodes)
            else:
                _collect(hierarchy.root, b, splits, bucket_nodes)
            sp.annotate(buckets=len(bucket_nodes))
        return NonoverlappingPartitioning(
            hierarchy.domain, [Bucket(v) for v in bucket_nodes]
        )

    return ConstructionResult(
        make_function=make_function,
        curve=curve,
        budget=budget,
        stats={"nodes": float(len(hierarchy.nodes))},
    )


def _sweep(root: PNode, ctx: DPContext, budget: int, keep_splits: bool):
    """One bottom-up DP pass over ``root``'s subtree.

    Child error tables are freed as soon as their parent consumes them,
    so at most O(depth) tables are live.  Split choices are retained
    only when ``keep_splits`` — dropping them is the Section 4.4 mode.
    """
    if ctx.batched:
        return _sweep_fast(root, ctx, budget, keep_splits)
    tables = {}
    splits: dict = {}
    stack = [(root, False)]
    while stack:
        p, expanded = stack.pop()
        if not expanded and not p.is_leaf:
            stack.append((p, True))
            stack.append((p.right, False))
            stack.append((p.left, False))
            continue
        if p.is_leaf:
            table = np.full(2, INF)
            table[1] = ctx.grperr_own(p)  # 0 for exact / empty leaves
            tables[p.index] = table
            continue
        left, right = tables.pop(p.left.index), tables.pop(p.right.index)
        table, split = _merge_node_naive(ctx, p, left, right, budget)
        tables[p.index] = table
        if keep_splits:
            splits[p.index] = split
    return tables[root.index], splits


def _merge_node_naive(ctx: DPContext, p: PNode, left, right, budget: int):
    """One naive-mode internal-node step: knapsack merge of the child
    tables plus the own-bucket overlay at ``B == 1``."""
    table, split = knapsack_merge(left, right, budget, ctx.metric.combine)
    one_bucket = ctx.grperr_own(p)
    if one_bucket < table[1]:
        table[1] = one_bucket
        split[1] = -1  # sentinel: this node is the bucket
    return table, split


def _shared_split_cache():
    """A fresh cache of shared constant split arrays for the fast
    path's closed-form cases (contents depend only on case + size)."""
    shared: Dict[tuple, np.ndarray] = {}

    def _const_split(case: str, size: int) -> np.ndarray:
        key = (case, size)
        sp = shared.get(key)
        if sp is None:
            sp = np.empty(size, dtype=np.int32)
            sp[0] = -1
            sp[1] = -1
            if size > 2:
                if case == "rl":  # right child is the leaf
                    sp[2:] = np.arange(1, size - 1, dtype=np.int32)
                else:  # "lr": left child is the leaf, or leaf-leaf
                    sp[2:] = 1
            shared[key] = sp
        return sp

    return _const_split


def _merge_node_fast(
    own_p: float,
    left_tab: Optional[np.ndarray],
    right_tab: Optional[np.ndarray],
    own_left: float,
    own_right: float,
    budget: int,
    maximum: bool,
    keep_splits: bool,
    const_split,
):
    """One fast-mode internal-node step, bit-identical to the naive
    merge.  Leaf children pass ``None`` tables (their virtual tables
    are ``[inf, own]``); ``const_split`` is a
    :func:`_shared_split_cache` closure for the closed-form cases."""
    if left_tab is None and right_tab is None:
        size = min(budget, 2) + 1
        table = np.empty(size)
        table[0] = INF
        table[1] = own_p
        if size == 3:
            table[2] = (
                max(own_left, own_right) if maximum
                else own_left + own_right
            )
        split = const_split("lr", size) if keep_splits else None
        return table, split
    if left_tab is None or right_tab is None:
        right_leaf = right_tab is None
        if right_leaf:
            inner, edge = left_tab, own_right
        else:
            inner, edge = right_tab, own_left
        size = min(budget, len(inner)) + 1
        table = np.empty(size)
        table[0] = INF
        table[1] = own_p
        seg = inner[1 : size - 1]
        table[2:] = np.maximum(seg, edge) if maximum else seg + edge
        split = (
            const_split("rl" if right_leaf else "lr", size)
            if keep_splits else None
        )
        return table, split
    size = min(budget, len(left_tab) + len(right_tab) - 2) + 1
    table = np.empty(size)
    table[0] = INF
    table[1] = own_p
    if size > 2:
        vals, choice = _positive_merge(
            left_tab[1:], right_tab[1:], size - 2, maximum,
            want_choice=keep_splits,
        )
        table[2:] = vals
    split = None
    if keep_splits:
        split = np.empty(size, dtype=np.int32)
        split[0] = -1
        split[1] = -1
        if size > 2:
            split[2:] = choice
    return table, split


def _sweep_fast(root: PNode, ctx: DPContext, budget: int, keep_splits: bool):
    """Batched-mode sweep producing the same tables bit for bit.

    Nonoverlapping tables have a fixed shape the fast path exploits:
    entry 0 is ``inf`` (zero buckets are infeasible), entry 1 is the
    node's own-bucket error, and every deeper in-range entry is finite.
    Leaf tables therefore never materialize — parents read the
    precomputed own-error array directly — a leaf-child merge is one
    shifted vector combine, and internal merges convolve only the
    finite table tails (:func:`~repro.algorithms.kernels._positive_merge`).
    Entries and recorded splits match the naive sweep exactly: the
    dropped candidates are all infinite and the surviving ones combine
    identical scalars in the identical order.
    """
    own = ctx.own_errors()
    maximum = ctx.metric.combine == "max"
    if root.is_leaf:
        table = np.full(2, INF)
        table[1] = own[root.index]
        return table, {}
    if root is ctx.hierarchy.root:
        # Full-tree sweeps take the phase-batched path: same-shape
        # merges across the whole level collapse into stacked kernels.
        return _sweep_fast_batched(ctx, budget, keep_splits)
    tables: Dict[int, np.ndarray] = {}
    splits: Dict[int, np.ndarray] = {}
    # Subtree re-sweep (low-memory reconstruction): generate the
    # subtree's postorder by reversing a node/right/left preorder.
    order = []
    stack = [root]
    while stack:
        p = stack.pop()
        if not p.is_leaf:
            order.append(p)
            stack.append(p.left)
            stack.append(p.right)
    order.reverse()
    const_split = _shared_split_cache()
    for p in order:
        node_left = p.left
        if node_left is None:  # leaf: tables are virtual (own errors)
            continue
        node_right = p.right
        lt = (
            tables.pop(node_left.index)
            if node_left.left is not None else None
        )
        rt = (
            tables.pop(node_right.index)
            if node_right.left is not None else None
        )
        table, split = _merge_node_fast(
            own[p.index], lt, rt,
            own[node_left.index], own[node_right.index],
            budget, maximum, keep_splits, const_split,
        )
        tables[p.index] = table
        if keep_splits:
            splits[p.index] = split
    return tables[root.index], splits


def _structure_arrays(ctx: DPContext):
    """Postorder structure arrays, cached on the hierarchy.

    ``phase[i]`` is the subtree height of node ``i`` (0 for leaves), so
    processing phases in ascending order is a valid bottom-up schedule
    in which every node's children belong to strictly earlier phases;
    ``left_idx``/``right_idx`` are child postorder indices (-1 at
    leaves).  Pure structure — shared by every metric/budget/mode.
    """
    hierarchy = ctx.hierarchy
    cached = getattr(hierarchy, "_dp_structure", None)
    if cached is None:
        nodes = hierarchy.nodes
        n = len(nodes)
        left_idx = np.full(n, -1, dtype=np.int64)
        right_idx = np.full(n, -1, dtype=np.int64)
        phase = np.zeros(n, dtype=np.int64)
        ph_list = [0] * n
        for p in nodes:
            node_left = p.left
            if node_left is None:
                continue
            i = p.index
            li, ri = node_left.index, p.right.index
            left_idx[i] = li
            right_idx[i] = ri
            pl, pr = ph_list[li], ph_list[ri]
            ph_list[i] = (pl if pl >= pr else pr) + 1
        phase[:] = ph_list
        cached = (phase, left_idx, right_idx)
        hierarchy._dp_structure = cached
    return cached


def _sweep_fast_batched(ctx: DPContext, budget: int, keep_splits: bool):
    """Phase-batched full-tree sweep (tables identical to `_sweep`).

    Nodes are processed level by level (by subtree height) and, within
    a level, grouped by the shapes of their children's tables.  Each
    group becomes one stacked operation: leaf-leaf parents are a pure
    gather/combine over the own-error array, one-leaf merges are a
    single broadcast combine over stacked inner tables, and
    internal-internal merges run through
    :func:`~repro.algorithms.kernels._positive_merge_batch`.  Every row
    of every batch performs exactly the per-node fast path's
    operations, which in turn match the naive sweep bit for bit; split
    arrays for the closed-form cases are shared constants (their
    contents don't depend on the node).
    """
    own = ctx.own_errors()
    maximum = ctx.metric.combine == "max"
    phase, left_idx, right_idx = _structure_arrays(ctx)
    n = len(phase)
    leaf_mask = left_idx < 0
    tables: List[Optional[np.ndarray]] = [None] * n
    splits: Dict[int, np.ndarray] = {}
    # Table lengths evolve bottom-up by the same formula the per-node
    # sweep applies; leaves count as (virtual) 2-entry tables.
    tlen = np.where(leaf_mask, 2, 0)
    internal = np.nonzero(~leaf_mask)[0]
    order = internal[np.argsort(phase[internal], kind="stable")]
    ph_sorted = phase[order]
    # Shared constant split arrays, one per (case, size).
    _const_split = _shared_split_cache()

    pos = 0
    total = order.size
    while pos < total:
        h = ph_sorted[pos]
        end = pos + np.searchsorted(ph_sorted[pos:], h, side="right")
        idx_h = order[pos:end]
        pos = end
        li = left_idx[idx_h]
        ri = right_idx[idx_h]
        sizes = np.minimum(budget, tlen[li] + tlen[ri] - 2) + 1
        tlen[idx_h] = sizes
        lleaf = leaf_mask[li]
        rleaf = leaf_mask[ri]

        # Leaf-leaf parents: closed form over the own-error array.
        both = lleaf & rleaf
        if both.any():
            g = idx_h[both]
            size = min(budget, 2) + 1
            block = np.empty((g.size, size))
            block[:, 0] = INF
            block[:, 1] = own[g]
            if size == 3:
                lv = own[li[both]]
                rv = own[ri[both]]
                block[:, 2] = np.maximum(lv, rv) if maximum else lv + rv
            sp = _const_split("lr", size) if keep_splits else None
            for k, i in enumerate(g.tolist()):
                tables[i] = block[k]
                if keep_splits:
                    splits[i] = sp

        # One-leaf merges, grouped by inner-table length and side.
        one = lleaf ^ rleaf
        if one.any():
            g = idx_h[one]
            gl = li[one]
            gr = ri[one]
            r_is_leaf = rleaf[one]
            inner_idx = np.where(r_is_leaf, gl, gr)
            edge_idx = np.where(r_is_leaf, gr, gl)
            key = tlen[inner_idx] * 2 + r_is_leaf
            for u in np.unique(key).tolist():
                sel = key == u
                gi = g[sel]
                ginner = inner_idx[sel]
                inner_len = int(u // 2)
                right_leaf = bool(u & 1)
                size = min(budget, inner_len) + 1
                K = gi.size
                buf = np.empty((K, inner_len))
                for k, ii in enumerate(ginner.tolist()):
                    buf[k] = tables[ii]
                    tables[ii] = None
                edge = own[edge_idx[sel]]
                block = np.empty((K, size))
                block[:, 0] = INF
                block[:, 1] = own[gi]
                if size > 2:
                    seg = buf[:, 1 : size - 1]
                    e = edge[:, None]
                    block[:, 2:] = (
                        np.maximum(seg, e) if maximum else seg + e
                    )
                sp = (
                    _const_split("rl" if right_leaf else "lr", size)
                    if keep_splits
                    else None
                )
                for k, i in enumerate(gi.tolist()):
                    tables[i] = block[k]
                    if keep_splits:
                        splits[i] = sp

        # Internal-internal merges, grouped by child-table shapes.
        both_int = ~(lleaf | rleaf)
        if both_int.any():
            g = idx_h[both_int]
            gl = li[both_int]
            gr = ri[both_int]
            key = tlen[gl] * (2 * budget + 4) + tlen[gr]
            for u in np.unique(key).tolist():
                sel = key == u
                gi = g[sel]
                m = int(u // (2 * budget + 4))
                nn = int(u % (2 * budget + 4))
                size = min(budget, m + nn - 2) + 1
                K = gi.size
                bl = np.empty((K, m - 1))
                br = np.empty((K, nn - 1))
                for k, ii in enumerate(gl[sel].tolist()):
                    bl[k] = tables[ii][1:]
                    tables[ii] = None
                for k, ii in enumerate(gr[sel].tolist()):
                    br[k] = tables[ii][1:]
                    tables[ii] = None
                block = np.empty((K, size))
                block[:, 0] = INF
                block[:, 1] = own[gi]
                if size > 2:
                    vals, choice = _positive_merge_batch(
                        bl, br, size - 2, maximum, want_choice=keep_splits
                    )
                    block[:, 2:] = vals
                if keep_splits:
                    spblock = np.empty((K, size), dtype=np.int32)
                    spblock[:, 0] = -1
                    spblock[:, 1] = -1
                    if size > 2:
                        spblock[:, 2:] = choice
                for k, i in enumerate(gi.tolist()):
                    tables[i] = block[k]
                    if keep_splits:
                        splits[i] = spblock[k]
    root_index = ctx.hierarchy.root.index
    return tables[root_index], splits


def _collect_multipass(
    p: PNode, b: int, ctx: DPContext, out: List[int]
) -> None:
    """Section 4.4 reconstruction: re-derive the split at each node by
    re-running the DP on its two subtrees, then recurse.

    Each subtree is re-swept with the budget ``b`` actually granted to
    it, not the original top-level budget: table entries up to ``b``
    are unaffected by the tighter cap (an allocation of ``c <= B <= b``
    buckets never consults entries beyond ``b``), so the recovered
    splits are identical while the low-memory reconstruction stops
    filling table columns no caller can reference.
    """
    stack = [(p, b)]
    while stack:
        p, b = stack.pop()
        if p.is_leaf or b == 1:
            out.append(p.node)
            continue
        left_table, _ = _sweep(p.left, ctx, b, keep_splits=False)
        right_table, _ = _sweep(p.right, ctx, b, keep_splits=False)
        merged, split = knapsack_merge(
            left_table, right_table, b, ctx.metric.combine
        )
        b = min(b, len(merged) - 1)
        if b == 1:  # only the single-bucket option remains
            out.append(p.node)
            continue
        c = int(split[b])
        stack.append((p.left, c))
        stack.append((p.right, b - c))


def _collect(
    p: PNode,
    b: int,
    splits: Dict[int, np.ndarray],
    out: List[int],
) -> None:
    """Walk the recorded split choices to materialize the cut for
    budget ``b``."""
    stack = [(p, b)]
    while stack:
        p, b = stack.pop()
        if p.is_leaf or b == 1:
            out.append(p.node)
            continue
        split = splits[p.index]
        b = min(b, len(split) - 1)
        c = int(split[b])
        if c == -1:  # single-bucket choice recorded at B == 1 only
            out.append(p.node)
            continue
        stack.append((p.left, c))
        stack.append((p.right, b - c))
    return None
