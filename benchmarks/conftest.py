"""Bench harness configuration: makes the shared workload modules
importable and registers the heavy-bench marker."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
