"""Smoke tests: every example script must run cleanly end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def test_all_examples_discovered():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"
