#!/usr/bin/env python
"""CI smoke for the live observability plane.

Launches ``repro simulate`` as a subprocess with the metrics endpoint,
the event journal and the periodic metrics writer all enabled, then:

1. polls ``/metrics`` **while the run executes** until the per-window
   quality gauges appear, and validates the scrape as Prometheus
   exposition text (every line parses; ``# TYPE``/``# HELP`` exactly
   once per family, before its first sample);
2. fetches ``/series.json`` and checks the per-window records, and
   ``/alerts.json`` for the live SLO rule state;
3. waits for the run to finish and replays the journal with
   ``repro replay``, requiring the replayed summary to match the live
   run's summary byte for byte;
4. exports the journal with ``repro trace`` and validates the Chrome
   Trace Event document (JSON parses, every delivery flow is paired).

Exits nonzero (with a diagnostic) on any failure; CI uploads the
journal and trace as artifacts in that case.
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

PORT = 9105
URL = f"http://127.0.0.1:{PORT}"
JOURNAL = "ci_smoke.journal"
METRICS = "ci_smoke.jsonl"
TRACE = "ci_smoke.trace.json"
SLO = "coverage>=0.5,delivery_p99_windows<=4,drift_score<=2"

SIMULATE = [
    sys.executable, "-m", "repro", "simulate",
    "--height", "12", "--packets", "400000", "--windows", "8",
    "--monitors", "4", "--budget", "60",
    "--faults", "drop=0.1,dup=0.05,delay=0.1,crash=0.02,seed=7",
    "--stale-policy", "rescale",
    "--journal", JOURNAL,
    "--metrics", METRICS, "--metrics-interval", "0.2",
    "--serve-metrics", f"127.0.0.1:{PORT}",
    "--serve-linger", "10",
    "--trace", "--slo", SLO,
]

QUALITY_GAUGES = (
    "quality_coverage",
    "quality_spill_fraction",
    "quality_drift_score",
    "quality_occupancy_entropy",
)

SAMPLE_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*(\{[a-zA-Z0-9_]+="(?:\\.|[^"\\])*"'
    r'(,[a-zA-Z0-9_]+="(?:\\.|[^"\\])*")*\})? -?\S+$'
)


def fail(msg: str) -> None:
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def validate_exposition(text: str) -> None:
    """Every line must be a comment or a well-formed sample; headers
    exactly once per family, before the family's samples."""
    typed = {}
    sampled = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            fail(f"metrics line {lineno}: empty line in exposition")
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            name, kind = parts[2], parts[3]
            if name in typed:
                fail(f"metrics line {lineno}: duplicate # TYPE {name}")
            if name in sampled:
                fail(f"metrics line {lineno}: # TYPE {name} after samples")
            if kind not in ("counter", "gauge", "histogram"):
                fail(f"metrics line {lineno}: bad TYPE kind {kind!r}")
            typed[name] = kind
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("#"):
            fail(f"metrics line {lineno}: unknown comment {line!r}")
            continue
        if not SAMPLE_RE.match(line):
            fail(f"metrics line {lineno}: unparseable sample {line!r}")
        sampled.add(line.split("{", 1)[0].split(" ", 1)[0])
    for name in QUALITY_GAUGES:
        if typed.get(name) != "gauge":
            fail(f"quality gauge {name} missing or not a gauge")


def get(path: str, timeout: float = 2.0) -> str:
    with urllib.request.urlopen(f"{URL}{path}", timeout=timeout) as resp:
        return resp.read().decode("utf-8")


def main() -> int:
    proc = subprocess.Popen(
        SIMULATE, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
    )
    scraped = None
    series_len = 0
    try:
        deadline = time.time() + 120
        while time.time() < deadline:
            if proc.poll() is not None:
                early_out, early_err = proc.communicate()
                print(
                    "FAIL: simulate exited before /metrics showed "
                    f"quality gauges (rc={proc.returncode})\n"
                    f"--- stdout\n{early_out}\n--- stderr\n{early_err}",
                    file=sys.stderr,
                )
                return 1
            try:
                text = get("/metrics")
            except (urllib.error.URLError, OSError):
                time.sleep(0.05)
                continue
            if all(f"# TYPE {g} gauge" in text for g in QUALITY_GAUGES):
                scraped = text
                break
            time.sleep(0.05)
        if scraped is None:
            fail("timed out waiting for quality gauges on /metrics")
        validate_exposition(scraped)
        print(
            f"scraped /metrics mid-run: {len(scraped.splitlines())} lines, "
            "exposition valid, quality gauges present"
        )
        series = json.loads(get("/series.json"))
        series_len = len(series)
        if not series:
            fail("/series.json empty while windows were decoding")
        rec = series[-1]
        for key in ("window", "ts", "counters", "gauges"):
            if key not in rec:
                fail(f"series record missing {key!r}: {rec}")
        print(f"/series.json: {series_len} per-window records")
        alerts = json.loads(get("/alerts.json"))
        for key in ("rules", "active", "alerts", "windows_evaluated"):
            if key not in alerts:
                fail(f"/alerts.json missing {key!r}: {alerts}")
        if alerts["rules"] != SLO.split(","):
            fail(f"/alerts.json rules do not match --slo: {alerts['rules']}")
        print(
            f"/alerts.json: {len(alerts['rules'])} rules, "
            f"{len(alerts['active'])} firing mid-run"
        )
        out, err = proc.communicate(timeout=180)
    except subprocess.TimeoutExpired:
        proc.kill()
        proc.communicate()
        fail("simulate did not exit in time")
    except BaseException:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
        raise
    if proc.returncode != 0:
        fail(f"simulate failed (rc={proc.returncode})\n{err}")
    live_summary = out

    replay = subprocess.run(
        [sys.executable, "-m", "repro", "replay", JOURNAL],
        capture_output=True, text=True,
    )
    if replay.returncode != 0:
        fail(f"replay failed (rc={replay.returncode})\n{replay.stderr}")
    if replay.stdout != live_summary:
        fail(
            "replayed summary differs from the live run\n"
            f"--- live\n{live_summary}\n--- replayed\n{replay.stdout}"
        )
    print("replay reproduced the live run summary byte-for-byte")

    trace = subprocess.run(
        [sys.executable, "-m", "repro", "trace", JOURNAL, "-o", TRACE],
        capture_output=True, text=True,
    )
    if trace.returncode != 0:
        fail(f"trace export failed (rc={trace.returncode})\n{trace.stderr}")
    if trace.stderr:
        fail(f"trace export warned:\n{trace.stderr}")
    with open(TRACE) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace document has no traceEvents")
    tails = [e["id"] for e in events if e.get("ph") == "s"]
    heads = [e["id"] for e in events if e.get("ph") == "f"]
    if not tails:
        fail("trace document has no delivery flows despite --trace")
    if sorted(tails) != sorted(heads):
        fail(
            f"unpaired delivery flows: {len(tails)} starts vs "
            f"{len(heads)} finishes"
        )
    print(
        f"trace export valid: {len(events)} events, "
        f"{len(tails)} delivery flows all paired"
    )
    print("metrics smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
