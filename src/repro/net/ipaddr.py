"""IPv4 addresses and CIDR prefixes as hierarchy nodes.

Network addresses are the paper's motivating unique identifiers: CIDR
(RFC 1519) assigns organizations contiguous power-of-two blocks, so the
set of allocated prefixes forms exactly the kind of hierarchy the
histograms exploit.  This module converts between dotted-quad /
``a.b.c.d/len`` notation and the node ids of a ``UIDDomain(32)``.
"""

from __future__ import annotations

from typing import Tuple

from ..core.domain import UIDDomain

__all__ = [
    "IPV4_DOMAIN",
    "parse_ipv4",
    "format_ipv4",
    "parse_cidr",
    "format_cidr",
    "prefix_to_node",
    "node_to_prefix",
]

#: The full IPv4 identifier domain.
IPV4_DOMAIN = UIDDomain(32)


def parse_ipv4(text: str) -> int:
    """Parse ``'a.b.c.d'`` into a 32-bit integer identifier."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {text!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet {part!r} out of range in {text!r}")
        value = (value << 8) | octet
    return value


def format_ipv4(value: int) -> str:
    """Format a 32-bit integer identifier as dotted-quad."""
    if not 0 <= value < (1 << 32):
        raise ValueError(f"value {value} is not a 32-bit address")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def parse_cidr(text: str) -> Tuple[int, int]:
    """Parse ``'a.b.c.d/len'`` into ``(address, prefix_length)``.

    The address must be aligned to the prefix length (host bits zero).
    """
    addr_text, _, len_text = text.partition("/")
    if not len_text:
        raise ValueError(f"missing prefix length in {text!r}")
    addr = parse_ipv4(addr_text)
    length = int(len_text)
    if not 0 <= length <= 32:
        raise ValueError(f"prefix length {length} out of range in {text!r}")
    if length < 32 and addr & ((1 << (32 - length)) - 1):
        raise ValueError(f"host bits set in prefix {text!r}")
    return addr, length


def format_cidr(addr: int, length: int) -> str:
    return f"{format_ipv4(addr)}/{length}"


def prefix_to_node(addr: int, length: int, domain: UIDDomain = IPV4_DOMAIN) -> int:
    """The hierarchy node of the prefix ``addr/length``."""
    if not 0 <= length <= domain.height:
        raise ValueError(f"prefix length {length} exceeds domain height")
    return domain.node(length, addr >> (domain.height - length))


def node_to_prefix(node: int, domain: UIDDomain = IPV4_DOMAIN) -> Tuple[int, int]:
    """Inverse of :func:`prefix_to_node`: ``(address, prefix_length)``."""
    length = domain.depth(node)
    return domain.prefix(node) << (domain.height - length), length
