"""Tests for the command-line interface."""

import os

import numpy as np
import pytest

from repro.cli import main
from repro.core import decode_function, function_from_json


@pytest.fixture
def workload(tmp_path):
    path = str(tmp_path / "w.npz")
    assert main(["generate", "--height", "10", "--packets", "20000",
                 "--seed", "3", "-o", path]) == 0
    return path


class TestGenerate:
    def test_creates_file(self, workload):
        assert os.path.exists(workload)
        data = np.load(workload)
        assert int(data["height"][0]) == 10
        assert data["counts"].sum() == 20000

    def test_deterministic(self, tmp_path):
        a, b = str(tmp_path / "a.npz"), str(tmp_path / "b.npz")
        main(["generate", "--height", "8", "--packets", "1000",
              "--seed", "5", "-o", a])
        main(["generate", "--height", "8", "--packets", "1000",
              "--seed", "5", "-o", b])
        da, db = np.load(a), np.load(b)
        assert np.array_equal(da["counts"], db["counts"])


class TestBuild:
    @pytest.mark.parametrize("algorithm", ["nonoverlapping", "overlapping",
                                           "lpm_greedy"])
    def test_build_binary(self, workload, tmp_path, algorithm):
        out = str(tmp_path / "fn.bin")
        assert main(["build", workload, "--algorithm", algorithm,
                     "--budget", "12", "-o", out]) == 0
        with open(out, "rb") as f:
            fn = decode_function(f.read())
        assert fn.num_buckets <= 12

    def test_build_json(self, workload, tmp_path):
        out = str(tmp_path / "fn.json")
        main(["build", workload, "--budget", "8", "-o", out])
        with open(out) as f:
            fn = function_from_json(f.read())
        assert fn.num_buckets <= 8

    def test_metric_choices_enforced(self, workload, tmp_path):
        with pytest.raises(SystemExit):
            main(["build", workload, "--metric", "nope",
                  "-o", str(tmp_path / "x.bin")])


class TestEvaluateInspect:
    def test_evaluate_prints_all_metrics(self, workload, tmp_path, capsys):
        out = str(tmp_path / "fn.bin")
        main(["build", workload, "--budget", "10", "-o", out])
        assert main(["evaluate", workload, out]) == 0
        text = capsys.readouterr().out
        for name in ("rms", "average", "avg_relative", "max_relative"):
            assert name in text

    def test_inspect_lists_buckets(self, workload, tmp_path, capsys):
        out = str(tmp_path / "fn.json")
        main(["build", workload, "--budget", "6", "-o", out])
        assert main(["inspect", out]) == 0
        text = capsys.readouterr().out
        assert "buckets" in text
        assert "*" in text


class TestSimulate:
    def test_simulate_reports(self, capsys):
        assert main(["simulate", "--height", "10", "--packets", "20000",
                     "--budget", "20", "--monitors", "2"]) == 0
        text = capsys.readouterr().out
        assert "compression ratio" in text
        assert "mean rms error" in text
        # No fault model -> no degradation section.
        assert "monitors reporting" not in text

    def test_simulate_with_faults_prints_degradation(self, capsys):
        assert main(["simulate", "--height", "10", "--packets", "20000",
                     "--budget", "20", "--monitors", "4",
                     "--faults", "drop=0.2,dup=0.1,seed=42",
                     "--stale-policy", "rescale"]) == 0
        text = capsys.readouterr().out
        assert "monitors reporting" in text
        assert "duplicates dropped" in text
        assert "stale messages" in text

    def test_simulate_wire_format_v2_same_error_fewer_bytes(self, capsys):
        outputs = {}
        for wire in ("v1", "v2"):
            assert main(["simulate", "--height", "10", "--packets", "20000",
                         "--budget", "20", "--monitors", "2",
                         "--wire-format", wire]) == 0
            outputs[wire] = capsys.readouterr().out
        error = lambda text: [
            line for line in text.splitlines() if "mean rms error" in line
        ]
        upstream = lambda text: [
            line for line in text.splitlines() if "histogram bytes" in line
        ]
        assert error(outputs["v1"]) == error(outputs["v2"])
        assert upstream(outputs["v1"]) != upstream(outputs["v2"])

    def test_simulate_bad_fault_spec_rejected(self, capsys):
        assert main(["simulate", "--height", "10", "--packets", "5000",
                     "--faults", "dorp=0.2"]) == 2
        assert "unknown fault spec key" in capsys.readouterr().err


SERVING_SMALL = ["simulate", "--height", "10", "--packets", "20000",
                 "--budget", "20", "--monitors", "2", "--windows", "3"]


class TestSimulateServing:
    def test_sharded_run_matches_serial_output(self, capsys):
        assert main(SERVING_SMALL) == 0
        serial = capsys.readouterr().out
        assert main(SERVING_SMALL + ["--shards", "2"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == serial

    def test_shards_require_v2_wire_format(self, capsys):
        assert main(SERVING_SMALL + ["--shards", "2",
                                     "--wire-format", "v1"]) == 2
        assert "--wire-format v2" in capsys.readouterr().err

    def test_shards_must_be_positive(self, capsys):
        assert main(SERVING_SMALL + ["--shards", "0"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_tenants_print_admission_and_budgets(self, capsys):
        assert main(SERVING_SMALL + [
            "--shards", "2",
            "--tenants",
            "alpha:budget=20,bytes=4000;beta:budget=20,bytes=150;gamma",
            "--capacity-bytes", "5000",
        ]) == 0
        text = capsys.readouterr().out
        assert "tenants admitted  : 2 of 3" in text
        assert "tenant alpha:" in text
        assert "of 4000 budgeted" in text
        assert "[OVER BUDGET]" in text  # beta's 150-byte budget is tiny
        assert ("tenant gamma: rejected (no byte budget declared "
                "under capacity control)") in text

    def test_capacity_bytes_requires_tenants(self, capsys):
        assert main(SERVING_SMALL + ["--capacity-bytes", "100"]) == 2
        assert "--capacity-bytes needs --tenants" in capsys.readouterr().err

    def test_bad_tenant_spec_rejected(self, capsys):
        assert main(SERVING_SMALL + ["--tenants", "bad:frob=1"]) == 2
        assert "unknown tenant option" in capsys.readouterr().err


SIMULATE_SMALL = ["simulate", "--height", "10", "--packets", "20000",
                  "--budget", "20", "--monitors", "2", "--windows", "3"]


class TestLiveSurfaces:
    def test_journal_then_replay_matches(self, tmp_path, capsys):
        journal = str(tmp_path / "run.journal")
        assert main(SIMULATE_SMALL + [
            "--faults", "drop=0.2,dup=0.1,crash=0.05,seed=11",
            "--stale-policy", "rescale", "--journal", journal,
        ]) == 0
        simulated = capsys.readouterr().out
        assert main(["replay", journal]) == 0
        replayed = capsys.readouterr().out
        assert replayed == simulated  # same summary, no re-simulation
        assert "monitors reporting" in replayed

    def test_replay_rejects_truncated_journal(self, tmp_path, capsys):
        journal = str(tmp_path / "run.journal")
        assert main(SIMULATE_SMALL + ["--journal", journal]) == 0
        capsys.readouterr()
        lines = open(journal).read().splitlines()
        with open(journal, "w") as f:
            f.write("\n".join(lines[:-1]) + "\n")  # drop run_end
        assert main(["replay", journal]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_metrics_scrapeable_mid_run(self, capsys):
        import json
        import urllib.request
        assert main(SIMULATE_SMALL + [
            "--serve-metrics", "127.0.0.1:0", "--serve-linger", "0",
        ]) == 0
        # Port 0 => ephemeral; the bound URL is announced on stderr.
        err = capsys.readouterr().err
        assert "serving metrics at http://127.0.0.1:" in err

    def test_metrics_interval_requires_metrics(self, capsys):
        assert main(SIMULATE_SMALL + ["--metrics-interval", "1"]) == 2
        assert "--metrics-interval" in capsys.readouterr().err

    def test_metrics_interval_writes_file(self, tmp_path):
        out = str(tmp_path / "live.jsonl")
        assert main(SIMULATE_SMALL + [
            "--metrics", out, "--metrics-interval", "0.05",
        ]) == 0
        from repro.obs import load_jsonl
        records = load_jsonl(out)
        assert any(r["name"] == "system.windows" for r in records)

    def test_top_once_renders_journal(self, tmp_path, capsys):
        journal = str(tmp_path / "run.journal")
        assert main(SIMULATE_SMALL + [
            "--faults", "drop=0.2,seed=3", "--journal", journal,
        ]) == 0
        capsys.readouterr()
        assert main(["top", journal, "--once"]) == 0
        text = capsys.readouterr().out
        assert "[finished]" in text
        assert "error bar" in text
        assert "drop" in text

    def test_top_missing_source_errors(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "nope.journal"), "--once"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_stats_watch_rerenders_on_growth(self, tmp_path, capsys):
        import threading
        import time
        out = str(tmp_path / "run.jsonl")
        assert main(SIMULATE_SMALL + ["--metrics", out]) == 0
        capsys.readouterr()

        def grow():
            time.sleep(0.3)
            with open(out, "a") as f:
                f.write('{"type": "counter", "name": "extra.counter", '
                        '"labels": {}, "value": 1.0}\n')

        appender = threading.Thread(target=grow)
        appender.start()
        # --watch-max 2: one render of the initial file, then one more
        # once the appender grows it.
        assert main(["stats", out, "--watch", "--watch-max", "2",
                     "--watch-interval", "0.05"]) == 0
        appender.join()
        text = capsys.readouterr().out
        assert text.count("counters") == 2
        assert "extra.counter" in text

    def test_stats_plain_still_works(self, tmp_path, capsys):
        out = str(tmp_path / "run.jsonl")
        assert main(SIMULATE_SMALL + ["--metrics", out]) == 0
        capsys.readouterr()
        assert main(["stats", out]) == 0
        text = capsys.readouterr().out
        assert "system.run" in text  # span tree section


def test_version(capsys):
    with pytest.raises(SystemExit) as e:
        main(["--version"])
    assert e.value.code == 0


def test_missing_command():
    with pytest.raises(SystemExit):
        main([])


class TestTracingAndSLOs:
    FAULTY = [
        "--faults", "drop=0.3,dup=0.2,delay=0.3,seed=11",
        "--stale-policy", "rescale",
    ]

    def test_traced_slo_run_replays_identically(self, tmp_path, capsys):
        journal = str(tmp_path / "run.journal")
        assert main(SIMULATE_SMALL + self.FAULTY + [
            "--journal", journal, "--trace",
            "--slo", "coverage>=0.99,delivery_p99_windows<=0",
        ]) == 0
        captured = capsys.readouterr()
        # Alert history prints on stdout (replay-reconstructable);
        # tracer conservation is a live-only diagnostic on stderr.
        assert "slo alerts" in captured.out
        assert "lifecycle conservation ok" in captured.err
        assert main(["replay", journal]) == 0
        replayed = capsys.readouterr()
        assert replayed.out == captured.out
        assert "lifecycle conservation" not in replayed.err

    def test_trace_subcommand_writes_chrome_trace(self, tmp_path, capsys):
        import json as _json
        journal = str(tmp_path / "run.journal")
        assert main(SIMULATE_SMALL + self.FAULTY + [
            "--journal", journal, "--trace",
        ]) == 0
        capsys.readouterr()
        out = str(tmp_path / "run.trace.json")
        assert main(["trace", journal, "-o", out]) == 0
        captured = capsys.readouterr()
        assert "delivery flows" in captured.out
        assert "unpaired" not in captured.err
        with open(out) as f:
            doc = _json.load(f)
        from repro.obs import unpaired_flows
        assert doc["traceEvents"] and unpaired_flows(doc) == []

    def test_trace_default_output_and_stdout(self, tmp_path, capsys):
        import json as _json
        journal = str(tmp_path / "run.journal")
        assert main(SIMULATE_SMALL + [
            "--journal", journal, "--trace",
        ]) == 0
        capsys.readouterr()
        assert main(["trace", journal]) == 0
        assert "wrote " + journal + ".trace.json" in capsys.readouterr().out
        assert os.path.exists(journal + ".trace.json")
        assert main(["trace", journal, "-o", "-"]) == 0
        doc = _json.loads(capsys.readouterr().out)
        assert "traceEvents" in doc

    def test_trace_missing_journal_errors(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "nope.journal")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_slo_spec_rejected(self, capsys):
        assert main(SIMULATE_SMALL + ["--slo", "coverage>>0.9"]) == 2
        assert "--slo:" in capsys.readouterr().err

    def test_slo_file_loaded(self, tmp_path, capsys):
        import json as _json
        rules = tmp_path / "rules.json"
        rules.write_text(_json.dumps(["coverage>=0.99"]))
        journal = str(tmp_path / "run.journal")
        assert main(SIMULATE_SMALL + self.FAULTY + [
            "--journal", journal, "--slo-file", str(rules),
        ]) == 0
        assert "slo alerts" in capsys.readouterr().out


class TestIncrementalRebuilds:
    def test_flag_accepted_and_output_unchanged(self, capsys):
        args = SIMULATE_SMALL + ["--algorithm", "nonoverlapping"]
        assert main(args) == 0
        plain = capsys.readouterr().out
        assert main(args + ["--incremental-rebuilds"]) == 0
        incremental = capsys.readouterr().out
        # Incremental rebuilds are bit-identical, so the report is too.
        assert incremental == plain

    def test_flag_off_by_default_journal_has_no_memo_fields(
        self, tmp_path, capsys
    ):
        import json

        journal = str(tmp_path / "run.journal")
        assert main(SIMULATE_SMALL + ["--algorithm", "nonoverlapping",
                                      "--journal", journal]) == 0
        capsys.readouterr()
        with open(journal) as f:
            events = [json.loads(line) for line in f]
        rebuilds = [e for e in events if e["event"] == "rebuild"]
        assert rebuilds
        for event in rebuilds:
            assert "dirty_subtrees" not in event
            assert "reused_fraction" not in event
