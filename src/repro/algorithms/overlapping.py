"""Optimal overlapping partitioning functions (paper Section 3.2.3).

Overlapping functions let bucket subtrees nest (Figure 4); estimation
maps every group to its *closest* selected ancestor.  The dynamic
program therefore carries the closest-selected-ancestor ``j`` as an
extra parameter::

    E[i, B, j] = grperr(i, j)                         if B == 0
               = min( bucket case, non-bucket case )  otherwise

where the bucket case conditions the children on ``j = i`` and spends
one bucket on ``i`` itself.  Crucially — and this is what the greedy
longest-prefix-match heuristic (Section 3.2.6) relies on — the bucket
case is *independent of the enclosing ancestor*, so it is computed once
per node (table ``F``/``E_b`` here) and shared across all ``j``.

Sparse buckets (Section 4.3, Figure 14) are folded in as a base case:
any subtree containing at most one nonzero group is representable
exactly by a single (sparse) bucket, so the DP can cap such subtrees at
one bucket and "start at the upper node of each sparse bucket", exactly
as the paper prescribes.  Disable with ``sparse=False`` to explore the
plain bucket space only.

The root must itself be a bucket node (every identifier needs an
enclosing bucket; see Figures 4-6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.errors import PenaltyMetric
from ..core.hierarchy import PNode, PrunedHierarchy
from ..core.partition import Bucket, OverlappingPartitioning
from ..obs import span
from .base import INF, ConstructionResult, DPContext
from .incremental import _OVNodeEntry, _phase_slices, _ranges
from .kernels import knapsack_merge, knapsack_merge_batch

__all__ = ["build_overlapping", "OverlappingDP"]

# Flags recorded for reconstruction.
_NOT_BUCKET = 0
_BUCKET = 1
_SPARSE = 2


@dataclass
class _NodeRecord:
    """Reconstruction state for one pruned node."""

    # Bucket case: split_b[B] = buckets granted to the left child when
    # this node is a bucket and B buckets are spent at/below it.
    split_b: Optional[np.ndarray] = None
    sparse_at: Optional[int] = None  # node id of the single nonzero leaf
    bucket_flag: Optional[np.ndarray] = None  # _BUCKET or _SPARSE per B
    # Per enclosing ancestor j (by pruned-node index):
    flags: Optional[Dict[int, np.ndarray]] = None
    splits_nb: Optional[Dict[int, np.ndarray]] = None
    # Batched-mode equivalents: row i of each block is the table for
    # the ancestor at depth i (ancestors are root-first, so an
    # ancestor's depth is its row).
    flags_block: Optional[np.ndarray] = None
    splits_block: Optional[np.ndarray] = None


class _LazyRecords:
    """Reconstruction records hydrated on demand from the memo arena.

    On a same-structure incremental rebuild most nodes are never
    visited (clean subtrees are adopted whole), yet the reconstruction
    walk may descend into any of them.  Materializing a record per
    node would reintroduce an O(|nodes|) Python loop, so records are
    built lazily: the solve populates the ones it visits through the
    same ``records[i]`` accesses as the eager list, and reconstruction
    hydrates the O(budget) untouched nodes it actually reads from the
    arena's flag/split views.
    """

    def __init__(self, arena, depth: np.ndarray) -> None:
        self._arena = arena
        self._depth = depth
        self._recs: Dict[int, _NodeRecord] = {}

    def __getitem__(self, index: int) -> _NodeRecord:
        rec = self._recs.get(index)
        if rec is None:
            rec = _NodeRecord()
            a = self._arena
            kind = int(a.kind[index])
            if kind:
                size_b = int(a.size_b[index])
                rec.bucket_flag = a.bflag[index, :size_b]
                at = int(a.sparse_at[index])
                rec.sparse_at = None if at < 0 else at
                d = int(self._depth[index])
                w = int(a.blk_w[index])
                start = int(a.row_start[index])
                rec.flags_block = a.flags[start : start + d, :w]
                rec.splits_block = a.splits[start : start + d, :w]
                if kind == 2:
                    rec.split_b = a.split_b[index]
            self._recs[index] = rec
        return rec

    def sparse_collapses(self) -> int:
        return int(np.count_nonzero(self._arena.sparse_at >= 0))


class OverlappingDP:
    """One run of the overlapping dynamic program.

    Kept as a class so that the longest-prefix-match greedy heuristic
    can inspect per-bucket approximation errors after the run.
    """

    def __init__(
        self,
        hierarchy: PrunedHierarchy,
        metric: PenaltyMetric,
        budget: int,
        sparse: bool = True,
        memo=None,
    ) -> None:
        if budget < 1:
            raise ValueError(f"budget must be at least 1, got {budget}")
        self.hierarchy = hierarchy
        self.metric = metric
        self.budget = budget
        self.sparse = sparse
        # Optional OverlappingSession.  On a batched same-structure
        # rebuild no recursion runs at all: one vectorized sweep
        # re-merges every row conditioned on a dirty ancestor (always
        # a root-first prefix of each node's ancestor chain) plus the
        # dirty nodes' bucket cases, straight into the memo arena —
        # producing bit-identical arrays to a full solve.
        self._inc = memo
        self.ctx = DPContext(hierarchy, metric)
        n_nodes = len(hierarchy.nodes)
        inc_batched = memo is not None and self.ctx.batched
        same_inc = inc_batched and memo.same_structure
        self._caps = self._compute_caps()
        if inc_batched:
            memo.ensure_arena(int(self._caps.max()) + 1)
        if same_inc:
            self.records = _LazyRecords(memo.arena, memo.arrays.depth)
            self._depths = memo.arrays.depth.copy()
        else:
            self.records = [_NodeRecord() for _ in hierarchy.nodes]
            self._depths = np.zeros(n_nodes, dtype=np.int64)
        # Full tables E[p, ., j] per node, keyed by node index then by
        # ancestor index; entries are freed as soon as the parent has
        # consumed them (the paper's Section 4.4 space optimization —
        # reconstruction uses the retained choice arrays instead).
        self._tables: Dict[int, Dict[int, np.ndarray]] = {}
        # Ancestor state maintained along the recursion: entry d holds
        # the pruned index / density of the ancestor at depth d, so the
        # first ``depth`` entries are the current node's strict
        # ancestors root-first (no per-node list rebuilding).
        self._anc_idx = np.empty(n_nodes + 1, dtype=np.int64)
        self._anc_dens = np.empty(n_nodes + 1, dtype=np.float64)
        with span(
            "dp.overlapping.solve", budget=budget,
            nodes=n_nodes, sparse=sparse,
        ) as sp:
            if same_inc:
                root_bucket_table = (
                    self._solve_same_structure()
                    if memo.dirty.any()
                    # Nothing dirty: the previous build's arena is
                    # this build's answer verbatim.
                    else self._adopt_all_clean()
                )
            else:
                root_bucket_table = self._solve(hierarchy.root, 0)
            sp.annotate(sparse_collapses=self._count_sparse())
        self.root_table = root_bucket_table

    def _count_sparse(self) -> int:
        recs = self.records
        if isinstance(recs, _LazyRecords):
            return recs.sparse_collapses()
        return sum(1 for r in recs if r.sparse_at is not None)

    # ------------------------------------------------------------------
    def _compute_caps(self) -> np.ndarray:
        """Max useful buckets per subtree (tree-knapsack bound)."""
        hierarchy = self.hierarchy
        ar = getattr(hierarchy, "_inc_tree_arrays", None)
        if ar is not None:
            # Phase-vectorized recurrence — pure integer minimums, so
            # the result equals the per-node walk exactly.
            caps = np.ones(len(hierarchy.nodes), dtype=np.int64)
            base = ar.left < 0
            if self.sparse:
                base = base | (ar.n_nonzero <= 1)
            for idx in _phase_slices(ar.order, ar.order_phase):
                sel = idx[~base[idx]]
                caps[sel] = np.minimum(
                    self.budget,
                    caps[ar.left[sel]] + caps[ar.right[sel]] + 1,
                )
            return caps
        caps = np.zeros(len(hierarchy.nodes), dtype=np.int64)
        for p in hierarchy.nodes:  # postorder
            if p.is_leaf or (self.sparse and p.n_nonzero <= 1):
                caps[p.index] = 1
            else:
                caps[p.index] = min(
                    self.budget, caps[p.left.index] + caps[p.right.index] + 1
                )
        return caps

    def _base_under_masks(self, ar) -> Tuple[np.ndarray, np.ndarray]:
        """``base``: nodes the DP resolves as a base case (leaves, and
        sparse collapses when enabled).  ``under``: nodes strictly
        inside a collapsed subtree — never solved or stored, so the
        prepass must not touch their (stale) arena rows.  Postorder
        puts each collapse's proper descendants at the contiguous
        interval before it; painting those intervals handles nested
        collapses for free."""
        n = ar.left.shape[0]
        base = ar.left < 0
        if self.sparse:
            base = base | (ar.n_nonzero <= 1)
        under = np.zeros(n, dtype=bool)
        inner = np.nonzero(base & (ar.left >= 0))[0]
        if inner.size:
            delta = np.zeros(n + 1, dtype=np.int64)
            np.add.at(delta, inner - ar.size[inner] + 1, 1)
            np.subtract.at(delta, inner, 1)
            under = np.cumsum(delta[:n]) > 0
        return base, under

    def _adopt_all_clean(self) -> np.ndarray:
        """Zero drift: the carried arena *is* this build's DP state
        (same structure, same counts, same configuration), so nothing
        runs at all; report every internal non-collapse node reused."""
        inc = self._inc
        ar = inc.arrays
        base, under = self._base_under_masks(ar)
        tgt = ~under & ~base
        inc.note_clean_bulk(
            int(np.count_nonzero(tgt)), 0, int(ar.depth[tgt].sum())
        )
        a = inc.arena
        i = len(self.hierarchy.nodes) - 1  # postorder root
        return a.eb[i, : int(a.size_b[i])]

    def _solve_same_structure(self) -> np.ndarray:
        """Whole-array incremental solve: patch the memo arena in place
        and return the root's bucket-case table — no recursion at all.

        Dirtiness is monotone up any ancestor chain, so the dirty
        ancestors of *any* node are a root-first prefix of its chain of
        some length ``D``: a node's full depth when the node itself is
        dirty, or the owning maximal clean subtree root's depth when it
        is clean.  Rows ``[0, D)`` of every node are re-merged against
        the chain's current densities; rows ``[D:]`` are conditioned on
        clean ancestors and stay valid verbatim, as do every clean
        node's bucket-case table and all structural metadata (widths,
        offsets, flags of base rows, sparse collapse ids).  The work
        per bottom-up phase is grouped by (child widths, cap) so each
        group is one whole-array gather → stacked kernel → overlay →
        scatter; base rows are closed-form (``[grperr(node, anc), 0]``)
        via one row-batched grperr.  Every rewritten value is exactly
        what a from-scratch solve computes: the kernel's rows are
        batch-independent, the bucket case re-merges the same child
        rows, and the INF-padded bucket tables make the full-width
        overlay equal the solve's length-clamped one — so the arena
        afterwards is bit-identical to a cold build's.
        """
        inc = self._inc
        a = inc.arena
        ar = inc.arrays
        n = ar.left.shape[0]
        dirty = inc.dirty
        base, under = self._base_under_masks(ar)
        clean = ~dirty
        par = ar.parent
        depth = ar.depth
        # Dirty-ancestor counts: dirty nodes have an entirely dirty
        # chain (D = depth); each maximal clean subtree (clean root,
        # dirty parent) shares its root's D = depth[root], painted over
        # the subtree's contiguous postorder interval.
        D_vec = np.where(dirty, depth, 0)
        croots = np.nonzero(
            clean & ~under & dirty[np.maximum(par, 0)]
        )[0]
        if croots.size:
            sizes = ar.size[croots]
            delta = np.zeros(n + 1, dtype=np.int64)
            np.add.at(delta, croots - sizes + 1, depth[croots])
            np.subtract.at(delta, croots + 1, depth[croots])
            D_vec = np.where(clean, np.cumsum(delta[:n]), D_vec)
        need = ~under & (D_vec > 0)
        rs = a.row_start
        rows_dirty = 0
        # Base nodes (leaves and collapse roots): closed-form rows
        # ``[grperr(node, anc_density), 0]`` in one row-batched call;
        # their bucket case ([INF, 0]) and flags are structural.
        # ``anc[k, d]`` is node tb[k]'s ancestor at depth d, built by
        # iterated parent gathers: the s-th parent of a node sits at
        # depth ``depth - s``, so reaching depth 0 takes the node's
        # full ``depth`` steps even though only columns ``< wide`` are
        # kept.  Unfilled cells alias node 0; their penalties are
        # masked off before writing.
        tb = np.nonzero(base & need)[0]
        if tb.size:
            Ds = D_vec[tb]
            wide = int(Ds.max())
            dpt = depth[tb]
            anc = np.zeros((tb.size, wide), dtype=np.int64)
            cur = par[tb].copy()
            for s in range(1, int(dpt.max()) + 1):
                m = dpt >= s
                cols = dpt[m] - s
                keep = cols < wide
                anc[np.nonzero(m)[0][keep], cols[keep]] = cur[m][keep]
                cur = np.where(cur >= 0, par[np.maximum(cur, 0)], -1)
            pens = self.ctx.grperr_rows(
                tb, self.ctx.node_densities()[anc]
            )
            keep = np.arange(wide) < Ds[:, None]
            rows = np.repeat(rs[tb], Ds) + _ranges(Ds)
            a.e2[rows, 0] = pens[keep]
            a.e2[rows, 1] = 0.0
        # Internal nodes bottom-up by phase (children strictly
        # earlier), grouped by (left width, right width, cap): the cap
        # is part of the key because it is clamped by the budget, not
        # derivable from the child widths.  Dirty nodes first re-merge
        # their bucket case (one bucket on the node, children
        # conditioned on it — child row ``depth[node]``), then all rows
        # [0, D) re-merge with the bucket-case overlay.
        combine = self.metric.combine
        caps = self._caps
        W1 = a.eb.shape[1] + 1
        span_b = self.budget + 2
        int_mask = need & ~base
        dirty_int = dirty & ~under & ~base

        def _groups(g: np.ndarray):
            if g.size == 0:
                return
            key = (
                a.blk_w[ar.left[g]] * W1 + a.blk_w[ar.right[g]]
            ) * span_b + caps[g]
            order = np.argsort(key, kind="stable")
            bounds = np.nonzero(np.diff(key[order]))[0] + 1
            for chunk in np.split(order, bounds):
                u = int(key[chunk[0]])
                rest = u // span_b
                yield g[chunk], u % span_b, rest // W1, rest % W1

        for idx0 in _phase_slices(ar.order, ar.order_phase):
            gd = idx0[dirty_int[idx0]]
            rows_dirty += int(depth[gd].sum())
            for gs, capu, wlu, wru in _groups(gd):
                # Bucket case: same child rows, same merge as the cold
                # solve's knapsack_merge (batch rows are kernel-equal).
                rowJ = depth[gs]
                L = a.e2[rs[ar.left[gs]] + rowJ, :wlu]
                R = a.e2[rs[ar.right[gs]] + rowJ, :wru]
                merged, choice = knapsack_merge_batch(
                    L, R, capu - 1, combine
                )
                size_b = min(capu, merged.shape[1]) + 1
                a.eb[gs, 1:size_b] = merged[:, : size_b - 1]
                a.split_b[gs, : choice.shape[1]] = choice
            g = idx0[int_mask[idx0]]
            if g.size == 0:
                continue
            for gs, capu, wlu, wru in _groups(g):
                Ds = D_vec[gs]
                total = int(Ds.sum())
                off = _ranges(Ds)
                rowsL = np.repeat(rs[ar.left[gs]], Ds) + off
                rowsR = np.repeat(rs[ar.right[gs]], Ds) + off
                merged2, split_m = knapsack_merge_batch(
                    a.e2[rowsL, :wlu], a.e2[rowsR, :wru], capu, combine
                )
                size = min(capu, merged2.shape[1] - 1) + 1
                em = merged2[:, :size]
                flags_m = np.zeros(em.shape, dtype=np.int8)
                rep = np.repeat(gs, Ds)
                ebp = a.eb[rep, :size]
                better = ebp < em
                np.copyto(em, ebp, where=better)
                np.copyto(flags_m, a.bflag[rep, :size], where=better)
                rowsS = rs[rep] + off
                a.e2[rowsS, :size] = em
                a.flags[rowsS, :size] = flags_m
                a.splits[rowsS, : split_m.shape[1]] = split_m
        clean_int = clean & ~under & ~base
        rows_clean = int(D_vec[clean_int].sum())
        inc.note_dirty_bulk(
            int(np.count_nonzero(dirty_int)), rows_dirty
        )
        inc.note_clean_bulk(
            int(np.count_nonzero(clean_int)),
            rows_clean,
            int((depth[clean_int] - D_vec[clean_int]).sum()),
        )
        i = n - 1  # postorder root
        return a.eb[i, : int(a.size_b[i])]

    def _single_nonzero_leaf(self, p: PNode) -> Optional[PNode]:
        """The unique nonzero group leaf below ``p`` (requires
        ``p.n_nonzero == 1``)."""
        while not p.is_leaf:
            p = p.left if p.left.n_nonzero == 1 else p.right
        return p if p.kind == "group" else None

    # ------------------------------------------------------------------
    def _solve(self, p: PNode, depth: int) -> np.ndarray:
        """Fill this subtree's tables.

        ``depth`` is the number of strict ancestors; their pruned
        indices / densities are the first ``depth`` entries of
        ``self._anc_idx`` / ``self._anc_dens`` (root-first).  Returns
        the node's *bucket-case* table (used directly at the root); the
        per-ancestor full tables are handed to the caller via
        ``_tables`` on the record.
        """
        inc = self._inc
        rec = self.records[p.index]
        self._depths[p.index] = depth
        cap = int(self._caps[p.index])
        collapse = (not p.is_leaf) and self.sparse and p.n_nonzero <= 1

        if p.is_leaf or collapse:
            # Base: one bucket resolves this subtree exactly — a plain
            # bucket at a leaf, or a sparse bucket over a subtree with
            # at most one nonzero group.
            e_b = np.full(cap + 1, INF)
            e_b[1] = 0.0
            rec.bucket_flag = np.full(cap + 1, _BUCKET, dtype=np.int8)
            if collapse:
                leaf = self._single_nonzero_leaf(p)
                if leaf is not None:
                    rec.sparse_at = leaf.node
                    rec.bucket_flag[1] = _SPARSE
            if self.ctx.batched:
                # Batched layout: the ancestor tables live in one
                # (depth, cap + 1) block, row i conditioned on the
                # ancestor at depth i; reconstruction indexes rows by
                # ancestor depth.  Entries match the per-ancestor loop
                # below exactly: e[0] = pen, e[1] = e_b[1].
                e2 = np.empty((depth, cap + 1))
                flags2 = np.zeros((depth, cap + 1), dtype=np.int8)
                if depth:
                    # One batched grperr over the materialized ancestor
                    # densities replaces the per-ancestor slice
                    # evaluations — the O(log|U|) inner loop of the
                    # DP's base case.
                    anc_pens = self.ctx.grperr_many(
                        p, self._anc_dens[:depth]
                    )
                    if cap > 1:
                        e2[:, 2:] = INF
                    e2[:, 0] = anc_pens
                    e2[:, 1] = e_b[1]
                if depth:
                    flags2[:, 1] = rec.bucket_flag[1]
                rec.flags_block = flags2
                self._tables[p.index] = e2
                if inc is not None:
                    # Every visited node is dirty, so D == depth and
                    # the block lands whole in the arena.
                    inc.store_base(
                        p.index, depth, e_b, rec.bucket_flag,
                        rec.sparse_at, e2, flags2,
                    )
                return e_b
            anc_pens = (
                self.ctx.grperr_many(p, self._anc_dens[:depth])
                if depth
                else ()
            )
            tables = {}
            rec.flags = {}
            for i, pen in enumerate(anc_pens):
                j_idx = int(self._anc_idx[i])
                e = np.full(cap + 1, INF)
                e[0] = pen
                e[1] = min(e[1], e_b[1])
                tables[j_idx] = e
                flags = np.full(cap + 1, _NOT_BUCKET, dtype=np.int8)
                flags[1] = rec.bucket_flag[1]
                rec.flags[j_idx] = flags
            self._tables[p.index] = tables
            return e_b

        self._anc_idx[depth] = p.index
        self._anc_dens[depth] = p.density
        self._solve(p.left, depth + 1)
        self._solve(p.right, depth + 1)
        left_tabs = self._tables[p.left.index]
        right_tabs = self._tables[p.right.index]
        J = depth
        batched = self.ctx.batched

        entry = inc.lookup(p) if inc is not None else None
        if entry is not None:
            # Clean subtree: the ancestor-independent bucket case is
            # reused verbatim (it depends on subtree content alone).
            e_b = entry.e_b
            rec.split_b = entry.split_b
            rec.bucket_flag = entry.bucket_flag
            rec.sparse_at = entry.sparse_at
            size_b = len(e_b)
        else:
            # Bucket case: one bucket on p, the rest split among
            # children which now see p as their closest selected
            # ancestor.  In batched mode the child tables are (J + 1,
            # width) blocks: rows [0, J) conditioned on this node's
            # ancestors and row J on this node itself; row J is
            # materialized exactly when p is dirty or unmemoized —
            # i.e. whenever this branch runs.
            if batched:
                left_self, right_self = left_tabs[J], right_tabs[J]
            else:
                left_self = left_tabs[p.index]
                right_self = right_tabs[p.index]
            merged, split = knapsack_merge(
                left_self, right_self, cap - 1, self.metric.combine
            )
            # size - 1 <= len(merged), so every entry past 0 comes from
            # the merge — no inf prefill needed beyond entry 0.
            size_b = min(cap, len(merged)) + 1
            e_b = np.empty(size_b)
            e_b[0] = INF
            e_b[1:] = merged[: size_b - 1]
            rec.split_b = split
            rec.bucket_flag = np.full(size_b, _BUCKET, dtype=np.int8)

        # Non-bucket case per enclosing ancestor.
        if batched:
            # ``entry`` is always None here: batched sessions adopt
            # clean subtrees before recursion ever reaches them, so a
            # visited node re-merges in full.  One stacked merge
            # replaces the per-ancestor loop below — each row of the
            # batch is the same merge the loop would run, and the
            # bucket-case overlay applies the identical
            # strict-improvement comparison, so results are bit-for-bit
            # unchanged.
            merged2, split2 = knapsack_merge_batch(
                left_tabs[:J], right_tabs[:J], cap,
                self.metric.combine,
            )
            size = min(cap, merged2.shape[1] - 1) + 1
            e2 = merged2[:, :size]
            flags2 = np.zeros(e2.shape, dtype=np.int8)
            lim = min(size, size_b)
            better2 = e_b[:lim] < e2[:, :lim]
            np.copyto(e2[:, :lim], e_b[:lim], where=better2)
            np.copyto(
                flags2[:, :lim], rec.bucket_flag[:lim], where=better2
            )
            if inc is not None:
                inc.store_block(
                    p.index, J, e_b, rec.split_b, rec.bucket_flag,
                    rec.sparse_at, e2, flags2, split2,
                )
                inc.note_rows(J, 0)
            rec.flags_block = flags2
            rec.splits_block = split2
            self._tables[p.index] = e2
            del self._tables[p.left.index]
            del self._tables[p.right.index]
            return e_b
        # Naive reference mode: per-ancestor merges, recomputed in
        # full even for clean subtrees (only the bucket case is reused
        # — the mode exists for bit-level cross-checks, not speed).
        rec.flags = {}
        rec.splits_nb = {}
        tables = {}
        for i in range(depth):
            j_idx = int(self._anc_idx[i])
            merged_nb, split_nb = knapsack_merge(
                left_tabs[j_idx], right_tabs[j_idx], cap,
                self.metric.combine,
            )
            size = min(cap, len(merged_nb) - 1) + 1
            e = np.full(size, INF)
            e[:size] = merged_nb[:size]
            flags = np.full(size, _NOT_BUCKET, dtype=np.int8)
            lim = min(size, size_b)
            better = e_b[:lim] < e[:lim]
            e[:lim][better] = e_b[:lim][better]
            flags[:lim][better] = rec.bucket_flag[:lim][better]
            tables[j_idx] = e
            rec.flags[j_idx] = flags
            rec.splits_nb[j_idx] = split_nb
        if inc is not None:
            inc.store(p, _OVNodeEntry(
                e_b, rec.split_b, rec.bucket_flag, rec.sparse_at,
                None, None, None,
            ))
            inc.note_rows(depth, 0)
        self._tables[p.index] = tables
        # Child tables are no longer needed; free the bulky arrays.
        del self._tables[p.left.index]
        del self._tables[p.right.index]
        return e_b

    # ------------------------------------------------------------------
    # Solution reconstruction
    # ------------------------------------------------------------------
    def buckets_for_budget(self, b: int) -> List[Bucket]:
        """Materialize the optimal bucket set for budget ``b``."""
        out: List[Bucket] = []
        b = max(1, min(b, len(self.root_table) - 1))
        with span("dp.overlapping.collect", budget=b) as sp:
            self._collect_bucket(self.hierarchy.root, b, out)
            sp.annotate(buckets=len(out))
        return out

    def _collect_bucket(self, p: PNode, b: int, out: List[Bucket]) -> None:
        """Expand the bucket case at ``p`` with ``b`` buckets."""
        rec = self.records[p.index]
        b = min(b, len(rec.bucket_flag) - 1)
        if rec.bucket_flag[b] == _SPARSE or (
            b == 1 and rec.sparse_at is not None
        ):
            out.append(Bucket(p.node, sparse_group_node=rec.sparse_at))
            return
        out.append(Bucket(p.node))
        if p.is_leaf or rec.split_b is None or b <= 1:
            return
        c = int(rec.split_b[b - 1])
        self._collect(p.left, c, p.index, out)
        self._collect(p.right, b - 1 - c, p.index, out)

    def _collect(self, p: PNode, b: int, j_idx: int, out: List[Bucket]) -> None:
        """Expand the full table entry E[p, b, j]."""
        if b <= 0:
            return
        rec = self.records[p.index]
        if rec.flags_block is not None:
            # Batched mode: the ancestor's depth is its row in the
            # blocks (ancestors are stacked root-first).
            row = int(self._depths[j_idx])
            flags = rec.flags_block[row]
        else:
            flags = rec.flags[j_idx]
        b = min(b, len(flags) - 1)
        if flags[b] != _NOT_BUCKET:
            self._collect_bucket(p, b, out)
            return
        if rec.flags_block is not None:
            c = int(rec.splits_block[row][b])
        else:
            c = int(rec.splits_nb[j_idx][b])
        self._collect(p.left, c, j_idx, out)
        self._collect(p.right, b - c, j_idx, out)


def build_overlapping(
    hierarchy: PrunedHierarchy,
    metric: PenaltyMetric,
    budget: int,
    sparse: bool = True,
    memo=None,
) -> ConstructionResult:
    """Construct the optimal overlapping partitioning function.

    See :class:`OverlappingDP` for the algorithm; the returned curve
    covers every budget up to ``budget`` from the single run.  ``memo``
    is an :class:`~repro.algorithms.incremental.OverlappingSession`
    for subtree-memoized rebuilds (bit-identical to a full solve).
    """
    dp = OverlappingDP(hierarchy, metric, budget, sparse=sparse, memo=memo)
    curve = np.full(budget + 1, INF)
    upto = min(budget, len(dp.root_table) - 1)
    curve[1 : upto + 1] = dp.ctx.finalize_curve(dp.root_table[1 : upto + 1])
    best = INF
    for b in range(1, budget + 1):
        best = min(best, curve[b])
        curve[b] = best

    def make_function(b: int) -> OverlappingPartitioning:
        return OverlappingPartitioning(
            hierarchy.domain, dp.buckets_for_budget(b)
        )

    return ConstructionResult(
        make_function=make_function,
        curve=curve,
        budget=budget,
        stats={"nodes": float(len(hierarchy.nodes))},
    )
