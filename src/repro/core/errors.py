"""Distributive error metrics (paper Section 2.2.4).

The paper's algorithms minimize any error metric expressible as a
*distributive aggregate* ``<start, merge, finalize>`` over per-group
(actual, estimate) pairs, subject to two monotonicity properties that
make local optimality sound:

* ``finalize(B) > finalize(C)  ->  finalize(A + B) >= finalize(A + C)``
* ``finalize(B) == finalize(C) ->  finalize(A + B) == finalize(A + C)``

Two layers are provided:

:class:`DistributiveErrorMetric`
    The fully general interface, with explicit partial state records
    (PSRs).  Use it to define exotic metrics; the reference evaluator
    and the test-suite oracles run on it.

:class:`PenaltyMetric`
    The optimized family used by the dynamic programs.  Every metric
    the paper evaluates (RMS, average, average-relative and
    maximum-relative error) has a PSR of the form
    ``(aggregate penalty, group count)`` where the group count of a
    subtree is a structural constant.  Minimizing ``finalize`` then
    reduces to minimizing a scalar that combines across subtrees with
    ``+`` or ``max``, which the DPs exploit with vectorized
    ``(min, +)`` / ``(min, max)`` convolutions.

The four concrete metrics default to the configurations of the paper's
experimental study (Section 5); relative metrics take the sanity
constant ``b`` of Equations 8-9 as ``floor``.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, Iterable, Optional, Sequence, Tuple, Type

import numpy as np

__all__ = [
    "DistributiveErrorMetric",
    "PenaltyMetric",
    "RMSError",
    "AverageError",
    "AverageRelativeError",
    "MaximumRelativeError",
    "get_metric",
    "register_metric",
    "available_metrics",
]

PSR = Tuple[float, float]


class DistributiveErrorMetric(ABC):
    """A distributive aggregate ``<start, merge, finalize>`` over groups.

    PSRs are modelled as tuples of floats; ``start`` produces the PSR of
    a single group given its actual and estimated count, ``merge``
    combines the PSRs of disjoint group sets and ``finalize`` converts a
    PSR into the numeric error.
    """

    #: Short registry name (e.g. ``"rms"``); set by subclasses.
    name: str = ""

    @abstractmethod
    def start(self, actual: float, estimate: float) -> PSR:
        """PSR for a single group."""

    @abstractmethod
    def merge(self, a: PSR, b: PSR) -> PSR:
        """Merge the PSRs of two disjoint sets of groups."""

    @abstractmethod
    def finalize(self, psr: PSR) -> float:
        """Convert a PSR into a numeric error value."""

    # ------------------------------------------------------------------
    # Conveniences built on the primitive operations
    # ------------------------------------------------------------------
    def zero(self) -> PSR:
        """The PSR of the empty group set (identity of :meth:`merge`)."""
        return self.start(0.0, 0.0)

    def evaluate(
        self, actual: Sequence[float], estimate: Sequence[float]
    ) -> float:
        """Error of an approximate answer over a vector of groups."""
        actual = np.asarray(actual, dtype=np.float64)
        estimate = np.asarray(estimate, dtype=np.float64)
        if actual.shape != estimate.shape:
            raise ValueError(
                f"shape mismatch: actual {actual.shape} vs estimate {estimate.shape}"
            )
        if actual.size == 0:
            raise ValueError("cannot evaluate an error metric over zero groups")
        psr = self.start(float(actual[0]), float(estimate[0]))
        for a, e in zip(actual[1:], estimate[1:]):
            psr = self.merge(psr, self.start(float(a), float(e)))
        return self.finalize(psr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class PenaltyMetric(DistributiveErrorMetric):
    """A distributive metric with PSR ``(aggregate penalty, group count)``.

    Subclasses define a per-group scalar ``penalty``, whether penalties
    combine with ``sum`` or ``max``, and how the combined penalty and
    the group count produce the final error.  Because the group count
    of any subtree is fixed by the lookup table (it does not depend on
    bucket choices), comparing solutions by ``finalize`` is equivalent
    to comparing aggregate penalties — this is the scalar fast path the
    dynamic programs run on.
    """

    #: ``"sum"`` or ``"max"`` — how per-group penalties combine.
    combine: str = "sum"

    @abstractmethod
    def penalty(self, actual: float, estimate: float) -> float:
        """Scalar penalty of estimating ``actual`` by ``estimate``."""

    @abstractmethod
    def penalty_array(
        self, actual: np.ndarray, estimate: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`penalty` over numpy arrays."""

    @abstractmethod
    def finalize_total(self, total: float, count: float) -> float:
        """Final error given the combined penalty and the group count."""

    def finalize_total_array(
        self, totals: np.ndarray, count: float
    ) -> np.ndarray:
        """Vectorized :meth:`finalize_total` over an array of combined
        penalties (one group count — finalizing one universe at many
        budgets, the shape of every DP's output curve).

        The default loops over :meth:`finalize_total`; the built-in
        metrics override it with closed-form array expressions that are
        bit-for-bit identical to the scalar path (IEEE-754 ``sqrt`` and
        division are correctly rounded in both :mod:`math` and numpy).
        """
        return np.asarray(
            [self.finalize_total(float(t), count) for t in totals],
            dtype=np.float64,
        )

    # -- sufficient statistics (optional O(1)-grperr fast path) ---------
    def suffstats(self, actual: np.ndarray) -> Optional[Tuple[np.ndarray, ...]]:
        """Per-group sufficient-statistic arrays, or ``None``.

        A sum-combine metric whose penalty decomposes as a linear
        combination of functions of the actual count alone (with
        density-dependent coefficients) can return a tuple of arrays
        ``(f_0(actual), ..., f_k(actual))``.  The DP layer precomputes
        weighted postorder prefix sums of each, after which the
        aggregate penalty of *any* hierarchy subtree at *any* density
        is O(1) via :meth:`penalty_from_stats` — the prefix-aggregate
        trick of tree-indexed histogram constructions.

        Contract: for any weights ``w`` and density ``d``::

            penalty_from_stats((sum(w*f_0), ..., sum(w*f_k)), d)
                ≈ sum(w * penalty_array(actual, d))

        Equality is up to floating-point reassociation, which is why
        the suffstats path is a distinct kernel mode rather than the
        default (see ``docs/performance.md``).  Return ``None`` (the
        default) to keep the exact vectorized slice path.
        """
        return None

    def penalty_from_stats(self, stats: Sequence[float], density):
        """Aggregate penalty from summed sufficient statistics.

        ``stats`` holds the weighted sums of each :meth:`suffstats`
        array over the group set; ``density`` may be a scalar or an
        array of densities (the result broadcasts accordingly).  Only
        called when :meth:`suffstats` returned non-``None``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares no sufficient statistics"
        )

    # -- generic API implemented on top of the scalar pieces -----------
    def start(self, actual: float, estimate: float) -> PSR:
        return (self.penalty(actual, estimate), 1.0)

    def merge(self, a: PSR, b: PSR) -> PSR:
        if self.combine == "sum":
            return (a[0] + b[0], a[1] + b[1])
        return (max(a[0], b[0]), a[1] + b[1])

    def finalize(self, psr: PSR) -> float:
        return self.finalize_total(psr[0], psr[1])

    def zero(self) -> PSR:
        return (0.0, 0.0)

    def evaluate(
        self, actual: Sequence[float], estimate: Sequence[float]
    ) -> float:
        actual = np.asarray(actual, dtype=np.float64)
        estimate = np.asarray(estimate, dtype=np.float64)
        if actual.shape != estimate.shape:
            raise ValueError(
                f"shape mismatch: actual {actual.shape} vs estimate {estimate.shape}"
            )
        if actual.size == 0:
            raise ValueError("cannot evaluate an error metric over zero groups")
        pens = self.penalty_array(actual, estimate)
        total = float(pens.sum()) if self.combine == "sum" else float(pens.max())
        return self.finalize_total(total, float(actual.size))

    # -- helpers used by the dynamic programs ---------------------------
    @property
    def neutral_penalty(self) -> float:
        """Identity element of the penalty combiner (0 for both modes,
        since penalties are nonnegative)."""
        return 0.0

    def combine_totals(self, a: float, b: float) -> float:
        """Combine two aggregate penalties of disjoint group sets."""
        return a + b if self.combine == "sum" else max(a, b)

    def combine_totals_array(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`combine_totals`."""
        return a + b if self.combine == "sum" else np.maximum(a, b)

    def repeated_penalty(self, penalty: float, times: float) -> float:
        """Aggregate penalty of ``times`` groups sharing one penalty.

        Used for the sparse-group optimization (paper Section 4.3):
        every zero-count group inside a bucket has the same penalty, so
        an entire empty region contributes in O(1).
        """
        if times <= 0:
            return self.neutral_penalty
        if self.combine == "sum":
            return penalty * times
        return penalty


class RMSError(PenaltyMetric):
    """Root-mean-squared error (Equation 7)."""

    name = "rms"
    combine = "sum"

    def penalty(self, actual: float, estimate: float) -> float:
        d = actual - estimate
        return d * d

    def penalty_array(self, actual, estimate):
        d = actual - estimate
        return d * d

    def finalize_total(self, total: float, count: float) -> float:
        if count <= 0:
            return 0.0
        return math.sqrt(total / count)

    def finalize_total_array(self, totals, count):
        if count <= 0:
            return np.zeros_like(np.asarray(totals, dtype=np.float64))
        return np.sqrt(np.asarray(totals, dtype=np.float64) / count)

    def suffstats(self, actual):
        # (a - d)^2 = a^2 - 2 d a + d^2, so (Σw, Σw·a, Σw·a²) suffice.
        return (np.ones_like(actual), actual, actual * actual)

    def penalty_from_stats(self, stats, density):
        s0, s1, s2 = stats
        val = s2 - (2.0 * density) * s1 + (density * density) * s0
        # Cancellation can drive a mathematically nonnegative penalty a
        # few ulps below zero; clamp so sqrt/compare stay well-defined.
        return np.maximum(val, 0.0)


class AverageError(PenaltyMetric):
    """Mean absolute error (Equation 3)."""

    name = "average"
    combine = "sum"

    def penalty(self, actual: float, estimate: float) -> float:
        return abs(actual - estimate)

    def penalty_array(self, actual, estimate):
        return np.abs(actual - estimate)

    def finalize_total(self, total: float, count: float) -> float:
        if count <= 0:
            return 0.0
        return total / count

    def finalize_total_array(self, totals, count):
        if count <= 0:
            return np.zeros_like(np.asarray(totals, dtype=np.float64))
        return np.asarray(totals, dtype=np.float64) / count


class _RelativeMixin:
    """Shared relative-error penalty with the division floor ``b``."""

    def __init__(self, floor: float = 1.0) -> None:
        if floor <= 0:
            raise ValueError(f"relative-error floor must be positive, got {floor}")
        self.floor = float(floor)

    def penalty(self, actual: float, estimate: float) -> float:
        return abs(actual - estimate) / max(actual, self.floor)

    def penalty_array(self, actual, estimate):
        return np.abs(actual - estimate) / np.maximum(actual, self.floor)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(floor={self.floor})"


class AverageRelativeError(_RelativeMixin, PenaltyMetric):
    """Mean relative error with sanity floor ``b`` (Equation 8)."""

    name = "avg_relative"
    combine = "sum"

    def finalize_total(self, total: float, count: float) -> float:
        if count <= 0:
            return 0.0
        return total / count

    def finalize_total_array(self, totals, count):
        if count <= 0:
            return np.zeros_like(np.asarray(totals, dtype=np.float64))
        return np.asarray(totals, dtype=np.float64) / count


class MaximumRelativeError(_RelativeMixin, PenaltyMetric):
    """Maximum relative error with sanity floor ``b`` (Equation 9)."""

    name = "max_relative"
    combine = "max"

    def finalize_total(self, total: float, count: float) -> float:
        return total

    def finalize_total_array(self, totals, count):
        return np.array(totals, dtype=np.float64, copy=True)


_REGISTRY: Dict[str, Type[DistributiveErrorMetric]] = {}


def register_metric(cls: Type[DistributiveErrorMetric]) -> Type[DistributiveErrorMetric]:
    """Register a metric class under its ``name`` for :func:`get_metric`."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} has no registry name")
    _REGISTRY[cls.name] = cls
    return cls


for _cls in (RMSError, AverageError, AverageRelativeError, MaximumRelativeError):
    register_metric(_cls)


def get_metric(name: str, **kwargs) -> DistributiveErrorMetric:
    """Instantiate a registered metric by name.

    >>> get_metric("rms")
    RMSError()
    >>> get_metric("avg_relative", floor=5.0)
    AverageRelativeError(floor=5.0)
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown error metric {name!r}; known metrics: {known}")
    return cls(**kwargs)


def available_metrics() -> Iterable[str]:
    """Names of all registered metrics."""
    return sorted(_REGISTRY)
