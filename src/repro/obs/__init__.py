"""Observability: metrics registry, tracing spans, exporters.

The measurement layer for the reproduction — see
``docs/observability.md`` for the metric catalog.  Instrumentation is
disabled by default (the current registry is a no-op
:class:`NullRegistry`); enable it by scoping a live registry::

    from repro.obs import MetricsRegistry, use_registry, write_metrics

    reg = MetricsRegistry()
    with use_registry(reg):
        build("lpm_greedy", hierarchy, metric, budget=100)
    write_metrics(reg, "run.jsonl", "json")

or from the CLI with ``repro <cmd> --metrics run.jsonl`` and inspect
the result with ``repro stats run.jsonl``.
"""

from .registry import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    HistogramInstrument,
    MetricsRegistry,
    NullRegistry,
    SpanRecord,
    Timer,
    get_registry,
    set_registry,
    use_registry,
)
from .spans import Span, current_span, span
from .export import (
    EXPORT_FORMATS,
    load_jsonl,
    registry_records,
    render_summary,
    render_span_tree,
    to_csv,
    to_jsonl,
    to_prometheus,
    write_metrics,
)
from .snapshots import (
    RegistrySnapshot,
    bucket_quantile,
    emit_window_record,
    snapshot_delta,
    take_snapshot,
)
from .quality import (
    QUALITY_GAUGES,
    QualityTracker,
    WindowQuality,
    drift_score,
    normalized_distribution,
    occupancy_entropy,
    occupancy_skew,
    total_variation,
)
from .journal import (
    NULL_JOURNAL,
    BufferJournal,
    EventJournal,
    NullJournal,
    get_journal,
    read_journal,
    set_journal,
    use_journal,
)
from .crossproc import (
    WIRE_SNAPSHOT_VERSION,
    capture_worker_snapshot,
    merge_snapshot,
    merge_worker_snapshots,
    parse_instrument_key,
    replay_worker_events,
    shard_tenant_summary,
    snapshot_from_wire,
    snapshot_to_wire,
    worker_resource_events,
)
from .resources import (
    PROC_GAUGES,
    ResourceSample,
    export_resources,
    resource_delta,
    sample_resources,
)
from .lifecycle import (
    DELIVERED_OUTCOMES,
    NULL_TRACER,
    OUTCOMES,
    LifecycleTracer,
    NullTracer,
    get_tracer,
    set_tracer,
    use_tracer,
)
from .slo import (
    NULL_SLO_ENGINE,
    Alert,
    NullSLOEngine,
    SLOEngine,
    SLORule,
    get_slo_engine,
    load_slo_file,
    parse_slo_rule,
    parse_slo_spec,
    set_slo_engine,
    use_slo_engine,
)
from .chrometrace import chrome_trace, unpaired_flows
from .server import MetricsServer, PeriodicMetricsWriter, parse_serve_spec
from .top import TopSource, TopState, load_state, render_top

__all__ = [
    # registry
    "Counter",
    "Gauge",
    "HistogramInstrument",
    "Timer",
    "SpanRecord",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "get_registry",
    "set_registry",
    "use_registry",
    # spans
    "span",
    "Span",
    "current_span",
    # exporters
    "EXPORT_FORMATS",
    "registry_records",
    "to_jsonl",
    "to_csv",
    "to_prometheus",
    "write_metrics",
    "load_jsonl",
    "render_summary",
    "render_span_tree",
    # windowed snapshots
    "RegistrySnapshot",
    "take_snapshot",
    "snapshot_delta",
    "emit_window_record",
    "bucket_quantile",
    # quality signals
    "WindowQuality",
    "QualityTracker",
    "QUALITY_GAUGES",
    "normalized_distribution",
    "total_variation",
    "drift_score",
    "occupancy_entropy",
    "occupancy_skew",
    # event journal
    "EventJournal",
    "BufferJournal",
    "NullJournal",
    "NULL_JOURNAL",
    "get_journal",
    "set_journal",
    "use_journal",
    "read_journal",
    # cross-process telemetry
    "WIRE_SNAPSHOT_VERSION",
    "parse_instrument_key",
    "snapshot_to_wire",
    "snapshot_from_wire",
    "capture_worker_snapshot",
    "merge_snapshot",
    "merge_worker_snapshots",
    "replay_worker_events",
    "worker_resource_events",
    "shard_tenant_summary",
    # resource profiling
    "ResourceSample",
    "PROC_GAUGES",
    "sample_resources",
    "resource_delta",
    "export_resources",
    # lifecycle tracing
    "LifecycleTracer",
    "NullTracer",
    "NULL_TRACER",
    "OUTCOMES",
    "DELIVERED_OUTCOMES",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    # SLOs and alerting
    "Alert",
    "SLORule",
    "SLOEngine",
    "NullSLOEngine",
    "NULL_SLO_ENGINE",
    "parse_slo_rule",
    "parse_slo_spec",
    "load_slo_file",
    "get_slo_engine",
    "set_slo_engine",
    "use_slo_engine",
    # Chrome trace export
    "chrome_trace",
    "unpaired_flows",
    # live surfaces
    "MetricsServer",
    "PeriodicMetricsWriter",
    "parse_serve_spec",
    "TopSource",
    "TopState",
    "load_state",
    "render_top",
]
