"""Distributed network monitoring — the paper's Figure 1 pipeline.

Simulates a Control Center and a fleet of Monitors watching a slice of
address space:

1. the Control Center compresses its WHOIS-style subnet table into a
   partitioning function using the past history of the stream;
2. Monitors partition the live identifier stream into per-bucket
   counters and ship one tiny histogram per window;
3. the Control Center merges the histograms, joins them with its key
   density table, and answers the per-subnet traffic query
   approximately — at a small fraction of the raw-stream bandwidth.

Run:  python examples/network_monitoring.py
"""

from repro import UIDDomain, get_metric
from repro.data import TrafficModel, generate_subnet_table
from repro.data.traffic import generate_timestamped_trace
from repro.streams import MonitoringSystem, Trace


def main() -> None:
    # The Control Center's lookup table over a 16-bit address space.
    domain = UIDDomain(16)
    table = generate_subnet_table(domain, seed=61)
    print(f"lookup table: {table}")

    # Two minutes of traffic: the first half is the "past history" used
    # to build the partitioning function, the second half is live.
    timestamps, uids = generate_timestamped_trace(
        table, 400_000, duration=120.0, seed=62, model=TrafficModel()
    )
    trace = Trace(timestamps, uids)
    history = trace.slice_time(0, 60)
    live = trace.slice_time(60, 120)
    print(f"history: {len(history)} packets; live: {len(live)} packets")

    for algorithm in ("nonoverlapping", "overlapping", "lpm_greedy"):
        system = MonitoringSystem(
            table,
            get_metric("rms"),
            num_monitors=4,
            algorithm=algorithm,
            budget=80,
        )
        system.train(history)
        report = system.run(live, window_width=15.0)
        print(f"\n[{algorithm}]")
        print(f"  windows decoded      : {len(report.windows)}")
        print(f"  mean RMS error       : {report.mean_error:.2f}")
        print(f"  histogram bytes      : {report.upstream_bytes}")
        print(f"  function-install bytes: {report.function_bytes}")
        print(f"  raw-stream bytes     : {report.raw_bytes}")
        print(f"  compression ratio    : {report.compression_ratio:.1f}x")

    # Peek at one decoded window's top groups.
    system = MonitoringSystem(
        table, get_metric("rms"), num_monitors=4,
        algorithm="lpm_greedy", budget=80,
    )
    system.train(history)
    cc = system.control_center
    monitor = system.monitors[0]
    window_uids = live.uids[:20_000]
    message = monitor.process_window(0, window_uids)
    answer = cc.approximate_answer([message])
    top = sorted(answer.items(), key=lambda kv: -kv[1])[:5]
    print("\ntop estimated subnets in one monitor's window:")
    for gid, est in top:
        print(f"  {gid}: ~{est:.0f} packets")


if __name__ == "__main__":
    main()
