"""Multidimensional hierarchical histograms (paper Section 4.2).

In ``d`` dimensions a bucket is a ``d``-tuple of hierarchy nodes — a
rectangular region (Figure 12).  Groups are the tiles of the product
grid of per-dimension group cuts (e.g. source-subnet x
destination-subnet).  The dynamic programs recurse on rectangular
regions, at each step splitting the region in half along one dimension
(the paper's recurrences for two dimensions; this implementation
handles any fixed ``d``):

* nonoverlapping (the recurrence at the end of Section 4.2's first
  block): ``E[(i1..id), B]`` with a budget knapsack per split;
* overlapping (Figure 13): an enclosing-bucket-region parameter is
  carried, and a region may become a bucket region itself.

Unlike the one-dimensional modules this one materializes the group
grid, so it targets the moderate dimensionalities/scales of the paper's
multidimensional experiments, not the million-group 1-D workloads.
Splits are only taken where they do not slice a group tile, so buckets
always respect group boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.domain import ROOT, UIDDomain
from ..core.errors import DistributiveErrorMetric, PenaltyMetric
from ..obs import span
from .base import INF
from .kernels import kernel_mode, knapsack_merge

__all__ = ["GridGroups", "MultiDimResult", "build_nonoverlapping_nd",
           "build_overlapping_nd", "evaluate_nd"]

Region = Tuple[int, ...]


class GridGroups:
    """The product-grid group structure of a d-dimensional query.

    Parameters
    ----------
    domains:
        One :class:`UIDDomain` per dimension.
    cuts:
        Per dimension, the group nodes along that dimension — a
        nonoverlapping covering cut of the domain (e.g. the subnet
        table for source addresses).
    counts:
        d-dimensional array of tile counts, ``counts[i1, ..., id]``
        being the count of the group at cut position ``i`` of each
        dimension.
    """

    def __init__(
        self,
        domains: Sequence[UIDDomain],
        cuts: Sequence[Sequence[int]],
        counts: np.ndarray,
    ) -> None:
        if len(domains) != len(cuts):
            raise ValueError("one cut per domain required")
        self.domains = list(domains)
        self.cuts: List[List[int]] = []
        self.boundaries: List[np.ndarray] = []
        for dom, cut in zip(domains, cuts):
            ranges = sorted(dom.uid_range(n) for n in cut)
            ordered = sorted(cut, key=dom.uid_range)
            if ranges[0][0] != 0 or ranges[-1][1] != dom.num_uids or any(
                a[1] != b[0] for a, b in zip(ranges, ranges[1:])
            ):
                raise ValueError(
                    "each dimension's group nodes must form a covering cut"
                )
            self.cuts.append(ordered)
            self.boundaries.append(
                np.asarray([r[0] for r in ranges] + [dom.num_uids])
            )
        counts = np.asarray(counts, dtype=np.float64)
        expected = tuple(len(c) for c in self.cuts)
        if counts.shape != expected:
            raise ValueError(
                f"counts shape {counts.shape} != grid shape {expected}"
            )
        self.counts = counts

    @property
    def ndim(self) -> int:
        return len(self.domains)

    @property
    def root_region(self) -> Region:
        return tuple(ROOT for _ in self.domains)

    def tile_slice(self, region: Region) -> Optional[Tuple[slice, ...]]:
        """The grid slice covered by a region, or ``None`` if the region
        is misaligned (strictly inside a tile in some dimension)."""
        out = []
        for dim, node in enumerate(region):
            lo, hi = self.domains[dim].uid_range(node)
            b = self.boundaries[dim]
            a = int(np.searchsorted(b, lo))
            z = int(np.searchsorted(b, hi))
            if a >= len(b) or b[a] != lo or z >= len(b) or b[z] != hi:
                return None
            out.append(slice(a, z))
        return tuple(out)

    def can_split(self, region: Region, dim: int) -> bool:
        """Whether halving ``region`` along ``dim`` respects tile
        boundaries."""
        node = region[dim]
        dom = self.domains[dim]
        if dom.depth(node) >= dom.height:
            return False
        lo, hi = dom.uid_range(node)
        mid = (lo + hi) // 2
        b = self.boundaries[dim]
        k = int(np.searchsorted(b, mid))
        return k < len(b) and b[k] == mid

    def split(self, region: Region, dim: int) -> Tuple[Region, Region]:
        node = region[dim]
        left = list(region)
        right = list(region)
        left[dim] = UIDDomain.left_child(node)
        right[dim] = UIDDomain.right_child(node)
        return tuple(left), tuple(right)

    def region_tiles(self, region: Region) -> np.ndarray:
        sl = self.tile_slice(region)
        if sl is None:
            raise ValueError(f"region {region} is not tile-aligned")
        return self.counts[sl]

    def region_stats(self, region: Region) -> Tuple[float, int]:
        tiles = self.region_tiles(region)
        return float(tiles.sum()), int(tiles.size)

    def contains(self, outer: Region, inner: Region) -> bool:
        return all(
            UIDDomain.is_ancestor(o, i) for o, i in zip(outer, inner)
        )


@dataclass
class MultiDimResult:
    """Construction output: bucket regions per budget plus the curve."""

    curve: np.ndarray
    budget: int
    _materialize: object

    def error_at(self, b: int) -> float:
        b = min(b, self.budget)
        if b < 1:
            return INF
        return float(np.min(self.curve[1 : b + 1]))

    def buckets_at(self, b: int) -> List[Region]:
        b = min(b, self.budget)
        best = int(np.argmin(self.curve[1 : b + 1])) + 1
        return self._materialize(best)


def _grperr(
    grid: GridGroups, metric: PenaltyMetric, region: Region, density: float
) -> float:
    tiles = grid.region_tiles(region).ravel()
    pens = metric.penalty_array(tiles, density)
    return float(pens.sum()) if metric.combine == "sum" else float(pens.max())


def _finalize_curve(
    grid: GridGroups, metric: PenaltyMetric, penalties: np.ndarray
) -> np.ndarray:
    total_groups = float(grid.counts.size)
    if kernel_mode() == "naive":
        out = np.empty_like(penalties)
        for i, p in enumerate(penalties):
            out[i] = (
                INF if p == INF else metric.finalize_total(float(p), total_groups)
            )
        return out
    out = np.full(penalties.shape, INF)
    finite = penalties != INF
    if finite.any():
        out[finite] = metric.finalize_total_array(
            penalties[finite], total_groups
        )
    return out


def build_nonoverlapping_nd(
    grid: GridGroups, metric: PenaltyMetric, budget: int
) -> MultiDimResult:
    """Optimal d-dimensional nonoverlapping (rectangular-cut) histogram."""
    if budget < 1:
        raise ValueError(f"budget must be at least 1, got {budget}")
    tables: Dict[Region, np.ndarray] = {}
    choices: Dict[Region, List] = {}

    def solve(region: Region) -> np.ndarray:
        if region in tables:
            return tables[region]
        _total, ntiles = grid.region_stats(region)
        cap = min(budget, ntiles)
        table = np.full(cap + 1, INF)
        choice: List = [None] * (cap + 1)
        total, ntiles = grid.region_stats(region)
        table[1] = _grperr(grid, metric, region, total / ntiles)
        choice[1] = ("bucket",)
        for dim in range(grid.ndim):
            if not grid.can_split(region, dim):
                continue
            left, right = grid.split(region, dim)
            lt, rt = solve(left), solve(right)
            merged, split = knapsack_merge(lt, rt, cap, metric.combine)
            for B in range(2, min(cap, len(merged) - 1) + 1):
                if merged[B] < table[B]:
                    table[B] = merged[B]
                    choice[B] = ("split", dim, int(split[B]))
        tables[region] = table
        choices[region] = choice
        return table

    root = grid.root_region
    with span(
        "dp.nonoverlapping_nd.solve", budget=budget, ndim=grid.ndim,
        tiles=int(grid.counts.size),
    ) as sp:
        root_table = solve(root)
        sp.annotate(regions=len(tables))
    curve = np.full(budget + 1, INF)
    upto = min(budget, len(root_table) - 1)
    curve[1 : upto + 1] = _finalize_curve(grid, metric, root_table[1 : upto + 1])
    best = INF
    for b in range(1, budget + 1):
        best = min(best, curve[b])
        curve[b] = best

    def materialize(b: int) -> List[Region]:
        out: List[Region] = []
        stack = [(root, min(b, upto))]
        while stack:
            region, bb = stack.pop()
            table = tables[region]
            bb = min(bb, len(table) - 1)
            ch = choices[region][bb]
            if ch is None or ch[0] == "bucket" or bb == 1:
                out.append(region)
                continue
            _k, dim, c = ch
            left, right = grid.split(region, dim)
            stack.append((left, c))
            stack.append((right, bb - c))
        return out

    return MultiDimResult(curve=curve, budget=budget, _materialize=materialize)


def build_overlapping_nd(
    grid: GridGroups, metric: PenaltyMetric, budget: int
) -> MultiDimResult:
    """Optimal d-dimensional overlapping histogram (Figure 13).

    Bucket regions nest strictly inside their enclosing bucket region;
    every group is estimated from the density of its closest enclosing
    bucket region.  The root region is always a bucket.
    """
    if budget < 1:
        raise ValueError(f"budget must be at least 1, got {budget}")
    full_tables: Dict[Tuple[Region, Region], np.ndarray] = {}
    full_choices: Dict[Tuple[Region, Region], List] = {}
    bucket_tables: Dict[Region, np.ndarray] = {}
    bucket_choices: Dict[Region, List] = {}
    densities: Dict[Region, float] = {}

    def density(region: Region) -> float:
        if region not in densities:
            total, ntiles = grid.region_stats(region)
            densities[region] = total / ntiles if ntiles else 0.0
        return densities[region]

    def cap_of(region: Region) -> int:
        _t, ntiles = grid.region_stats(region)
        return min(budget, ntiles)

    def solve_bucket(region: Region) -> np.ndarray:
        """table[B] = best error for region as a bucket, B buckets total
        at/inside it."""
        if region in bucket_tables:
            return bucket_tables[region]
        cap = cap_of(region)
        table = np.full(cap + 1, INF)
        choice: List = [None] * (cap + 1)
        table[1] = _grperr(grid, metric, region, density(region))
        choice[1] = ("plain",)
        for dim in range(grid.ndim):
            if not grid.can_split(region, dim):
                continue
            left, right = grid.split(region, dim)
            lt = solve_full(left, region)
            rt = solve_full(right, region)
            merged, split = knapsack_merge(lt, rt, cap - 1, metric.combine)
            for Bin in range(len(merged)):
                B = Bin + 1
                if B <= cap and merged[Bin] < table[B]:
                    table[B] = merged[Bin]
                    choice[B] = ("split", dim, int(split[Bin]))
        bucket_tables[region] = table
        bucket_choices[region] = choice
        return table

    def solve_full(region: Region, j: Region) -> np.ndarray:
        """table[B] = best error for region given closest enclosing
        bucket region ``j`` (region itself may or may not be one)."""
        key = (region, j)
        if key in full_tables:
            return full_tables[key]
        cap = cap_of(region)
        table = np.full(cap + 1, INF)
        choice: List = [None] * (cap + 1)
        table[0] = _grperr(grid, metric, region, density(j))
        choice[0] = ("pass",)
        for dim in range(grid.ndim):
            if not grid.can_split(region, dim):
                continue
            left, right = grid.split(region, dim)
            lt = solve_full(left, j)
            rt = solve_full(right, j)
            merged, split = knapsack_merge(lt, rt, cap, metric.combine)
            for B in range(1, min(cap, len(merged) - 1) + 1):
                if merged[B] < table[B]:
                    table[B] = merged[B]
                    choice[B] = ("split", dim, int(split[B]))
        bt = solve_bucket(region)
        lim = min(len(table), len(bt))
        for B in range(1, lim):
            if bt[B] < table[B]:
                table[B] = bt[B]
                choice[B] = ("bucket",)
        full_tables[key] = table
        full_choices[key] = choice
        return table

    root = grid.root_region
    with span(
        "dp.overlapping_nd.solve", budget=budget, ndim=grid.ndim,
        tiles=int(grid.counts.size),
    ) as sp:
        root_table = solve_bucket(root)
        sp.annotate(
            regions=len(bucket_tables), full_states=len(full_tables)
        )
    curve = np.full(budget + 1, INF)
    upto = min(budget, len(root_table) - 1)
    curve[1 : upto + 1] = _finalize_curve(grid, metric, root_table[1 : upto + 1])
    best = INF
    for b in range(1, budget + 1):
        best = min(best, curve[b])
        curve[b] = best

    def collect_bucket(region: Region, b: int, out: List[Region]) -> None:
        table = bucket_tables[region]
        b = min(b, len(table) - 1)
        out.append(region)
        ch = bucket_choices[region][b]
        if ch is None or ch[0] == "plain" or b <= 1:
            return
        _k, dim, c = ch
        left, right = grid.split(region, dim)
        collect_full(left, c, region, out)
        collect_full(right, b - 1 - c, region, out)

    def collect_full(region: Region, b: int, j: Region, out: List[Region]) -> None:
        if b <= 0:
            return
        table = full_tables[(region, j)]
        b = min(b, len(table) - 1)
        ch = full_choices[(region, j)][b]
        if ch is None or ch[0] == "pass":
            return
        if ch[0] == "bucket":
            collect_bucket(region, b, out)
            return
        _k, dim, c = ch
        left, right = grid.split(region, dim)
        collect_full(left, c, j, out)
        collect_full(right, b - c, j, out)

    def materialize(b: int) -> List[Region]:
        out: List[Region] = []
        collect_bucket(root, min(b, upto), out)
        return out

    return MultiDimResult(curve=curve, budget=budget, _materialize=materialize)


def evaluate_nd(
    grid: GridGroups,
    buckets: Sequence[Region],
    metric: DistributiveErrorMetric,
    semantics: str = "overlapping",
) -> float:
    """Measured error of a d-dimensional bucket set.

    Every group tile is estimated from its closest enclosing bucket
    region (for nonoverlapping cuts that region is unique); tiles
    covered by no bucket are estimated as zero.  Under
    ``"longest_prefix_match"`` semantics, nested bucket regions are
    holes: a bucket's count and tile population both exclude the tiles
    of regions nested inside it (the d-dimensional analogue of the 1-D
    rule; the paper notes these extensions but omits the recurrences).
    """
    if semantics not in ("overlapping", "nonoverlapping",
                         "longest_prefix_match"):
        raise ValueError(f"unknown semantics {semantics!r}")
    # Shallower (larger) regions first so deeper assignments overwrite.
    def volume(region: Region) -> int:
        _t, ntiles = grid.region_stats(region)
        return ntiles

    ordered = sorted(buckets, key=volume, reverse=True)
    estimates = np.zeros_like(grid.counts)
    if semantics != "longest_prefix_match":
        for region in ordered:
            sl = grid.tile_slice(region)
            if sl is None:
                raise ValueError(
                    f"bucket region {region} is not tile-aligned"
                )
            total, ntiles = grid.region_stats(region)
            estimates[sl] = total / ntiles if ntiles else 0.0
        return metric.evaluate(grid.counts.ravel(), estimates.ravel())
    # LPM: assign each tile to its closest enclosing bucket, then use
    # per-bucket net totals/populations.
    owner = np.full(grid.counts.shape, -1, dtype=np.int64)
    for i, region in enumerate(ordered):
        sl = grid.tile_slice(region)
        if sl is None:
            raise ValueError(f"bucket region {region} is not tile-aligned")
        owner[sl] = i
    flat_owner = owner.ravel()
    flat_counts = grid.counts.ravel()
    for i in range(len(ordered)):
        mine = flat_owner == i
        pop = int(mine.sum())
        if not pop:
            continue
        net_total = float(flat_counts[mine].sum())
        estimates.ravel()[mine] = net_total / pop
    return metric.evaluate(flat_counts, estimates.ravel())


def build_lpm_greedy_nd(
    grid: GridGroups, metric: PenaltyMetric, budget: int
) -> MultiDimResult:
    """Greedy d-dimensional longest-prefix-match histograms.

    The 1-D greedy heuristic (Section 3.2.6) carries over unchanged:
    run the optimal overlapping DP, keep its (strictly nested) bucket
    regions, and reinterpret them under longest-prefix-match semantics,
    where nested regions are holes.  The returned curve reports the
    measured LPM error of each reinterpreted set.
    """
    over = build_overlapping_nd(grid, metric, budget)
    curve = np.full(budget + 1, INF)
    with span("lpm_greedy_nd.curve", budget=budget, ndim=grid.ndim):
        for b in range(1, budget + 1):
            if not np.isfinite(over.curve[b]):
                continue
            curve[b] = evaluate_nd(
                grid, over._materialize(b), metric,
                semantics="longest_prefix_match",
            )
    best = INF
    for b in range(1, budget + 1):
        best = min(best, curve[b])
        curve[b] = best

    def materialize(b: int) -> List[Region]:
        feasible = [
            bb for bb in range(1, min(b, budget) + 1)
            if np.isfinite(curve[bb])
        ]
        if not feasible:
            return [grid.root_region]
        return over._materialize(min(feasible, key=lambda bb: curve[bb]))

    return MultiDimResult(curve=curve, budget=budget,
                          _materialize=materialize)
