"""Figure 20: maximum relative error vs. number of buckets.

Paper claim (Section 5.1.4): the optimal overlapping histograms win —
minimizing a worst-case metric needs the DP's global guarantees.  The
greedy heuristic degrades badly here: its independence assumption
(removing a hole doesn't change the parent's mean) fails somewhere in
the hierarchy, and max-relative error surfaces the single worst choice.
"""

from repro.algorithms import build_overlapping

from figlib import figure_series, report_figure
from workloads import BUDGETS, figure_workload, metric_for

METRIC = "max_relative"


def test_fig20_series(benchmark):
    wl = figure_workload()
    metric = metric_for(METRIC, wl)
    b_max = max(BUDGETS)

    def construct():
        return build_overlapping(wl.hierarchy, metric, b_max)

    benchmark.pedantic(construct, rounds=1, iterations=1)
    report_figure("fig20", METRIC)
    series = figure_series(METRIC)
    mid, hi = 50, max(BUDGETS)
    # the overlapping optimum dominates every other histogram type
    for other in ("nonoverlapping", "greedy", "end_biased"):
        assert series["overlapping"][hi] <= series[other][hi] + 1e-9, other
    assert series["overlapping"][mid] <= series["end_biased"][mid] + 1e-9


if __name__ == "__main__":
    report_figure("fig20", METRIC)
