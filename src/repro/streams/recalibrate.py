"""Histogram recalibration under traffic drift.

The paper's deployment section leaves open "practical challenges in
terms of when and how to recalibrate the histograms based on the
history of the UID stream" (Section 6).  This module implements the
natural design:

* :class:`BucketDriftDetector` — the Control Center cannot see raw
  identifiers, but it *can* watch the histograms themselves: the
  normalized per-bucket distribution of each window is compared (total
  variation distance) against the distribution the function was trained
  on, and identifiers that match no bucket are counted.  Sustained
  drift beyond a threshold recommends a rebuild.
* :class:`AdaptiveMonitoringSystem` — a monitoring system that retrains
  its partitioning function from the warehouse of past windows whenever
  the detector fires (the paper notes Monitors' logs reach a warehouse
  on a non-real-time basis, so exact history is available for
  *re*construction even though live decoding is approximate).

Rebuilds cost downstream bandwidth (the new function must be installed
on every Monitor), which the channel accounts for as usual — the bench
harness measures the drift/accuracy/bandwidth triangle this creates.
Construction cost, by contrast, is often avoidable: a jittery detector
can fire while the warehouse still holds the same recent windows, and
the Control Center's rebuild cache (see
:mod:`repro.streams.control_center`) then reinstalls the memoized
function instead of re-running the dynamic programs.

Under a faulty channel a rebuild's installs can be *partially*
delivered: some Monitors run the new function while others still hold
the old one.  Recalibration tolerates this — failed installs are left
to the run loop's install scheduler (retry with capped exponential
backoff), and until the fleet converges the Control Center's
``stale_policy`` decides whether mixed-version windows are decoded
from the covered part of the fleet (``"quarantine"``/``"rescale"``) or
rejected (``"strict"``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

import numpy as np

from ..core.partition import Histogram
from ..obs import get_journal, get_registry
from ..obs.quality import drift_score, normalized_distribution
from .control_center import DecodedWindow
from .system import _UNSET, MonitoringSystem, SystemReport
from .tuples import Trace

__all__ = ["BucketDriftDetector", "AdaptiveMonitoringSystem"]


class BucketDriftDetector:
    """Detects distribution drift from histogram streams alone.

    Parameters
    ----------
    threshold:
        Total-variation distance (plus unmatched fraction) above which
        a window counts as drifted.
    patience:
        Number of consecutive drifted windows before recommending a
        rebuild (a single bursty window should not retrain the world).
    """

    def __init__(self, threshold: float = 0.25, patience: int = 2) -> None:
        if not 0 < threshold <= 2:
            raise ValueError(f"threshold must be in (0, 2], got {threshold}")
        if patience < 1:
            raise ValueError(f"patience must be at least 1, got {patience}")
        self.threshold = threshold
        self.patience = patience
        self._reference: Optional[Dict[int, float]] = None
        self._streak = 0
        self.last_score = 0.0

    @staticmethod
    def _normalize(hist: Histogram) -> Dict[int, float]:
        return normalized_distribution(hist.counts, hist.unmatched)

    def set_reference(self, histogram: Histogram) -> None:
        """Anchor the detector to the traffic the function was built
        for (typically the first live window after training)."""
        self._reference = self._normalize(histogram)
        self._streak = 0

    def reset(self) -> None:
        """Drop the reference distribution (and any drift streak); the
        next observed window re-anchors the detector.  Called after a
        recalibration so drift is measured against the traffic the
        *new* function serves, not the pre-rebuild baseline."""
        self._reference = None
        self._streak = 0

    def score(self, histogram: Histogram) -> float:
        """Drift of one window: total-variation distance between bucket
        distributions, plus the unmatched-traffic fraction (delegates
        to :mod:`repro.obs.quality` so the ``quality.drift_score``
        gauge and the recalibration trigger agree by construction)."""
        if self._reference is None:
            return 0.0
        return drift_score(
            self._reference, histogram.counts, histogram.unmatched
        )

    def observe(self, histogram: Histogram) -> bool:
        """Feed one window's merged histogram; returns True when a
        rebuild is recommended."""
        if self._reference is None:
            self.set_reference(histogram)
            return False
        self.last_score = self.score(histogram)
        if self.last_score > self.threshold:
            self._streak += 1
        else:
            self._streak = 0
        if self._streak >= self.patience:
            self._streak = 0
            return True
        return False


@dataclass
class AdaptiveReport(SystemReport):
    """System report extended with recalibration events."""

    rebuilds: List[int] = field(default_factory=list)
    drift_scores: List[float] = field(default_factory=list)


class AdaptiveMonitoringSystem(MonitoringSystem):
    """A monitoring system that retrains on detected drift.

    The warehouse keeps the exact counts of recent windows (Monitors'
    logs); on a rebuild the partitioning function is reconstructed from
    the last ``warehouse_windows`` of them and re-installed on every
    Monitor.
    """

    def __init__(
        self,
        *args,
        detector: Optional[BucketDriftDetector] = None,
        warehouse_windows: int = 3,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if warehouse_windows < 1:
            raise ValueError("warehouse_windows must be at least 1")
        self.detector = detector or BucketDriftDetector()
        self.warehouse_windows = warehouse_windows
        # Bounded window log with a maintained running sum, so a
        # rebuild reads its history counts in O(|G|) instead of
        # re-summing the whole warehouse.  Exact for the integer-valued
        # counts the system aggregates (float64 adds/subtracts of
        # integers below 2**53 are lossless).
        self._warehouse: Deque[np.ndarray] = deque(maxlen=warehouse_windows)
        self._warehouse_sum: Optional[np.ndarray] = None

    def _install(self, counts: np.ndarray) -> None:
        """Rebuild and push the new function to the fleet — best
        effort.

        Each Monitor gets one transmission now; installs the channel
        loses are *not* retried here.  The run loop's install scheduler
        picks the laggards up on subsequent windows, so a partially
        installed function is a transient mixed-version fleet handled
        by the decode policy, not an error.
        """
        function = self.control_center.rebuild_function(counts)
        version = self.control_center.function_version
        for monitor in self.monitors:
            if self.channel.send_function(function, version=version):
                monitor.install_function(function, version)

    def _after_window(
        self,
        window: int,
        decoded: DecodedWindow,
        actual: np.ndarray,
        report: SystemReport,
    ) -> None:
        # Warehouse logging (non-real-time in a deployment).
        if self._warehouse_sum is None:
            self._warehouse_sum = np.zeros_like(actual, dtype=np.float64)
        if len(self._warehouse) == self.warehouse_windows:
            self._warehouse_sum -= self._warehouse[0]  # about to evict
        self._warehouse.append(actual)
        self._warehouse_sum += actual
        # Drift decision from the (deduplicated, current-version)
        # histogram stream alone.
        rebuild = self.detector.observe(decoded.merged)
        report.drift_scores.append(self.detector.last_score)
        registry = get_registry()
        journal = get_journal()
        if registry.enabled:
            registry.histogram("system.drift.score").observe(
                self.detector.last_score
            )
        if journal.enabled:
            journal.emit(
                "drift", window=window, score=self.detector.last_score
            )
        if rebuild:
            # Copy: the running sum mutates in place every window, and
            # the rebuild path fingerprints / retains what we hand it.
            history = self._warehouse_sum.copy()
            self._install(history)
            self.detector.reset()  # re-anchor next window
            report.rebuilds.append(window)
            if registry.enabled:
                registry.counter("system.recalibrations").inc()
            if journal.enabled:
                journal.emit(
                    "recalibration",
                    window=window,
                    version=self.control_center.function_version,
                )

    def run(
        self,
        live: Trace,
        window_width: float,
        split_seed: int = 0,
        faults: object = _UNSET,
    ) -> AdaptiveReport:
        active = self.faults if faults is _UNSET else faults
        return self._run_windows(
            live, window_width, split_seed, active, AdaptiveReport()
        )
