"""Unified entry point for histogram construction.

Maps algorithm names to builders so that the monitoring substrate, the
bench harness and user code can select construction strategies by
configuration.  All builders share the signature
``(hierarchy, metric, budget, **options) -> ConstructionResult``.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

from ..core.errors import PenaltyMetric
from ..core.hierarchy import PrunedHierarchy
from ..obs import get_registry, span
from .base import ConstructionResult
from .lpm_greedy import build_lpm_greedy
from .lpm_kholes import build_lpm_kholes
from .lpm_quantized import build_lpm_quantized
from .nonoverlapping import build_nonoverlapping
from .overlapping import build_overlapping

__all__ = ["ALGORITHMS", "build", "available_algorithms"]

ALGORITHMS: Dict[str, Callable[..., ConstructionResult]] = {
    "nonoverlapping": build_nonoverlapping,
    "overlapping": build_overlapping,
    "lpm_greedy": build_lpm_greedy,
    "lpm_quantized": build_lpm_quantized,
    "lpm_kholes": build_lpm_kholes,
}


def build(
    algorithm: str,
    hierarchy: PrunedHierarchy,
    metric: PenaltyMetric,
    budget: int,
    memo=None,
    **options,
) -> ConstructionResult:
    """Construct a partitioning function with the named algorithm.

    ``memo`` is an optional incremental-rebuild session (see
    :mod:`repro.algorithms.incremental`) forwarded to builders that
    support subtree-memoized sweeps; it never changes the result, only
    how much of the DP is re-run.

    >>> from repro.algorithms.construct import build  # doctest: +SKIP
    >>> result = build("lpm_greedy", hierarchy, metric, budget=100)
    """
    try:
        builder = ALGORITHMS[algorithm]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(
            f"unknown construction algorithm {algorithm!r}; known: {known}"
        )
    if memo is not None:
        options = {**options, "memo": memo}
    with span(
        "build", algorithm=algorithm, budget=budget,
        nodes=len(hierarchy.nodes),
    ) as sp:
        result = builder(hierarchy, metric, budget, **options)
        sp.annotate(**result.stats)
    registry = get_registry()
    if registry.enabled:
        registry.timer("build.duration", algorithm=algorithm).observe(
            sp.duration
        )
        registry.counter("build.calls", algorithm=algorithm).inc()
        registry.counter("build.size.nodes", algorithm=algorithm).inc(
            len(hierarchy.nodes)
        )
        registry.counter("build.size.budget", algorithm=algorithm).inc(budget)
        for key, value in result.stats.items():
            registry.gauge(
                f"build.stats.{key}", algorithm=algorithm
            ).set(value)
    return result


def available_algorithms() -> Iterable[str]:
    return sorted(ALGORITHMS)
