"""Histogram construction algorithms (paper Section 3) and refinements
(Section 4)."""

from .arbitrary import ANode, ArbitraryHierarchy
from .base import INF, ConstructionResult, DPContext, knapsack_merge
from .construct import ALGORITHMS, available_algorithms, build
from .kernels import (
    KERNEL_MODES,
    kernel_mode,
    knapsack_merge_reference,
    knapsack_merge_vectorized,
    set_kernel_mode,
    use_kernel_mode,
)
from .exhaustive import (
    candidate_buckets,
    exhaustive_lpm,
    exhaustive_nonoverlapping,
    exhaustive_overlapping,
)
from .lpm_greedy import bucket_approx_errors, build_lpm_greedy
from .lpm_kholes import build_lpm_kholes, split_to_k_holes
from .lpm_quantized import Quantizer, build_lpm_quantized
from .multidim import (
    GridGroups,
    MultiDimResult,
    build_lpm_greedy_nd,
    build_nonoverlapping_nd,
    build_overlapping_nd,
    evaluate_nd,
)
from .nonoverlapping import build_nonoverlapping
from .overlapping import OverlappingDP, build_overlapping

__all__ = [
    "INF",
    "ConstructionResult",
    "DPContext",
    "knapsack_merge",
    "knapsack_merge_reference",
    "knapsack_merge_vectorized",
    "KERNEL_MODES",
    "kernel_mode",
    "set_kernel_mode",
    "use_kernel_mode",
    "build",
    "ALGORITHMS",
    "available_algorithms",
    "build_nonoverlapping",
    "build_overlapping",
    "OverlappingDP",
    "build_lpm_greedy",
    "bucket_approx_errors",
    "build_lpm_kholes",
    "split_to_k_holes",
    "build_lpm_quantized",
    "Quantizer",
    "exhaustive_nonoverlapping",
    "exhaustive_overlapping",
    "exhaustive_lpm",
    "candidate_buckets",
    "GridGroups",
    "MultiDimResult",
    "build_nonoverlapping_nd",
    "build_lpm_greedy_nd",
    "build_overlapping_nd",
    "evaluate_nd",
    "ANode",
    "ArbitraryHierarchy",
]
