"""Serving-layer perf harness: sharded ingest + wire fan-in vs serial.

Times the end-to-end window lifecycle of the serial
:class:`~repro.streams.MonitoringSystem` against the
:class:`~repro.serving.ShardedMonitoringSystem` at ``shards`` ∈
{1, 2, 4} over a grid of growing workloads, measuring both:

* **ingest+decode phase time** — the part of the run the serving layer
  actually rearchitects: histogram construction + wire encode (serial:
  one ``process_window`` + scalar encode per (monitor, window) job;
  sharded: the shard prefetch pass — shared-memory fill, worker
  build/encode/pack, result fan-in) plus window decode (serial:
  parse × k payloads, merge, re-estimate; sharded: one k-way
  ``merge_views`` at the tenant boundary).  Scaffolding both runs
  share unchanged (trace split, window segmentation, exact ground
  truth, channel/fault bookkeeping) is excluded from this phase
  metric and included in the full-run wall time.
* **full-run wall time** — ``system.run()`` end to end.

Every timed pair is also checked for **report identity**: the sharded
``SystemReport`` must equal the serial one (dataclass equality), clean
and under a seeded fault model.  Timing is interleaved
(serial/sharded alternate within each repetition) and best-of-N so
load drift on a busy box hits both sides equally.

Extra legs:

* ``--mode threads`` (or ``all``) — the GIL-bound comparison:
  ``parallel=N`` threads vs ``shards=N`` processes at the largest grid
  point (recorded in ``docs/performance.md``).
* tenant scaling — a :class:`~repro.serving.ServingEngine` fleet
  sharing one :class:`~repro.serving.SharedServingCache`, with cache
  hit/miss stats and admission outcomes.
* observability overhead — every grid point reruns the top shard
  count with a live metrics registry + journal (worker snapshot
  fan-in, resource profiler, shard/tenant rollups all active) and
  records the cost ratio against the uninstrumented sharded run,
  asserting the report stays identical to an instrumented serial run.

Usage::

    python benchmarks/bench_serving.py                 # full grid
    python benchmarks/bench_serving.py --grid tiny     # CI smoke grid
    python benchmarks/bench_serving.py --mode all      # + threads leg
"""

from __future__ import annotations

import argparse
import io
import json
import os
import time
from typing import Dict, List, Optional

from repro.core.domain import UIDDomain
from repro.core.errors import AverageError
from repro.data import TrafficModel, generate_subnet_table
from repro.data.traffic import generate_timestamped_trace
from repro.obs import EventJournal, MetricsRegistry, use_journal, use_registry
from repro.serving import ServingEngine, SharedServingCache, ShardedMonitoringSystem
from repro.streams import FaultModel, MonitoringSystem, Trace

SCHEMA = "repro.bench_serving.v1"

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir,
    "BENCH_serving.json",
)

#: (height, tuples, window_width, monitors, budget) rows — tuples and
#: window count both grow monotonically, so the last row is the
#: largest grid point (the acceptance point for the shards=4 target).
FULL_SIZES = [
    (16, 200_000, 1.0, 4, 100),
    (16, 400_000, 0.5, 4, 100),
    (16, 800_000, 0.25, 4, 100),
]
TINY_SIZES = [(12, 40_000, 8.0, 4, 50)]

SHARD_COUNTS = (1, 2, 4)

#: Seeded fault mix for the report-identity-under-faults leg.
FAULTS = dict(
    drop=0.05, duplicate=0.03, delay=0.04, max_delay_windows=3,
    reorder=0.1, crash=0.002, install_drop=0.1, seed=23,
)


def _workload(height: int, tuples: int):
    table = generate_subnet_table(
        UIDDomain(height), seed=7, base_stop=0.05, depth_ramp=0.02
    )
    model = TrafficModel(
        mode="zipf", active_fraction=0.5, zipf_exponent=1.1
    )
    ts, uids = generate_timestamped_trace(
        table, tuples, duration=1024.0, seed=11, model=model
    )
    half = len(uids) // 2
    history = Trace(ts[:half], uids[:half])
    live = Trace(ts[half:], uids[half:])
    return table, history, live


def _phase_timers(system) -> Dict[str, float]:
    """Wrap the system's ingest and decode entry points with timers.

    Returns the accumulator dict; ``ingest`` collects
    ``_partition_jobs`` (and, for sharded systems, the prefetch pass
    minus its split/segment/ground-truth scaffolding — work the serial
    run performs identically), ``decode`` collects
    ``decode_window``.  Call :func:`_unwrap_timers` after the run.
    """
    t = {"ingest": 0.0, "decode": 0.0, "scaffold": 0.0}

    pj = system.__class__._partition_jobs.__get__(system)

    def timed_pj(pool, jobs):
        t0 = time.perf_counter()
        result = pj(pool, jobs)
        t["ingest"] += time.perf_counter() - t0
        return result

    system._partition_jobs = timed_pj

    if hasattr(system, "_prefetch"):
        pf = system.__class__._prefetch.__get__(system)
        seg = system.__class__._segment_shares.__get__(system)
        tru = system.__class__._prefetch_truth.__get__(system)

        def timed_seg(*args):
            t0 = time.perf_counter()
            result = seg(*args)
            t["scaffold"] += time.perf_counter() - t0
            return result

        def timed_tru(*args):
            t0 = time.perf_counter()
            tru(*args)
            t["scaffold"] += time.perf_counter() - t0

        def timed_pf(*args):
            system._segment_shares = timed_seg
            system._prefetch_truth = timed_tru
            t0 = time.perf_counter()
            pf(*args)
            t["ingest"] += time.perf_counter() - t0 - t["scaffold"]
            del system._segment_shares, system._prefetch_truth

        system._prefetch = timed_pf

    dw = system.control_center.__class__.decode_window.__get__(
        system.control_center
    )

    def timed_dw(*args, **kwargs):
        t0 = time.perf_counter()
        result = dw(*args, **kwargs)
        t["decode"] += time.perf_counter() - t0
        return result

    system.control_center.decode_window = timed_dw
    return t


def _unwrap_timers(system) -> None:
    for attr in ("_partition_jobs", "_prefetch"):
        system.__dict__.pop(attr, None)
    system.control_center.__dict__.pop("decode_window", None)


def _bench_point(
    height: int, tuples: int, width: float, monitors: int, budget: int,
    reps: int,
) -> Dict[str, object]:
    table, history, live = _workload(height, tuples)
    metric = AverageError()

    serial = MonitoringSystem(
        table, metric, num_monitors=monitors, budget=budget
    )
    serial.train(history)
    sharded = {}
    for shards in SHARD_COUNTS:
        system = ShardedMonitoringSystem(
            table, metric, num_monitors=monitors, shards=shards,
            budget=budget,
        )
        system.train(history)
        sharded[shards] = system

    # Warm-up (pages, pools, compiled caches) — untimed.
    serial_report = serial.run(live, window_width=width)
    shard_reports = {
        k: s.run(live, window_width=width) for k, s in sharded.items()
    }

    serial_total: List[float] = []
    serial_phase: List[float] = []
    shard_total: Dict[int, List[float]] = {k: [] for k in SHARD_COUNTS}
    shard_phase: Dict[int, List[float]] = {k: [] for k in SHARD_COUNTS}
    for _rep in range(reps):
        timers = _phase_timers(serial)
        t0 = time.perf_counter()
        serial_report = serial.run(live, window_width=width)
        serial_total.append(time.perf_counter() - t0)
        serial_phase.append(timers["ingest"] + timers["decode"])
        _unwrap_timers(serial)
        for shards, system in sharded.items():
            timers = _phase_timers(system)
            t0 = time.perf_counter()
            shard_reports[shards] = system.run(live, window_width=width)
            shard_total[shards].append(time.perf_counter() - t0)
            shard_phase[shards].append(timers["ingest"] + timers["decode"])
            _unwrap_timers(system)

    # Report identity, clean and faulty (faults only at shards=4 — one
    # serial + one sharded extra run per point).
    identical = {
        k: shard_reports[k] == serial_report for k in SHARD_COUNTS
    }
    serial_faulty = serial.run(
        live, window_width=width, faults=FaultModel(**FAULTS)
    )
    sharded_faulty = sharded[max(SHARD_COUNTS)].run(
        live, window_width=width, faults=FaultModel(**FAULTS)
    )
    faulty_identical = sharded_faulty == serial_faulty

    # Observability-overhead guardrail: the top shard count rerun with
    # a live registry + journal (worker fan-in, resource profiler, the
    # whole cross-process telemetry path) must stay report-identical to
    # a serial run under the same instrumentation, and its cost lands
    # in the report as its own column.  Serial and sharded interleave
    # with fresh sinks per rep, keeping both systems' run counts in
    # lockstep (channel byte totals accumulate per system, so reports
    # only compare equal between systems with identical run histories).
    top_shards = max(SHARD_COUNTS)
    serial_tel_total: List[float] = []
    shard_tel_total: List[float] = []
    serial_telemetry = telemetry_report = None
    for _rep in range(reps):
        with use_registry(MetricsRegistry()), \
                use_journal(EventJournal(io.StringIO())):
            t0 = time.perf_counter()
            serial_telemetry = serial.run(live, window_width=width)
            serial_tel_total.append(time.perf_counter() - t0)
        with use_registry(MetricsRegistry()), \
                use_journal(EventJournal(io.StringIO())):
            t0 = time.perf_counter()
            telemetry_report = sharded[top_shards].run(
                live, window_width=width
            )
            shard_tel_total.append(time.perf_counter() - t0)
    telemetry_identical = telemetry_report == serial_telemetry

    prefetch_misses = {
        k: sharded[k].prefetch_misses for k in SHARD_COUNTS
    }
    for system in sharded.values():
        system.close()

    live_tuples = sum(w.tuples for w in serial_report.windows)
    best_serial = min(serial_total)
    best_serial_phase = min(serial_phase)
    point = {
        "workload": {
            "height": height,
            "tuples": tuples,
            "live_tuples": live_tuples,
            "windows": len(serial_report.windows),
            "window_width": width,
            "monitors": monitors,
            "budget": budget,
            "traffic": "zipf(active=0.5, s=1.1)",
        },
        "reps": reps,
        "serial": {
            "full_run_s": round(best_serial, 6),
            "ingest_decode_s": round(best_serial_phase, 6),
            "tuples_per_sec": round(live_tuples / best_serial, 1),
        },
        "shards": {},
        "faulty_identical_shards_%d" % max(SHARD_COUNTS): faulty_identical,
        "telemetry": {
            "shards": top_shards,
            "full_run_s": round(min(shard_tel_total), 6),
            "overhead_vs_plain": round(
                min(shard_tel_total) / min(shard_total[top_shards]), 3
            ),
            "serial_full_run_s": round(min(serial_tel_total), 6),
            "serial_overhead_vs_plain": round(
                min(serial_tel_total) / best_serial, 3
            ),
            "report_identical": telemetry_identical,
        },
    }
    for shards in SHARD_COUNTS:
        best = min(shard_total[shards])
        best_phase = min(shard_phase[shards])
        point["shards"][str(shards)] = {
            "full_run_s": round(best, 6),
            "ingest_decode_s": round(best_phase, 6),
            "tuples_per_sec": round(live_tuples / best, 1),
            "full_run_speedup": round(best_serial / best, 3),
            "ingest_decode_speedup": round(best_serial_phase / best_phase, 3),
            "report_identical": identical[shards],
            "prefetch_misses": prefetch_misses[shards],
        }
    return point


def _bench_threads(
    height: int, tuples: int, width: float, monitors: int, budget: int,
    workers: int, reps: int,
) -> Dict[str, object]:
    """The GIL bound: ``parallel=N`` threads against ``shards=N``
    processes on the same workload.  Thread workers run the same
    compiled kernels but share one interpreter lock, so per-window
    Python overhead (message assembly, encode bookkeeping, accounting)
    serializes; the shard processes pay IPC instead and batch that
    overhead away."""
    table, history, live = _workload(height, tuples)
    metric = AverageError()
    seconds: Dict[str, float] = {}
    reports = {}
    serial = MonitoringSystem(
        table, metric, num_monitors=monitors, budget=budget, parallel=1
    )
    threaded = MonitoringSystem(
        table, metric, num_monitors=monitors, budget=budget,
        parallel=workers,
    )
    sharded = ShardedMonitoringSystem(
        table, metric, num_monitors=monitors, shards=workers,
        budget=budget,
    )
    systems = {
        "serial": serial,
        "threads_%d" % workers: threaded,
        "shards_%d" % workers: sharded,
    }
    for system in systems.values():
        system.train(history)
        system.run(live, window_width=width)  # warm-up
    for name, system in systems.items():
        best = float("inf")
        for _rep in range(reps):
            t0 = time.perf_counter()
            reports[name] = system.run(live, window_width=width)
            best = min(best, time.perf_counter() - t0)
        seconds[name] = best
    sharded.close()
    live_tuples = sum(w.tuples for w in reports["serial"].windows)
    doc = {
        "workload": {
            "height": height, "tuples": tuples, "window_width": width,
            "monitors": monitors, "budget": budget, "workers": workers,
        },
        "seconds": {k: round(v, 6) for k, v in seconds.items()},
        "tuples_per_sec": {
            k: round(live_tuples / v, 1) for k, v in seconds.items()
        },
        "thread_speedup": round(
            seconds["serial"] / seconds["threads_%d" % workers], 3
        ),
        "process_speedup": round(
            seconds["serial"] / seconds["shards_%d" % workers], 3
        ),
        "reports_identical": all(
            r == reports["serial"] for r in reports.values()
        ),
    }
    doc["crossover"] = (
        "processes" if doc["process_speedup"] > doc["thread_speedup"]
        else "threads"
    )
    return doc


def _bench_tenants(
    height: int, tuples: int, width: float, budget: int, n_tenants: int,
) -> Dict[str, object]:
    """Multi-tenant fleet over one shared cache: every tenant after the
    first should reuse the canonical table's compiled state and the
    finished rebuild, so marginal tenant cost is a run, not a build."""
    table, history, live = _workload(height, tuples)
    cache = SharedServingCache()
    spec = ";".join(
        "tenant-%d:budget=%d,bytes=50000000" % (i, budget)
        for i in range(n_tenants)
    )
    t0 = time.perf_counter()
    with ServingEngine(
        table, AverageError(), spec, shards=2,
        capacity_bytes=50_000_000 * n_tenants, cache=cache,
    ) as engine:
        results = engine.run(history, live, window_width=width)
    elapsed = time.perf_counter() - t0
    reports = [r.report for r in results.values() if r.admitted]
    return {
        "workload": {
            "height": height, "tuples": tuples, "window_width": width,
            "budget": budget, "tenants": n_tenants, "shards": 2,
        },
        "seconds": round(elapsed, 6),
        "admitted": sum(1 for r in results.values() if r.admitted),
        "rejected": sum(1 for r in results.values() if not r.admitted),
        "identical_reports": all(r == reports[0] for r in reports),
        "cache": cache.stats(),
    }


def run_grid(grid: str, mode: str, reps: int) -> Dict[str, object]:
    sizes = TINY_SIZES if grid == "tiny" else FULL_SIZES
    points: List[Dict[str, object]] = []
    for height, tuples, width, monitors, budget in sizes:
        point = _bench_point(height, tuples, width, monitors, budget, reps)
        points.append(point)
        top = point["shards"][str(max(SHARD_COUNTS))]
        print(
            "h=%d n=%d windows=%d: shards=%d ingest+decode %sx, "
            "full run %sx, identical=%s, faulty_identical=%s, "
            "telemetry %sx cost (identical=%s)"
            % (
                height, tuples, point["workload"]["windows"],
                max(SHARD_COUNTS), top["ingest_decode_speedup"],
                top["full_run_speedup"], top["report_identical"],
                point["faulty_identical_shards_%d" % max(SHARD_COUNTS)],
                point["telemetry"]["overhead_vs_plain"],
                point["telemetry"]["report_identical"],
            )
        )
    largest = points[-1]
    top = largest["shards"][str(max(SHARD_COUNTS))]
    doc: Dict[str, object] = {
        "schema": SCHEMA,
        "generated_by": "benchmarks/bench_serving.py",
        "grid": grid,
        "mode": mode,
        "shard_counts": list(SHARD_COUNTS),
        "points": points,
        "largest_point": {
            "tuples": largest["workload"]["tuples"],
            "windows": largest["workload"]["windows"],
            "ingest_decode_speedup": {
                k: v["ingest_decode_speedup"]
                for k, v in largest["shards"].items()
            },
            "full_run_speedup": {
                k: v["full_run_speedup"]
                for k, v in largest["shards"].items()
            },
            "meets_3x_ingest_decode": bool(
                top["ingest_decode_speedup"] >= 3.0
            ),
        },
        "all_reports_identical": all(
            v["report_identical"]
            for p in points
            for v in p["shards"].values()
        ),
        "all_faulty_identical": all(
            p["faulty_identical_shards_%d" % max(SHARD_COUNTS)]
            for p in points
        ),
        "all_telemetry_identical": all(
            p["telemetry"]["report_identical"] for p in points
        ),
        "max_telemetry_overhead": max(
            p["telemetry"]["overhead_vs_plain"] for p in points
        ),
    }
    if mode in ("threads", "all"):
        height, tuples, width, monitors, budget = sizes[-1]
        doc["threads"] = _bench_threads(
            height, tuples, width, monitors, budget,
            workers=max(SHARD_COUNTS), reps=max(1, reps - 1),
        )
        print(
            "threads leg: threads %sx vs processes %sx -> %s win "
            "(identical=%s)"
            % (
                doc["threads"]["thread_speedup"],
                doc["threads"]["process_speedup"],
                doc["threads"]["crossover"],
                doc["threads"]["reports_identical"],
            )
        )
    height, tuples, width, _monitors, budget = sizes[0]
    doc["tenants"] = _bench_tenants(
        height, tuples, width, budget, n_tenants=3
    )
    print(
        "tenant leg: %d tenants in %ss, cache %s"
        % (
            doc["tenants"]["workload"]["tenants"],
            doc["tenants"]["seconds"],
            doc["tenants"]["cache"],
        )
    )
    return doc


def write_report(doc: Dict[str, object], out: str) -> str:
    with open(out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--grid", choices=("tiny", "full"), default="full",
        help="workload grid: 'tiny' is the CI smoke grid",
    )
    parser.add_argument(
        "--mode", choices=("shards", "threads", "all"), default="shards",
        help="'threads'/'all' adds the GIL-bound thread-vs-process leg",
    )
    parser.add_argument(
        "--reps", type=int, default=3,
        help="timing repetitions (best-of-N, interleaved)",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help="output JSON path (default: repo-root BENCH_serving.json)",
    )
    args = parser.parse_args(argv)
    doc = run_grid(args.grid, args.mode, max(1, args.reps))
    path = write_report(doc, args.out)
    print(f"wrote {os.path.abspath(path)}")
    if not doc["all_reports_identical"] or not doc["all_faulty_identical"]:
        print("FAIL: sharded reports are not identical to serial")
        return 1
    if not doc["all_telemetry_identical"]:
        print(
            "FAIL: sharded report with telemetry enabled differs from "
            "the instrumented serial run"
        )
        return 1
    if args.grid == "full" and not doc["largest_point"][
        "meets_3x_ingest_decode"
    ]:
        print(
            "FAIL: largest grid point is below the 3x ingest+decode "
            "target at shards=%d" % max(SHARD_COUNTS)
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
