"""Compiled fast paths for the per-window serving pipeline.

The steady-state loop the paper actually runs — Monitor-side window
partitioning (Section 2.1) and Control-Center uniform-spread estimation
(Section 2.2.2) — is executed once per window for the lifetime of an
installed partitioning function, so it pays to compile the function
into flat arrays *once per install* and reduce per-tuple work to index
arithmetic:

:class:`CompiledPartitioner`
    Every bucket of every semantics class is a UID interval (a subtree
    of the hierarchy covers a contiguous identifier range), so matching
    compiles to interval tables:

    * **closest-ancestor semantics** (nonoverlapping cuts and
      longest-prefix-match): the match intervals nest, so the UID axis
      decomposes into *elementary segments* — between two consecutive
      interval boundaries the deepest covering bucket never changes.
      The compiler precomputes the sorted boundary array and a parallel
      segment-owner table (the LPM nesting-resolution table: nested
      buckets "punch holes" in their parents by overwriting the
      segments they cover).  Per window, matching is then one segment
      lookup (a dense-table gather for small domains, else one
      ``np.searchsorted``) plus one ``np.bincount`` — replacing the
      per-depth ancestor-mask loop of
      :meth:`~.partition.PartitioningFunction._matches_by_depth`.
    * **overlapping semantics**: an identifier maps to *all* matching
      ancestors.  Buckets are grouped by *nesting level* (number of
      enclosing buckets); within a level intervals are disjoint, so
      after one shared segment lookup each level is a gather plus a
      bincount.  The number of levels
      is bounded by — and usually far smaller than — the number of
      populated depths the naive path loops over.

:class:`CompiledEstimator`
    The Control Center's uniform-spread reconstruction compiles to a
    sparse gather: per group its assigned bucket slot, per slot the
    (net) group population.  The group-to-slot map is exactly the CSR
    form of the bucket→group spread matrix with one nonzero per row
    (``indices = group_slot``, ``data = 1 / population``); the decode
    is then one vectorized divide + gather instead of a per-node Python
    loop over ``groups_below`` dict rebuilds.  Division is performed at
    estimate time (``counts / populations``) rather than multiplying by
    precomputed reciprocals so the floats are bit-identical to the
    reference path's ``count / max(1, pop)``.

**Bit-exactness contract** (the same one ``algorithms.kernels``
established for construction): both compiled paths perform the *same*
floating-point accumulations in the *same order* as the naive
reference, so histograms and estimates are bit-for-bit identical —
``np.bincount`` adds weights in input order, and every window is
processed in its original tuple order.  ``tests/test_stream_kernels.py``
property-tests this across all three semantics classes, sparse buckets
included.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence
from weakref import WeakKeyDictionary

import numpy as np

from .estimate import _spread_data
from .groups import GroupTable
from .partition import (
    Histogram,
    OverlappingPartitioning,
    PartitioningFunction,
)

__all__ = ["CompiledPartitioner", "CompiledEstimator"]

#: Largest domain (in identifiers) for which the compiler also builds
#: a dense uid -> elementary-segment lookup table.
_DENSE_SEGMENT_CAP = 1 << 20


class CompiledPartitioner:
    """A partitioning function compiled to flat interval tables.

    Compile once per install with :meth:`for_function` (cached on the
    function object); then :meth:`build_histogram` /
    :meth:`build_histograms` produce histograms bit-identical to
    :meth:`~.partition.PartitioningFunction.build_histogram`.
    """

    def __init__(self, function: PartitioningFunction) -> None:
        self.function = function
        domain = function.domain
        #: Match nodes in ascending node-id order; the *slot* index used
        #: by every compiled table below is the position in this array.
        self.slot_nodes = np.asarray(function.match_nodes, dtype=np.int64)
        n = int(self.slot_nodes.size)
        node_list = self.slot_nodes.tolist()
        ranges = [domain.uid_range(node) for node in node_list]
        los = np.asarray([r[0] for r in ranges], dtype=np.int64)
        his = np.asarray([r[1] for r in ranges], dtype=np.int64)
        depths = [node.bit_length() - 1 for node in node_list]
        self.overlapping = isinstance(function, OverlappingPartitioning)

        # Nesting forest: for each slot, the slot of its closest
        # enclosing match node (-1 for top level) and its nesting level.
        slot_of = {node: i for i, node in enumerate(node_list)}
        parent = np.full(n, -1, dtype=np.int64)
        level = np.zeros(n, dtype=np.int64)
        for i in sorted(range(n), key=lambda k: depths[k]):
            anc = node_list[i] >> 1
            while anc >= 1:
                j = slot_of.get(anc)
                if j is not None:
                    parent[i] = j
                    level[i] = level[j] + 1
                    break
                anc >>= 1
        #: Per-slot nesting parent (the LPM "holes" structure, Fig. 7).
        self.nesting_parent_slot = parent

        # Elementary-segment owner table (closest-ancestor matching).
        # Boundaries cover the whole UID axis; shallow slots paint their
        # range first, deeper slots overwrite — leaving, per segment,
        # the deepest covering bucket (the nesting-resolution table).
        bounds = np.unique(
            np.concatenate(
                [np.asarray([0, domain.num_uids], dtype=np.int64), los, his]
            )
        )
        owner = np.full(bounds.size - 1, -1, dtype=np.int64)
        for i in sorted(range(n), key=lambda k: depths[k]):
            a = int(np.searchsorted(bounds, los[i]))
            b = int(np.searchsorted(bounds, his[i]))
            owner[a:b] = i
        self._bounds = bounds
        self._seg_owner = owner

        # Per-nesting-level disjoint interval tables (overlapping
        # matching): level k holds (interval count, slot ids, and a
        # segment -> interval-position table).  A window then needs one
        # searchsorted into ``bounds`` total; each level is a gather +
        # bincount over the shared segment indices.
        self._levels = []
        if self.overlapping:
            for lv in range(int(level.max()) + 1 if n else 0):
                sel = np.nonzero(level == lv)[0]
                order = np.argsort(los[sel], kind="stable")
                sel = sel[order]
                seg_pos = np.full(bounds.size - 1, -1, dtype=np.int64)
                for j, i in enumerate(sel):
                    a = int(np.searchsorted(bounds, los[i]))
                    b = int(np.searchsorted(bounds, his[i]))
                    seg_pos[a:b] = j
                self._levels.append((int(sel.size), sel, seg_pos))

        # Dense uid -> segment table for small domains: one fancy-index
        # gather per window instead of a searchsorted.  8 MiB at the
        # 2^20 cap; larger domains fall back to binary search.
        self._seg_of_uid: Optional[np.ndarray] = None
        if domain.num_uids <= _DENSE_SEGMENT_CAP:
            self._seg_of_uid = (
                np.searchsorted(
                    bounds,
                    np.arange(domain.num_uids, dtype=np.int64),
                    side="right",
                )
                - 1
            )

    # -- compile cache -----------------------------------------------------
    @classmethod
    def for_function(
        cls, function: PartitioningFunction
    ) -> "CompiledPartitioner":
        """The compiled form of ``function``, compiling at most once
        (the result is cached on the function object)."""
        cached = getattr(function, "_compiled_partitioner", None)
        if cached is None:
            cached = cls(function)
            function._compiled_partitioner = cached
        return cached

    # -- matching ----------------------------------------------------------
    def _segments(self, uids: np.ndarray) -> np.ndarray:
        """Elementary-segment index per uid: a dense-table gather for
        small domains, one searchsorted otherwise."""
        if self._seg_of_uid is not None:
            return self._seg_of_uid[uids]
        return np.searchsorted(self._bounds, uids, side="right") - 1

    def match_slots(self, uids: np.ndarray) -> np.ndarray:
        """Closest-ancestor bucket slot per uid (-1 where unmatched)."""
        return self._seg_owner[self._segments(uids)]

    def _closest_sums(
        self, uids: np.ndarray, weights: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        slot = self.match_slots(uids)
        # Shifted bincount: unmatched (-1) lands in a discarded bin 0,
        # avoiding a boolean compress of uids and weights.  Per-bucket
        # accumulation order is untouched, so sums stay bit-identical.
        sums = np.bincount(
            slot + 1, weights=weights, minlength=self.slot_nodes.size + 1
        )[1:]
        return sums, slot >= 0

    def _overlapping_sums(
        self, uids: np.ndarray, weights: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        n = int(self.slot_nodes.size)
        sums = np.zeros(n, dtype=np.float64)
        matched = np.zeros(uids.shape, dtype=bool)
        seg = self._segments(uids)
        for k, (width, slots, seg_pos) in enumerate(self._levels):
            pos = seg_pos[seg]
            if k == 0:
                # Top-level intervals contain every deeper one, so any
                # match at all implies a level-0 match.
                matched = pos >= 0
            local = np.bincount(
                pos + 1, weights=weights, minlength=width + 1
            )[1:]
            sums[slots] = local
        return sums, matched

    # -- histogram construction --------------------------------------------
    def build_histogram(
        self,
        uids: Sequence[int],
        values: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Bit-identical fast form of
        :meth:`~.partition.PartitioningFunction.build_histogram`."""
        uids = np.asarray(uids, dtype=np.int64)
        weights = PartitioningFunction._weights(uids, values)
        if self.overlapping:
            sums, matched = self._overlapping_sums(uids, weights)
        else:
            sums, matched = self._closest_sums(uids, weights)
        return Histogram.from_arrays(
            self.slot_nodes,
            sums,
            unmatched=float(weights[~matched].sum()),
            total=float(weights.sum()),
        )

    def build_histograms(
        self,
        uid_windows: Sequence[Sequence[int]],
        values: Optional[Sequence[Optional[Sequence[float]]]] = None,
    ) -> List[Histogram]:
        """Batched multi-window partitioning.

        All windows are matched in one concatenated pass; per-window
        bucket sums come from a flattened 2-D ``(window, slot)``
        bincount.  The concatenation is window-major — already
        lexsorted by (window, arrival) — so per-bucket accumulation
        order inside each window equals the single-window path and the
        histograms are bit-identical to ``W`` separate
        :meth:`build_histogram` calls.
        """
        arrays = [np.asarray(w, dtype=np.int64) for w in uid_windows]
        if values is None:
            values = [None] * len(arrays)
        elif len(values) != len(arrays):
            raise ValueError(
                f"{len(values)} value vectors for {len(arrays)} windows"
            )
        n_win = len(arrays)
        if n_win == 0:
            return []
        weight_arrays = [
            PartitioningFunction._weights(u, v)
            for u, v in zip(arrays, values)
        ]
        uids = np.concatenate(arrays) if n_win > 1 else arrays[0]
        weights = (
            np.concatenate(weight_arrays) if n_win > 1 else weight_arrays[0]
        )
        lengths = [a.size for a in arrays]
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        win = np.repeat(np.arange(n_win, dtype=np.int64), lengths)
        n_slots = int(self.slot_nodes.size)
        sums = np.zeros((n_win, n_slots), dtype=np.float64)
        # Both branches use the shifted-bincount trick of the
        # single-window kernels: per window, bin 0 absorbs unmatched
        # tuples and is dropped by the ``[:, 1:]`` slice.
        if self.overlapping:
            matched = np.zeros(uids.shape, dtype=bool)
            seg = self._segments(uids)
            for k, (width, slots, seg_pos) in enumerate(self._levels):
                pos = seg_pos[seg]
                if k == 0:
                    matched = pos >= 0
                flat = win * (width + 1) + (pos + 1)
                local = np.bincount(
                    flat, weights=weights, minlength=n_win * (width + 1)
                ).reshape(n_win, width + 1)
                sums[:, slots] = local[:, 1:]
        else:
            slot = self.match_slots(uids)
            matched = slot >= 0
            flat = win * (n_slots + 1) + (slot + 1)
            sums = np.bincount(
                flat, weights=weights, minlength=n_win * (n_slots + 1)
            ).reshape(n_win, n_slots + 1)[:, 1:]
        out = []
        for w in range(n_win):
            lo, hi = int(offsets[w]), int(offsets[w + 1])
            w_weights = weights[lo:hi]
            w_matched = matched[lo:hi]
            out.append(
                Histogram.from_arrays(
                    self.slot_nodes,
                    sums[w],
                    unmatched=float(w_weights[~w_matched].sum()),
                    total=float(w_weights.sum()),
                )
            )
        return out


#: Compiled estimators keyed by function (weakly) -> (table, estimator).
_ESTIMATOR_CACHE: "WeakKeyDictionary" = WeakKeyDictionary()


class CompiledEstimator:
    """Uniform-spread reconstruction compiled to CSR-style arrays.

    Precomputes, per ``(table, function)`` pair: the group→slot
    assignment (``indices`` of the one-nonzero-per-row spread matrix),
    per-slot populations (clamped denominators), and the sparse-bucket
    special cases.  :meth:`estimate` is then a vectorized divide +
    gather, bit-identical to
    :func:`~.estimate.reconstruct_estimates`.
    """

    def __init__(
        self, table: GroupTable, function: PartitioningFunction
    ) -> None:
        self.table = table
        self.function = function
        self.slot_nodes = np.asarray(function.match_nodes, dtype=np.int64)
        spread = _spread_data(table, function)
        assigned = spread.assigned
        # Node ids -> slot indices (assigned nodes are match nodes).
        group_slot = np.searchsorted(self.slot_nodes, np.abs(assigned))
        self.group_slot = np.where(assigned >= 0, group_slot, -1).astype(
            np.int64
        )
        self._gather = np.maximum(self.group_slot, 0)
        self._covered = self.group_slot >= 0
        self.overlapping = isinstance(function, OverlappingPartitioning)
        populations = spread.gross if self.overlapping else spread.net
        pops = np.asarray(
            [populations[int(x)] for x in self.slot_nodes], dtype=np.float64
        )
        #: Clamped uniform-spread denominators (``max(1, pop)``).
        self.populations = np.maximum(1.0, pops)
        # Sparse buckets (Section 4.3): the inner sub-bucket reports its
        # group exactly; the outer spreads the residual over the
        # "empty" groups.  Only the overlapping reference path treats
        # them specially — for nested (LPM) semantics the net
        # populations already make them fall out naturally.
        inner_slots: List[int] = []
        outer_slots: List[int] = []
        if self.overlapping:
            node_to_slot = {
                int(node): i for i, node in enumerate(self.slot_nodes)
            }
            for b in function.buckets:
                if b.is_sparse:
                    outer_slots.append(node_to_slot[b.node])
                    inner_slots.append(node_to_slot[b.sparse_group_node])
        self._inner_slots = np.asarray(inner_slots, dtype=np.int64)
        self._outer_slots = np.asarray(outer_slots, dtype=np.int64)
        self._outer_empties = np.maximum(
            1.0, pops[self._outer_slots] - 1.0
        ) if outer_slots else np.empty(0, dtype=np.float64)

    @classmethod
    def for_pair(
        cls, table: GroupTable, function: PartitioningFunction
    ) -> "CompiledEstimator":
        """The compiled estimator for ``(table, function)``, reusing a
        cached instance across windows of the same install."""
        entry = _ESTIMATOR_CACHE.get(function)
        if entry is not None and entry[0] is table:
            return entry[1]
        estimator = cls(table, function)
        _ESTIMATOR_CACHE[function] = (table, estimator)
        return estimator

    def slot_counts(self, histogram: Histogram) -> np.ndarray:
        """Per-slot bucket counts of a histogram (zeros for absent
        buckets; unknown nodes are ignored, as the reference path's
        per-node ``histogram.get`` would)."""
        counts = np.zeros(self.slot_nodes.size, dtype=np.float64)
        if len(histogram):
            idx = np.searchsorted(self.slot_nodes, histogram.nodes)
            idx = np.minimum(idx, self.slot_nodes.size - 1)
            ok = self.slot_nodes[idx] == histogram.nodes
            counts[idx[ok]] = histogram.values[ok]
        return counts

    def estimate(self, histogram: Histogram) -> np.ndarray:
        """Per-group estimates — the sparse matvec form of
        :func:`~.estimate.reconstruct_estimates`."""
        counts = self.slot_counts(histogram)
        slot_est = counts / self.populations
        if self._inner_slots.size:
            # Sparse inner sub-buckets report their single group
            # exactly; outers spread the residual over the empties.
            slot_est[self._inner_slots] = counts[self._inner_slots]
            residual = np.maximum(
                0.0,
                counts[self._outer_slots] - counts[self._inner_slots],
            )
            slot_est[self._outer_slots] = residual / self._outer_empties
        estimates = np.where(self._covered, slot_est[self._gather], 0.0)
        return estimates
