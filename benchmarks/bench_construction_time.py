"""Ablation A1: construction-time scaling.

The paper claims O(|G| b^2)-ish construction for nonoverlapping
histograms, an extra log|U| factor for overlapping, and sub-quadratic
heuristics for longest-prefix-match (Section 1.1).  This bench measures
wall-clock construction time across workload sizes and budgets and
checks the growth is far from quadratic in |G|.
"""

import time

import numpy as np
import pytest

from repro import PrunedHierarchy, UIDDomain, get_metric
from repro.algorithms import (
    OverlappingDP,
    build_lpm_greedy,
    build_nonoverlapping,
    build_overlapping,
)
from repro.data import TrafficModel, generate_subnet_table, generate_trace

from workloads import format_table, save_series


def _workload(height: int, packets: int):
    dom = UIDDomain(height)
    table = generate_subnet_table(dom, seed=21)
    uids = generate_trace(table, packets, seed=22, model=TrafficModel())
    counts = table.counts_from_uids(uids)
    return table, counts, PrunedHierarchy(table, counts)


SIZES = [(12, 100_000), (14, 300_000), (16, 1_000_000), (18, 2_000_000)]
BUDGET = 100


@pytest.mark.parametrize("algorithm", ["nonoverlapping", "overlapping",
                                       "lpm_greedy"])
def test_scaling_in_groups(benchmark, algorithm):
    metric = get_metric("rms")
    rows = []
    times = {}
    for height, packets in SIZES:
        _table, _counts, hierarchy = _workload(height, packets)
        t0 = time.perf_counter()
        if algorithm == "nonoverlapping":
            build_nonoverlapping(hierarchy, metric, BUDGET)
        elif algorithm == "overlapping":
            build_overlapping(hierarchy, metric, BUDGET)
        else:
            build_lpm_greedy(hierarchy, metric, BUDGET,
                             curve_budgets=[BUDGET])
        dt = time.perf_counter() - t0
        times[height] = (len(hierarchy.nodes), dt)
        rows.append([algorithm, height, len(hierarchy.nodes),
                     hierarchy.num_nonzero_groups, round(dt, 3)])
    save_series(f"a1_scaling_{algorithm}.csv",
                ["algorithm", "height", "pruned_nodes", "nonzero", "seconds"],
                rows)
    print("\nA1 construction-time scaling")
    print(format_table(
        ["algorithm", "height", "pruned_nodes", "nonzero", "seconds"], rows
    ))
    # growth check: time grows sub-quadratically in pruned-node count
    (n_small, t_small) = times[SIZES[0][0]]
    (n_big, t_big) = times[SIZES[-1][0]]
    if t_small > 0.01:  # avoid noise on trivially fast runs
        assert t_big / t_small < 3 * (n_big / n_small) ** 2

    # benchmark the largest size for the timing table
    _t, _c, hierarchy = _workload(*SIZES[-1])

    def construct():
        if algorithm == "nonoverlapping":
            return build_nonoverlapping(hierarchy, metric, BUDGET)
        if algorithm == "overlapping":
            return build_overlapping(hierarchy, metric, BUDGET)
        return build_lpm_greedy(hierarchy, metric, BUDGET,
                                curve_budgets=[BUDGET])

    benchmark.pedantic(construct, rounds=1, iterations=1)


def test_scaling_in_budget(benchmark):
    """One DP run yields the whole budget curve, so cost should grow
    mildly with b."""
    metric = get_metric("rms")
    _t, _c, hierarchy = _workload(16, 1_000_000)
    rows = []
    times = []
    for b in (25, 50, 100, 200, 400):
        t0 = time.perf_counter()
        build_overlapping(hierarchy, metric, b)
        dt = time.perf_counter() - t0
        rows.append(["overlapping", b, round(dt, 3)])
        times.append(dt)
    save_series("a1_budget_scaling.csv", ["algorithm", "budget", "seconds"],
                rows)
    print("\nA1 budget scaling")
    print(format_table(["algorithm", "budget", "seconds"], rows))
    if times[0] > 0.02:
        assert times[-1] / times[0] < 3 * (400 / 25)  # sub-quadratic in b

    benchmark.pedantic(
        lambda: build_overlapping(hierarchy, metric, 100),
        rounds=1, iterations=1,
    )
