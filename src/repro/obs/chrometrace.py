"""Chrome Trace Event Format export of an event journal.

``repro trace run.journal`` turns the flight recorder into a trace
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing`` can load:

* one **track per monitor** plus one for the Control Center (threads
  of a single "repro run" process, named via metadata events);
* one **track per shard worker** (``shard-N``) when the journal holds
  cross-process telemetry (:mod:`repro.serving.sharded`):
  ``shard.worker.batch`` events become prefetch slices sized by their
  measured duration, ``shard.fanin`` events become fan-in merge slices
  on the Control Center track, and prefetch/resource/summary events
  annotate their shard's track as instants;
* each lifecycle copy (``trace.sent`` → ``trace.delivered`` →
  ``trace.closed`` / ``trace.dropped``) becomes a **flow** — an ``s``
  arrow tail on the monitor's send slice, an optional ``t`` step on
  the arrival slice, and an ``f`` head on the closing slice — so a
  message's journey across tracks is a clickable arrow chain;
* faults (drops, duplicates, delays, reorders, crashes), installs,
  drift scores, recalibrations and SLO alerts are **instant events**
  annotating the track they happened on;
* each decoded window is a slice on the Control Center track carrying
  the full ``WindowReport`` accounting as args.

Timestamps are the journal's monotonic ``ts`` offsets converted to
microseconds (the format's unit).  The export is pure data massaging —
:func:`chrome_trace` takes the parsed event list and returns the
JSON-object form of the format (``{"traceEvents": [...]}``), and
:func:`unpaired_flows` is the validity check CI runs: every flow id
must have exactly one tail and one head.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

__all__ = ["chrome_trace", "unpaired_flows"]

#: The single process every track lives in.
_PID = 1
#: The Control Center's thread id; monitors get 1..N.
_CENTER_TID = 0

#: Events annotated on the Control Center track as instants.
_CENTER_INSTANTS = {
    "run_start", "run_end", "rebuild", "drift", "recalibration",
    "alert.fired", "alert.resolved",
}
#: Events annotated on their monitor's track as instants.
_MONITOR_INSTANTS = {
    "fault.drop", "fault.duplicate", "fault.delay", "fault.crash",
    "install", "trace.duplicated", "trace.delayed", "trace.reordered",
}

#: Nominal slice width (µs) for point-in-time journal events rendered
#: as complete ("X") slices so flows have something to bind to.
_SLICE_DUR_US = 1


def _us(event: Dict) -> float:
    return round(float(event.get("ts", 0.0)) * 1e6, 3)


def _flow_id(event: Dict) -> str:
    """The deterministic trace id as a flow id string."""
    return (
        f"{event.get('monitor')}/w{event.get('window')}"
        f"/v{event.get('version')}/c{event.get('copy')}"
    )


def _args(event: Dict) -> Dict:
    """Event payload minus the journal envelope."""
    return {
        k: v
        for k, v in event.items()
        if k not in ("seq", "ts", "event")
    }


def chrome_trace(events: Sequence[Dict]) -> Dict:
    """Convert parsed journal events (:func:`~repro.obs.journal.
    read_journal`) into a Chrome Trace Event Format document."""
    monitors: List[str] = []
    seen: Set[str] = set()
    shards: List[int] = []
    shard_seen: Set[int] = set()
    for ev in events:
        name = ev.get("monitor")
        if isinstance(name, str) and name not in seen:
            seen.add(name)
            monitors.append(name)
        kind = ev.get("event")
        shard = ev.get("shard")
        if (
            isinstance(kind, str)
            and kind.startswith("shard.")
            and isinstance(shard, int)
            and shard not in shard_seen
        ):
            shard_seen.add(shard)
            shards.append(shard)
    monitors.sort()
    shards.sort()
    tid_of = {name: i + 1 for i, name in enumerate(monitors)}
    # Shard worker tracks sit below the monitor tracks.
    shard_tid_of = {
        shard: len(monitors) + 1 + i for i, shard in enumerate(shards)
    }

    out: List[Dict] = [
        {
            "ph": "M", "pid": _PID, "tid": _CENTER_TID,
            "name": "process_name", "args": {"name": "repro run"},
        },
        {
            "ph": "M", "pid": _PID, "tid": _CENTER_TID,
            "name": "thread_name", "args": {"name": "control-center"},
        },
    ]
    for name, tid in sorted(tid_of.items(), key=lambda kv: kv[1]):
        out.append({
            "ph": "M", "pid": _PID, "tid": tid,
            "name": "thread_name", "args": {"name": name},
        })
    for shard, tid in sorted(shard_tid_of.items(), key=lambda kv: kv[1]):
        out.append({
            "ph": "M", "pid": _PID, "tid": tid,
            "name": "thread_name", "args": {"name": f"shard-{shard}"},
        })

    def slice_with_flow(
        event: Dict, tid: int, name: str, phase: str
    ) -> None:
        ts = _us(event)
        out.append({
            "ph": "X", "pid": _PID, "tid": tid, "ts": ts,
            "dur": _SLICE_DUR_US, "name": name, "cat": "lifecycle",
            "args": _args(event),
        })
        flow = {
            "ph": phase, "pid": _PID, "tid": tid, "ts": ts,
            "id": _flow_id(event), "name": "delivery", "cat": "lifecycle",
        }
        if phase == "f":
            flow["bp"] = "e"  # bind the arrow head to the enclosing slice
        out.append(flow)

    for ev in events:
        kind = ev.get("event")
        mon_tid = tid_of.get(ev.get("monitor"), _CENTER_TID)
        if kind == "trace.sent":
            slice_with_flow(ev, mon_tid, f"send w{ev.get('window')}", "s")
        elif kind == "trace.delivered":
            slice_with_flow(
                ev, _CENTER_TID, f"arrive w{ev.get('window')}", "t"
            )
        elif kind == "trace.closed":
            outcome = ev.get("outcome")
            tid = mon_tid if outcome == "dropped" else _CENTER_TID
            slice_with_flow(ev, tid, f"{outcome} w{ev.get('window')}", "f")
        elif kind == "trace.dropped":
            slice_with_flow(ev, mon_tid, f"dropped w{ev.get('window')}", "f")
        elif kind == "decode":
            out.append({
                "ph": "X", "pid": _PID, "tid": _CENTER_TID, "ts": _us(ev),
                "dur": _SLICE_DUR_US, "cat": "decode",
                "name": f"decode w{ev.get('window_index')}",
                "args": _args(ev),
            })
        elif kind == "shard.worker.batch":
            # Re-sequenced worker events land in the parent journal at
            # merge time, after the work; back-date the slice by its
            # measured duration so it reads as the build it was.
            dur = max(_SLICE_DUR_US, float(ev.get("duration_us", 0)))
            out.append({
                "ph": "X", "pid": _PID,
                "tid": shard_tid_of.get(ev.get("shard"), _CENTER_TID),
                "ts": max(0.0, _us(ev) - dur), "dur": dur,
                "cat": "serving",
                "name": f"prefetch {ev.get('monitor')}",
                "args": _args(ev),
            })
        elif kind == "shard.fanin":
            dur = max(_SLICE_DUR_US, float(ev.get("duration_us", 0)))
            out.append({
                "ph": "X", "pid": _PID, "tid": _CENTER_TID,
                "ts": max(0.0, _us(ev) - dur), "dur": dur,
                "cat": "serving",
                "name": f"fan-in w{ev.get('window')}",
                "args": _args(ev),
            })
        elif kind in ("shard.prefetch", "shard.worker.resources",
                      "shard.summary"):
            out.append({
                "ph": "i", "pid": _PID,
                "tid": shard_tid_of.get(ev.get("shard"), _CENTER_TID),
                "ts": _us(ev), "s": "t", "cat": "serving", "name": kind,
                "args": _args(ev),
            })
        elif kind in _MONITOR_INSTANTS:
            out.append({
                "ph": "i", "pid": _PID, "tid": mon_tid, "ts": _us(ev),
                "s": "t", "cat": "fault", "name": kind, "args": _args(ev),
            })
        elif kind in _CENTER_INSTANTS:
            out.append({
                "ph": "i", "pid": _PID, "tid": _CENTER_TID, "ts": _us(ev),
                "s": "t", "cat": "run", "name": kind, "args": _args(ev),
            })
    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro trace",
            "monitors": monitors,
            "shards": shards,
            "journal_events": len(events),
        },
    }


def unpaired_flows(doc: Dict) -> List[str]:
    """Flow ids missing their tail (``s``) or head (``f``) — a valid
    export returns ``[]`` (flow steps ``t`` are optional)."""
    tails: Dict[str, int] = {}
    heads: Dict[str, int] = {}
    steps: Set[str] = set()
    for ev in doc.get("traceEvents", []):
        ph = ev.get("ph")
        if ph not in ("s", "t", "f"):
            continue
        fid = str(ev.get("id"))
        if ph == "s":
            tails[fid] = tails.get(fid, 0) + 1
        elif ph == "f":
            heads[fid] = heads.get(fid, 0) + 1
        else:
            steps.add(fid)
    bad = []
    for fid in sorted(set(tails) | set(heads) | steps):
        if tails.get(fid) != 1 or heads.get(fid) != 1:
            bad.append(fid)
    return bad
