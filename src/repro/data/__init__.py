"""Workload generators simulating the paper's experimental inputs:
WHOIS-derived subnet tables, dark-address traffic traces and RFID
identifier populations."""

from .whois import generate_subnet_table, prefix_length_distribution
from .traffic import TrafficModel, generate_trace, generate_timestamped_trace
from .rfid import EPCScheme, generate_epc_population

__all__ = [
    "generate_subnet_table",
    "prefix_length_distribution",
    "TrafficModel",
    "generate_trace",
    "generate_timestamped_trace",
    "EPCScheme",
    "generate_epc_population",
]
