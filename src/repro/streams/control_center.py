"""The Control Center (paper Figure 1, right).

The Control Center owns the full lookup table.  Periodically it runs a
construction algorithm over the recent history of the identifier stream
to (re)build the partitioning function it pushes to the Monitors; for
each incoming window it merges the Monitors' histograms (count
histograms merge by bucket-wise addition) and joins the result with the
key density table to produce the approximate group-by answer.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..algorithms.construct import build
from ..core.errors import DistributiveErrorMetric, PenaltyMetric
from ..core.estimate import reconstruct_estimates
from ..core.groups import GroupTable
from ..core.hierarchy import PrunedHierarchy
from ..core.partition import Histogram, PartitioningFunction
from ..obs import get_registry, span
from .monitor import HistogramMessage

__all__ = ["ControlCenter"]


class ControlCenter:
    """Builds partitioning functions and decodes histogram streams."""

    def __init__(
        self,
        table: GroupTable,
        metric: PenaltyMetric,
        algorithm: str = "lpm_greedy",
        budget: int = 100,
        **builder_options,
    ) -> None:
        self.table = table
        self.metric = metric
        self.algorithm = algorithm
        self.budget = budget
        self.builder_options = builder_options
        self.function: Optional[PartitioningFunction] = None
        self.function_version = -1

    # -- function construction -------------------------------------------
    def rebuild_function(
        self, history_counts: Sequence[float]
    ) -> PartitioningFunction:
        """(Re)build the partitioning function from past per-group
        counts (typically loaded from the warehouse of Monitor logs)."""
        with span(
            "control.rebuild", algorithm=self.algorithm, budget=self.budget,
        ) as sp:
            hierarchy = PrunedHierarchy(
                self.table, np.asarray(history_counts, dtype=np.float64)
            )
            result = build(
                self.algorithm, hierarchy, self.metric, self.budget,
                **self.builder_options,
            )
            self.function = result.function_at(self.budget)
            sp.annotate(
                buckets=self.function.num_buckets,
                function_bits=self.function.size_bits(),
            )
        self.function_version += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter("control.rebuilds").inc()
            registry.gauge("control.function.buckets").set(
                self.function.num_buckets
            )
            registry.gauge("control.function.bits").set(
                self.function.size_bits()
            )
        return self.function

    # -- decoding ----------------------------------------------------------
    @staticmethod
    def merge_histograms(messages: Sequence[HistogramMessage]) -> Histogram:
        """Merge one window's histograms from all Monitors (count
        aggregates are distributive: bucket-wise sums)."""
        return Histogram.merge(msg.histogram for msg in messages)

    def decode(self, messages: Sequence[HistogramMessage]) -> np.ndarray:
        """Approximate per-group counts for one window."""
        if self.function is None:
            raise RuntimeError("no partitioning function built yet")
        stale = [
            m for m in messages if m.function_version != self.function_version
        ]
        if stale:
            raise ValueError(
                f"{len(stale)} histogram(s) built with a stale partitioning "
                f"function (expected version {self.function_version})"
            )
        registry = get_registry()
        with registry.timer("control.decode.duration").time():
            merged = self.merge_histograms(messages)
            estimates = reconstruct_estimates(
                self.table, self.function, merged
            )
        if registry.enabled:
            registry.counter("control.decodes").inc()
            registry.counter("control.decode.messages").inc(len(messages))
        return estimates

    def approximate_answer(
        self, messages: Sequence[HistogramMessage]
    ) -> Dict[object, float]:
        """The approximate group-by result keyed by group id (groups
        estimated nonzero only — Section 4.3 notes decode time is
        proportional to these)."""
        estimates = self.decode(messages)
        return {
            self.table.group_ids[i]: float(v)
            for i, v in enumerate(estimates)
            if v > 0
        }

    def error(
        self,
        estimates: np.ndarray,
        actual: Sequence[float],
        metric: Optional[DistributiveErrorMetric] = None,
    ) -> float:
        """Score an approximate answer against the exact one."""
        metric = metric or self.metric
        return metric.evaluate(np.asarray(actual, dtype=np.float64), estimates)
