"""The exact grouped windowed aggregation query (paper Section 2.2.2).

This is the ground truth the histograms approximate::

    select G.gid, count(*)
    from UIDStream U [sliding window], GroupHierarchy G
    where G.uid = U.uid
    group by G.node;

Evaluated directly against the full lookup table — the expensive
computation a deployment avoids by shipping histograms instead of raw
identifiers.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..core.groups import GroupTable
from .tuples import Trace
from .windows import TumblingWindows, Window

__all__ = [
    "exact_group_counts",
    "exact_group_counts_batched",
    "GroupedAggregationQuery",
]


def exact_group_counts(
    table: GroupTable,
    uids: Sequence[int],
    values: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Exact per-group aggregates of a window (the join + group-by):
    ``count(*)`` per group, or ``sum(value)`` when a parallel per-tuple
    ``values`` vector is given."""
    return table.counts_from_uids(uids, values=values)


def exact_group_counts_batched(
    table: GroupTable,
    uid_windows: Sequence[Sequence[int]],
    value_windows: Optional[Sequence[Optional[Sequence[float]]]] = None,
) -> np.ndarray:
    """Exact per-group aggregates for many windows in one pass.

    Returns a ``(windows, groups)`` float64 matrix whose row ``w`` is
    bit-identical to ``exact_group_counts(table, uid_windows[w],
    values=value_windows[w])``: the batch runs one ``lookup_many`` over
    the concatenated windows and one flattened ``bincount`` keyed by
    ``window * num_groups + group``.  Cells are disjoint per (window,
    group) and the concatenation preserves each window's tuple order,
    so every cell accumulates the same elements in the same order as
    the per-window call — exact for counts, and bit-identical float
    summation for weighted aggregates.  The serving layer uses this to
    precompute a whole run's ground truth instead of paying a
    per-window table walk.
    """
    n_windows = len(uid_windows)
    n_groups = len(table)
    if n_windows == 0:
        return np.zeros((0, n_groups), dtype=np.float64)
    arrays = [np.asarray(u, dtype=np.int64) for u in uid_windows]
    sizes = np.asarray([a.size for a in arrays], dtype=np.int64)
    if value_windows is not None:
        if len(value_windows) != n_windows:
            raise ValueError(
                f"{len(value_windows)} value windows for "
                f"{n_windows} uid windows"
            )
        weights = []
        for a, v in zip(arrays, value_windows):
            if v is None:
                raise ValueError(
                    "value_windows must be all-present or None"
                )
            v = np.asarray(v, dtype=np.float64)
            if v.shape != a.shape:
                raise ValueError(
                    f"{v.shape[0] if v.ndim else 0} values for "
                    f"{a.shape[0]} identifiers"
                )
            weights.append(v)
    uids = (
        np.concatenate(arrays) if n_windows > 1 else arrays[0]
    )
    idx = table.lookup_many(uids)
    win = np.repeat(np.arange(n_windows, dtype=np.int64), sizes)
    covered = idx >= 0
    flat = win[covered] * n_groups + idx[covered]
    if value_windows is None:
        counts = np.bincount(flat, minlength=n_windows * n_groups)
        return counts.reshape(n_windows, n_groups).astype(np.float64)
    values = (
        np.concatenate(weights) if n_windows > 1 else weights[0]
    )
    sums = np.bincount(
        flat, weights=values[covered], minlength=n_windows * n_groups
    )
    return sums.reshape(n_windows, n_groups).astype(np.float64)


class GroupedAggregationQuery:
    """A windowed count(*) group-by query against a lookup table.

    Iterating :meth:`run` yields ``(window, counts)`` pairs — the exact
    answer stream the Control Center's approximations are scored
    against.
    """

    def __init__(
        self,
        table: GroupTable,
        windows: Optional[TumblingWindows] = None,
    ) -> None:
        self.table = table
        self.windows = windows or TumblingWindows(1.0)

    def run(self, trace: Trace) -> Iterator[Tuple[Window, np.ndarray]]:
        for window in self.windows.segment(trace):
            yield window, exact_group_counts(
                self.table, window.uids, values=window.values
            )

    def answer_dict(self, uids: Sequence[int]) -> Dict[object, float]:
        """One window's answer keyed by application group id, nonzero
        groups only (the shape of the SQL result set)."""
        counts = exact_group_counts(self.table, uids)
        return {
            self.table.group_ids[i]: float(c)
            for i, c in enumerate(counts)
            if c > 0
        }
