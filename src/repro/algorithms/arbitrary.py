"""Arbitrary-fanout hierarchies (paper Section 4.1, Figure 11).

The construction algorithms are formulated over binary hierarchies; the
paper extends them to arbitrary fanout by converting the hierarchy to a
binary tree whose synthetic interior nodes stand for contiguous runs of
children (``{a, b}``, ``{c, d}`` in Figure 11) and rewriting the
recurrences over those runs.  This module implements the conversion:

* every hierarchy node is assigned a *binary block* — children of a
  fanout-``f`` node occupy the first ``f`` slots at ``ceil(log2 f)``
  levels below it, the remaining slots are unallocated space;
* the synthetic binary nodes between a node and its children are the
  child-run nodes of the paper's transformed recurrence, and the
  existing binary dynamic programs run on the converted domain
  unchanged (exactly as Section 4.1 prescribes);
* mapping back is provided so results can be reported in terms of the
  original hierarchy (a synthetic bucket node ``{a, b}`` is rendered as
  a run of children).

The depth increase is the ``log2(fanout)`` factor the paper notes in
its running-time discussion.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Tuple

from ..core.domain import ROOT, UIDDomain
from ..core.groups import GroupTable
from ..obs import span

__all__ = ["ANode", "ArbitraryHierarchy"]


class ANode:
    """A node of an arbitrary-fanout hierarchy."""

    __slots__ = ("label", "parent", "children", "_binary", "_depth_bits")

    def __init__(self, label: object, parent: Optional["ANode"]) -> None:
        self.label = label
        self.parent = parent
        self.children: List[ANode] = []
        self._binary: Optional[int] = None
        self._depth_bits = 0

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def path(self) -> List[object]:
        out: List[object] = []
        node: Optional[ANode] = self
        while node is not None:
            out.append(node.label)
            node = node.parent
        out.reverse()
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ANode({'/'.join(map(str, self.path()))})"


class ArbitraryHierarchy:
    """An arbitrary hierarchy with conversion to a binary domain.

    Build the tree with :meth:`add`, then :meth:`finalize` to compute
    the binary encoding.  After finalization, :meth:`binary_node` maps
    hierarchy nodes to binary hierarchy node ids, :meth:`group_table`
    builds the lookup table for a set of group nodes, and
    :meth:`describe_binary_node` maps any binary node (including
    synthetic child-run nodes chosen as buckets) back to hierarchy
    terms.
    """

    def __init__(self, root_label: object = "root") -> None:
        self.root = ANode(root_label, None)
        self._domain: Optional[UIDDomain] = None

    # -- construction -----------------------------------------------------
    def add(self, parent: Optional[ANode], label: object) -> ANode:
        """Add a child under ``parent`` (``None`` = the root)."""
        if self._domain is not None:
            raise RuntimeError("hierarchy already finalized")
        parent = parent or self.root
        child = ANode(label, parent)
        parent.children.append(child)
        return child

    def add_path(self, labels: Sequence[object]) -> ANode:
        """Ensure a root-to-leaf path exists, creating nodes as needed."""
        node = self.root
        for label in labels:
            for child in node.children:
                if child.label == label:
                    node = child
                    break
            else:
                node = self.add(node, label)
        return node

    # -- finalization -------------------------------------------------------
    @staticmethod
    def _child_bits(fanout: int) -> int:
        return max(1, math.ceil(math.log2(fanout))) if fanout else 0

    def finalize(self) -> UIDDomain:
        """Assign binary blocks and return the covering binary domain."""
        if self._domain is not None:
            return self._domain
        with span("arbitrary.finalize") as sp:
            domain = self._finalize()
            sp.annotate(
                nodes=sum(1 for _ in self.nodes()), height=domain.height
            )
        return domain

    def _finalize(self) -> UIDDomain:
        # First pass: bit depth of every node.
        height = 0
        stack: List[Tuple[ANode, int]] = [(self.root, 0)]
        while stack:
            node, bits = stack.pop()
            node._depth_bits = bits
            height = max(height, bits)
            step = self._child_bits(len(node.children))
            for child in node.children:
                stack.append((child, bits + step))
        self._domain = UIDDomain(height)
        # Second pass: binary prefixes.
        self.root._binary = ROOT
        stack2: List[ANode] = [self.root]
        while stack2:
            node = stack2.pop()
            step = self._child_bits(len(node.children))
            base_prefix = UIDDomain.prefix(node._binary) << step
            base_depth = UIDDomain.depth(node._binary) + step
            for i, child in enumerate(node.children):
                child._binary = (1 << base_depth) + base_prefix + i
                stack2.append(child)
        return self._domain

    @property
    def domain(self) -> UIDDomain:
        if self._domain is None:
            raise RuntimeError("call finalize() first")
        return self._domain

    # -- mapping -----------------------------------------------------------
    def binary_node(self, node: ANode) -> int:
        if node._binary is None:
            raise RuntimeError("call finalize() first")
        return node._binary

    def nodes(self) -> Iterator[ANode]:
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(node.children)

    def leaves(self) -> Iterator[ANode]:
        return (n for n in self.nodes() if n.is_leaf)

    def find_by_binary(self, binary: int) -> Optional[ANode]:
        """The hierarchy node exactly at a binary node, if any."""
        for node in self.nodes():
            if node._binary == binary:
                return node
        return None

    def describe_binary_node(self, binary: int) -> str:
        """Render a binary node in hierarchy terms — either a real node
        or a synthetic run of children (Figure 11's ``{a, b}``)."""
        exact = self.find_by_binary(binary)
        if exact is not None:
            return "/".join(map(str, exact.path()))
        covered = [
            node for node in self.nodes()
            if UIDDomain.is_ancestor(binary, node._binary)
            and node.parent is not None
            and UIDDomain.is_ancestor(node.parent._binary, binary)
        ]
        if covered:
            labels = ", ".join(str(n.label) for n in covered)
            parent = "/".join(map(str, covered[0].parent.path()))
            return f"{parent}/{{{labels}}}"
        return f"<binary node {binary}>"

    # -- lookup-table construction -------------------------------------------
    def group_table(
        self,
        group_nodes: Sequence[ANode],
        group_ids: Optional[Sequence[object]] = None,
    ) -> GroupTable:
        """A :class:`GroupTable` whose groups are hierarchy subtrees."""
        domain = self.domain
        nodes = [self.binary_node(n) for n in group_nodes]
        if group_ids is None:
            group_ids = ["/".join(map(str, n.path())) for n in group_nodes]
        return GroupTable(domain, nodes, group_ids)

    def leaf_uid(self, node: ANode) -> int:
        """The canonical identifier of a leaf (start of its block)."""
        if not node.is_leaf:
            raise ValueError(f"{node!r} is not a leaf")
        lo, _hi = self.domain.uid_range(self.binary_node(node))
        return lo
