"""Histogram partitioning functions (paper Section 2.1).

A partitioning function is a set of *bucket nodes* drawn from the UID
hierarchy, plus an interpretation:

``nonoverlapping``
    The bucket nodes form a cut of the hierarchy; every identifier maps
    to the bucket of its unique ancestor in the cut (Figure 3).
``overlapping``
    An identifier maps to the buckets of *all* its ancestors that are
    bucket nodes (Figure 4); estimation later uses only the closest.
``longest-prefix-match``
    An identifier maps only to its *closest* ancestor bucket node
    (Figures 5-6); buckets nest strictly, nested buckets punch "holes"
    in their parents.

This module also implements the *sparse buckets* of Section 4.3
(Figure 14): a bucket whose subtree is known (from history) to be empty
except for a single group.  A sparse bucket carries an inner
single-group sub-bucket; it represents the group's count exactly and
the surrounding emptiness explicitly, at a representation cost of only
``O(log log |U|)`` extra bits.

Monitors use :meth:`PartitioningFunction.build_histogram` to turn a
window of identifiers into a :class:`Histogram` — the compact message
actually shipped to the Control Center.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .domain import UIDDomain

__all__ = [
    "Bucket",
    "Histogram",
    "PartitioningFunction",
    "NonoverlappingPartitioning",
    "OverlappingPartitioning",
    "LongestPrefixMatchPartitioning",
]


@dataclass(frozen=True)
class Bucket:
    """One bucket of a partitioning function.

    ``sparse_group_node`` marks a sparse bucket: the subtree of ``node``
    is empty except for the group anchored at ``sparse_group_node``
    (which must be a descendant of ``node``).  The group gets its own
    inner counter; the rest of the subtree is explicitly empty.
    """

    node: int
    sparse_group_node: Optional[int] = None

    @property
    def is_sparse(self) -> bool:
        return self.sparse_group_node is not None

    def match_nodes(self) -> Tuple[int, ...]:
        """Hierarchy nodes at which this bucket maintains counters."""
        if self.sparse_group_node is not None:
            return (self.node, self.sparse_group_node)
        return (self.node,)


class Histogram:
    """Per-bucket aggregates for one window — the Monitor's message.

    Internally array-backed: parallel sorted ``nodes``/``values`` arrays
    hold the nonzero buckets, so merging, sizing and the Control
    Center's compiled decode are vectorized.  ``counts`` — the mapping
    from *match nodes* (bucket anchor nodes, including sparse inner
    nodes) to counts that the rest of the system historically consumed
    — is preserved as a lazily materialized read-only view.  Zero-count
    buckets are omitted, since the Control Center infers them
    (Section 4.3).  ``unmatched`` counts identifiers no bucket covered
    (possible under longest-prefix-match functions whose root does not
    span live traffic).
    """

    __slots__ = ("nodes", "values", "unmatched", "total", "_dict")

    def __init__(
        self,
        counts: Dict[int, float],
        unmatched: float = 0.0,
        total: float = 0.0,
    ) -> None:
        nodes = np.fromiter(counts.keys(), dtype=np.int64, count=len(counts))
        values = np.fromiter(
            counts.values(), dtype=np.float64, count=len(counts)
        )
        self._init_arrays(nodes, values, unmatched, total)

    def _init_arrays(
        self,
        nodes: np.ndarray,
        values: np.ndarray,
        unmatched: float,
        total: float,
    ) -> None:
        nonzero = values != 0
        if not nonzero.all():
            nodes, values = nodes[nonzero], values[nonzero]
        if nodes.size > 1 and np.any(nodes[1:] < nodes[:-1]):
            order = np.argsort(nodes, kind="stable")
            nodes, values = nodes[order], values[order]
        self.nodes = nodes
        self.values = values
        self.unmatched = float(unmatched)
        self.total = float(total)
        self._dict: Optional[Dict[int, float]] = None

    @classmethod
    def from_arrays(
        cls,
        nodes: np.ndarray,
        values: np.ndarray,
        unmatched: float = 0.0,
        total: float = 0.0,
    ) -> "Histogram":
        """Build directly from parallel node/value arrays (the compiled
        partitioning and merge paths), skipping the dict round-trip."""
        h = cls.__new__(cls)
        h._init_arrays(
            np.asarray(nodes, dtype=np.int64),
            np.asarray(values, dtype=np.float64),
            unmatched,
            total,
        )
        return h

    @property
    def counts(self) -> Dict[int, float]:
        """Node-to-count mapping (nonzero buckets only).  Materialized
        on first access and cached; treat it as read-only."""
        if self._dict is None:
            self._dict = dict(
                zip(self.nodes.tolist(), self.values.tolist())
            )
        return self._dict

    def __len__(self) -> int:
        return int(self.nodes.size)

    def get(self, node: int) -> float:
        k = int(np.searchsorted(self.nodes, node))
        if k < self.nodes.size and int(self.nodes[k]) == node:
            return float(self.values[k])
        return 0.0

    @classmethod
    def merge(cls, histograms: "Iterable[Histogram]") -> "Histogram":
        """Merge histograms of disjoint sub-streams (count aggregates
        are distributive: bucket-wise sums).  Used both by the Control
        Center to combine Monitors and by pane-based sliding windows.

        Vectorized: one concatenation + bincount over the union of
        nonzero buckets.  Per-node sums accumulate in histogram order —
        exactly the order the historical dict merge used — so merged
        floats are bit-identical to the reference behaviour.
        """
        hs = list(histograms)
        unmatched = 0.0
        total = 0.0
        for h in hs:
            unmatched += h.unmatched
            total += h.total
        if not hs:
            return cls({}, unmatched=unmatched, total=total)
        if len(hs) == 1:
            h = hs[0]
            return cls.from_arrays(
                h.nodes.copy(), h.values.copy(), unmatched, total
            )
        all_nodes = np.concatenate([h.nodes for h in hs])
        all_values = np.concatenate([h.values for h in hs])
        nodes, inverse = np.unique(all_nodes, return_inverse=True)
        sums = np.bincount(
            inverse, weights=all_values, minlength=nodes.size
        )
        return cls.from_arrays(nodes, sums, unmatched, total)

    def size_bits(self, domain: UIDDomain, counter_bits: int = 32) -> int:
        """Transmitted size: one (identifier, counter) pair per nonzero
        bucket."""
        id_bits = _node_id_bits(domain)
        return len(self) * (id_bits + counter_bits)

    def size_bytes(self, domain: UIDDomain, counter_bits: int = 32) -> int:
        return (self.size_bits(domain, counter_bits) + 7) // 8

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Histogram({len(self)} nonzero buckets, "
            f"total={self.total:g}, unmatched={self.unmatched:g})"
        )


def _node_id_bits(domain: UIDDomain) -> int:
    """Bits to encode one hierarchy node as (prefix, length)."""
    return domain.height + max(1, math.ceil(math.log2(domain.height + 1)))


def _sparse_offset_bits(domain: UIDDomain) -> int:
    """Extra bits for a sparse bucket: the inner sub-bucket is encoded
    as a distance up the tree, O(log log |U|) (Section 4.3)."""
    return max(1, math.ceil(math.log2(domain.height + 1)))


class PartitioningFunction:
    """Base class: a set of buckets over a domain, plus match machinery.

    Subclasses fix the interpretation (which ancestors an identifier
    maps to) by overriding :meth:`build_histogram` /
    :meth:`buckets_for_uid`.
    """

    semantics = "abstract"

    def __init__(self, domain: UIDDomain, buckets: Sequence[Bucket]) -> None:
        self.domain = domain
        self.buckets: List[Bucket] = list(buckets)
        if not self.buckets:
            raise ValueError("a partitioning function needs at least one bucket")
        seen: Dict[int, Bucket] = {}
        for b in self.buckets:
            if not domain.contains_node(b.node):
                raise ValueError(f"bucket node {b.node} invalid for {domain}")
            if b.node in seen:
                raise ValueError(f"duplicate bucket node {b.node}")
            seen[b.node] = b
            if b.sparse_group_node is not None and not UIDDomain.is_ancestor(
                b.node, b.sparse_group_node
            ):
                raise ValueError(
                    f"sparse sub-bucket {b.sparse_group_node} is not below "
                    f"its enclosing bucket {b.node}"
                )
        self._match_nodes = sorted(
            {n for b in self.buckets for n in b.match_nodes()}
        )
        if len(self._match_nodes) != sum(
            len(b.match_nodes()) for b in self.buckets
        ):
            raise ValueError("sparse sub-buckets collide with other buckets")
        # Per-depth sorted arrays for vectorized ancestor matching.
        by_depth: Dict[int, List[int]] = {}
        for n in self._match_nodes:
            by_depth.setdefault(UIDDomain.depth(n), []).append(n)
        self._depth_nodes = {
            d: np.asarray(sorted(ns), dtype=np.int64) for d, ns in by_depth.items()
        }
        self._validate()

    # -- hooks ----------------------------------------------------------
    def _validate(self) -> None:
        """Subclass structural checks (e.g. cut property)."""

    @property
    def num_buckets(self) -> int:
        """Bucket budget consumed (sparse buckets count once)."""
        return len(self.buckets)

    @property
    def match_nodes(self) -> List[int]:
        """All nodes carrying counters, sparse inner nodes included."""
        return list(self._match_nodes)

    def bucket_nodes(self) -> List[int]:
        return [b.node for b in self.buckets]

    def size_bits(self) -> int:
        """Representation size of the function itself: one identifier
        per bucket, plus the sparse-offset surcharge."""
        id_bits = _node_id_bits(self.domain)
        off_bits = _sparse_offset_bits(self.domain)
        return sum(
            id_bits + (off_bits if b.is_sparse else 0) for b in self.buckets
        )

    # -- matching --------------------------------------------------------
    def _matches_by_depth(
        self, uids: np.ndarray
    ) -> Iterable[Tuple[int, np.ndarray, np.ndarray]]:
        """Yield ``(depth, mask, ancestor_nodes)`` for each populated
        depth: which uids have a match node as ancestor at that depth."""
        height = self.domain.height
        for d in sorted(self._depth_nodes):
            nodes = self._depth_nodes[d]
            anc = (uids >> (height - d)) + (1 << d)
            pos = np.searchsorted(nodes, anc)
            pos = np.minimum(pos, len(nodes) - 1)
            mask = nodes[pos] == anc
            yield d, mask, anc

    def matching_nodes_for_uid(self, uid: int) -> List[int]:
        """All match nodes that are ancestors of ``uid``, shallowest
        first."""
        if not self.domain.contains_uid(uid):
            raise ValueError(f"uid {uid} outside {self.domain}")
        leaf = self.domain.leaf(uid)
        out = []
        for d in sorted(self._depth_nodes):
            anc = UIDDomain.ancestor_at_depth(leaf, d)
            nodes = self._depth_nodes[d]
            k = int(np.searchsorted(nodes, anc))
            if k < len(nodes) and nodes[k] == anc:
                out.append(int(anc))
        return out

    def buckets_for_uid(self, uid: int) -> List[int]:
        """Match nodes ``uid`` maps to under this function's semantics."""
        raise NotImplementedError

    def build_histogram(
        self,
        uids: Sequence[int],
        values: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Partition a window of identifiers into per-bucket aggregates.

        Without ``values`` the buckets hold ``count(*)``; with a
        per-tuple value vector they hold ``sum(value)`` (any
        distributive SQL aggregate reduces to such weighted counters).
        """
        raise NotImplementedError

    @staticmethod
    def _weights(
        uids: np.ndarray, values: Optional[Sequence[float]]
    ) -> np.ndarray:
        if values is None:
            return np.ones(uids.shape, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != uids.shape:
            raise ValueError(
                f"value vector shape {values.shape} does not match "
                f"{uids.shape[0]} identifiers"
            )
        return values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}({self.num_buckets} buckets, "
            f"{self.size_bits()} bits)"
        )


class _ClosestAncestorMixin:
    """Shared counting logic for semantics where each identifier maps to
    its single closest matching ancestor (nonoverlapping cuts satisfy
    this trivially — there is exactly one match)."""

    def buckets_for_uid(self, uid: int) -> List[int]:
        matches = self.matching_nodes_for_uid(uid)
        return [matches[-1]] if matches else []

    def build_histogram(
        self,
        uids: Sequence[int],
        values: Optional[Sequence[float]] = None,
    ) -> Histogram:
        uids = np.asarray(uids, dtype=np.int64)
        weights = self._weights(uids, values)
        best = np.full(uids.shape, -1, dtype=np.int64)
        # Depths ascend, so later (deeper) matches overwrite earlier ones,
        # leaving the closest ancestor.
        for _d, mask, anc in self._matches_by_depth(uids):
            best[mask] = anc[mask]
        matched = best >= 0
        nodes, inverse = np.unique(best[matched], return_inverse=True)
        sums = np.bincount(
            inverse, weights=weights[matched], minlength=len(nodes)
        )
        return Histogram(
            dict(zip(nodes.tolist(), sums.tolist())),
            unmatched=float(weights[~matched].sum()),
            total=float(weights.sum()),
        )


class NonoverlappingPartitioning(_ClosestAncestorMixin, PartitioningFunction):
    """Bucket nodes form a cut of the hierarchy (Figure 3)."""

    semantics = "nonoverlapping"

    def __init__(self, domain: UIDDomain, buckets: Sequence[Bucket]) -> None:
        if any(
            b.is_sparse for b in (buckets if isinstance(buckets, list) else list(buckets))
        ):
            raise ValueError("sparse buckets only apply to nested semantics")
        super().__init__(domain, buckets)

    def _validate(self) -> None:
        # A cut = pairwise disjoint subtrees.  (Covering the whole
        # domain is not required: the lookup table may not either.)
        ranges = sorted(self.domain.uid_range(b.node) for b in self.buckets)
        for (alo, ahi), (blo, _bhi) in zip(ranges, ranges[1:]):
            if blo < ahi:
                raise ValueError(
                    "nonoverlapping buckets overlap: ranges "
                    f"[{alo}, {ahi}) and starting at {blo}"
                )

    def covers_domain(self) -> bool:
        ranges = sorted(self.domain.uid_range(b.node) for b in self.buckets)
        if ranges[0][0] != 0 or ranges[-1][1] != self.domain.num_uids:
            return False
        return all(a[1] == b[0] for a, b in zip(ranges, ranges[1:]))


class OverlappingPartitioning(PartitioningFunction):
    """Identifiers map to every matching ancestor bucket (Figure 4)."""

    semantics = "overlapping"

    def buckets_for_uid(self, uid: int) -> List[int]:
        return self.matching_nodes_for_uid(uid)

    def build_histogram(
        self,
        uids: Sequence[int],
        values: Optional[Sequence[float]] = None,
    ) -> Histogram:
        uids = np.asarray(uids, dtype=np.int64)
        weights = self._weights(uids, values)
        counts: Dict[int, float] = {}
        any_match = np.zeros(uids.shape, dtype=bool)
        for _d, mask, anc in self._matches_by_depth(uids):
            any_match |= mask
            nodes, inverse = np.unique(anc[mask], return_inverse=True)
            sums = np.bincount(
                inverse, weights=weights[mask], minlength=len(nodes)
            )
            for n, c in zip(nodes.tolist(), sums.tolist()):
                counts[n] = counts.get(n, 0.0) + c
        return Histogram(
            counts,
            unmatched=float(weights[~any_match].sum()),
            total=float(weights.sum()),
        )


class LongestPrefixMatchPartitioning(_ClosestAncestorMixin, PartitioningFunction):
    """Identifiers map only to the closest ancestor bucket (Figures 5-6).

    Buckets nest arbitrarily; a nested bucket is a "hole" in its parent.
    """

    semantics = "longest_prefix_match"

    def nesting_parent(self) -> Dict[int, Optional[int]]:
        """For each match node, the match node of its closest enclosing
        bucket (``None`` for top-level buckets)."""
        nodes = set(self._match_nodes)
        out: Dict[int, Optional[int]] = {}
        for n in self._match_nodes:
            parent = None
            for anc in UIDDomain.ancestors(n):
                if anc in nodes:
                    parent = int(anc)
                    break
            out[int(n)] = parent
        return out

    def holes(self) -> Dict[int, List[int]]:
        """Direct nested buckets ("holes", Figure 7) per match node."""
        out: Dict[int, List[int]] = {int(n): [] for n in self._match_nodes}
        for child, parent in self.nesting_parent().items():
            if parent is not None:
                out[parent].append(child)
        return out
