"""Streaming perf harness: serving-path speedups, naive vs fast.

Times the steady-state window lifecycle in both stream kernel modes —
Monitor-side ingest (histogram construction per window, plus the
batched multi-window path), Control-Center decode (per-group estimate
reconstruction), and the end-to-end :class:`MonitoringSystem` run with
1 vs N partitioning workers — across all three semantics classes,
verifies the fast-path histograms and estimates are **bit-identical**
to the naive reference, and writes the measurements to
``BENCH_streams.json`` at the repo root so perf PRs have a recorded
trajectory.

Usage::

    python benchmarks/bench_streams.py               # full grid
    python benchmarks/bench_streams.py --grid tiny   # CI smoke grid
    python benchmarks/bench_streams.py --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, List, Optional

import numpy as np

from repro import (
    CompiledEstimator,
    CompiledPartitioner,
    PrunedHierarchy,
    UIDDomain,
    get_metric,
    reconstruct_estimates,
)
from repro.algorithms import (
    build_lpm_greedy,
    build_nonoverlapping,
    build_overlapping,
)
from repro.data import TrafficModel, generate_subnet_table, generate_trace
from repro.streams import MonitoringSystem, Trace, use_stream_kernel_mode

SCHEMA = "repro.bench_streams.v1"

DEFAULT_OUT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir,
    "BENCH_streams.json",
)

#: (height, tuples, windows, budget) rows of the workload grid.
FULL_SIZES = [
    (12, 400_000, 16, 60),
    (16, 2_000_000, 32, 100),
]
TINY_SIZES = [(10, 40_000, 8, 20)]

ALGORITHMS = {
    "nonoverlapping": build_nonoverlapping,
    "overlapping": build_overlapping,
    "lpm": build_lpm_greedy,
}


def _workload(height: int, tuples: int):
    table = generate_subnet_table(
        UIDDomain(height), seed=7, base_stop=0.05, depth_ramp=0.02
    )
    model = TrafficModel(
        mode="zipf", active_fraction=0.5, zipf_exponent=1.1
    )
    uids = generate_trace(table, tuples, seed=11, model=model)
    counts = table.counts_from_uids(uids)
    return table, counts, uids


def _histograms_identical(a, b) -> bool:
    return bool(
        np.array_equal(a.nodes, b.nodes)
        and np.array_equal(a.values, b.values)
        and a.unmatched == b.unmatched
        and a.total == b.total
    )


def _bench_ingest(fn, windows: List[np.ndarray]) -> Dict[str, object]:
    """Per-window histogram construction: naive loop vs compiled vs
    compiled-batched, with bit-identity verification."""
    tuples = sum(int(w.size) for w in windows)
    compiled = CompiledPartitioner.for_function(fn)  # untimed compile+warmup
    compiled.build_histogram(windows[0])

    t0 = time.perf_counter()
    naive = [fn.build_histogram(w) for w in windows]
    naive_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast = [compiled.build_histogram(w) for w in windows]
    fast_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    batched = compiled.build_histograms(windows)
    batched_s = time.perf_counter() - t0

    identical = all(
        _histograms_identical(n, f) and _histograms_identical(n, b)
        for n, f, b in zip(naive, fast, batched)
    )
    return {
        "tuples": tuples,
        "windows": len(windows),
        "seconds": {
            "naive": round(naive_s, 6),
            "fast": round(fast_s, 6),
            "fast_batched": round(batched_s, 6),
        },
        "tuples_per_sec": {
            "naive": round(tuples / naive_s, 1),
            "fast": round(tuples / fast_s, 1),
            "fast_batched": round(tuples / batched_s, 1),
        },
        "speedup_fast": round(naive_s / fast_s, 3),
        "speedup_fast_batched": round(naive_s / batched_s, 3),
        "bit_identical": identical,
        "histograms": naive,
    }


def _bench_decode(table, fn, histograms) -> Dict[str, object]:
    """Per-window estimate reconstruction: dict-walk reference vs the
    compiled gather/divide, with bit-identity verification."""
    estimator = CompiledEstimator.for_pair(table, fn)  # untimed compile
    estimator.estimate(histograms[0])

    t0 = time.perf_counter()
    naive = [reconstruct_estimates(table, fn, h) for h in histograms]
    naive_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast = [estimator.estimate(h) for h in histograms]
    fast_s = time.perf_counter() - t0

    identical = all(
        np.array_equal(n, f) for n, f in zip(naive, fast)
    )
    return {
        "windows": len(histograms),
        "seconds": {
            "naive": round(naive_s, 6), "fast": round(fast_s, 6),
        },
        "windows_per_sec": {
            "naive": round(len(histograms) / naive_s, 1),
            "fast": round(len(histograms) / fast_s, 1),
        },
        "speedup_fast": round(naive_s / fast_s, 3),
        "bit_identical": identical,
    }


def _bench_system(
    table, uids: np.ndarray, windows: int, budget: int, workers: int
) -> Dict[str, object]:
    """End-to-end run, 1 vs N partitioning workers (both fast mode)."""
    trace = Trace.untimed(uids)
    half = trace.duration / 2
    width = max(half / windows, 1e-9)
    results: Dict[int, object] = {}
    seconds: Dict[str, float] = {}
    for parallel in (1, workers):
        system = MonitoringSystem(
            table, get_metric("rms"), num_monitors=4,
            algorithm="lpm_greedy", budget=budget, parallel=parallel,
        )
        with use_stream_kernel_mode("fast"):
            system.train(trace.slice_time(0, half))
            t0 = time.perf_counter()
            report = system.run(trace.slice_time(half, trace.duration + 1),
                                window_width=width)
            seconds[f"workers_{parallel}"] = time.perf_counter() - t0
        results[parallel] = report
    live_tuples = sum(w.tuples for w in results[1].windows)
    return {
        "workers": workers,
        "windows": len(results[1].windows),
        "tuples": live_tuples,
        "seconds": {k: round(v, 6) for k, v in seconds.items()},
        "tuples_per_sec": {
            k: round(live_tuples / v, 1) for k, v in seconds.items()
        },
        "speedup_parallel": round(
            seconds["workers_1"] / seconds[f"workers_{workers}"], 3
        ),
        "reports_identical": results[1].windows == results[workers].windows,
    }


def run_grid(grid: str) -> Dict[str, object]:
    sizes = TINY_SIZES if grid == "tiny" else FULL_SIZES
    metric = get_metric("rms")
    workers = min(4, os.cpu_count() or 1)
    points: List[Dict[str, object]] = []
    for height, tuples, n_windows, budget in sizes:
        table, counts, uids = _workload(height, tuples)
        hierarchy = PrunedHierarchy(table, counts)
        windows = [
            np.ascontiguousarray(w) for w in np.array_split(uids, n_windows)
        ]
        workload = {
            "height": height,
            "tuples": tuples,
            "windows": n_windows,
            "groups": table.num_groups,
            "budget": budget,
            "traffic": "zipf(active=0.5, s=1.1)",
        }
        for name, builder in ALGORITHMS.items():
            fn = builder(hierarchy, metric, budget).function_at(budget)
            ingest = _bench_ingest(fn, windows)
            histograms = ingest.pop("histograms")
            decode = _bench_decode(table, fn, histograms)
            point = {
                "workload": workload,
                "algorithm": name,
                "semantics": fn.semantics,
                "buckets": fn.num_buckets,
                "ingest": ingest,
                "decode": decode,
            }
            points.append(point)
            print(
                f"h={height} n={tuples} {name}: ingest "
                f"{ingest['speedup_fast']}x "
                f"(batched {ingest['speedup_fast_batched']}x, "
                f"identical={ingest['bit_identical']}) decode "
                f"{decode['speedup_fast']}x "
                f"(identical={decode['bit_identical']})"
            )
        system = _bench_system(table, uids, n_windows, budget, workers)
        points.append(
            {"workload": workload, "algorithm": "system", "system": system}
        )
        print(
            f"h={height} n={tuples} system: 1 worker "
            f"{system['tuples_per_sec']['workers_1']} tps, "
            f"{workers} workers "
            f"{system['tuples_per_sec'][f'workers_{workers}']} tps "
            f"({system['speedup_parallel']}x, "
            f"identical={system['reports_identical']})"
        )
    largest = max(p["workload"]["tuples"] for p in points)
    summary = {
        p["algorithm"]: p["ingest"]["speedup_fast"]
        for p in points
        if p["workload"]["tuples"] == largest and "ingest" in p
    }
    return {
        "schema": SCHEMA,
        "generated_by": "benchmarks/bench_streams.py",
        "grid": grid,
        "modes": ["naive", "fast"],
        "points": points,
        "largest_point": {
            "tuples": largest,
            "ingest_speedup_fast": summary,
            "min_ingest_speedup_fast": min(summary.values()),
        },
    }


def write_report(doc: Dict[str, object], out: str) -> str:
    with open(out, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    return out


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--grid", choices=("tiny", "full"), default="full",
        help="workload grid: 'tiny' is the CI smoke grid",
    )
    parser.add_argument(
        "--out", default=DEFAULT_OUT,
        help="output JSON path (default: repo-root BENCH_streams.json)",
    )
    args = parser.parse_args(argv)
    doc = run_grid(args.grid)
    path = write_report(doc, args.out)
    print(f"wrote {os.path.abspath(path)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
