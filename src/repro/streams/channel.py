"""The Monitor-to-Control-Center communication channel.

The whole point of the paper is reducing what flows over this link, so
the simulated channel does byte accounting for every message: histogram
updates upstream, partitioning-function installs downstream, and the
raw-stream baseline (shipping every identifier) for comparison.

The link is not assumed perfect: an optional :class:`~.faults.FaultModel`
is applied to both directions.  Byte accounting is *per wire
transmission* — a dropped histogram still cost its bytes, a duplicated
one cost them twice, and every install retransmission is charged again
— so ``compression_ratio`` always reflects real link cost, not just
what happened to arrive.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.domain import UIDDomain
from ..core.partition import PartitioningFunction
from ..obs import get_journal, get_registry, get_tracer
from .faults import Delivery, FaultModel
from .monitor import HistogramMessage

__all__ = ["Channel"]


class Channel:
    """Byte-accounting transport between Monitors and the Control
    Center, optionally lossy in both directions."""

    #: Counter widths the v1 codec contract admits.  The v1 payload
    #: does not record its counter width (see the warning on
    #: :func:`repro.core.serialize.encode_histogram`), so the channel —
    #: the one component both ends share — owns the width: every
    #: ``size_bytes`` charge and any encode/decode made on behalf of
    #: this link must use ``self.counter_bits``.  The v2 format carries
    #: its width in-band instead and ignores this setting.
    V1_COUNTER_WIDTHS = (8, 16, 32, 64)

    def __init__(
        self,
        domain: UIDDomain,
        counter_bits: int = 32,
        faults: Optional[FaultModel] = None,
    ) -> None:
        if counter_bits not in self.V1_COUNTER_WIDTHS:
            raise ValueError(
                f"counter_bits must be one of {self.V1_COUNTER_WIDTHS}, "
                f"got {counter_bits} (encoder and decoder must agree on "
                f"the v1 counter width; it is not recorded on the wire)"
            )
        self.domain = domain
        self.counter_bits = counter_bits
        self.faults = faults
        #: Every wire transmission, delivered or not.
        self.messages: List[HistogramMessage] = []
        #: Every surviving upstream copy (what the Control Center sees).
        self.delivered: List[Delivery] = []
        self.upstream_bytes = 0
        self.downstream_bytes = 0

    def send_histogram(
        self, message: HistogramMessage, plan=None
    ) -> List[Delivery]:
        """Monitor -> Control Center.

        Returns the copies that survive the link (empty when dropped;
        two entries when duplicated).  Each copy carries its arrival
        delay in windows.  Without a fault model this is always exactly
        one immediate delivery.  ``plan`` applies fault decisions drawn
        earlier with :meth:`~.faults.FaultModel.plan_decisions` instead
        of drawing fresh ones (used by the parallel ingest pool to keep
        the serial draw order).
        """
        faults = self.faults
        if plan is not None:
            transmissions, fates = plan
            deliveries = [
                Delivery(message, delay=delay, reorder=reorder, copy=i)
                for i, (delay, reorder) in enumerate(fates)
            ]
        elif faults is None:
            transmissions = 1
            deliveries = [Delivery(message)]
        else:
            transmissions, deliveries = faults.plan_histogram(message)
        size = message.size_bytes(self.domain, self.counter_bits)
        registry = get_registry()
        for _ in range(transmissions):
            self.messages.append(message)
            self.upstream_bytes += size
            if registry.enabled:
                registry.counter("channel.upstream.bytes").inc(size)
                registry.counter("channel.upstream.messages").inc()
                registry.histogram("channel.message.bytes").observe(size)
        self.delivered.extend(deliveries)
        if registry.enabled:
            dropped = transmissions - len(deliveries)
            if dropped:
                registry.counter("channel.faults.dropped").inc(dropped)
            if transmissions > 1:
                registry.counter("channel.faults.duplicated").inc(
                    transmissions - 1
                )
            delayed = sum(1 for d in deliveries if d.delay)
            if delayed:
                registry.counter("channel.faults.delayed").inc(delayed)
        journal = get_journal()
        if journal.enabled:
            where = {
                "monitor": message.monitor,
                "window": message.window_index,
            }
            for _ in range(transmissions - 1):
                journal.emit("fault.duplicate", **where)
            for _ in range(transmissions - len(deliveries)):
                journal.emit("fault.drop", **where)
            for d in deliveries:
                if d.delay:
                    journal.emit("fault.delay", delay=d.delay, **where)
        tracer = get_tracer()
        if tracer.enabled:
            monitor = message.monitor
            window = message.window_index
            version = message.function_version
            # Surviving copies are numbered 0..len(deliveries)-1, the
            # dropped transmissions take the remaining indices.
            for copy in range(transmissions):
                tracer.sent(monitor, window, version, copy)
                if copy >= 1:
                    tracer.duplicated(monitor, window, version, copy)
            for d in deliveries:
                if d.delay:
                    tracer.delayed(monitor, window, version, d.copy, d.delay)
            for copy in range(len(deliveries), transmissions):
                tracer.dropped(monitor, window, version, copy)
        return deliveries

    def send_function(
        self, function: PartitioningFunction, version: Optional[int] = None
    ) -> bool:
        """Control Center -> Monitor (version-stamped function install).

        Returns whether the install survived the link; the transmission
        is charged either way.
        """
        size = (function.size_bits() + 7) // 8
        self.downstream_bytes += size
        delivered = self.faults.deliver_install() if self.faults else True
        registry = get_registry()
        if registry.enabled:
            registry.counter("channel.downstream.bytes").inc(size)
            registry.counter("channel.downstream.installs").inc()
            if not delivered:
                registry.counter("channel.faults.install_dropped").inc()
        return delivered

    @property
    def total_bytes(self) -> int:
        return self.upstream_bytes + self.downstream_bytes

    def raw_stream_bytes(self, num_tuples: int) -> int:
        """What shipping the raw identifiers would have cost."""
        return num_tuples * ((self.domain.height + 7) // 8)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Channel(up={self.upstream_bytes}B, "
            f"down={self.downstream_bytes}B, "
            f"{len(self.messages)} messages)"
        )
