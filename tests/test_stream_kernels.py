"""Bit-exactness property tests for the compiled serving fast path.

The contract (the same one ``algorithms.kernels`` established for
construction): under ``REPRO_STREAM_KERNELS=fast`` every histogram and
every decoded estimate is **bit-for-bit identical** to the naive
reference path — the compiled kernels perform the same floating-point
accumulations in the same order, so not even the last ulp may move.

Covered here, over randomized functions and windows:

* :class:`~repro.core.compiled.CompiledPartitioner` vs
  ``PartitioningFunction.build_histogram`` for all three semantics
  classes, weighted and unweighted, sparse buckets included;
* batched :meth:`~repro.core.compiled.CompiledPartitioner.build_histograms`
  vs one call per window;
* :class:`~repro.core.compiled.CompiledEstimator` vs
  :func:`~repro.core.estimate.reconstruct_estimates`;
* vectorized :meth:`~repro.core.partition.Histogram.merge` vs bucketwise
  dict accumulation;
* the Monitor / Control Center / MonitoringSystem integration, serial
  and ``parallel=N``;
* the mode machinery itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    Bucket,
    CompiledEstimator,
    CompiledPartitioner,
    GroupTable,
    Histogram,
    LongestPrefixMatchPartitioning,
    NonoverlappingPartitioning,
    OverlappingPartitioning,
    UIDDomain,
    get_metric,
    histogram_from_group_counts,
    reconstruct_estimates,
)
from repro.streams import (
    STREAM_KERNEL_MODES,
    ControlCenter,
    Monitor,
    MonitoringSystem,
    Trace,
    set_stream_kernel_mode,
    stream_kernel_mode,
    use_stream_kernel_mode,
)

DOM = UIDDomain(7)


def _random_function(rng, max_depth=None):
    """A random valid function of a random semantics class; cap bucket
    depth with ``max_depth`` to keep buckets at-or-above group nodes
    for estimator tests."""
    max_depth = DOM.height if max_depth is None else max_depth
    kind = rng.integers(0, 3)
    if kind == 0:
        depth = int(rng.integers(1, max_depth))
        width = 1 << depth
        prefixes = rng.choice(
            width, size=int(rng.integers(1, min(6, width) + 1)), replace=False
        )
        buckets = [Bucket(DOM.node(depth, int(p))) for p in sorted(prefixes)]
        return NonoverlappingPartitioning(DOM, buckets)
    cls = (
        OverlappingPartitioning
        if kind == 1
        else LongestPrefixMatchPartitioning
    )
    for _ in range(50):
        nodes = set()
        while len(nodes) < int(rng.integers(1, 8)):
            d = int(rng.integers(0, max_depth + 1))
            nodes.add(int(DOM.node(d, int(rng.integers(0, 1 << d)))))
        try:
            return cls(DOM, [Bucket(n) for n in nodes])
        except ValueError:
            continue
    return cls(DOM, [Bucket(1)])


def _random_window(rng, max_len=300):
    n = int(rng.integers(0, max_len))
    uids = rng.integers(0, DOM.num_uids, size=n)
    values = rng.normal(size=n) * 10.0
    return uids, values


def _assert_histograms_identical(a, b):
    assert np.array_equal(a.nodes, b.nodes)
    assert np.array_equal(a.values, b.values)  # bitwise: no tolerance
    assert a.unmatched == b.unmatched
    assert a.total == b.total


class TestCompiledPartitioner:
    @settings(max_examples=60, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_bit_identical_to_naive(self, seed):
        rng = np.random.default_rng(seed)
        fn = _random_function(rng)
        uids, values = _random_window(rng)
        compiled = CompiledPartitioner.for_function(fn)
        for vals in (None, values):
            _assert_histograms_identical(
                fn.build_histogram(uids, values=vals),
                compiled.build_histogram(uids, values=vals),
            )

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_batch_equals_single(self, seed):
        rng = np.random.default_rng(seed)
        fn = _random_function(rng)
        compiled = CompiledPartitioner.for_function(fn)
        windows = [_random_window(rng, 120) for _ in range(4)]
        uid_windows = [w[0] for w in windows]
        value_windows = [w[1] for w in windows]
        for vals in (None, value_windows):
            batched = compiled.build_histograms(uid_windows, vals)
            for i, got in enumerate(batched):
                want = compiled.build_histogram(
                    uid_windows[i], None if vals is None else vals[i]
                )
                _assert_histograms_identical(want, got)

    def test_sparse_buckets(self):
        rng = np.random.default_rng(5)
        uids = rng.integers(0, DOM.num_uids, size=600)
        values = rng.random(600)
        for cls in (OverlappingPartitioning, LongestPrefixMatchPartitioning):
            fn = cls(
                DOM,
                [
                    Bucket(1),
                    Bucket(DOM.node(2, 1), sparse_group_node=DOM.node(4, 5)),
                ],
            )
            compiled = CompiledPartitioner.for_function(fn)
            for vals in (None, values):
                _assert_histograms_identical(
                    fn.build_histogram(uids, values=vals),
                    compiled.build_histogram(uids, values=vals),
                )

    def test_compile_cached_on_function(self):
        fn = NonoverlappingPartitioning(DOM, [Bucket(DOM.node(1, 0))])
        assert CompiledPartitioner.for_function(
            fn
        ) is CompiledPartitioner.for_function(fn)


class TestCompiledEstimator:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_bit_identical_to_reference(self, seed):
        rng = np.random.default_rng(seed)
        table = GroupTable(DOM, [DOM.node(6, p) for p in range(64)])
        fn = _random_function(rng, max_depth=6)
        counts = rng.integers(0, 60, size=len(table)).astype(np.float64)
        hist = histogram_from_group_counts(table, counts, fn)
        naive = reconstruct_estimates(table, fn, hist)
        fast = CompiledEstimator.for_pair(table, fn).estimate(hist)
        assert np.array_equal(naive, fast)  # bitwise: no tolerance

    def test_sparse_outer_residual(self):
        table = GroupTable(DOM, [DOM.node(5, p) for p in range(32)])
        fn = OverlappingPartitioning(
            DOM,
            [
                Bucket(1),
                Bucket(DOM.node(2, 1), sparse_group_node=DOM.node(4, 5)),
            ],
        )
        counts = np.linspace(0, 31, 32)
        hist = histogram_from_group_counts(table, counts, fn)
        naive = reconstruct_estimates(table, fn, hist)
        fast = CompiledEstimator.for_pair(table, fn).estimate(hist)
        assert np.array_equal(naive, fast)

    def test_estimator_cached_per_pair(self):
        table = GroupTable(DOM, [DOM.node(5, p) for p in range(32)])
        fn = NonoverlappingPartitioning(DOM, [Bucket(DOM.node(1, 0))])
        assert CompiledEstimator.for_pair(
            table, fn
        ) is CompiledEstimator.for_pair(table, fn)


class TestVectorizedMerge:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_merge_matches_dict_accumulation(self, seed):
        rng = np.random.default_rng(seed)
        fn = _random_function(rng)
        hists = [
            fn.build_histogram(*_random_window(rng, 150)[:1])
            for _ in range(int(rng.integers(0, 5)))
        ]
        merged = Histogram.merge(hists)
        expected = {}
        for h in hists:
            for node, value in h.counts.items():
                expected[node] = expected.get(node, 0.0) + value
        expected = {n: v for n, v in expected.items() if v != 0}
        assert merged.counts == expected
        assert merged.unmatched == sum(h.unmatched for h in hists)
        assert merged.total == sum(h.total for h in hists)


class TestStreamPipeline:
    def _workload(self, seed=0):
        rng = np.random.default_rng(seed)
        table = GroupTable(DOM, [DOM.node(6, p) for p in range(64)])
        n = 3000
        uids = rng.integers(0, DOM.num_uids, size=n)
        values = rng.random(n) * 4.0
        trace = Trace(np.sort(rng.random(n) * 100.0), uids, values)
        return table, trace.slice_time(0, 50), trace.slice_time(50, 100)

    def test_monitor_fast_equals_naive(self):
        table, history, live = self._workload()
        fn = LongestPrefixMatchPartitioning(
            DOM, [Bucket(1), Bucket(DOM.node(3, 2)), Bucket(DOM.node(2, 3))]
        )
        monitor = Monitor("m0")
        monitor.install_function(fn, 0)
        for vals in (None, live.values):
            with use_stream_kernel_mode("fast"):
                fast = monitor.process_window(0, live.uids, values=vals)
            with use_stream_kernel_mode("naive"):
                naive = monitor.process_window(0, live.uids, values=vals)
            _assert_histograms_identical(fast.histogram, naive.histogram)

    def test_monitor_batch_api(self):
        fn = NonoverlappingPartitioning(
            DOM, [Bucket(DOM.node(2, p)) for p in range(4)]
        )
        rng = np.random.default_rng(1)
        windows = [
            rng.integers(0, DOM.num_uids, size=int(rng.integers(1, 80)))
            for _ in range(5)
        ]
        for mode in STREAM_KERNEL_MODES:
            monitor = Monitor("m0")
            monitor.install_function(fn, 3)
            with use_stream_kernel_mode(mode):
                messages = monitor.process_windows(range(5), windows)
            assert [m.window_index for m in messages] == list(range(5))
            assert monitor.windows_processed == 5
            assert monitor.tuples_processed == sum(len(w) for w in windows)
            for msg, uids in zip(messages, windows):
                _assert_histograms_identical(
                    msg.histogram, fn.build_histogram(uids)
                )

    def test_monitor_batch_rejects_mismatched_lengths(self):
        monitor = Monitor("m0")
        monitor.install_function(
            NonoverlappingPartitioning(DOM, [Bucket(DOM.node(1, 0))]), 0
        )
        with pytest.raises(ValueError, match="window indices"):
            monitor.process_windows([0, 1], [np.array([1])])

    def test_decode_fast_equals_naive(self):
        table, history, live = self._workload(3)
        cc = ControlCenter(table, get_metric("rms"), budget=30)
        counts = np.asarray(
            [float(i % 7) for i in range(len(table))], dtype=np.float64
        )
        fn = cc.rebuild_function(counts)
        monitor = Monitor("m0")
        monitor.install_function(fn, cc.function_version)
        msg = monitor.process_window(0, live.uids, values=live.values)
        with use_stream_kernel_mode("fast"):
            fast = cc.decode_window([msg])
        with use_stream_kernel_mode("naive"):
            naive = cc.decode_window([msg])
        assert np.array_equal(fast.estimates, naive.estimates)

    def test_system_parallel_equals_serial(self):
        table, history, live = self._workload(4)
        reports = []
        for parallel in (1, 3):
            system = MonitoringSystem(
                table,
                get_metric("rms"),
                num_monitors=3,
                budget=30,
                parallel=parallel,
            )
            system.train(history)
            reports.append(system.run(live, window_width=10.0))
        serial, pooled = reports
        assert pooled.windows == serial.windows
        assert pooled.upstream_bytes == serial.upstream_bytes

    def test_system_rejects_bad_parallel(self):
        table, _, _ = self._workload()
        with pytest.raises(ValueError, match="parallel"):
            MonitoringSystem(
                table, get_metric("rms"), num_monitors=2, parallel=0
            )


class TestModeMachinery:
    def test_default_mode_is_fast(self):
        assert stream_kernel_mode() in STREAM_KERNEL_MODES

    def test_set_and_restore(self):
        previous = set_stream_kernel_mode("naive")
        try:
            assert stream_kernel_mode() == "naive"
        finally:
            set_stream_kernel_mode(previous)

    def test_use_scopes_mode(self):
        before = stream_kernel_mode()
        with use_stream_kernel_mode("naive"):
            assert stream_kernel_mode() == "naive"
        assert stream_kernel_mode() == before

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown stream kernel mode"):
            set_stream_kernel_mode("turbo")

    def test_env_initialisation(self):
        import os
        import subprocess
        import sys

        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.streams import stream_kernel_mode;"
                "print(stream_kernel_mode())",
            ],
            capture_output=True,
            text=True,
            env={**os.environ, "REPRO_STREAM_KERNELS": "naive"},
        )
        assert out.stdout.strip() == "naive"
