"""Wire formats for partitioning functions and histograms.

These codecs realize the size model the paper argues from:

* a partitioning function is a list of buckets, each **one identifier**
  encoded as (depth, prefix) — ``ceil(log2(h + 1)) + depth`` bits — with
  a single flag bit and, for sparse buckets (Section 4.3), a
  ``O(log log |U|)``-bit offset locating the inner single-group
  sub-bucket *relative to* its enclosing bucket;
* a histogram is a list of (identifier, counter) pairs for the nonzero
  buckets only (zero buckets are inferred, Section 4.3).

Both binary formats are self-delimiting given the domain height; a JSON
codec is provided for configuration files and debugging.  The byte
sizes produced here are what the simulated channel accounts for.

This module is the **v1** histogram wire format.  The v2 format in
:mod:`repro.core.wire` supersedes it for transmission when selected
(``wire_format="v2"``): byte-aligned, self-describing counter widths,
delta/varint node ids, CRC-protected, and queryable/mergeable without
decoding.  See ``docs/wire-format.md`` for both layouts bit by bit.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Type

from .bits import BitReader, BitWriter
from .domain import UIDDomain
from .partition import (
    Bucket,
    Histogram,
    LongestPrefixMatchPartitioning,
    NonoverlappingPartitioning,
    OverlappingPartitioning,
    PartitioningFunction,
)

__all__ = [
    "encode_function",
    "decode_function",
    "encode_histogram",
    "decode_histogram",
    "function_to_json",
    "function_from_json",
]

_SEMANTICS_CODES: Dict[str, int] = {
    "nonoverlapping": 0,
    "overlapping": 1,
    "longest_prefix_match": 2,
}
_SEMANTICS_CLASSES: Dict[str, Type[PartitioningFunction]] = {
    "nonoverlapping": NonoverlappingPartitioning,
    "overlapping": OverlappingPartitioning,
    "longest_prefix_match": LongestPrefixMatchPartitioning,
}
_CODE_SEMANTICS = {v: k for k, v in _SEMANTICS_CODES.items()}


def _depth_bits(domain: UIDDomain) -> int:
    """Bits needed to encode a prefix length 0..height."""
    return max(1, math.ceil(math.log2(domain.height + 1)))


def _write_node(w: BitWriter, domain: UIDDomain, node: int) -> None:
    depth = UIDDomain.depth(node)
    w.write(depth, _depth_bits(domain))
    w.write(UIDDomain.prefix(node), depth)


def _read_node(r: BitReader, domain: UIDDomain) -> int:
    depth = r.read(_depth_bits(domain))
    prefix = r.read(depth)
    return domain.node(depth, prefix)


def encode_function(function: PartitioningFunction) -> bytes:
    """Serialize a partitioning function to its compact wire form.

    Layout: 6-bit domain height, 2-bit semantics code, varint bucket
    count, then per bucket the anchor node, a sparse flag, and (sparse
    only) the depth offset of the inner sub-bucket plus its path bits.
    """
    domain = function.domain
    if domain.height >= (1 << 6):
        raise ValueError(f"domain height {domain.height} exceeds wire format")
    w = BitWriter()
    w.write(domain.height, 6)
    w.write(_SEMANTICS_CODES[function.semantics], 2)
    w.write_unary_varint(function.num_buckets)
    for b in function.buckets:
        _write_node(w, domain, b.node)
        if b.sparse_group_node is None:
            w.write(0, 1)
        else:
            w.write(1, 1)
            offset = UIDDomain.depth(b.sparse_group_node) - UIDDomain.depth(
                b.node
            )
            w.write(offset, _depth_bits(domain))
            # path bits from the bucket anchor down to the sub-bucket
            sub_prefix = UIDDomain.prefix(b.sparse_group_node)
            rel = sub_prefix - (UIDDomain.prefix(b.node) << offset)
            w.write(rel, offset)
    return w.getvalue()


def decode_function(data: bytes) -> PartitioningFunction:
    """Inverse of :func:`encode_function`."""
    r = BitReader(data)
    domain = UIDDomain(r.read(6))
    try:
        semantics = _CODE_SEMANTICS[r.read(2)]
    except KeyError:
        raise ValueError("malformed function encoding: bad semantics code")
    count = r.read_unary_varint()
    buckets = []
    for _ in range(count):
        node = _read_node(r, domain)
        if r.read(1):
            offset = r.read(_depth_bits(domain))
            rel = r.read(offset)
            depth = UIDDomain.depth(node) + offset
            sub = domain.node(
                depth, (UIDDomain.prefix(node) << offset) | rel
            )
            buckets.append(Bucket(node, sparse_group_node=sub))
        else:
            buckets.append(Bucket(node))
    return _SEMANTICS_CLASSES[semantics](domain, buckets)


def encode_histogram(
    histogram: Histogram, domain: UIDDomain, counter_bits: int = 32
) -> bytes:
    """Serialize a histogram: varint bucket count then (node, counter)
    pairs; only nonzero buckets are transmitted.

    .. warning:: ``counter_bits`` is an **out-of-band contract**: the
       v1 payload does not record the counter width, so decoding with a
       different ``counter_bits`` than was encoded silently reads
       garbage.  Callers must pass the same value to both ends (the
       streams layer asserts this agreement); the v2 format in
       :mod:`repro.core.wire` makes the width self-describing instead.

    Counters are integers on the wire.  Non-integral values (the
    weighted-``values`` pipeline) are rejected rather than silently
    rounded — use the v2 float64 counter mode for weighted histograms.
    """
    w = BitWriter()
    w.write(domain.height, 6)
    w.write_unary_varint(len(histogram.counts))
    limit = (1 << counter_bits) - 1
    for node in sorted(histogram.counts):
        value = histogram.counts[node]
        if value != int(value):
            raise ValueError(
                f"count {value} at node {node} is not an integer; the v1 "
                f"wire format carries integer counters only (use the v2 "
                f"float64 counter mode for weighted histograms)"
            )
        c = int(value)
        if c < 0 or c > limit:
            raise ValueError(
                f"count {value} does not fit in {counter_bits}-bit counter"
            )
        _write_node(w, domain, node)
        w.write(c, counter_bits)
    return w.getvalue()


def decode_histogram(data: bytes, counter_bits: int = 32) -> Histogram:
    """Inverse of :func:`encode_histogram` (count totals are not
    transmitted; the decoded histogram reports the counter sum).

    ``counter_bits`` must match the width used at encode time — see the
    warning on :func:`encode_histogram`.  A mismatch usually desynchronizes
    the bit stream and surfaces here as :class:`ValueError`, but short
    payloads can alias, so the width contract cannot be fully validated
    from the bytes alone.
    """
    r = BitReader(data)
    domain = UIDDomain(r.read(6))
    count = r.read_unary_varint()
    counts: Dict[int, float] = {}
    try:
        for _ in range(count):
            node = _read_node(r, domain)
            counts[node] = float(r.read(counter_bits))
    except EOFError:
        raise ValueError(
            f"malformed histogram encoding: ran out of bits mid-bucket "
            f"(truncated payload, or counter_bits={counter_bits} does not "
            f"match the width used by the encoder)"
        )
    if r.bits_remaining >= 8:
        raise ValueError(
            f"malformed histogram encoding: {r.bits_remaining} trailing "
            f"bits after the last bucket (counter_bits={counter_bits} "
            f"may not match the width used by the encoder)"
        )
    return Histogram(counts, total=float(sum(counts.values())))


def function_to_json(function: PartitioningFunction) -> str:
    """Human-readable JSON form (configuration / debugging)."""
    domain = function.domain
    return json.dumps(
        {
            "semantics": function.semantics,
            "height": domain.height,
            "buckets": [
                {
                    "prefix": domain.node_prefix_str(b.node),
                    **(
                        {
                            "sparse_group": domain.node_prefix_str(
                                b.sparse_group_node
                            )
                        }
                        if b.is_sparse
                        else {}
                    ),
                }
                for b in function.buckets
            ],
        },
        indent=2,
    )


def function_from_json(text: str) -> PartitioningFunction:
    """Inverse of :func:`function_to_json`."""
    doc = json.loads(text)
    domain = UIDDomain(int(doc["height"]))
    buckets = []
    for item in doc["buckets"]:
        node = domain.parse_prefix_str(item["prefix"])
        sparse = item.get("sparse_group")
        buckets.append(
            Bucket(
                node,
                sparse_group_node=(
                    domain.parse_prefix_str(sparse) if sparse else None
                ),
            )
        )
    try:
        cls = _SEMANTICS_CLASSES[doc["semantics"]]
    except KeyError:
        raise ValueError(f"unknown semantics {doc.get('semantics')!r}")
    return cls(domain, buckets)
