"""Metamorphic tests for degraded decoding.

With traffic split uniformly across ``m`` Monitors, dropping ``k`` of
them and rescaling the decode by observed coverage (``m / (m - k)``)
must land within a tolerance band of the full-fleet estimates — the
missing Monitors saw a random, not a biased, slice of the stream.  A
pinned-seed regression fixture locks the exact degradation accounting
of one faulty end-to-end run.
"""

import json
import os

import numpy as np
import pytest

from repro import UIDDomain, get_metric
from repro.data import TrafficModel, generate_subnet_table
from repro.data.traffic import generate_timestamped_trace
from repro.streams import FaultModel, MonitoringSystem, Trace


@pytest.fixture(scope="module")
def fleet():
    """A trained Control Center plus one window's messages from every
    Monitor of a 6-strong fleet over a uniform split."""
    dom = UIDDomain(12)
    table = generate_subnet_table(dom, seed=5)
    ts, uids = generate_timestamped_trace(
        table, 60_000, duration=20.0, seed=6,
        model=TrafficModel(active_fraction=0.1, zipf_exponent=1.1),
    )
    trace = Trace(ts, uids)
    system = MonitoringSystem(
        table, get_metric("rms"), num_monitors=6,
        algorithm="lpm_greedy", budget=60, stale_policy="rescale",
    )
    system.train(trace.slice_time(0, 10))
    live = trace.slice_time(10, 20)
    shares = live.split(6, seed=3)
    messages = [
        monitor.process_window(0, share.uids)
        for monitor, share in zip(system.monitors, shares)
    ]
    return system.control_center, messages


@pytest.mark.parametrize("k", [1, 2, 3])
def test_coverage_rescale_tracks_full_fleet(fleet, k):
    cc, messages = fleet
    m = len(messages)
    full = cc.decode_window(
        messages, expected_monitors=m, policy="quarantine"
    ).estimates
    degraded = cc.decode_window(
        messages[k:], expected_monitors=m, policy="rescale"
    )
    assert degraded.monitors_reporting == m - k
    assert degraded.coverage == pytest.approx((m - k) / m)
    # Totals must agree to within the split's sampling noise, and the
    # per-group profile must stay close in L1.
    assert degraded.estimates.sum() == pytest.approx(
        full.sum(), rel=0.10
    )
    l1 = float(np.abs(degraded.estimates - full).sum())
    assert l1 / max(1.0, float(full.sum())) < 0.15


def test_rescale_beats_unrescaled_decode(fleet):
    """Dropping half the fleet without rescaling undershoots every
    count by ~2x; the rescale policy must be strictly closer."""
    cc, messages = fleet
    m = len(messages)
    full = cc.decode_window(
        messages, expected_monitors=m, policy="quarantine"
    ).estimates
    kept = messages[3:]
    plain = cc.decode_window(
        kept, expected_monitors=m, policy="quarantine"
    ).estimates
    rescaled = cc.decode_window(
        kept, expected_monitors=m, policy="rescale"
    ).estimates
    assert np.abs(rescaled - full).sum() < np.abs(plain - full).sum()


def test_zero_reporting_monitors_decodes_to_zero(fleet):
    cc, messages = fleet
    decoded = cc.decode_window(
        [], expected_monitors=len(messages), policy="rescale"
    )
    assert decoded.monitors_reporting == 0
    assert decoded.coverage == 0.0
    assert not decoded.estimates.any()


class TestPinnedSeedRegression:
    """The canonical faulty run (``drop=0.2, dup=0.1, seed=42``, 4
    monitors) is deterministic; its integer degradation accounting is
    pinned here as a regression fixture.

    When ``REPRO_FAULT_FIXTURE_OUT`` is set, the observed accounting is
    also dumped as JSON (CI uploads it on failure for diffing).
    """

    EXPECTED = {
        "windows": 4,
        "monitors_reporting": [3, 4, 3, 3],
        "duplicates_dropped": [1, 0, 1, 0],
        "stale_messages": [0, 0, 0, 0],
        "late_messages": [0, 0, 0, 0],
        "monitor_crashes": 0,
        "expired_messages": 0,
        "transmissions": 18,
        "delivered": 15,
    }

    @staticmethod
    def _observe():
        dom = UIDDomain(10)
        table = generate_subnet_table(dom, seed=2)
        ts, uids = generate_timestamped_trace(
            table, 8000, duration=40.0, seed=4,
            model=TrafficModel(active_fraction=0.15, zipf_exponent=1.2),
        )
        trace = Trace(ts, uids)
        system = MonitoringSystem(
            table, get_metric("rms"), num_monitors=4,
            algorithm="lpm_greedy", budget=40,
        )
        system.train(trace.slice_time(0, 20))
        report = system.run(
            trace.slice_time(20, 40), window_width=5.0,
            faults=FaultModel(drop=0.2, duplicate=0.1, seed=42),
        )
        return {
            "windows": len(report.windows),
            "monitors_reporting": [
                w.monitors_reporting for w in report.windows
            ],
            "duplicates_dropped": [
                w.duplicates_dropped for w in report.windows
            ],
            "stale_messages": [w.stale_messages for w in report.windows],
            "late_messages": [w.late_messages for w in report.windows],
            "monitor_crashes": report.monitor_crashes,
            "expired_messages": report.expired_messages,
            "transmissions": len(system.channel.messages),
            "delivered": len(system.channel.delivered),
        }, report

    def test_accounting_matches_pinned_fixture(self):
        observed, report = self._observe()
        out = os.environ.get("REPRO_FAULT_FIXTURE_OUT")
        if out:
            with open(out, "w") as f:
                json.dump(observed, f, indent=2, sort_keys=True)
        assert observed == self.EXPECTED
        assert all(np.isfinite(w.error) for w in report.windows)

    def test_run_is_deterministic(self):
        first, report_a = self._observe()
        second, report_b = self._observe()
        assert first == second
        # Bitwise-identical floats too: same seed, same draws, same
        # arithmetic.
        assert [w.error for w in report_a.windows] == [
            w.error for w in report_b.windows
        ]
