"""Reconstructing approximate query answers from histograms.

This is the Control Center half of the paper's Figure 1 pipeline: given
a partitioning function, the static *key density table* derived from
the lookup table, and a histogram of per-bucket counts received from a
Monitor, produce an estimated count for every group under the standard
uniformity assumption (Section 2.2.3):

* **nonoverlapping** — each bucket's count is spread evenly over the
  groups inside the bucket subtree;
* **overlapping** — each group is estimated from its *closest* selected
  ancestor's density (count of the whole subtree over groups in the
  whole subtree);
* **longest-prefix-match** — each group is estimated from its closest
  ancestor bucket, whose count and group population both exclude nested
  buckets ("holes").

Sparse buckets (Section 4.3) represent their single nonzero group
exactly and their surrounding empty region as empty.

The module also provides :func:`histogram_from_group_counts`, the
deterministic bucket-count computation used when the exact per-group
counts of a window are known — this is what lets tests verify that a
dynamic program's predicted error equals the error actually delivered
by its histogram.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence
from weakref import WeakKeyDictionary

import numpy as np

from .domain import UIDDomain
from .groups import GroupTable
from .errors import DistributiveErrorMetric
from .partition import (
    Histogram,
    LongestPrefixMatchPartitioning,
    OverlappingPartitioning,
    PartitioningFunction,
)

__all__ = [
    "assign_groups_to_buckets",
    "net_group_populations",
    "histogram_from_group_counts",
    "reconstruct_estimates",
    "evaluate_function",
]


class _SpreadData:
    """Per-``(table, function)`` spread metadata, computed once and
    reused across windows: the group→bucket assignment plus the gross
    and hole-netted key-density tables."""

    __slots__ = ("assigned", "gross", "net")

    def __init__(
        self, assigned: np.ndarray, gross: Dict[int, int], net: Dict[int, int]
    ) -> None:
        self.assigned = assigned
        self.gross = gross
        self.net = net


#: function -> (table, _SpreadData).  Keyed weakly so discarded
#: functions do not pin their tables; entries are recomputed if the
#: same function is suddenly evaluated against a different table.
_SPREAD_CACHE: "WeakKeyDictionary" = WeakKeyDictionary()


def _spread_data(
    table: GroupTable, function: PartitioningFunction
) -> _SpreadData:
    """The cached spread metadata for ``(table, function)``.

    The decode path historically rebuilt the ``groups_below`` dicts and
    the assignment array on *every* window
    (:func:`net_group_populations`, :func:`reconstruct_estimates` and
    :func:`histogram_from_group_counts` each recomputed them per call);
    functions and tables are immutable once built, so one compute per
    install is enough.
    """
    entry = _SPREAD_CACHE.get(function)
    if entry is not None and entry[0] is table:
        return entry[1]
    assigned = _assign_groups(table, function)
    gross = {n: table.groups_below(n) for n in function.match_nodes}
    if isinstance(function, LongestPrefixMatchPartitioning):
        net = dict(gross)
        for child, parent in function.nesting_parent().items():
            if parent is not None:
                net[parent] -= gross[child]
    else:
        net = gross
    data = _SpreadData(assigned, gross, net)
    _SPREAD_CACHE[function] = (table, data)
    return data


def assign_groups_to_buckets(
    table: GroupTable, function: PartitioningFunction
) -> np.ndarray:
    """For every group, the match node of its closest enclosing bucket.

    Returns an int64 array parallel to the group table; groups enclosed
    by no bucket get ``-1`` (their estimate is zero — the Control
    Center infers emptiness for uncovered regions).  The computation is
    cached per ``(table, function)``; callers get a private copy.

    Raises :class:`ValueError` if some bucket sits strictly below a
    group node: such a function splits a group across buckets and the
    group-level uniformity estimator is no longer well defined.
    """
    return _spread_data(table, function).assigned.copy()


def _assign_groups(
    table: GroupTable, function: PartitioningFunction
) -> np.ndarray:
    assigned = np.full(len(table), -1, dtype=np.int64)
    # Match nodes sorted shallow-to-deep; deeper assignments overwrite.
    for node in sorted(function.match_nodes, key=UIDDomain.depth):
        idx = table.group_indices_below(node)
        if idx.size == 0:
            lo, hi = table.domain.uid_range(node)
            k = int(np.searchsorted(table.starts, lo, side="right")) - 1
            if k >= 0 and hi <= int(table.ends[k]) and (hi - lo) < (
                int(table.ends[k]) - int(table.starts[k])
            ):
                raise ValueError(
                    f"bucket node {node} lies strictly below group node "
                    f"{int(table.nodes[k])}; group-level estimation is undefined"
                )
            continue
        assigned[idx] = node
    return assigned


def net_group_populations(
    table: GroupTable, function: PartitioningFunction
) -> Dict[int, int]:
    """Groups per match node, net of nested buckets when the semantics
    are longest-prefix-match (holes remove their groups from the
    parent).  For the other semantics this is the plain key density
    table.  Cached per ``(table, function)``; callers get a private
    copy."""
    return dict(_spread_data(table, function).net)


def histogram_from_group_counts(
    table: GroupTable,
    counts: Sequence[float],
    function: PartitioningFunction,
) -> Histogram:
    """The histogram a Monitor would emit for a window whose exact
    per-group counts are ``counts``.

    Valid whenever every bucket sits at or above the group nodes (true
    for every function this library constructs); bucket counts are then
    exact sums of group counts.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.shape != (len(table),):
        raise ValueError(
            f"expected {len(table)} group counts, got shape {counts.shape}"
        )
    total = float(counts.sum())
    out: Dict[int, float] = {}
    assigned = _spread_data(table, function).assigned
    if isinstance(function, OverlappingPartitioning):
        for node in function.match_nodes:
            idx = table.group_indices_below(node)
            c = float(counts[idx].sum())
            if c:
                out[node] = c
        unmatched = float(counts[assigned < 0].sum())
    else:
        for node in function.match_nodes:
            c = float(counts[assigned == node].sum())
            if c:
                out[node] = c
        unmatched = float(counts[assigned < 0].sum())
    return Histogram(out, unmatched=unmatched, total=total)


def reconstruct_estimates(
    table: GroupTable,
    function: PartitioningFunction,
    histogram: Histogram,
) -> np.ndarray:
    """Per-group estimated counts (the approximate query answer).

    Returns a float64 array parallel to the group table.
    """
    spread = _spread_data(table, function)
    assigned = spread.assigned
    estimates = np.zeros(len(table), dtype=np.float64)
    sparse_inner = {
        b.sparse_group_node: b.node for b in function.buckets if b.is_sparse
    }
    if isinstance(function, OverlappingPartitioning):
        populations = spread.gross
        sparse_outer = _sparse_outers(function)
        for node in function.match_nodes:
            sel = assigned == node
            if not sel.any():
                continue
            count = histogram.get(node)
            pop = populations[node]
            if node in sparse_inner:
                # The inner sub-bucket of a sparse bucket: exact count.
                estimates[sel] = count
            elif node in sparse_outer:
                # Residual traffic in the "empty" region, net of the
                # inner sub-bucket, spread over the empty groups.
                inner = sparse_outer[node]
                residual = max(0.0, count - histogram.get(inner))
                empties = max(1, pop - 1)
                estimates[sel] = residual / empties
            else:
                estimates[sel] = count / max(1, pop)
        return estimates
    # Nonoverlapping and longest-prefix-match: bucket counts are already
    # net of nested regions, so one rule covers both (and sparse buckets
    # fall out naturally — the inner node has population 1).
    populations = spread.net
    for node in function.match_nodes:
        sel = assigned == node
        if not sel.any():
            continue
        estimates[sel] = histogram.get(node) / max(1, populations[node])
    return estimates


def _sparse_outers(function: PartitioningFunction) -> Dict[int, int]:
    """Map of sparse outer node -> its inner sub-bucket node."""
    return {
        b.node: b.sparse_group_node for b in function.buckets if b.is_sparse
    }


def evaluate_function(
    table: GroupTable,
    counts: Sequence[float],
    function: PartitioningFunction,
    metric: DistributiveErrorMetric,
    histogram: Optional[Histogram] = None,
    nonzero_only: bool = False,
) -> float:
    """End-to-end error of approximating a window with ``function``.

    Builds the histogram the Monitor would send (unless one is given),
    reconstructs per-group estimates and evaluates ``metric`` over the
    group universe (or only over groups with nonzero actual counts when
    ``nonzero_only`` is set).
    """
    counts = np.asarray(counts, dtype=np.float64)
    if histogram is None:
        histogram = histogram_from_group_counts(table, counts, function)
    estimates = reconstruct_estimates(table, function, histogram)
    if nonzero_only:
        sel = counts > 0
        if not sel.any():
            return 0.0
        return metric.evaluate(counts[sel], estimates[sel])
    return metric.evaluate(counts, estimates)
