"""The distributed stream-monitoring substrate (paper Figure 1):
Monitors partition identifier streams into compact histograms; the
Control Center builds the partitioning functions and reconstructs
approximate grouped-aggregation answers."""

from .kernels import (
    STREAM_KERNEL_MODES,
    set_stream_kernel_mode,
    stream_kernel_mode,
    use_stream_kernel_mode,
)
from .tuples import Trace
from .windows import SlidingWindows, TumblingWindows, Window
from .query import exact_group_counts, GroupedAggregationQuery
from .monitor import HistogramMessage, Monitor
from .faults import Delivery, FaultModel, InstallScheduler
from .channel import Channel
from .control_center import ControlCenter, DecodedWindow, STALE_POLICIES
from .system import MonitoringSystem, SystemReport, WindowReport
from .recalibrate import AdaptiveMonitoringSystem, BucketDriftDetector
from .replay import replay_system_report
from .panes import PaneAggregator

__all__ = [
    "STREAM_KERNEL_MODES",
    "stream_kernel_mode",
    "set_stream_kernel_mode",
    "use_stream_kernel_mode",
    "Trace",
    "Window",
    "TumblingWindows",
    "SlidingWindows",
    "exact_group_counts",
    "GroupedAggregationQuery",
    "Monitor",
    "HistogramMessage",
    "Delivery",
    "FaultModel",
    "InstallScheduler",
    "Channel",
    "ControlCenter",
    "DecodedWindow",
    "STALE_POLICIES",
    "MonitoringSystem",
    "SystemReport",
    "WindowReport",
    "BucketDriftDetector",
    "AdaptiveMonitoringSystem",
    "replay_system_report",
    "PaneAggregator",
]
