"""The lookup table mapping identifiers to groups (paper Sections 1-2).

A :class:`GroupTable` is the paper's ``GroupTable``/``GroupHierarchy``
relation: a set of *group nodes* — nonoverlapping subtrees of the UID
hierarchy — each carrying a group id.  Every identifier below a group
node belongs to that group.  For the network-monitoring workload the
group nodes are the subnet prefixes derived from WHOIS data.

The table is stored column-wise in sorted numpy arrays so that the
identifier-to-group join (the expensive lookup the paper wants to avoid
shipping) is a vectorized binary search, and so that histogram
construction can count groups inside any identifier range in
``O(log |G|)``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .domain import UIDDomain

__all__ = ["GroupTable"]


class GroupTable:
    """An immutable table of nonoverlapping group nodes.

    Parameters
    ----------
    domain:
        The identifier domain the group nodes live in.
    group_nodes:
        Hierarchy node ids of the group subtrees.  They must be
        pairwise nonoverlapping (no node an ancestor of another), per
        the paper's problem definition (Section 2.2.1).
    group_ids:
        Optional application-level labels, parallel to ``group_nodes``.
        Defaults to the position index.

    Groups are re-sorted by the identifier range they cover; the
    *group index* used throughout this library refers to that sorted
    order.
    """

    def __init__(
        self,
        domain: UIDDomain,
        group_nodes: Sequence[int],
        group_ids: Optional[Sequence[object]] = None,
    ) -> None:
        if domain.height > 62:
            # Identifier arrays are int64 throughout the vectorized
            # paths (lookups, histogram building).
            raise ValueError(
                f"domain height {domain.height} exceeds the 62-bit limit "
                "of the vectorized identifier representation"
            )
        self.domain = domain
        nodes = list(group_nodes)
        if not nodes:
            raise ValueError("a group table needs at least one group node")
        if group_ids is None:
            group_ids = list(range(len(nodes)))
        elif len(group_ids) != len(nodes):
            raise ValueError(
                f"{len(group_ids)} group ids for {len(nodes)} group nodes"
            )
        ranges = []
        for node in nodes:
            if not domain.contains_node(node):
                raise ValueError(f"invalid node id {node} for {domain}")
            ranges.append(domain.uid_range(node))
        order = sorted(range(len(nodes)), key=lambda k: ranges[k][0])
        self.nodes = np.asarray([nodes[k] for k in order], dtype=np.int64)
        self.group_ids: List[object] = [group_ids[k] for k in order]
        self.starts = np.asarray([ranges[k][0] for k in order], dtype=np.int64)
        self.ends = np.asarray([ranges[k][1] for k in order], dtype=np.int64)
        overlap = np.nonzero(self.starts[1:] < self.ends[:-1])[0]
        if overlap.size:
            k = int(overlap[0])
            raise ValueError(
                "group nodes overlap: "
                f"{domain.describe(int(self.nodes[k]))} and "
                f"{domain.describe(int(self.nodes[k + 1]))}"
            )

    # ------------------------------------------------------------------
    # Basic facts
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.nodes.size)

    def fingerprint(self) -> bytes:
        """BLAKE2b-128 content fingerprint of this table.

        Covers the domain height, the sorted group nodes and the group
        ids — everything that shapes lookups and construction — so two
        tables with equal fingerprints are interchangeable for DP work
        and compiled-table reuse.  The serving layer keys its
        cross-tenant caches by this (the rebuild fingerprint alone
        hashes counts and configuration but not the table, so sharing
        across tenants needs both).  Cached after the first call; the
        table is immutable.
        """
        fp = getattr(self, "_fingerprint", None)
        if fp is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(bytes([self.domain.height]))
            digest.update(self.nodes.tobytes())
            digest.update(repr(self.group_ids).encode("utf-8"))
            fp = digest.digest()
            self._fingerprint = fp
        return fp

    @property
    def num_groups(self) -> int:
        """Number of groups ``|G|``."""
        return len(self)

    def covers_domain(self) -> bool:
        """Whether the group subtrees tile the whole identifier space."""
        if self.starts[0] != 0 or self.ends[-1] != self.domain.num_uids:
            return False
        return bool(np.all(self.starts[1:] == self.ends[:-1]))

    def covered_uids(self) -> int:
        """Total number of identifiers covered by some group."""
        return int((self.ends - self.starts).sum())

    def group_range(self, index: int) -> Tuple[int, int]:
        """Identifier range ``[lo, hi)`` of the group at ``index``."""
        return (int(self.starts[index]), int(self.ends[index]))

    def index_of_node(self, node: int) -> int:
        """Group index of the group whose node is exactly ``node``."""
        lo, _hi = self.domain.uid_range(node)
        k = int(np.searchsorted(self.starts, lo))
        if k < len(self) and int(self.nodes[k]) == node:
            return k
        raise KeyError(f"no group with node {node}")

    # ------------------------------------------------------------------
    # The identifier -> group join
    # ------------------------------------------------------------------
    def lookup(self, uid: int) -> Optional[int]:
        """Group index of ``uid``, or ``None`` if no group covers it."""
        k = int(np.searchsorted(self.starts, uid, side="right")) - 1
        if k >= 0 and uid < int(self.ends[k]):
            return k
        return None

    def lookup_many(self, uids: Sequence[int]) -> np.ndarray:
        """Vectorized :meth:`lookup`; uncovered identifiers map to ``-1``."""
        uids = np.asarray(uids, dtype=np.int64)
        idx = np.searchsorted(self.starts, uids, side="right") - 1
        idx = np.where(idx < 0, 0, idx)
        hit = (uids >= self.starts[idx]) & (uids < self.ends[idx])
        return np.where(hit, idx, -1)

    def counts_from_uids(
        self,
        uids: Sequence[int],
        values: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """Per-group aggregates of a window of identifiers (the exact
        join the grouped aggregation query performs).

        Without ``values`` this is ``count(*)`` per group; with a
        per-tuple value vector it is ``sum(value)`` — the paper notes
        the extension to other SQL aggregates is straightforward, and
        for distributive aggregates it is exactly this weighting.
        Identifiers not covered by any group are dropped, mirroring the
        semantics of the inner join in the paper's query.
        """
        idx = self.lookup_many(uids)
        if values is None:
            idx = idx[idx >= 0]
            return np.bincount(idx, minlength=len(self)).astype(np.float64)
        values = np.asarray(values, dtype=np.float64)
        if values.shape != idx.shape:
            raise ValueError(
                f"{values.shape[0] if values.ndim else 0} values for "
                f"{idx.shape[0]} identifiers"
            )
        covered = idx >= 0
        return np.bincount(
            idx[covered], weights=values[covered], minlength=len(self)
        ).astype(np.float64)

    # ------------------------------------------------------------------
    # Range statistics (used by histogram construction)
    # ------------------------------------------------------------------
    def groups_in_uid_range(self, lo: int, hi: int) -> int:
        """Number of groups entirely inside the identifier range
        ``[lo, hi)``.

        Because group subtrees never partially overlap a hierarchy
        subtree (they either contain it or are contained by it, and a
        group containing a range that holds other groups would violate
        nonoverlap), this count is exact for any subtree range.
        """
        first = int(np.searchsorted(self.starts, lo, side="left"))
        last = int(np.searchsorted(self.ends, hi, side="right"))
        return max(0, last - first)

    def groups_below(self, node: int) -> int:
        """Number of groups inside the subtree of ``node``."""
        lo, hi = self.domain.uid_range(node)
        return self.groups_in_uid_range(lo, hi)

    def group_indices_below(self, node: int) -> np.ndarray:
        """Indices of the groups inside the subtree of ``node``."""
        lo, hi = self.domain.uid_range(node)
        first = int(np.searchsorted(self.starts, lo, side="left"))
        last = int(np.searchsorted(self.ends, hi, side="right"))
        return np.arange(first, max(first, last))

    # ------------------------------------------------------------------
    # Key-density metadata (paper Figure 1)
    # ------------------------------------------------------------------
    def key_density(self, bucket_nodes: Iterable[int]) -> Dict[int, int]:
        """The *key density table*: groups per bucket subtree.

        The Control Center joins this static metadata with the
        histograms it receives to spread bucket counts uniformly over
        the groups each bucket contains.
        """
        return {int(node): self.groups_below(int(node)) for node in bucket_nodes}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GroupTable({len(self)} groups over {self.domain.num_uids} uids, "
            f"covers_domain={self.covers_domain()})"
        )
