"""Online decode-quality signals — no ground truth required.

The paper's accuracy metrics (Section 2.2.4) need the exact per-group
answer, which the Control Center never has while a run is live.  This
module computes the signals it *can* watch from the decoded histogram
stream alone, per window:

* **spill fraction** — share of traffic that matched no bucket and
  landed in the trash bin (``Histogram.unmatched``); a rising spill
  means the installed function no longer spans live traffic.
* **occupancy entropy** — Shannon entropy of the per-bucket
  distribution, normalized by ``log2(num_buckets)`` into ``[0, 1]``;
  a well-fitted function spreads mass (entropy near 1), a collapsed
  one funnels it into few buckets.
* **occupancy skew** — largest bucket share over the uniform share
  (``max_p * num_buckets``); the peak-to-uniform ratio complementing
  entropy (1.0 = perfectly even).
* **coverage** — reporting monitors over expected monitors (already a
  decode output; re-exported here so every signal rides one gauge
  family).
* **duplicate / stale rates** — redundant and stale-version deliveries
  as a fraction of the window's messages.
* **drift score** — the :class:`~repro.streams.recalibrate.
  BucketDriftDetector` quantity: total-variation distance between the
  window's normalized bucket distribution and a reference distribution
  (re-anchored whenever the function version changes), plus the
  unmatched fraction.  The detector itself delegates to the helpers
  here, so the gauge and the recalibration trigger agree by
  construction.

:class:`QualityTracker` bundles the per-window computation and the
reference bookkeeping; ``ControlCenter.decode_window`` owns one and
exports each signal as a ``quality.*`` gauge.  Pure stdlib — this
module must stay importable from anywhere (it sits below the streams
layer).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Dict, Iterable, Optional

__all__ = [
    "WindowQuality",
    "QualityTracker",
    "normalized_distribution",
    "total_variation",
    "drift_score",
    "occupancy_entropy",
    "occupancy_skew",
    "QUALITY_GAUGES",
]


@dataclass(frozen=True)
class WindowQuality:
    """One window's online quality signals (see module docstring)."""

    spill_fraction: float = 0.0
    occupancy_entropy: float = 0.0
    occupancy_skew: float = 0.0
    coverage: float = 0.0
    duplicate_rate: float = 0.0
    stale_rate: float = 0.0
    drift_score: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Gauge family exported per signal: ``quality.<field>``.
QUALITY_GAUGES = tuple(
    f"quality.{f.name}" for f in fields(WindowQuality)
)


def normalized_distribution(
    counts: Dict[int, float], unmatched: float = 0.0
) -> Dict[int, float]:
    """Per-bucket probability mass (unmatched traffic in the
    denominator but carrying no bucket); ``{}`` for an empty window."""
    total = sum(counts.values()) + unmatched
    if total <= 0:
        return {}
    return {node: c / total for node, c in counts.items()}


def total_variation(a: Dict[int, float], b: Dict[int, float]) -> float:
    """Total-variation distance between two bucket distributions."""
    nodes = set(a) | set(b)
    return 0.5 * sum(abs(a.get(n, 0.0) - b.get(n, 0.0)) for n in nodes)


def drift_score(
    reference: Dict[int, float],
    counts: Dict[int, float],
    unmatched: float = 0.0,
) -> float:
    """The drift-detector quantity for one window against a reference
    distribution: TV distance plus the unmatched-traffic fraction."""
    current = normalized_distribution(counts, unmatched)
    total = sum(counts.values()) + unmatched
    unmatched_fraction = unmatched / total if total > 0 else 0.0
    return total_variation(reference, current) + unmatched_fraction


def occupancy_entropy(
    values: Iterable[float], num_buckets: int
) -> float:
    """Normalized Shannon entropy of the matched-bucket occupancy
    (``0`` for an empty window or a single-bucket function)."""
    values = [v for v in values if v > 0]
    total = sum(values)
    if total <= 0 or num_buckets <= 1:
        return 0.0
    entropy = 0.0
    for v in values:
        p = v / total
        entropy -= p * math.log2(p)
    return entropy / math.log2(num_buckets)


def occupancy_skew(values: Iterable[float], num_buckets: int) -> float:
    """Peak-to-uniform occupancy ratio: the largest bucket's share of
    matched traffic times the bucket count (``0`` when empty)."""
    values = [v for v in values if v > 0]
    total = sum(values)
    if total <= 0 or num_buckets <= 0:
        return 0.0
    return max(values) / total * num_buckets


class QualityTracker:
    """Per-decoder quality bookkeeping.

    Holds the drift reference distribution — anchored to the first
    window decoded under each function version, exactly like
    :class:`~repro.streams.recalibrate.BucketDriftDetector` — and
    produces one :class:`WindowQuality` per decoded window.
    """

    def __init__(self) -> None:
        self._reference: Optional[Dict[int, float]] = None
        self._version: Optional[int] = None
        self.last: Optional[WindowQuality] = None

    def observe(
        self,
        counts: Dict[int, float],
        unmatched: float,
        num_buckets: int,
        version: int,
        coverage: float,
        messages: int,
        duplicates: int,
        stale: int,
    ) -> WindowQuality:
        """Score one decoded window's merged histogram."""
        if version != self._version:
            self._reference = None
            self._version = version
        matched = sum(counts.values())
        total = matched + unmatched
        if self._reference is None:
            self._reference = normalized_distribution(counts, unmatched)
            drift = 0.0
        else:
            drift = drift_score(self._reference, counts, unmatched)
        quality = WindowQuality(
            spill_fraction=unmatched / total if total > 0 else 0.0,
            occupancy_entropy=occupancy_entropy(
                counts.values(), num_buckets
            ),
            occupancy_skew=occupancy_skew(counts.values(), num_buckets),
            coverage=coverage,
            duplicate_rate=duplicates / messages if messages else 0.0,
            stale_rate=stale / messages if messages else 0.0,
            drift_score=drift,
        )
        self.last = quality
        return quality
