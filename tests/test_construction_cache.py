"""The Control Center's rebuild cache: identical windows of history
must not re-run construction, and caching must be invisible to results
(same functions, same WindowReports, same version discipline)."""

import numpy as np
import pytest

from repro import UIDDomain, get_metric
from repro.data import TrafficModel, generate_subnet_table
from repro.data.traffic import generate_timestamped_trace
from repro.obs import MetricsRegistry, use_registry
from repro.streams import ControlCenter, MonitoringSystem, Trace


@pytest.fixture(scope="module")
def workload():
    dom = UIDDomain(9)
    table = generate_subnet_table(dom, seed=5)
    ts, uids = generate_timestamped_trace(
        table, 6000, duration=30.0, seed=6,
        model=TrafficModel(active_fraction=0.2, zipf_exponent=1.2),
    )
    trace = Trace(ts, uids)
    return table, trace.slice_time(0, 15), trace.slice_time(15, 30)


def _counts(table, rng, scale=20):
    return rng.integers(0, scale, len(table)).astype(float)


def test_repeat_rebuild_hits_cache_and_bumps_version(workload):
    table, _history, _live = workload
    center = ControlCenter(table, get_metric("rms"), budget=20)
    rng = np.random.default_rng(0)
    counts = _counts(table, rng)
    registry = MetricsRegistry()
    with use_registry(registry):
        first = center.rebuild_function(counts)
        v1 = center.function_version
        second = center.rebuild_function(counts)
        v2 = center.function_version
    assert second is first  # memoized, not rebuilt
    assert v2 == v1 + 1  # but the version still advances
    assert registry.counter("control.rebuild.cache.misses").value == 1
    assert registry.counter("control.rebuild.cache.hits").value == 1
    assert registry.counter("control.rebuilds").value == 2


def test_different_counts_miss(workload):
    table, _history, _live = workload
    center = ControlCenter(table, get_metric("rms"), budget=20)
    rng = np.random.default_rng(1)
    registry = MetricsRegistry()
    with use_registry(registry):
        a = center.rebuild_function(_counts(table, rng))
        b = center.rebuild_function(_counts(table, rng))
    assert a is not b
    assert registry.counter("control.rebuild.cache.misses").value == 2
    assert registry.counter("control.rebuild.cache.hits").value == 0


def test_cache_disabled_never_memoizes(workload):
    table, _history, _live = workload
    center = ControlCenter(table, get_metric("rms"), budget=20, cache_size=0)
    rng = np.random.default_rng(2)
    counts = _counts(table, rng)
    registry = MetricsRegistry()
    with use_registry(registry):
        first = center.rebuild_function(counts)
        second = center.rebuild_function(counts)
    assert first is not second
    assert len(center._function_cache) == 0
    assert registry.counter("control.rebuild.cache.hits").value == 0
    assert registry.counter("control.rebuild.cache.misses").value == 0


def test_lru_eviction_bounds_cache(workload):
    table, _history, _live = workload
    center = ControlCenter(table, get_metric("rms"), budget=20, cache_size=2)
    rng = np.random.default_rng(3)
    batches = [_counts(table, rng) for _ in range(4)]
    for counts in batches:
        center.rebuild_function(counts)
    assert len(center._function_cache) == 2
    # Oldest entries were evicted: rebuilding the first batch misses.
    registry = MetricsRegistry()
    with use_registry(registry):
        center.rebuild_function(batches[0])
    assert registry.counter("control.rebuild.cache.misses").value == 1


def test_negative_cache_size_rejected(workload):
    table, _history, _live = workload
    with pytest.raises(ValueError):
        ControlCenter(table, get_metric("rms"), cache_size=-1)


@pytest.mark.parametrize("algorithm", ["nonoverlapping", "lpm_greedy"])
def test_cached_and_uncached_runs_identical(workload, algorithm):
    """End to end: a system with the cache on reports exactly what a
    cache-free system reports."""
    table, history, live = workload
    reports = {}
    for cache_size in (8, 0):
        system = MonitoringSystem(
            table, get_metric("rms"), num_monitors=2,
            algorithm=algorithm, budget=25, cache_size=cache_size,
        )
        system.train(history)
        reports[cache_size] = system.run(live, window_width=5.0)
    cached, uncached = reports[8], reports[0]
    assert cached.windows == uncached.windows
    assert cached.function_bytes == uncached.function_bytes
    assert cached.upstream_bytes == uncached.upstream_bytes


def test_retrain_same_history_is_memoized(workload):
    """Training twice on the same history reinstalls the memoized
    function — monitors still get a fresh version each time."""
    table, history, _live = workload
    system = MonitoringSystem(
        table, get_metric("rms"), num_monitors=2,
        algorithm="nonoverlapping", budget=25,
    )
    registry = MetricsRegistry()
    with use_registry(registry):
        system.train(history)
        version_after_first = system.control_center.function_version
        system.train(history)
    assert registry.counter("control.rebuild.cache.hits").value == 1
    assert system.control_center.function_version == version_after_first + 1
    for monitor in system.monitors:
        assert monitor.function_version == version_after_first + 1


def test_lru_hit_short_circuits_incremental_path(workload, tmp_path):
    """Precedence pin: an exact-fingerprint LRU hit wins over the
    incremental path — construction is skipped entirely, the curve memo
    is left untouched, and the journal still says ``cache="hit"`` while
    the version advances, exactly as for a non-incremental center."""
    from repro.obs import EventJournal, read_journal, use_journal

    table, _history, _live = workload
    center = ControlCenter(
        table, get_metric("rms"), algorithm="nonoverlapping", budget=20,
        incremental=True,
    )
    rng = np.random.default_rng(7)
    counts_a = _counts(table, rng)
    counts_b = _counts(table, rng)
    center.rebuild_function(counts_a)
    center.rebuild_function(counts_b)
    memo_before = center._curve_memo
    assert memo_before is not None
    version_before = center.function_version
    registry = MetricsRegistry()
    journal_path = str(tmp_path / "hit.journal")
    with use_registry(registry), use_journal(EventJournal(journal_path)):
        returned = center.rebuild_function(counts_a)  # exact repeat
    assert registry.counter("control.rebuild.cache.hits").value == 1
    assert registry.counter("control.rebuild.subtrees.dirty").value == 0
    assert registry.counter("control.rebuild.subtrees.reused").value == 0
    assert center.function_version == version_before + 1
    # The memo still reflects the *last built* counts (B), not A: the
    # hit bypassed the incremental machinery entirely.
    assert center._curve_memo is memo_before
    np.testing.assert_array_equal(memo_before.counts, counts_b)
    (event,) = [
        e for e in read_journal(journal_path) if e["event"] == "rebuild"
    ]
    assert event["cache"] == "hit"
    assert "dirty_subtrees" not in event
    assert "reused_fraction" not in event
    assert returned is center.function
