"""Window operators over identifier streams.

The paper's target query aggregates over a sliding window
(Section 2.2.2).  Histograms are per-window messages, so the substrate
provides both tumbling windows (the common deployment: one histogram
per period) and overlapping sliding windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from .tuples import Trace

__all__ = ["Window", "TumblingWindows", "SlidingWindows"]


@dataclass(frozen=True)
class Window:
    """One window of a stream: its time extent, the identifiers in it
    and (for weighted streams) their parallel per-tuple values."""

    index: int
    start: float
    end: float
    uids: np.ndarray
    values: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return int(self.uids.size)


class TumblingWindows:
    """Non-overlapping fixed-width windows."""

    def __init__(self, width: float) -> None:
        if width <= 0:
            raise ValueError(f"window width must be positive, got {width}")
        self.width = width

    def segment(self, trace: Trace) -> Iterator[Window]:
        if not len(trace):
            return
        t0 = float(trace.timestamps[0])
        t_end = float(trace.timestamps[-1])
        index = 0
        start = t0
        while start <= t_end:
            end = start + self.width
            piece = trace.slice_time(start, end)
            yield Window(index, start, end, piece.uids, piece.values)
            index += 1
            start = end


class SlidingWindows:
    """Fixed-width windows advancing by a (smaller) slide step."""

    def __init__(self, width: float, slide: float) -> None:
        if width <= 0 or slide <= 0:
            raise ValueError("window width and slide must be positive")
        if slide > width:
            raise ValueError(
                f"slide {slide} exceeds width {width}; use TumblingWindows"
            )
        self.width = width
        self.slide = slide

    def segment(self, trace: Trace) -> Iterator[Window]:
        if not len(trace):
            return
        t0 = float(trace.timestamps[0])
        t_end = float(trace.timestamps[-1])
        index = 0
        start = t0
        while start <= t_end:
            piece = trace.slice_time(start, start + self.width)
            yield Window(
                index, start, start + self.width, piece.uids, piece.values
            )
            index += 1
            start = t0 + index * self.slide
