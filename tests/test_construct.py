"""Tests for the construction-algorithm registry."""

import numpy as np
import pytest

from repro import PrunedHierarchy, get_metric
from repro.algorithms import available_algorithms
from repro.algorithms.construct import build

from helpers import random_instance


def test_known_algorithms():
    names = set(available_algorithms())
    assert {"nonoverlapping", "overlapping", "lpm_greedy",
            "lpm_quantized", "lpm_kholes"} <= names


def test_unknown_algorithm_rejected(small_hierarchy):
    with pytest.raises(KeyError, match="unknown construction"):
        build("bogus", small_hierarchy, get_metric("rms"), 3)


@pytest.mark.parametrize("name", ["nonoverlapping", "overlapping",
                                  "lpm_greedy", "lpm_quantized"])
def test_every_algorithm_constructs(name, small_hierarchy):
    res = build(name, small_hierarchy, get_metric("rms"), 4)
    assert np.isfinite(res.error_at(4))
    fn = res.function_at(4)
    assert fn.num_buckets <= 4


def test_options_passthrough(small_hierarchy):
    res = build("lpm_greedy", small_hierarchy, get_metric("rms"), 3,
                overprovision=3.0)
    assert res.stats["pool"] >= 3


@pytest.mark.parametrize("seed", range(4))
def test_relative_ordering_holds(seed):
    """Overlapping (optimal, superset space w/ root) is never worse than
    its own greedy selection pool evaluated as overlapping; and every
    optimal method beats budget-1 trivially at large budgets."""
    _dom, table, counts = random_instance(seed, height_range=(3, 5))
    metric = get_metric("rms")
    h = PrunedHierarchy(table, counts)
    over = build("overlapping", h, metric, 6)
    assert over.error_at(6) <= over.error_at(1) + 1e-9
