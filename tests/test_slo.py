"""SLO rules, the alerting engine, and its live surfaces.

Covers: spec/file parsing (including the Python-version gate on TOML),
the per-rule fire/resolve state machine with its journal events and
gauges, end-to-end runs whose alert history replays bit-identically,
and the ``/alerts.json`` + ``?since=`` metrics-server endpoints the
dashboard polls.
"""

import json
import sys
import urllib.request

import pytest

from repro import UIDDomain, get_metric
from repro.data import TrafficModel, generate_subnet_table
from repro.data.traffic import generate_timestamped_trace
from repro.obs import (
    Alert,
    EventJournal,
    LifecycleTracer,
    MetricsRegistry,
    MetricsServer,
    NULL_SLO_ENGINE,
    SLOEngine,
    SLORule,
    TopSource,
    get_slo_engine,
    load_slo_file,
    parse_slo_rule,
    parse_slo_spec,
    read_journal,
    render_top,
    use_journal,
    use_registry,
    use_slo_engine,
    use_tracer,
)
from repro.obs.slo import quantile
from repro.obs.top import state_from_journal
from repro.streams import FaultModel, MonitoringSystem, Trace
from repro.streams.replay import replay_system_report


class TestRuleParsing:
    @pytest.mark.parametrize("spec,signal,op,threshold", [
        ("coverage>=0.9", "coverage", ">=", 0.9),
        ("delivery_p99_windows<=2", "delivery_p99_windows", "<=", 2.0),
        ("drift_score<0.5", "drift_score", "<", 0.5),
        ("late_messages==0", "late_messages", "==", 0.0),
        (" error > 1e-3 ", "error", ">", 1e-3),
    ])
    def test_accepted(self, spec, signal, op, threshold):
        rule = parse_slo_rule(spec)
        assert (rule.signal, rule.op, rule.threshold) == (
            signal, op, threshold
        )

    def test_canonical_spec_roundtrips(self):
        rule = parse_slo_rule("coverage>=0.9")
        assert rule.spec == "coverage>=0.9"
        assert parse_slo_rule(rule.spec) == rule
        assert parse_slo_rule("late_messages<=2").spec == "late_messages<=2"

    @pytest.mark.parametrize("bad", [
        "coverage", "coverage>=", ">=0.9", "coverage>=high",
        "cov erage>=0.9", "",
    ])
    def test_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_slo_rule(bad)

    def test_spec_list(self):
        rules = parse_slo_spec("coverage>=0.9, drift_score<=0.5")
        assert [r.spec for r in rules] == [
            "coverage>=0.9", "drift_score<=0.5",
        ]
        with pytest.raises(ValueError, match="no rules"):
            parse_slo_spec(" , ")

    def test_rule_evaluation(self):
        rule = SLORule("coverage", ">=", 0.9)
        assert rule.ok(0.9) and rule.ok(1.0) and not rule.ok(0.89)
        with pytest.raises(ValueError, match="unknown SLO operator"):
            SLORule("coverage", "=>", 0.9)


class TestRuleFiles:
    def test_json_bare_list(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps(["coverage>=0.9", "error<=1.5"]))
        assert [r.spec for r in load_slo_file(str(path))] == [
            "coverage>=0.9", "error<=1.5",
        ]

    def test_json_rules_object(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"rules": ["drift_score<=0.5"]}))
        assert [r.spec for r in load_slo_file(str(path))] == [
            "drift_score<=0.5",
        ]

    def test_json_bad_shape(self, tmp_path):
        path = tmp_path / "rules.json"
        path.write_text(json.dumps({"slos": ["coverage>=0.9"]}))
        with pytest.raises(ValueError, match="list of rule strings"):
            load_slo_file(str(path))

    def test_toml_gated_by_python_version(self, tmp_path):
        path = tmp_path / "rules.toml"
        path.write_text('rules = ["coverage>=0.9"]\n')
        if sys.version_info >= (3, 11):
            assert [r.spec for r in load_slo_file(str(path))] == [
                "coverage>=0.9",
            ]
        else:
            with pytest.raises(ValueError, match="3.11"):
                load_slo_file(str(path))


class TestQuantile:
    def test_exact_order_statistics(self):
        values = [3.0, 1.0, 2.0, 4.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 4.0
        assert quantile(values, 0.5) == 2.5  # interpolated midpoint

    def test_empty_and_singleton(self):
        assert quantile([], 0.99) == 0.0
        assert quantile([7.0], 0.5) == 7.0

    def test_validated(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestEngine:
    def test_fire_and_resolve_transitions(self, tmp_path):
        path = str(tmp_path / "slo.journal")
        registry = MetricsRegistry()
        engine = SLOEngine(parse_slo_spec("coverage>=0.9"))
        with use_journal(EventJournal(path)), use_registry(registry):
            engine.observe(0, {"coverage": 1.0})   # in bounds
            engine.observe(1, {"coverage": 0.5})   # fires
            engine.observe(2, {"coverage": 0.4})   # still firing: no-op
            engine.observe(3, {"coverage": 1.0})   # resolves
            engine.observe(4, {"coverage": 0.2})   # fires again
        assert engine.alerts == [
            Alert("coverage>=0.9", 1, 0.5, 0.9, resolved_window=3),
            Alert("coverage>=0.9", 4, 0.2, 0.9),
        ]
        assert engine.active_alerts == [engine.alerts[1]]
        events = read_journal(path)
        assert [
            (e["event"], e["window"])
            for e in events
            if e["event"].startswith("alert.")
        ] == [("alert.fired", 1), ("alert.resolved", 3), ("alert.fired", 4)]
        assert registry.counter("slo.alerts.fired").value == 2
        assert registry.counter("slo.alerts.resolved").value == 1
        assert registry.gauge(
            "slo.breached", rule="coverage>=0.9"
        ).value == 1.0
        assert registry.gauge(
            "slo.value", rule="coverage>=0.9"
        ).value == 0.2

    def test_missing_signal_skipped(self):
        engine = SLOEngine(parse_slo_spec("delivery_p99_windows<=2"))
        engine.observe(0, {"coverage": 0.5})
        assert engine.alerts == []
        assert engine.windows_evaluated == 1

    def test_needs_rules(self):
        with pytest.raises(ValueError, match="at least one rule"):
            SLOEngine([])

    def test_default_engine_is_null(self):
        assert get_slo_engine() is NULL_SLO_ENGINE
        assert not NULL_SLO_ENGINE.enabled
        assert NULL_SLO_ENGINE.observe(0, {"coverage": 0.0}) == []
        assert NULL_SLO_ENGINE.as_json()["rules"] == []

    def test_as_json_shape(self):
        engine = SLOEngine(parse_slo_spec("coverage>=0.9"))
        engine.observe(0, {"coverage": 0.1})
        doc = engine.as_json()
        assert doc["rules"] == ["coverage>=0.9"]
        assert doc["windows_evaluated"] == 1
        assert doc["active"] == ["coverage>=0.9"]
        assert doc["alerts"][0]["fired_window"] == 0
        json.dumps(doc)  # must be wire-serializable


@pytest.fixture(scope="module")
def workload():
    dom = UIDDomain(8)
    table = generate_subnet_table(dom, seed=31)
    ts, uids = generate_timestamped_trace(
        table, 4000, duration=24.0, seed=32,
        model=TrafficModel(active_fraction=0.2, zipf_exponent=1.1),
    )
    trace = Trace(ts, uids)
    return table, trace.slice_time(0, 12), trace.slice_time(12, 24)


@pytest.fixture(scope="module")
def slo_run(workload, tmp_path_factory):
    """A faulty run with tracing + an SLO engine that demonstrably
    fires, journalled for the replay/top/trace assertions."""
    table, history, live = workload
    path = str(tmp_path_factory.mktemp("slo") / "run.journal")
    system = MonitoringSystem(
        table, get_metric("rms"), num_monitors=3, budget=25,
        stale_policy="rescale",
        faults=FaultModel(drop=0.4, delay=0.4, max_delay_windows=2, seed=5),
    )
    engine = SLOEngine(
        parse_slo_spec("coverage>=0.99,delivery_p99_windows<=0")
    )
    tracer = LifecycleTracer()
    with use_journal(EventJournal(path)), use_tracer(tracer), \
            use_slo_engine(engine):
        system.train(history)
        report = system.run(live, window_width=3.0)
    return path, report, engine


class TestEndToEnd:
    def test_alerts_land_on_the_report(self, slo_run):
        _path, report, engine = slo_run
        assert report.alerts  # the chosen rules must actually fire
        assert report.alerts == engine.finish()
        assert all(isinstance(a, Alert) for a in report.alerts)

    def test_replay_rebuilds_alerts_bit_identically(self, slo_run):
        path, report, _engine = slo_run
        replayed = replay_system_report(read_journal(path))
        assert replayed.alerts == report.alerts
        assert replayed.windows == report.windows

    def test_replay_rejects_inconsistent_alert_stream(self, slo_run):
        path, _report, _engine = slo_run
        events = read_journal(path)
        fired = next(e for e in events if e["event"] == "alert.fired")
        double = dict(fired)
        double["seq"] = len(events)
        with pytest.raises(ValueError, match="already firing"):
            replay_system_report(events + [double])
        orphan = {
            "seq": len(events), "ts": 0.0, "event": "alert.resolved",
            "rule": "nosuch>=1", "window": 0, "value": 0.0,
        }
        with pytest.raises(ValueError, match="not firing"):
            replay_system_report(events + [orphan])

    def test_top_folds_alert_events(self, slo_run):
        path, report, _engine = slo_run
        state = state_from_journal(read_journal(path), path)
        assert len(state.alerts) == len(report.alerts)
        assert len(state.active_alerts) == len(
            [a for a in report.alerts if a.resolved_window is None]
        )
        rendered = render_top(state)
        assert "alerts:" in rendered
        assert "coverage>=0.99" in rendered


def _get_json(url):
    with urllib.request.urlopen(url, timeout=5) as resp:
        return resp.status, json.loads(resp.read().decode("utf-8"))


class TestServerSurfaces:
    def test_alerts_json_serves_engine_state(self):
        registry = MetricsRegistry()
        engine = SLOEngine(parse_slo_spec("coverage>=0.9"))
        engine.observe(0, {"coverage": 0.3})
        with MetricsServer(registry, port=0, slo=engine) as server:
            status, doc = _get_json(server.url + "/alerts.json")
        assert status == 200
        assert doc == engine.as_json()
        assert doc["active"] == ["coverage>=0.9"]

    def test_alerts_json_without_engine_is_empty(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            status, doc = _get_json(server.url + "/alerts.json")
        assert status == 200
        assert doc == NULL_SLO_ENGINE.as_json()

    def test_unknown_path_gets_json_404(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            try:
                urllib.request.urlopen(server.url + "/nope", timeout=5)
            except urllib.error.HTTPError as err:
                assert err.code == 404
                doc = json.loads(err.read().decode("utf-8"))
            else:  # pragma: no cover - the request must fail
                pytest.fail("expected a 404")
        assert doc["error"] == "not found"
        assert doc["path"] == "/nope"
        assert "/alerts.json" in doc["endpoints"]

    def test_series_since_incremental_fetch(self):
        registry = MetricsRegistry()
        registry.window_series.extend(
            [{"window": i} for i in range(4)]
        )
        with MetricsServer(registry, port=0) as server:
            _, full = _get_json(server.url + "/series.json")
            _, tail = _get_json(server.url + "/series.json?since=2")
            _, beyond = _get_json(server.url + "/series.json?since=99")
            try:
                urllib.request.urlopen(
                    server.url + "/series.json?since=x", timeout=5
                )
            except urllib.error.HTTPError as err:
                assert err.code == 400
            else:  # pragma: no cover - the request must fail
                pytest.fail("expected a 400")
        assert full == [{"window": i} for i in range(4)]
        assert tail == [{"window": 2}, {"window": 3}]
        assert beyond == []

    def test_top_source_polls_incrementally(self):
        registry = MetricsRegistry()
        registry.window_series.append({"window": 0, "counters": {}})
        engine = SLOEngine(parse_slo_spec("coverage>=0.9"))
        engine.observe(0, {"coverage": 0.1})
        with MetricsServer(registry, port=0, slo=engine) as server:
            source = TopSource(server.url)
            first = source.poll()
            registry.window_series.append({"window": 1, "counters": {}})
            second = source.poll()
        assert len(first.rows) == 1
        assert len(second.rows) == 2
        assert len(source._records) == 2  # each record fetched once
        assert second.alerts and second.alerts[0]["rule"] == "coverage>=0.9"
        assert second.active_alerts
