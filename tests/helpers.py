"""Shared generators for the test suite (importable, unlike conftest)."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro import GroupTable, UIDDomain

ALL_METRICS = ["rms", "average", "avg_relative", "max_relative"]


def random_cut(
    rng: np.random.Generator, height: int, stop: float = 0.5
) -> List[int]:
    """A random covering nonoverlapping cut of a height-``height``
    domain (used as random group nodes)."""
    out: List[int] = []
    stack = [1]
    while stack:
        node = stack.pop()
        if UIDDomain.depth(node) >= height or rng.random() < stop:
            out.append(node)
        else:
            stack.extend(UIDDomain.children(node))
    return out


def random_instance(
    seed: int,
    height_range: Tuple[int, int] = (2, 5),
    zero_fraction: float = 0.4,
    max_count: int = 30,
) -> Tuple[UIDDomain, GroupTable, np.ndarray]:
    """A random small (domain, table, counts) problem instance."""
    rng = np.random.default_rng(seed)
    height = int(rng.integers(*height_range))
    dom = UIDDomain(height)
    groups = random_cut(rng, height)
    table = GroupTable(dom, groups)
    counts = rng.integers(0, max_count, len(table)).astype(float)
    counts[rng.random(len(table)) < zero_fraction] = 0.0
    if counts.sum() == 0:
        counts[0] = float(max_count // 2 + 1)
    return dom, table, counts
