"""Exact k-holes longest-prefix-match construction (paper Section 3.2.5).

Optimal longest-prefix-match construction is hard because bucket
decisions interact globally (Figure 7).  The paper restricts the search
to functions in which every bucket has at most ``k`` direct nested
buckets ("holes") — any b-bucket solution can be converted into a
k-holes solution with at most ``b * (1 + floor(b / (k - 1)))`` buckets
without increasing error for super-additive metrics (Figure 8), so the
restricted optimum carries an approximation guarantee.

The restricted problem still takes at least cubic time; this module is
intended for small hierarchies (tests, the A6 ablation bench, and as an
*exact LPM oracle* when ``k`` is as large as the budget).  The search
enumerates, for every node that becomes a bucket, every antichain of at
most ``k`` pruned descendants as its direct holes, splitting the budget
among them with the usual ``(min, +)`` knapsack.

:func:`split_to_k_holes` implements the Figure 8 conversion, used to
validate the approximation argument.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.domain import UIDDomain
from ..core.errors import PenaltyMetric
from ..core.hierarchy import PNode, PrunedHierarchy
from ..core.partition import Bucket, LongestPrefixMatchPartitioning
from ..obs import span
from .base import INF, ConstructionResult, DPContext
from .kernels import knapsack_merge

__all__ = ["build_lpm_kholes", "split_to_k_holes"]

#: Refuse exact search beyond this many pruned nodes — the enumeration
#: is exponential in practice and the paper itself deems it prohibitive
#: at scale (use the greedy or quantized heuristics instead).
MAX_NODES = 80


def build_lpm_kholes(
    hierarchy: PrunedHierarchy,
    metric: PenaltyMetric,
    budget: int,
    k: int = 2,
    sparse: bool = True,
) -> ConstructionResult:
    """Optimal longest-prefix-match function with at most ``k`` direct
    holes per bucket.

    With ``k >= budget - 1`` the hole restriction is vacuous and the
    result is the true optimal longest-prefix-match function (over
    functions whose top-level bucket encloses all groups).
    """
    if budget < 1:
        raise ValueError(f"budget must be at least 1, got {budget}")
    if k < 0:
        raise ValueError(f"k must be nonnegative, got {k}")
    if len(hierarchy.nodes) > MAX_NODES:
        raise ValueError(
            f"k-holes exact search limited to {MAX_NODES} pruned nodes "
            f"(got {len(hierarchy.nodes)}); use the greedy or quantized "
            "heuristics at scale"
        )
    ctx = DPContext(hierarchy, metric)
    solver = _KHolesSolver(hierarchy, metric, ctx, budget, k, sparse)
    root = hierarchy.root
    with span(
        "lpm_kholes.search", budget=budget, k=k,
        nodes=len(hierarchy.nodes),
    ) as sp:
        table = solver.bucket_table(root)
        sp.annotate(antichains=solver.antichains_examined)
    curve = np.full(budget + 1, INF)
    upto = min(budget, len(table) - 1)
    curve[1 : upto + 1] = ctx.finalize_curve(table[1 : upto + 1])
    best = INF
    for b in range(1, budget + 1):
        best = min(best, curve[b])
        curve[b] = best

    def make_function(b: int) -> LongestPrefixMatchPartitioning:
        buckets: List[Bucket] = []
        solver.collect(root, min(b, upto), buckets)
        return LongestPrefixMatchPartitioning(hierarchy.domain, buckets)

    return ConstructionResult(
        make_function=make_function, curve=curve, budget=budget,
        stats={"k": float(k)},
    )


class _KHolesSolver:
    """Memoized search over bucket nodes and their hole antichains."""

    def __init__(self, hierarchy, metric, ctx, budget, k, sparse) -> None:
        self.hierarchy = hierarchy
        self.metric = metric
        self.ctx = ctx
        self.budget = budget
        self.k = k
        self.sparse = sparse
        self.antichains_examined = 0
        self._tables: Dict[int, np.ndarray] = {}
        self._choices: Dict[int, List[Optional[Tuple]]] = {}
        self._descendants: Dict[int, List[PNode]] = {}

    # -- structure helpers ---------------------------------------------
    def descendants(self, p: PNode) -> List[PNode]:
        if p.index not in self._descendants:
            out: List[PNode] = []
            stack = list(p.children())
            while stack:
                q = stack.pop()
                out.append(q)
                stack.extend(q.children())
            self._descendants[p.index] = out
        return self._descendants[p.index]

    def antichains(self, p: PNode) -> List[Tuple[PNode, ...]]:
        """All antichains of up to ``k`` strict pruned descendants."""
        desc = self.descendants(p)
        out: List[Tuple[PNode, ...]] = [()]
        for size in range(1, min(self.k, len(desc)) + 1):
            for combo in combinations(desc, size):
                if _is_antichain(combo):
                    out.append(combo)
        return out

    # -- penalty of a holey region ---------------------------------------
    def region_penalty(
        self, p: PNode, holes: Sequence[PNode], density: float
    ) -> float:
        """Penalty of estimating the groups below ``p`` but outside the
        hole subtrees at the given density."""
        lo, hi = self.ctx.leaf_lo[p.index], self.ctx.leaf_hi[p.index]
        mask = np.ones(hi - lo, dtype=bool)
        for h in holes:
            mask[self.ctx.leaf_lo[h.index] - lo : self.ctx.leaf_hi[h.index] - lo] = False
        if not mask.any():
            return 0.0
        pens = self.metric.penalty_array(self.ctx.leaf_actual[lo:hi][mask], density)
        if self.metric.combine == "sum":
            return float(pens @ self.ctx.leaf_weight[lo:hi][mask])
        return float(pens.max())

    # -- the DP -----------------------------------------------------------
    def bucket_table(self, p: PNode) -> np.ndarray:
        """``table[B]`` = best penalty for subtree(p) with ``p`` a bucket
        and ``B`` buckets at or below ``p``, each bucket ≤ k holes."""
        if p.index in self._tables:
            return self._tables[p.index]
        cap = min(self.budget, 1 + len(self.descendants(p)))
        table = np.full(cap + 1, INF)
        choices: List[Optional[Tuple]] = [None] * (cap + 1)
        if self.sparse and p.n_nonzero <= 1:
            table[1] = 0.0
            choices[1] = ("sparse",)
        for holes in self.antichains(p):
            self.antichains_examined += 1
            if not holes:
                pen = self.region_penalty(p, (), p.density)
                if pen < table[1]:
                    table[1] = pen
                    choices[1] = ("holes", ())
                continue
            g_net = p.n_groups - sum(h.n_groups for h in holes)
            t_net = p.tuples - sum(h.tuples for h in holes)
            density = (t_net / g_net) if g_net > 0 else 0.0
            pen_self = self.region_penalty(p, holes, density)
            # Combine hole budget tables with a knapsack.
            acc = np.asarray([0.0])
            allocs: List[np.ndarray] = []
            for h in holes:
                ht = self.bucket_table(h)
                acc, choice = knapsack_merge(
                    acc, ht, self.budget - 1, self.metric.combine
                )
                allocs.append(choice)
            for B_holes in range(len(holes), len(acc)):
                if acc[B_holes] == INF:
                    continue
                total = self.metric.combine_totals(pen_self, acc[B_holes])
                B = B_holes + 1
                if B <= cap and total < table[B]:
                    table[B] = total
                    table_alloc = _unwind_alloc(allocs, B_holes)
                    choices[B] = ("holes", tuple(zip(holes, table_alloc)))
        self._tables[p.index] = table
        self._choices[p.index] = choices
        return table

    def collect(self, p: PNode, b: int, out: List[Bucket]) -> None:
        table = self._tables.get(p.index)
        if table is None:
            self.bucket_table(p)
            table = self._tables[p.index]
        b = min(b, len(table) - 1)
        # Use the best feasible entry at or below b.
        feasible = [B for B in range(1, b + 1) if table[B] < INF]
        if not feasible:
            out.append(Bucket(p.node))
            return
        B = min(feasible, key=lambda B: (table[B], B))
        choice = self._choices[p.index][B]
        if choice == ("sparse",):
            leaf = _single_nonzero_leaf(p)
            if leaf is not None and leaf.node != p.node:
                out.append(Bucket(p.node, sparse_group_node=leaf.node))
            else:
                out.append(Bucket(p.node))
            return
        out.append(Bucket(p.node))
        _kind, holes = choice
        for h, bh in holes:
            self.collect(h, bh, out)


def _unwind_alloc(allocs: List[np.ndarray], total: int) -> List[int]:
    """Recover per-hole budgets from the chained knapsack choices."""
    out: List[int] = []
    for choice in reversed(allocs):
        idx = min(total, len(choice) - 1)
        c = int(choice[idx])
        out.append(total - c)
        total = c
    out.reverse()
    return out


def _is_antichain(nodes: Sequence[PNode]) -> bool:
    for a, b in combinations(nodes, 2):
        if UIDDomain.is_ancestor(a.node, b.node) or UIDDomain.is_ancestor(
            b.node, a.node
        ):
            return False
    return True


def _single_nonzero_leaf(p: PNode) -> Optional[PNode]:
    while not p.is_leaf:
        p = p.left if p.left.n_nonzero >= 1 else p.right
    return p if p.kind == "group" else None


def split_to_k_holes(
    function: LongestPrefixMatchPartitioning,
    k: int,
) -> LongestPrefixMatchPartitioning:
    """The Figure 8 conversion: split buckets until every bucket has at
    most ``k`` direct holes, adding intermediate bucket nodes.

    For super-additive error metrics the conversion does not increase
    the overall error; it adds at most ``floor(b / (k - 1))`` buckets.
    """
    if k < 2:
        raise ValueError(f"the splitting argument requires k >= 2, got {k}")
    domain = function.domain
    buckets = {b.node: b for b in function.buckets}

    def direct_holes(node: int) -> List[int]:
        out = []
        for other in buckets:
            if other == node or not UIDDomain.is_ancestor(node, other):
                continue
            # direct = no third bucket strictly between
            if not any(
                third != node and third != other
                and UIDDomain.is_ancestor(node, third)
                and UIDDomain.is_ancestor(third, other)
                for third in buckets
            ):
                out.append(other)
        return out

    changed = True
    while changed:
        changed = False
        for node in list(buckets):
            holes = direct_holes(node)
            if len(holes) <= k:
                continue
            new_node = _splitting_node(domain, node, holes, buckets)
            if new_node is None:
                break  # cannot split further (defensive)
            buckets[new_node] = Bucket(new_node)
            changed = True
            break
    return LongestPrefixMatchPartitioning(domain, list(buckets.values()))


def _splitting_node(
    domain: UIDDomain, node: int, holes: List[int], existing: Dict[int, Bucket]
) -> Optional[int]:
    """A proper descendant of ``node`` capturing at least two (but not
    all) of its holes, to serve as a new intermediate bucket."""
    current = node
    remaining = list(holes)
    while True:
        l, r = UIDDomain.children(current)
        left = [h for h in remaining if UIDDomain.is_ancestor(l, h)]
        right = [h for h in remaining if UIDDomain.is_ancestor(r, h)]
        side, nodes_side = max(
            ((l, left), (r, right)), key=lambda t: len(t[1])
        )
        other = left if nodes_side is right else right
        if other and len(nodes_side) >= 2:
            if side not in existing and side not in nodes_side:
                return side
            # The natural split point exists already; descend into it.
            current, remaining = side, nodes_side
            continue
        if len(nodes_side) == len(remaining):
            if side in nodes_side:
                return None
            current = side
            continue
        return None
