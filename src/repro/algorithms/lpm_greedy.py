"""Greedy longest-prefix-match heuristic (paper Section 3.2.6).

Choosing an optimal longest-prefix-match function is hard because every
bucket decision interacts with every other (Figure 7).  The greedy
heuristic sidesteps this with the independence observation behind
overlapping functions: adding a hole to an overlapping partition does
not change the error of groups outside the hole.  Good overlapping
bucket nodes therefore tend to be good longest-prefix-match bucket
nodes.

The heuristic:

1. run the optimal overlapping DP (Section 3.2.3), optionally with an
   over-provisioned budget (``overprovision`` times the target) so
   there is a pool to select from;
2. score every bucket by its *bucket approximation error* — the error
   of the groups that map to it, estimated at its overlapping density;
3. keep the ``b`` best-scoring buckets (the root is always kept, since
   every identifier needs an enclosing bucket) and reinterpret them as
   a longest-prefix-match function.

``rank="error"`` reproduces the paper's wording (keep the buckets that
approximate their own groups best); ``rank="benefit"`` keeps the
buckets whose presence improves most over their enclosing bucket's
density — a natural alternative exposed for ablation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.domain import UIDDomain
from ..core.errors import PenaltyMetric
from ..core.estimate import evaluate_function
from ..core.hierarchy import PrunedHierarchy
from ..core.partition import Bucket, LongestPrefixMatchPartitioning
from ..obs import span
from .base import INF, ConstructionResult
from .overlapping import OverlappingDP

__all__ = ["build_lpm_greedy", "bucket_approx_errors"]


def _bucket_assignment(
    hierarchy: PrunedHierarchy, buckets: List[Bucket]
) -> Tuple[Dict[int, float], Dict[int, np.ndarray]]:
    """Closest-selected-ancestor assignment of groups to bucket nodes.

    Returns per-node overlapping densities and, for every bucket node
    that owns at least one group, the (sorted) group indices assigned
    to it.  One stable argsort over the assignment array replaces the
    O(buckets x groups) boolean scan of a per-bucket mask: member
    indices come out in ascending group order, exactly the order the
    mask-based gather produced, so downstream penalty sums are
    bit-for-bit unchanged.
    """
    table = hierarchy.table
    counts = hierarchy.counts
    node_list = sorted((b.node for b in buckets), key=UIDDomain.depth)
    assigned = np.full(len(table), -1, dtype=np.int64)
    density: Dict[int, float] = {}
    for node in node_list:
        idx = table.group_indices_below(node)
        if idx.size:
            assigned[idx] = node
            density[node] = float(counts[idx].sum()) / idx.size
        else:
            density[node] = 0.0
    order = np.argsort(assigned, kind="stable")
    keys = assigned[order]
    members: Dict[int, np.ndarray] = {}
    lo = int(np.searchsorted(keys, -1, side="right"))
    while lo < len(keys):
        node = int(keys[lo])
        hi = int(np.searchsorted(keys, node, side="right"))
        members[node] = order[lo:hi]
        lo = hi
    return density, members


def bucket_approx_errors(
    hierarchy: PrunedHierarchy,
    buckets: List[Bucket],
    metric: PenaltyMetric,
) -> Dict[int, float]:
    """Overlapping bucket approximation error per bucket node.

    For each bucket, the aggregate penalty of the groups whose closest
    selected ancestor it is, estimated at the bucket's (overlapping)
    density.  Sparse buckets score zero — they are exact.
    """
    counts = hierarchy.counts
    sparse_nodes = {b.node for b in buckets if b.is_sparse}
    density, members = _bucket_assignment(hierarchy, buckets)
    errors: Dict[int, float] = {}
    for b in buckets:
        node = b.node
        sel = members.get(node)
        if node in sparse_nodes or sel is None:
            errors[node] = 0.0
            continue
        pens = metric.penalty_array(counts[sel], density[node])
        errors[node] = (
            float(pens.sum()) if metric.combine == "sum" else float(pens.max())
        )
    return errors


def build_lpm_greedy(
    hierarchy: PrunedHierarchy,
    metric: PenaltyMetric,
    budget: int,
    overprovision: float = 1.0,
    rank: str = "error",
    sparse: bool = True,
    dp: Optional[OverlappingDP] = None,
    curve_budgets: Optional[List[int]] = None,
) -> ConstructionResult:
    """Construct a longest-prefix-match function with the greedy
    heuristic.

    Parameters
    ----------
    overprovision:
        Budget multiplier for the underlying overlapping run.  At the
        default 1.0 the heuristic keeps the whole overlapping bucket
        set and only the interpretation changes (the reading that
        matches the paper's results: longest-prefix-match semantics net
        holes out of parent densities).  Larger values build a bigger
        pool and prune back to the target budget by rank — exposed for
        ablation; note that dropping high-error buckets re-routes their
        groups to coarser ancestors, which usually hurts.
    rank:
        ``"error"`` (paper: keep buckets with the lowest bucket
        approximation error) or ``"benefit"`` (keep buckets improving
        most over their enclosing bucket).
    dp:
        An already-solved :class:`OverlappingDP` to reuse (must have
        been run with a budget of at least ``overprovision * budget``).
    curve_budgets:
        Budgets at which to evaluate the error curve (default: every
        budget).  Sweeps over a few budget points pass their grid here
        to skip hundreds of intermediate evaluations.

    The returned curve is the *measured* longest-prefix-match error of
    the selected set at each budget (heuristics carry no optimality
    guarantee, so the honest number is the evaluated one).
    """
    if budget < 1:
        raise ValueError(f"budget must be at least 1, got {budget}")
    if rank not in ("error", "benefit"):
        raise ValueError(f"unknown ranking mode {rank!r}")
    pool_budget = max(budget, int(np.ceil(budget * overprovision)))
    if dp is None:
        with span("lpm_greedy.pool", budget=pool_budget):
            dp = OverlappingDP(hierarchy, metric, pool_budget, sparse=sparse)
    root_node = hierarchy.root.node
    table = hierarchy.table
    counts = hierarchy.counts
    cache: Dict[int, LongestPrefixMatchPartitioning] = {}
    pool_sizes: Dict[int, int] = {}

    def make_function(b: int) -> LongestPrefixMatchPartitioning:
        """The greedy function for budget ``b``: the overlapping
        optimum for (up to) ``overprovision * b`` buckets, pruned back
        to ``b`` by rank and reinterpreted under longest-prefix-match
        semantics."""
        b = max(1, b)
        if b in cache:
            return cache[b]
        pool_b = max(b, min(pool_budget, int(np.ceil(b * overprovision))))
        pool = dp.buckets_for_budget(pool_b)
        pool_sizes[b] = len(pool)
        chosen = pool
        if len(pool) > b:
            if rank == "error":
                scores = bucket_approx_errors(hierarchy, pool, metric)
                order = sorted(
                    (x for x in pool if x.node != root_node),
                    key=lambda x: (scores[x.node], UIDDomain.depth(x.node)),
                )
            else:
                scores = _benefit_scores(hierarchy, pool, metric)
                order = sorted(
                    (x for x in pool if x.node != root_node),
                    key=lambda x: (-scores[x.node], UIDDomain.depth(x.node)),
                )
            roots = [x for x in pool if x.node == root_node] or [
                Bucket(root_node)
            ]
            chosen = roots[:1] + order[: b - 1]
        cache[b] = LongestPrefixMatchPartitioning(hierarchy.domain, chosen)
        return cache[b]

    curve = np.full(budget + 1, INF)
    budgets = (
        range(1, budget + 1)
        if curve_budgets is None
        else sorted({min(budget, max(1, b)) for b in curve_budgets})
    )
    with span(
        "lpm_greedy.curve", budget=budget, rank=rank,
        overprovision=overprovision,
    ) as sp:
        for b in budgets:
            curve[b] = evaluate_function(
                table, counts, make_function(b), metric
            )
        sp.annotate(
            evaluations=len(budgets),
            pool=max(pool_sizes.values(), default=0),
        )
    best = INF
    for b in range(1, budget + 1):
        best = min(best, curve[b])
        curve[b] = best

    return ConstructionResult(
        make_function=make_function,
        curve=curve,
        budget=budget,
        stats={"pool": float(max(pool_sizes.values(), default=0))},
    )


def _benefit_scores(
    hierarchy: PrunedHierarchy,
    buckets: List[Bucket],
    metric: PenaltyMetric,
) -> Dict[int, float]:
    """Improvement each bucket brings over its enclosing bucket's
    density, under the overlapping independence assumption."""
    counts = hierarchy.counts
    node_set = {b.node for b in buckets}
    density, members = _bucket_assignment(hierarchy, buckets)
    own = bucket_approx_errors(hierarchy, buckets, metric)
    benefits: Dict[int, float] = {}
    for b in buckets:
        node = b.node
        parent = next(
            (a for a in UIDDomain.ancestors(node) if a in node_set), None
        )
        sel = members.get(node)
        if parent is None or sel is None:
            benefits[node] = 0.0
            continue
        pens = metric.penalty_array(counts[sel], density[parent])
        at_parent = (
            float(pens.sum()) if metric.combine == "sum" else float(pens.max())
        )
        benefits[node] = at_parent - own[node]
    return benefits
