"""Optimal nonoverlapping partitioning functions (paper Section 3.2.2).

The bucket nodes of a nonoverlapping function form a cut of the UID
hierarchy (Figure 3).  The dynamic program fills::

    E[i, B] = grperr(i)                                   if B == 1
            = min over c of E[left, c] (+) E[right, B-c]  otherwise

bottom-up over the pruned hierarchy.  ``grperr(i)`` is the error of
estimating every group below ``i`` at ``i``'s density — the error of
making ``i`` a single bucket.  The table at the root yields the optimal
error for *every* budget up to the requested one in a single run.

The pruned hierarchy retains the attachment points of all-zero sibling
subtrees, so cuts that isolate empty regions (which then cost nothing
to transmit — their buckets are inferred, Section 4.3) are part of the
search space and the result is optimal over the full virtual hierarchy.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..core.errors import PenaltyMetric
from ..core.hierarchy import PNode, PrunedHierarchy
from ..core.partition import Bucket, NonoverlappingPartitioning
from ..obs import span
from .base import INF, ConstructionResult, DPContext, knapsack_merge

__all__ = ["build_nonoverlapping"]


def build_nonoverlapping(
    hierarchy: PrunedHierarchy,
    metric: PenaltyMetric,
    budget: int,
    low_memory: bool = False,
) -> ConstructionResult:
    """Construct the optimal nonoverlapping partitioning function.

    Parameters
    ----------
    hierarchy:
        Pruned hierarchy of the window being summarized.
    metric:
        The distributive error metric to minimize.
    budget:
        Maximum number of histogram buckets ``b``.
    low_memory:
        Apply the paper's Section 4.4 space optimization (after Guha):
        keep no per-node choice tables at all — only the O(b x depth)
        error tables live during the sweep — and reconstruct bucket
        sets by re-running the DP recursively on the two subtrees of
        each chosen split.  Same optimum; reconstruction costs an extra
        O(depth) factor, which is why it is opt-in.

    Returns
    -------
    ConstructionResult
        ``result.curve[B]`` is the optimal error for every ``B`` up to
        the budget; ``result.function_at(B)`` materializes the cut.
    """
    if budget < 1:
        raise ValueError(f"budget must be at least 1, got {budget}")
    ctx = DPContext(hierarchy, metric)
    with span(
        "dp.nonoverlapping.sweep", budget=budget,
        nodes=len(hierarchy.nodes), low_memory=low_memory,
    ) as sp:
        root_table, splits = _sweep(
            hierarchy.root, ctx, budget, keep_splits=not low_memory
        )
        sp.annotate(root_entries=int(len(root_table)) - 1)
    curve = np.full(budget + 1, INF)
    upto = min(budget, len(root_table) - 1)
    curve[1 : upto + 1] = ctx.finalize_curve(root_table[1 : upto + 1])
    # Error is nonincreasing in budget: extra buckets can't hurt, so
    # budgets beyond the hierarchy's capacity keep the best value.
    best = INF
    for b in range(1, budget + 1):
        best = min(best, curve[b])
        curve[b] = best

    def make_function(b: int) -> NonoverlappingPartitioning:
        b = min(b, upto)
        bucket_nodes: List[int] = []
        with span("dp.nonoverlapping.collect", budget=b) as sp:
            if low_memory:
                _collect_multipass(
                    hierarchy.root, b, ctx, budget, bucket_nodes
                )
            else:
                _collect(hierarchy.root, b, splits, bucket_nodes)
            sp.annotate(buckets=len(bucket_nodes))
        return NonoverlappingPartitioning(
            hierarchy.domain, [Bucket(v) for v in bucket_nodes]
        )

    return ConstructionResult(
        make_function=make_function,
        curve=curve,
        budget=budget,
        stats={"nodes": float(len(hierarchy.nodes))},
    )


def _sweep(root: PNode, ctx: DPContext, budget: int, keep_splits: bool):
    """One bottom-up DP pass over ``root``'s subtree.

    Child error tables are freed as soon as their parent consumes them,
    so at most O(depth) tables are live.  Split choices are retained
    only when ``keep_splits`` — dropping them is the Section 4.4 mode.
    """
    tables = {}
    splits: dict = {}
    stack = [(root, False)]
    while stack:
        p, expanded = stack.pop()
        if not expanded and not p.is_leaf:
            stack.append((p, True))
            stack.append((p.right, False))
            stack.append((p.left, False))
            continue
        if p.is_leaf:
            table = np.full(2, INF)
            table[1] = ctx.grperr_own(p)  # 0 for exact / empty leaves
            tables[p.index] = table
            continue
        left, right = tables.pop(p.left.index), tables.pop(p.right.index)
        table, split = knapsack_merge(left, right, budget, ctx.metric.combine)
        one_bucket = ctx.grperr_own(p)
        if one_bucket < table[1]:
            table[1] = one_bucket
            split[1] = -1  # sentinel: this node is the bucket
        tables[p.index] = table
        if keep_splits:
            splits[p.index] = split
    return tables[root.index], splits


def _collect_multipass(
    p: PNode, b: int, ctx: DPContext, budget: int, out: List[int]
) -> None:
    """Section 4.4 reconstruction: re-derive the split at each node by
    re-running the DP on its two subtrees, then recurse."""
    stack = [(p, b)]
    while stack:
        p, b = stack.pop()
        if p.is_leaf or b == 1:
            out.append(p.node)
            continue
        left_table, _ = _sweep(p.left, ctx, budget, keep_splits=False)
        right_table, _ = _sweep(p.right, ctx, budget, keep_splits=False)
        merged, split = knapsack_merge(
            left_table, right_table, budget, ctx.metric.combine
        )
        b = min(b, len(merged) - 1)
        if b == 1:  # only the single-bucket option remains
            out.append(p.node)
            continue
        c = int(split[b])
        stack.append((p.left, c))
        stack.append((p.right, b - c))


def _collect(
    p: PNode,
    b: int,
    splits: List[Optional[np.ndarray]],
    out: List[int],
) -> None:
    """Walk the recorded split choices to materialize the cut for
    budget ``b``."""
    stack = [(p, b)]
    while stack:
        p, b = stack.pop()
        if p.is_leaf or b == 1:
            out.append(p.node)
            continue
        split = splits[p.index]
        b = min(b, len(split) - 1)
        c = int(split[b])
        if c == -1:  # single-bucket choice recorded at B == 1 only
            out.append(p.node)
            continue
        stack.append((p.left, c))
        stack.append((p.right, b - c))
    return None
