"""Unit and property tests for the UID domain node arithmetic."""

import pytest
from hypothesis import given, strategies as st

from repro import ROOT, UIDDomain


class TestBasics:
    def test_sizes(self):
        dom = UIDDomain(3)
        assert dom.num_uids == 8
        assert dom.num_nodes == 15

    def test_zero_height(self):
        dom = UIDDomain(0)
        assert dom.num_uids == 1
        assert dom.leaf(0) == ROOT

    def test_negative_height_rejected(self):
        with pytest.raises(ValueError):
            UIDDomain(-1)

    def test_node_construction(self):
        dom = UIDDomain(3)
        assert dom.node(0, 0) == ROOT
        assert dom.node(2, 0b11) == 7
        assert dom.leaf(0b010) == 8 + 2

    def test_node_rejects_bad_prefix(self):
        dom = UIDDomain(3)
        with pytest.raises(ValueError):
            dom.node(2, 4)
        with pytest.raises(ValueError):
            dom.node(4, 0)

    def test_leaf_rejects_out_of_range(self):
        dom = UIDDomain(3)
        with pytest.raises(ValueError):
            dom.leaf(8)
        with pytest.raises(ValueError):
            dom.leaf(-1)


class TestNavigation:
    def test_children_parent_roundtrip(self):
        left, right = UIDDomain.children(5)
        assert (left, right) == (10, 11)
        assert UIDDomain.parent(left) == 5
        assert UIDDomain.parent(right) == 5

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            UIDDomain.parent(ROOT)

    def test_sibling(self):
        assert UIDDomain.sibling(10) == 11
        assert UIDDomain.sibling(11) == 10
        with pytest.raises(ValueError):
            UIDDomain.sibling(ROOT)

    def test_depth_prefix(self):
        assert UIDDomain.depth(ROOT) == 0
        assert UIDDomain.depth(7) == 2
        assert UIDDomain.prefix(7) == 3

    def test_is_ancestor(self):
        assert UIDDomain.is_ancestor(ROOT, 13)
        assert UIDDomain.is_ancestor(3, 13)
        assert UIDDomain.is_ancestor(13, 13)
        assert not UIDDomain.is_ancestor(13, 3)
        assert not UIDDomain.is_ancestor(2, 13)

    def test_ancestors_order(self):
        assert list(UIDDomain.ancestors(13)) == [6, 3, 1]

    def test_ancestor_at_depth(self):
        assert UIDDomain.ancestor_at_depth(13, 1) == 3
        with pytest.raises(ValueError):
            UIDDomain.ancestor_at_depth(3, 5)

    def test_lca(self):
        assert UIDDomain.lca(12, 13) == 6
        assert UIDDomain.lca(12, 14) == 3
        assert UIDDomain.lca(8, 15) == ROOT
        assert UIDDomain.lca(6, 13) == 6


class TestRanges:
    def test_uid_range(self):
        dom = UIDDomain(3)
        assert dom.uid_range(ROOT) == (0, 8)
        assert dom.uid_range(dom.node(2, 0b01)) == (2, 4)
        assert dom.uid_range(dom.leaf(5)) == (5, 6)

    def test_subtree_size(self):
        dom = UIDDomain(4)
        assert dom.subtree_size(ROOT) == 16
        assert dom.subtree_size(dom.leaf(3)) == 1

    def test_node_for_range_roundtrip(self):
        dom = UIDDomain(4)
        for node in [1, 2, 3, 5, 9, 16, 31]:
            lo, hi = dom.uid_range(node)
            assert dom.node_for_range(lo, hi) == node

    def test_node_for_range_rejects_bad(self):
        dom = UIDDomain(4)
        with pytest.raises(ValueError):
            dom.node_for_range(0, 3)  # not a power of two
        with pytest.raises(ValueError):
            dom.node_for_range(2, 6)  # misaligned
        with pytest.raises(ValueError):
            dom.node_for_range(8, 24)  # out of universe


class TestFormatting:
    def test_prefix_str(self):
        dom = UIDDomain(3)
        assert dom.node_prefix_str(ROOT) == "*"
        assert dom.node_prefix_str(dom.node(2, 0b01)) == "01*"
        assert dom.node_prefix_str(dom.leaf(0b101)) == "101"

    def test_parse_prefix_roundtrip(self):
        dom = UIDDomain(4)
        for node in [1, 2, 7, 12, 16, 31]:
            assert dom.parse_prefix_str(dom.node_prefix_str(node)) == node

    def test_parse_rejects_garbage(self):
        dom = UIDDomain(3)
        with pytest.raises(ValueError):
            dom.parse_prefix_str("01x*")

    def test_describe_mentions_prefix(self):
        dom = UIDDomain(3)
        assert "01*" in dom.describe(dom.node(2, 0b01))


@given(st.integers(min_value=0, max_value=20), st.data())
def test_leaf_roundtrip_property(height, data):
    dom = UIDDomain(height)
    uid = data.draw(st.integers(min_value=0, max_value=dom.num_uids - 1))
    leaf = dom.leaf(uid)
    assert UIDDomain.depth(leaf) == height
    lo, hi = dom.uid_range(leaf)
    assert (lo, hi) == (uid, uid + 1)


@given(st.integers(min_value=1, max_value=2**20 - 1),
       st.integers(min_value=1, max_value=2**20 - 1))
def test_lca_is_common_ancestor_property(a, b):
    l = UIDDomain.lca(a, b)
    assert UIDDomain.is_ancestor(l, a)
    assert UIDDomain.is_ancestor(l, b)
    # and it is the lowest: its children are not common ancestors
    for c in UIDDomain.children(l):
        assert not (UIDDomain.is_ancestor(c, a) and UIDDomain.is_ancestor(c, b))


@given(st.integers(min_value=0, max_value=12), st.data())
def test_range_partition_property(height, data):
    """Children's ranges partition the parent's range."""
    dom = UIDDomain(height + 1)
    node = data.draw(
        st.integers(min_value=1, max_value=(1 << height) - 1 if height else 1)
    )
    lo, hi = dom.uid_range(node)
    l, r = UIDDomain.children(node)
    llo, lhi = dom.uid_range(l)
    rlo, rhi = dom.uid_range(r)
    assert (llo, rhi) == (lo, hi)
    assert lhi == rlo
