"""Tests for the GroupTable lookup table."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro import GroupTable, UIDDomain

from helpers import random_cut


@pytest.fixture
def table():
    dom = UIDDomain(4)
    # three groups: [0,8), [8,12), [12,16)
    return GroupTable(dom, [dom.node(1, 0), dom.node(2, 2), dom.node(2, 3)],
                      ["a", "b", "c"])


class TestConstruction:
    def test_sorted_by_range(self, table):
        assert table.group_ids == ["a", "b", "c"]
        assert list(table.starts) == [0, 8, 12]
        assert list(table.ends) == [8, 12, 16]

    def test_overlap_rejected(self):
        dom = UIDDomain(4)
        with pytest.raises(ValueError, match="overlap"):
            GroupTable(dom, [dom.node(1, 0), dom.node(2, 1)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GroupTable(UIDDomain(4), [])

    def test_id_length_mismatch_rejected(self):
        dom = UIDDomain(4)
        with pytest.raises(ValueError):
            GroupTable(dom, [dom.node(1, 0)], ["x", "y"])

    def test_bad_node_rejected(self):
        with pytest.raises(ValueError):
            GroupTable(UIDDomain(2), [64])

    def test_covers_domain(self, table):
        assert table.covers_domain()
        dom = UIDDomain(4)
        partial = GroupTable(dom, [dom.node(2, 0)])
        assert not partial.covers_domain()
        assert partial.covered_uids() == 4


class TestLookup:
    def test_lookup_single(self, table):
        assert table.lookup(0) == 0
        assert table.lookup(7) == 0
        assert table.lookup(8) == 1
        assert table.lookup(15) == 2

    def test_lookup_uncovered(self):
        dom = UIDDomain(4)
        t = GroupTable(dom, [dom.node(2, 1)])  # covers [4,8)
        assert t.lookup(3) is None
        assert t.lookup(8) is None
        assert t.lookup(5) == 0

    def test_lookup_many_matches_scalar(self, table):
        uids = np.arange(16)
        many = table.lookup_many(uids)
        for uid in uids:
            assert many[uid] == table.lookup(int(uid))

    def test_counts_from_uids(self, table):
        counts = table.counts_from_uids([0, 1, 8, 8, 15])
        assert list(counts) == [2.0, 2.0, 1.0]

    def test_counts_drop_uncovered(self):
        dom = UIDDomain(4)
        t = GroupTable(dom, [dom.node(2, 1)])
        counts = t.counts_from_uids([0, 5, 6, 12])
        assert list(counts) == [2.0]


class TestRangeStats:
    def test_groups_below(self, table):
        dom = table.domain
        assert table.groups_below(1) == 3  # root
        assert table.groups_below(dom.node(1, 0)) == 1
        assert table.groups_below(dom.node(1, 1)) == 2
        assert table.groups_below(dom.node(3, 0)) == 0  # inside group a

    def test_group_indices_below(self, table):
        dom = table.domain
        assert list(table.group_indices_below(dom.node(1, 1))) == [1, 2]
        assert list(table.group_indices_below(1)) == [0, 1, 2]

    def test_index_of_node(self, table):
        dom = table.domain
        assert table.index_of_node(dom.node(2, 2)) == 1
        with pytest.raises(KeyError):
            table.index_of_node(dom.node(2, 0))

    def test_key_density(self, table):
        dom = table.domain
        kd = table.key_density([1, dom.node(1, 1)])
        assert kd == {1: 3, dom.node(1, 1): 2}


@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_random_cut_tables_cover_and_count(seed):
    rng = np.random.default_rng(seed)
    height = int(rng.integers(1, 7))
    dom = UIDDomain(height)
    table = GroupTable(dom, random_cut(rng, height))
    assert table.covers_domain()
    # every uid maps to exactly one group
    idx = table.lookup_many(np.arange(dom.num_uids))
    assert np.all(idx >= 0)
    # groups_below(root) counts everything
    assert table.groups_below(1) == len(table)
    # sum over the two root children equals the total (unless the root
    # itself is the single group — it lies in neither child subtree)
    if height >= 1 and 1 not in table.nodes.tolist():
        total = table.groups_below(2) + table.groups_below(3)
        assert total == len(table)
